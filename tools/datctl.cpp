// datctl — command-line driver for libdat experiments.
//
//   datctl tree    --n 1024 --scheme balanced --assign probed   tree properties
//   datctl load    --n 512                                      message-load profiles
//   datctl lookup  --n 64 --queries 50 --mode recursive         live lookups + hop stats
//   datctl monitor --n 128 --minutes 10 --epoch 1.0             trace-driven monitoring run
//   datctl churn   --n 96 --events 12                           churn scenario
//   datctl inspect --n 32 --slot 5                               dump a node's tables
//   datctl metrics --n 8 --run 2.0 --format prom                 live telemetry dump
//   datctl trace   --n 32 --epochs 8 --out wave.json             Chrome trace of a wave
//   datctl rebalance --n 24 --assign random --rounds 20          runtime rebalancer rounds
//   datctl remote status --target 127.0.0.1:9400                 live datd health
//   datctl remote metrics --target 127.0.0.1:9400 --format prom  scrape a daemon
//   datctl remote leave --target 127.0.0.1:9401                  drain + clean exit
//   datctl remote rebalance --target 127.0.0.1:9401              one shed round
//   datctl remote alerts --target 127.0.0.1:9400                 SLO alert states
//   datctl top --target 127.0.0.1:9400 --once                    fleet view off one node
//   datctl promcheck --file page.prom                            lint a metrics page
//
// Every subcommand prints a compact table on stdout; --help lists flags.
// SIGINT/SIGTERM abort long runs between rounds: transports shut down
// through the normal destructors and the exit code is 130.

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/message_load.hpp"
#include "analysis/tree_metrics.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "datd/admin.hpp"
#include "datd/config.hpp"
#include "datd/signals.hpp"
#include "harness/live_tree.hpp"
#include "harness/sim_cluster.hpp"
#include "harness/udp_cluster.hpp"
#include "lb/ports.hpp"
#include "lb/rebalancer.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/selfmon.hpp"
#include "trace/cpu_trace.hpp"

namespace {

using namespace dat;

chord::RoutingScheme parse_scheme(const std::string& text) {
  if (text == "basic" || text == "greedy") return chord::RoutingScheme::kGreedy;
  if (text == "balanced") return chord::RoutingScheme::kBalanced;
  throw std::invalid_argument("unknown scheme: " + text +
                              " (use basic|balanced)");
}

chord::IdAssignment parse_assignment(const std::string& text) {
  if (text == "random") return chord::IdAssignment::kRandom;
  if (text == "probed") return chord::IdAssignment::kProbed;
  if (text == "even") return chord::IdAssignment::kEven;
  throw std::invalid_argument("unknown assignment: " + text +
                              " (use random|probed|even)");
}

int cmd_tree(CliFlags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto scheme = parse_scheme(flags.get_string("scheme"));
  const auto assignment = parse_assignment(flags.get_string("assign"));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto props = analysis::measure_tree_properties(
      static_cast<unsigned>(flags.get_int("bits")), n, scheme, assignment,
      static_cast<unsigned>(flags.get_int("trials")),
      static_cast<unsigned>(flags.get_int("keys")), rng);
  std::printf("n=%zu scheme=%s assign=%s\n", n, chord::to_string(scheme),
              chord::to_string(assignment));
  std::printf("  max branching:   %zu\n", props.max_branching);
  std::printf("  avg branching:   %.2f (internal nodes)\n",
              props.avg_branching_internal);
  std::printf("  tree height:     %u\n", props.height);
  std::printf("  gap ratio:       %.2f\n", props.gap_ratio);
  return 0;
}

int cmd_load(CliFlags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const IdSpace space(static_cast<unsigned>(flags.get_int("bits")));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const chord::RingView ring(space, chord::probed_ids(space, n, rng));
  const Id key = rng.next_id(space);
  std::printf("%-20s %8s %8s %10s\n", "scheme", "max", "avg", "imbalance");
  for (const auto scheme :
       {analysis::AggregationScheme::kCentralizedDirect,
        analysis::AggregationScheme::kCentralizedRouted,
        analysis::AggregationScheme::kBasicDat,
        analysis::AggregationScheme::kBalancedDat}) {
    const auto profile = analysis::message_load(ring, key, scheme);
    std::printf("%-20s %8llu %8.2f %10.2f\n", analysis::to_string(scheme),
                static_cast<unsigned long long>(profile.max()),
                profile.average(), profile.imbalance());
  }
  return 0;
}

int cmd_lookup(CliFlags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto queries = static_cast<unsigned>(flags.get_int("queries"));
  const bool recursive = flags.get_string("mode") == "recursive";

  harness::ClusterOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.with_dat = false;
  harness::SimCluster cluster(n, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }
  const chord::RingView ring = cluster.ring_view();
  Rng rng(7);
  RunningStats hops;
  unsigned correct = 0;
  for (unsigned q = 0; q < queries; ++q) {
    const Id key = rng.next_id(cluster.space());
    const Id expected = ring.successor(key);
    bool done = false;
    chord::NodeRef found;
    unsigned hop_count = 0;
    auto handler = [&](net::RpcStatus st, chord::NodeRef node, unsigned h) {
      done = true;
      if (st == net::RpcStatus::kOk) {
        found = node;
        hop_count = h;
      }
    };
    chord::Node& origin = cluster.node(q % n);
    if (recursive) {
      origin.find_successor_recursive(key, handler);
    } else {
      origin.find_successor_traced(key, handler);
    }
    const auto deadline = cluster.engine().now() + 10'000'000;
    while (!done && cluster.engine().now() < deadline) {
      cluster.engine().run_steps(128);
    }
    if (done && found.id == expected) {
      ++correct;
      hops.add(hop_count);
    }
  }
  std::printf("mode=%s n=%zu\n", recursive ? "recursive" : "iterative", n);
  std::printf("  correct:   %u/%u\n", correct, queries);
  std::printf("  hops:      mean %.2f, max %.0f (log2 n = %.1f)\n",
              hops.mean(), hops.max(),
              std::log2(static_cast<double>(n)));
  return 0;
}

int cmd_monitor(CliFlags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const double minutes = flags.get_double("minutes");
  const auto epoch_us =
      static_cast<std::uint64_t>(flags.get_double("epoch") * 1e6);

  harness::ClusterOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.dat.epoch_us = epoch_us;
  harness::SimCluster cluster(n, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }
  const trace::CpuTrace cpu =
      trace::CpuTrace::synthesize(trace::TraceConfig{}, 13);
  sim::Engine& engine = cluster.engine();
  const std::uint64_t t0 = engine.now();
  Id key = 0;
  for (std::size_t i = 0; i < n; ++i) {
    key = cluster.dat(i).start_aggregate(
        "cpu-usage", core::AggregateKind::kAvg,
        chord::RoutingScheme::kBalanced,
        [&engine, &cpu, t0]() { return cpu.at((engine.now() - t0) / 1e6); });
  }
  cluster.run_for(12 * epoch_us);
  std::printf("%8s %12s %12s %8s\n", "t(min)", "actual-avg", "agg-avg",
              "nodes");
  for (int minute = 1; minute <= static_cast<int>(minutes); ++minute) {
    if (datd::pending_signal() != 0) break;
    cluster.run_for(60'000'000);
    const Id root_id = cluster.ring_view().successor(key);
    for (std::size_t i = 0; i < n; ++i) {
      if (cluster.node(i).id() != root_id) continue;
      if (const auto g = cluster.dat(i).latest(key)) {
        std::printf("%8d %12.1f %12.1f %8llu\n", minute,
                    cpu.at((engine.now() - t0) / 1e6),
                    g->state.result(core::AggregateKind::kAvg),
                    static_cast<unsigned long long>(g->state.count));
      }
    }
  }
  return 0;
}

int cmd_inspect(CliFlags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto slot = static_cast<std::size_t>(flags.get_int("slot"));
  harness::ClusterOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.with_dat = false;
  harness::SimCluster cluster(n, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }
  if (slot >= cluster.slot_count() || !cluster.is_live(slot)) {
    std::fprintf(stderr, "slot %zu is not live\n", slot);
    return 1;
  }
  std::fputs(cluster.node(slot).describe().c_str(), stdout);
  const chord::RingView ring = cluster.ring_view();
  std::printf("  converged against ground truth: %s\n",
              cluster.node(slot).converged_against(ring) ? "yes" : "no");
  return 0;
}

int cmd_churn(CliFlags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto events = static_cast<unsigned>(flags.get_int("events"));

  harness::ClusterOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.dat.epoch_us = 500'000;
  harness::SimCluster cluster(n, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }
  Id key = 0;
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    if (!cluster.is_live(i)) continue;
    key = cluster.dat(i).start_aggregate("pop", core::AggregateKind::kCount,
                                         chord::RoutingScheme::kBalanced,
                                         []() { return 1.0; });
  }
  cluster.run_for(5'000'000);
  std::printf("%6s %8s %6s %10s %12s\n", "event", "kind", "live", "covered",
              "tree-reach");
  std::size_t victim = 1;
  for (unsigned e = 1; e <= events; ++e) {
    if (datd::pending_signal() != 0) break;
    const char* kind;
    if (e % 3 == 0) {
      const auto slot = cluster.add_node();
      if (slot) {
        cluster.dat(*slot).start_aggregate(key, core::AggregateKind::kCount,
                                           chord::RoutingScheme::kBalanced,
                                           []() { return 1.0; });
      }
      kind = "join";
    } else {
      while (victim < cluster.slot_count() && !cluster.is_live(victim)) {
        ++victim;
      }
      cluster.remove_node(victim++, e % 2 == 0);
      kind = e % 2 == 0 ? "leave" : "crash";
    }
    cluster.refresh_d0_hints();
    cluster.run_for(8'000'000);
    std::uint64_t covered = 0;
    const Id root_id = cluster.ring_view().successor(key);
    for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
      if (!cluster.is_live(i) || cluster.node(i).id() != root_id) continue;
      if (const auto g = cluster.dat(i).latest(key)) covered = g->state.count;
    }
    const auto stats =
        harness::live_tree_stats(cluster, key, chord::RoutingScheme::kBalanced);
    std::printf("%6u %8s %6zu %10llu %9zu/%zu\n", e, kind,
                cluster.live_count(),
                static_cast<unsigned long long>(covered),
                stats.reaching_root, stats.nodes);
  }
  return 0;
}

obs::ExportFormat parse_format(const std::string& text) {
  if (text == "json") return obs::ExportFormat::kJson;
  if (text == "prom" || text == "prometheus") {
    return obs::ExportFormat::kPrometheus;
  }
  throw std::invalid_argument("unknown format: " + text + " (use json|prom)");
}

int cmd_metrics(CliFlags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto run_us =
      static_cast<std::uint64_t>(flags.get_double("run") * 1e6);
  const obs::ExportFormat format = parse_format(flags.get_string("format"));

  // A real cluster on loopback UDP: its telemetry covers every layer
  // (chord, rpc, transport, DAT, and — with DAT_NET_BACKEND=netio — the
  // reactor shards via the cluster registry).
  harness::UdpClusterOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  harness::UdpCluster cluster(n, options);
  cluster.inject_d0_hints();
  if (!cluster.wait_converged()) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }
  cluster.start_aggregate_everywhere(
      "cpu-usage", core::AggregateKind::kAvg, chord::RoutingScheme::kBalanced,
      [](std::size_t slot) -> core::DatNode::LocalValueFn {
        return [slot] { return static_cast<double>(slot); };
      });
  cluster.run_for(run_us);
  obs::MetricsSnapshot snap = cluster.telemetry_snapshot();
  if (flags.get_bool("rollup")) snap = snap.rollup("node");
  std::fputs(obs::render(snap, format).c_str(), stdout);
  return 0;
}

int cmd_trace(CliFlags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto epochs = static_cast<std::uint64_t>(flags.get_int("epochs"));
  const std::string out_path = flags.get_string("out");

  harness::ClusterOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  harness::SimCluster cluster(n, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }
  const Id key = cluster.start_aggregate_everywhere(
      "cpu-usage", core::AggregateKind::kAvg, chord::RoutingScheme::kBalanced,
      [](std::size_t slot) -> core::DatNode::LocalValueFn {
        return [slot] { return static_cast<double>(slot); };
      });
  cluster.run_for((epochs + 2) * cluster.dat(0).options().epoch_us);

  // The wave to export: the most recent completed aggregation at the root.
  const Id root_id = cluster.ring_view().successor(key);
  std::uint64_t trace_id = 0;
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    if (!cluster.is_live(i) || cluster.node(i).id() != root_id) continue;
    for (const obs::Span& span : cluster.node(i).telemetry().recorder.spans()) {
      if (span.key == key && std::strcmp(span.name, "dat.aggregate") == 0) {
        trace_id = span.trace_id;  // keep the latest
      }
    }
  }
  if (trace_id == 0) {
    std::fprintf(stderr, "no completed aggregation wave recorded at the root\n");
    return 1;
  }

  std::vector<obs::NodeSpans> nodes;
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    if (!cluster.is_live(i)) continue;
    char name[64];
    std::snprintf(name, sizeof(name), "node-%zu (id 0x%llx)", i,
                  static_cast<unsigned long long>(cluster.node(i).id()));
    nodes.push_back(obs::NodeSpans{
        name, i, cluster.node(i).telemetry().recorder.spans()});
  }
  const std::string doc = obs::to_chrome_trace(nodes, trace_id);
  if (out_path.empty()) {
    std::fputs(doc.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << doc;
    std::fprintf(stderr, "wave trace (trace id 0x%llx) written to %s\n",
                 static_cast<unsigned long long>(trace_id), out_path.c_str());
  }
  return 0;
}

int cmd_rebalance(CliFlags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds"));

  harness::ClusterOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  // Random ids on purpose: the interesting runs start from the unbalanced
  // trees that identifier probing would have prevented.
  options.node.probing_join = flags.get_string("assign") != "random";
  harness::SimCluster cluster(n, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }

  std::vector<Id> keys;
  const std::uint64_t base_epoch_us = cluster.dat(0).options().epoch_us;
  for (int i = 0; i < 2; ++i) {
    keys.push_back(cluster.start_aggregate_everywhere(
        "cpu-usage#" + std::to_string(i), core::AggregateKind::kAvg,
        chord::RoutingScheme::kBalanced,
        [](std::size_t slot) -> core::DatNode::LocalValueFn {
          return [slot] { return static_cast<double>(slot); };
        }));
  }
  for (int i = 0; i < 2; ++i) {
    keys.push_back(cluster.start_aggregate_everywhere(
        "cpu-usage-hot#" + std::to_string(i), core::AggregateKind::kAvg,
        chord::RoutingScheme::kBalanced,
        [](std::size_t slot) -> core::DatNode::LocalValueFn {
          return [slot] { return static_cast<double>(slot); };
        },
        base_epoch_us / 10));
  }
  cluster.run_for(4 * base_epoch_us);  // let the trees form

  lb::SimClusterPort port(cluster);
  lb::RebalancerOptions lb_options;
  lb_options.epoch_us = base_epoch_us;
  lb::Rebalancer rebalancer(port, keys, lb_options);

  std::printf("n=%zu assign=%s rounds=%zu\n", n,
              flags.get_string("assign").c_str(), rounds);
  std::printf("%-6s %-10s %-9s %-11s %-6s %-6s %s\n", "round", "gap_ratio",
              "branching", "migrations", "sheds", "moved", "state");
  for (std::size_t r = 0; r < rounds; ++r) {
    if (datd::pending_signal() != 0) break;
    const lb::RoundReport report = rebalancer.run_round();
    std::printf("%-6zu %-10.2f %-9zu %-11zu %-6zu %-6zu %s\n", report.round,
                report.gap_ratio, report.max_children, report.migrations,
                report.sheds, report.children_moved,
                report.balanced ? "balanced" : "rebalancing");
    cluster.run_for(base_epoch_us);
    if (report.balanced) break;
  }
  return 0;
}

void render_fleet_view(const obs::SelfMonitor::FleetView& view,
                       const obs::SelfMonitor::FleetView* prev) {
  const auto* nodes = view.find("nodes");
  const std::uint64_t up =
      nodes != nullptr ? nodes->state.count : 0;
  std::printf("fleet: %llu", static_cast<unsigned long long>(up));
  if (view.fleet_size > 0) {
    std::printf("/%llu", static_cast<unsigned long long>(view.fleet_size));
  }
  std::printf(" nodes up   epoch %llums\n",
              static_cast<unsigned long long>(view.epoch_us / 1000));
  std::printf("%-14s %-6s %12s %12s %8s %6s\n", "series", "kind", "value",
              "rate/s", "count", "age");
  for (const obs::SelfMonitor::SeriesView& s : view.series) {
    char value[48];
    char rate[32] = "-";
    if (s.state.count == 0) {
      // min/max of an empty aggregate is undefined; the series simply has
      // not converged at this node yet.
      std::snprintf(value, sizeof(value), "-");
    } else if (s.kind == core::AggregateKind::kHistogram) {
      std::snprintf(value, sizeof(value), "p50=%.0f p99=%.0f",
                    s.state.quantile(0.5), s.state.quantile(0.99));
    } else {
      std::snprintf(value, sizeof(value), "%.1f", s.state.result(s.kind));
    }
    // Counters aggregate under kSum; two polls one epoch apart turn the
    // fleet-wide monotonic total into a rate.
    if (prev != nullptr && s.kind == core::AggregateKind::kSum &&
        view.now_us > prev->now_us) {
      if (const auto* old = prev->find(s.name)) {
        const double dt =
            static_cast<double>(view.now_us - prev->now_us) / 1e6;
        std::snprintf(rate, sizeof(rate), "%.1f",
                      (s.state.sum - old->state.sum) / dt);
      }
    }
    const std::uint64_t age_us =
        view.now_us > s.fetched_at_us ? view.now_us - s.fetched_at_us : 0;
    char age[24] = "never";
    if (s.fetched_at_us != 0) {
      std::snprintf(age, sizeof(age), "%llums",
                    static_cast<unsigned long long>(age_us / 1000));
    }
    std::printf("%-14s %-6s %12s %12s %8llu %6s\n", s.name.c_str(),
                core::to_string(s.kind), value, rate,
                static_cast<unsigned long long>(s.state.count), age);
  }
  if (view.alerts.empty()) {
    std::printf("alerts: (no rules)\n");
    return;
  }
  std::printf("alerts:\n");
  for (const obs::Alert& a : view.alerts) {
    std::printf("  %-12s %-7s value=%.1f threshold=%.1f breaches=%llu\n",
                a.rule.c_str(), a.firing ? "FIRING" : "clear", a.value,
                a.threshold,
                static_cast<unsigned long long>(a.breaches));
  }
}

int cmd_top(CliFlags& flags) {
  const std::string target_text = flags.get_string("target");
  if (target_text.empty()) {
    std::fprintf(stderr,
                 "usage: datctl top --target ip:port [--once] "
                 "[--interval sec]\n");
    return 2;
  }
  const net::Endpoint target = datd::parse_endpoint(target_text);
  datd::AdminClient admin(
      static_cast<std::uint64_t>(flags.get_double("timeout") * 1e6));
  const bool once = flags.get_bool("once");

  // One node answers for the whole fleet: its cached meta-tree roots ARE
  // the fleet view, so rendering costs one RPC regardless of fleet size.
  auto view = admin.fleet(target);
  if (!view) {
    std::fprintf(stderr, "top: %s has no self-monitor or did not answer\n",
                 target_text.c_str());
    return 1;
  }
  // Rates need a second sample one telemetry epoch later.
  const double default_interval =
      view->epoch_us > 0 ? static_cast<double>(view->epoch_us) / 1e6 : 1.0;
  double interval_s = flags.get_double("interval");
  if (interval_s <= 0.0) interval_s = default_interval;

  std::optional<obs::SelfMonitor::FleetView> prev;
  while (datd::pending_signal() == 0) {
    if (prev) {
      if (!once) std::printf("\x1b[H\x1b[2J");  // live mode: redraw in place
      render_fleet_view(*view, &*prev);
      if (once) return 0;
    }
    prev = std::move(view);
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    view = admin.fleet(target);
    if (!view) {
      std::fprintf(stderr, "top: %s stopped answering\n", target_text.c_str());
      return 1;
    }
  }
  return 130;
}

/// Validates a Prometheus text-exposition page: metric-name grammar, known
/// TYPE values, parseable sample values and no duplicate series (same name
/// + label set). This is what CI pipes `datctl metrics --format prom`
/// through, so a malformed or colliding series fails the build instead of
/// the scraper.
int cmd_promcheck(CliFlags& flags) {
  std::string path = flags.get_string("file");
  std::istream* in = &std::cin;
  std::ifstream file;
  if (!path.empty() && path != "-") {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "promcheck: cannot open %s\n", path.c_str());
      return 2;
    }
    in = &file;
  }
  const auto name_ok = [](const std::string& name) {
    if (name.empty()) return false;
    if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_' &&
        name[0] != ':') {
      return false;
    }
    for (const char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != ':') {
        return false;
      }
    }
    return true;
  };
  std::unordered_set<std::string> seen_series;
  std::unordered_set<std::string> typed;
  std::size_t errors = 0;
  std::size_t samples = 0;
  std::size_t lineno = 0;
  std::string line;
  const auto fail = [&](const std::string& why) {
    ++errors;
    std::fprintf(stderr, "promcheck: line %zu: %s: %s\n", lineno, why.c_str(),
                 line.c_str());
  };
  while (std::getline(*in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name, rest;
      comment >> hash >> keyword >> name;
      if (keyword != "HELP" && keyword != "TYPE") continue;
      if (!name_ok(name)) {
        fail("bad metric name in " + keyword);
        continue;
      }
      if (keyword == "TYPE") {
        std::string type;
        comment >> type;
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          fail("unknown TYPE " + type);
        }
        if (!typed.insert(name).second) fail("duplicate TYPE for " + name);
      }
      continue;
    }
    // Sample line: name[{labels}] value [timestamp]
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    std::string name;
    std::string series;
    std::string value_text;
    if (brace != std::string::npos && (space == std::string::npos ||
                                       brace < space)) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos) {
        fail("unterminated label set");
        continue;
      }
      name = line.substr(0, brace);
      series = line.substr(0, close + 1);
      value_text = line.substr(close + 1);
    } else if (space != std::string::npos) {
      name = line.substr(0, space);
      series = name;
      value_text = line.substr(space);
    } else {
      fail("sample without a value");
      continue;
    }
    if (!name_ok(name)) {
      fail("bad metric name");
      continue;
    }
    std::istringstream values(value_text);
    std::string token;
    if (!(values >> token)) {
      fail("sample without a value");
      continue;
    }
    if (token != "+Inf" && token != "-Inf" && token != "NaN") {
      try {
        std::size_t used = 0;
        (void)std::stod(token, &used);
        if (used != token.size()) throw std::invalid_argument(token);
      } catch (const std::exception&) {
        fail("unparseable sample value " + token);
        continue;
      }
    }
    if (!seen_series.insert(series).second) fail("duplicate series");
    ++samples;
  }
  std::printf("promcheck: %zu samples, %zu errors\n", samples, errors);
  return errors == 0 ? 0 : 1;
}

int cmd_remote(CliFlags& flags) {
  const std::string op =
      flags.positional().empty() ? std::string() : flags.positional().front();
  const std::string target_text = flags.get_string("target");
  const bool known_op = op == "status" || op == "metrics" || op == "leave" ||
                        op == "rebalance" || op == "alerts";
  if (!known_op || target_text.empty()) {
    std::fprintf(stderr,
                 "usage: datctl remote <status|metrics|leave|rebalance|alerts> "
                 "--target ip:port [--json] [--format json|prom]\n");
    return 2;
  }
  const net::Endpoint target = datd::parse_endpoint(target_text);
  datd::AdminClient admin(
      static_cast<std::uint64_t>(flags.get_double("timeout") * 1e6));
  if (op == "status") {
    const auto status = admin.status(target);
    if (!status) {
      std::fprintf(stderr, "remote: %s did not answer\n", target_text.c_str());
      return 1;
    }
    std::printf("%s\n", flags.get_bool("json") ? status->to_json().c_str()
                                               : status->describe().c_str());
    return 0;
  }
  if (op == "metrics") {
    const auto page =
        admin.metrics(target, parse_format(flags.get_string("format")));
    if (!page) {
      std::fprintf(stderr, "remote: %s did not answer\n", target_text.c_str());
      return 1;
    }
    std::fputs(page->c_str(), stdout);
    return 0;
  }
  if (op == "alerts") {
    const auto alerts = admin.alerts(target);
    if (!alerts) {
      std::fprintf(stderr, "remote: %s has no self-monitor or did not answer\n",
                   target_text.c_str());
      return 1;
    }
    for (const obs::Alert& a : *alerts) {
      std::printf("%-12s %-7s value=%.1f threshold=%.1f breaches=%llu\n",
                  a.rule.c_str(), a.firing ? "FIRING" : "clear", a.value,
                  a.threshold, static_cast<unsigned long long>(a.breaches));
    }
    if (alerts->empty()) std::printf("(no rules)\n");
    return 0;
  }
  if (op == "leave") {
    if (!admin.leave(target)) {
      std::fprintf(stderr, "remote: %s did not acknowledge the leave\n",
                   target_text.c_str());
      return 1;
    }
    std::printf("leave acknowledged: %s is draining\n", target_text.c_str());
    return 0;
  }
  const auto moved = admin.rebalance(target);
  if (!moved) {
    std::fprintf(stderr, "remote: %s did not answer\n", target_text.c_str());
    return 1;
  }
  std::printf("rebalance: %llu children moved\n",
              static_cast<unsigned long long>(*moved));
  return 0;
}

void print_usage() {
  std::fprintf(
      stderr,
      "usage: datctl "
      "<tree|load|lookup|monitor|churn|inspect|metrics|trace|rebalance|remote"
      "|top|promcheck>"
      " [flags]\n"
      "       datctl <subcommand> --help\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];

  CliFlags flags;
  flags.flag("n", std::int64_t{128}, "number of nodes");
  flags.flag("bits", std::int64_t{32}, "identifier-space bits");
  flags.flag("seed", std::int64_t{42}, "random seed");
  flags.flag("help", false, "print flags and exit");
  if (command == "tree") {
    flags.flag("scheme", std::string("balanced"), "basic|balanced");
    flags.flag("assign", std::string("probed"), "random|probed|even");
    flags.flag("trials", std::int64_t{3}, "independent rings");
    flags.flag("keys", std::int64_t{4}, "rendezvous keys per ring");
  } else if (command == "lookup") {
    flags.flag("queries", std::int64_t{50}, "number of lookups");
    flags.flag("mode", std::string("iterative"), "iterative|recursive");
  } else if (command == "monitor") {
    flags.flag("minutes", 10.0, "measurement length (virtual minutes)");
    flags.flag("epoch", 1.0, "aggregation epoch (seconds)");
  } else if (command == "churn") {
    flags.flag("events", std::int64_t{12}, "churn events");
  } else if (command == "inspect") {
    flags.flag("slot", std::int64_t{0}, "node slot to dump");
  } else if (command == "metrics") {
    flags.flag("run", 2.0, "wall-clock seconds to run before sampling");
    flags.flag("format", std::string("prom"), "json|prom");
    flags.flag("rollup", false, "collapse per-node series into cluster totals");
  } else if (command == "trace") {
    flags.flag("epochs", std::int64_t{8}, "aggregation epochs to record");
    flags.flag("out", std::string(), "output file (stdout when empty)");
  } else if (command == "rebalance") {
    flags.flag("assign", std::string("random"),
               "id assignment at deploy: random|probed");
    flags.flag("rounds", std::int64_t{20}, "rebalancer rounds to run");
  } else if (command == "remote") {
    flags.flag("target", std::string(), "daemon address, ip:port (required)");
    flags.flag("format", std::string("prom"), "metrics format: json|prom");
    flags.flag("json", false, "status as JSON instead of one line");
    flags.flag("timeout", 2.0, "per-call budget (seconds)");
  } else if (command == "top") {
    flags.flag("target", std::string(), "daemon address, ip:port (required)");
    flags.flag("once", false, "two samples one epoch apart, one frame, exit");
    flags.flag("interval", 0.0,
               "refresh period in seconds (0 = the node's telemetry epoch)");
    flags.flag("timeout", 2.0, "per-call budget (seconds)");
  } else if (command == "promcheck") {
    flags.flag("file", std::string(),
               "Prometheus exposition page to lint (empty or - reads stdin)");
  } else if (command != "load") {
    print_usage();
    return 2;
  }

  if (!flags.parse(argc - 2, argv + 2)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.get_bool("help")) {
    std::fprintf(stderr, "datctl %s flags:\n%s", command.c_str(),
                 flags.usage().c_str());
    return 0;
  }

  dat::datd::install_signal_guard();
  try {
    int rc = 2;
    bool handled = true;
    if (command == "tree") {
      rc = cmd_tree(flags);
    } else if (command == "load") {
      rc = cmd_load(flags);
    } else if (command == "lookup") {
      rc = cmd_lookup(flags);
    } else if (command == "monitor") {
      rc = cmd_monitor(flags);
    } else if (command == "churn") {
      rc = cmd_churn(flags);
    } else if (command == "inspect") {
      rc = cmd_inspect(flags);
    } else if (command == "metrics") {
      rc = cmd_metrics(flags);
    } else if (command == "trace") {
      rc = cmd_trace(flags);
    } else if (command == "rebalance") {
      rc = cmd_rebalance(flags);
    } else if (command == "remote") {
      rc = cmd_remote(flags);
    } else if (command == "top") {
      rc = cmd_top(flags);
    } else if (command == "promcheck") {
      rc = cmd_promcheck(flags);
    } else {
      handled = false;
    }
    if (handled) {
      // A latched SIGINT/SIGTERM broke the subcommand's loop early; every
      // cluster/transport already shut down via its destructor above.
      return dat::datd::pending_signal() != 0 ? 130 : rc;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  print_usage();
  return 2;
}
