// dat_supervisor — process-level chaos against a fleet of real datd
// daemons on loopback.
//
//   dat_supervisor --nodes 64 --seed 7                canonical kill plan
//   dat_supervisor --plan kills.txt --datd ./datd     scripted plan
//   dat_supervisor --nodes 16 --print-plan            show the timeline
//
// Forks one datd per slot (slot 0 bootstraps the ring, every other slot
// joins through it with retry + backoff), then executes the plan against
// their PIDs: sigkill = abrupt crash, sigterm = graceful drain (the exit
// code is asserted 0), restart = respawn with a bumped incarnation. At
// every verify point the supervisor scrapes the fleet's telemetry wire
// until ring re-convergence, replica coverage and exact aggregate
// conservation hold — or the SLO window expires.
//
// Exit codes: 0 all SLOs met, 1 violations, 2 bad usage, 130 interrupted.

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/plan.hpp"
#include "common/cli.hpp"
#include "datd/supervisor.hpp"

namespace {

/// Default datd path: next to this binary, the layout the build tree and
/// an installed tools/ directory both produce.
std::string sibling_datd(const char* argv0) {
  std::string self(argv0);
  const auto slash = self.rfind('/');
  if (slash == std::string::npos) return "./datd";
  return self.substr(0, slash + 1) + "datd";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dat;

  CliFlags flags;
  flags.flag("nodes", std::int64_t{64}, "fleet size (>= 8)")
      .flag("seed", std::int64_t{7}, "kill-plan seed")
      .flag("plan", std::string{},
            "path to a text plan spec (overrides --nodes/--seed)")
      .flag("campaign", std::string{"canonical"},
            "built-in plan: canonical | selfmon")
      .flag("base-port", std::int64_t{9400}, "slot i binds 127.0.0.1:port+i")
      .flag("datd", std::string{}, "datd binary (default: next to this one)")
      .flag("aggregate", std::string{"cpu-usage"}, "aggregate name")
      .flag("replicas", std::int64_t{2}, "replica trees per aggregate")
      .flag("epoch-ms", std::int64_t{150}, "daemon push period")
      .flag("drain-deadline-ms", std::int64_t{5000},
            "daemon SIGTERM hard deadline")
      .flag("boot-timeout-ms", std::int64_t{60000}, "fleet-up SLO")
      .flag("verify-window-ms", std::int64_t{15000},
            "per-verify recovery SLO window")
      .flag("poll-ms", std::int64_t{250}, "SLO poll period")
      .flag("report", std::string{}, "also write the report to this file")
      .flag("selfmon", true, "children run the telemetry self-monitor")
      .flag("selfmon-epoch-ms", std::int64_t{500},
            "children's self-monitoring epoch")
      .flag("check-alerts", false,
            "verify SLO: probe coverage alert firing iff slots are down "
            "(the selfmon campaign turns this on)")
      .flag("postmortem-dir", std::string{},
            "children dump crash postmortems here; the supervisor archives "
            "them after reaping a signalled child")
      .flag("print-plan", false, "print the timeline spec and exit")
      .flag("quiet", false, "suppress per-event report lines on stdout")
      .flag("help", false, "print flags and exit");
  if (!flags.parse(argc - 1, argv + 1)) {
    std::fprintf(stderr, "dat_supervisor: %s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.get_bool("help")) {
    std::fprintf(stderr, "dat_supervisor flags:\n%s", flags.usage().c_str());
    return 0;
  }

  try {
    chaos::ChaosPlan plan;
    const std::string plan_path = flags.get_string("plan");
    if (!plan_path.empty()) {
      std::ifstream in(plan_path);
      if (!in) {
        std::fprintf(stderr, "dat_supervisor: cannot open plan file %s\n",
                     plan_path.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      plan = chaos::ChaosPlan::parse(text.str());
      if (!plan.process_mode) {
        std::fprintf(stderr,
                     "dat_supervisor: plan %s lacks `mode process`; "
                     "sim-only events will be skipped\n",
                     plan_path.c_str());
      }
    } else if (flags.get_string("campaign") == "selfmon") {
      plan = chaos::ChaosPlan::process_selfmon(
          static_cast<std::uint64_t>(flags.get_int("seed")),
          static_cast<std::size_t>(flags.get_int("nodes")));
    } else if (flags.get_string("campaign") == "canonical") {
      plan = chaos::ChaosPlan::process_canonical(
          static_cast<std::uint64_t>(flags.get_int("seed")),
          static_cast<std::size_t>(flags.get_int("nodes")));
    } else {
      std::fprintf(stderr, "dat_supervisor: unknown --campaign %s\n",
                   flags.get_string("campaign").c_str());
      return 2;
    }
    if (flags.get_bool("print-plan")) {
      std::fputs(plan.to_spec().c_str(), stdout);
      return 0;
    }

    datd::SupervisorOptions options;
    options.nodes = static_cast<std::size_t>(flags.get_int("nodes"));
    options.base_port =
        static_cast<std::uint16_t>(flags.get_int("base-port"));
    options.datd_path = flags.get_string("datd");
    if (options.datd_path.empty()) options.datd_path = sibling_datd(argv[0]);
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    options.aggregate = flags.get_string("aggregate");
    options.replicas = static_cast<unsigned>(flags.get_int("replicas"));
    options.epoch_ms = static_cast<std::uint64_t>(flags.get_int("epoch-ms"));
    options.drain_deadline_ms =
        static_cast<std::uint64_t>(flags.get_int("drain-deadline-ms"));
    options.boot_timeout_ms =
        static_cast<std::uint64_t>(flags.get_int("boot-timeout-ms"));
    options.verify_window_ms =
        static_cast<std::uint64_t>(flags.get_int("verify-window-ms"));
    options.verify_poll_ms =
        static_cast<std::uint64_t>(flags.get_int("poll-ms"));
    options.report_path = flags.get_string("report");
    options.verbose = !flags.get_bool("quiet");
    options.selfmon = flags.get_bool("selfmon");
    options.selfmon_epoch_ms =
        static_cast<std::uint64_t>(flags.get_int("selfmon-epoch-ms"));
    options.check_alerts = flags.get_bool("check-alerts") ||
                           flags.get_string("campaign") == "selfmon";
    options.postmortem_dir = flags.get_string("postmortem-dir");

    datd::Supervisor supervisor(options);
    return supervisor.run(plan);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "dat_supervisor: %s\n", err.what());
    return 2;
  }
}
