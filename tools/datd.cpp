// datd — the deployable DAT/Chord monitoring daemon.
//
//   datd --create --port 9400                         bootstrap a ring
//   datd --port 9401 --seeds 127.0.0.1:9400           join (retry + backoff)
//   datd --config fleet.conf --port 9402              file + flag overrides
//
// Runs one chord node with its DAT layer and a ReplicatedAggregate
// workload, serves the datd.* admin RPCs over the same UDP socket, and
// periodically dumps telemetry (--metrics-out). SIGTERM/SIGINT drains the
// DAT trees (handoffs + retracts, conserving the aggregate), leaves the
// ring cleanly, and exits 0 — or 1 when the drain blew its hard deadline.
//
// Exit codes: 0 clean drain, 1 deadline-forced exit, 2 bad usage/config,
// 3 bootstrap failed (no seed answered within the retry budget).

#include <cstdio>
#include <exception>
#include <string>

#include "chord/types.hpp"
#include "datd/config.hpp"
#include "datd/daemon.hpp"
#include "datd/signals.hpp"
#include "net/endpoint.hpp"

int main(int argc, char** argv) {
  using namespace dat;

  datd::Config config;
  try {
    // Pre-scan for --config so the file can seed the defaults the real
    // parse then overrides: flags always win over file keys.
    datd::Config defaults;
    CliFlags pre = defaults.make_flags();
    pre.flag("help", false, "print flags and exit");
    if (!pre.parse(argc - 1, argv + 1)) {
      std::fprintf(stderr, "datd: %s\n%s", pre.error().c_str(),
                   pre.usage().c_str());
      return 2;
    }
    if (pre.get_bool("help")) {
      std::fprintf(stderr, "datd flags:\n%s", pre.usage().c_str());
      return 0;
    }
    const std::string config_path = pre.get_string("config");
    if (!config_path.empty()) config.load_file(config_path);
    CliFlags flags = config.make_flags();
    flags.flag("help", false, "print flags and exit");
    if (!flags.parse(argc - 1, argv + 1)) {
      std::fprintf(stderr, "datd: %s\n%s", flags.error().c_str(),
                   flags.usage().c_str());
      return 2;
    }
    config = datd::Config::from_flags(flags);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "datd: %s\n", err.what());
    return 2;
  }

  datd::install_signal_guard();
  try {
    datd::Daemon daemon(config);
    if (!daemon.bootstrap()) {
      std::fprintf(stderr, "datd: bootstrap failed: no seed answered in %u "
                           "attempts\n",
                   config.join_attempts);
      return 3;
    }
    std::fprintf(stderr, "datd: serving on %s (id %llu, incarnation %llu)\n",
                 net::endpoint_to_string(daemon.local()).c_str(),
                 static_cast<unsigned long long>(daemon.node().id()),
                 static_cast<unsigned long long>(config.incarnation));
    return daemon.run();
  } catch (const std::exception& err) {
    std::fprintf(stderr, "datd: %s\n", err.what());
    return 2;
  }
}
