#pragma once

// datlint source model: an AST-lite view of one translation unit, built from
// the token stream. It is deliberately coarser than a real Clang AST — the
// checks only need (a) function definitions with qualified names and body
// ranges, (b) call sites with receiver chains, (c) lock acquisitions, and
// (d) string literals in instrument-registration position.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace datlint {

/// One call site inside a function body. `callee` is the unqualified name
/// (`push_back`, `try_decode`); `qualifier` is the textual receiver /
/// qualifier chain when present (`t.outq_`, `net::Message`, `arena_`).
struct CallSite {
  std::string callee;
  std::string qualifier;
  std::size_t token_index = 0;  // index of the callee token in file.tokens
  int line = 0;
  bool member_call = false;  // reached through `.` or `->` (not `::`)
};

/// One mutex acquisition: a lock_guard/unique_lock/scoped_lock declaration
/// or an explicit `.lock()` call. `lock_expr` is the normalized operand
/// (`tasks_mutex_`, `other.mutex_`); `lock_key` qualifies it with the
/// enclosing class for cross-file identity (`Reactor::tasks_mutex_`).
struct LockAcquisition {
  std::string lock_expr;
  std::string lock_key;
  std::size_t token_index = 0;
  int line = 0;
  int brace_depth = 0;  // depth relative to the function body's open brace
};

/// A string literal registering (or naming) a metrics instrument.
struct MetricLiteral {
  std::string name;        // the literal's contents
  std::string instrument;  // "counter" | "gauge" | "histogram" | "collector"
  int line = 0;
};

struct FunctionInfo {
  std::string qualified_name;  // e.g. dat::netio::Reactor::drain_fd
  std::string simple_name;     // last component
  std::string file;
  int line = 0;                // line of the declarator
  std::size_t params_begin = 0;  // token range of the parameter list (...)
  std::size_t params_end = 0;    // one past the closing paren
  std::size_t body_begin = 0;    // index of '{'
  std::size_t body_end = 0;      // index of matching '}'
  std::vector<CallSite> calls;
  std::vector<LockAcquisition> locks;
  bool has_wire_param = false;   // a std::span<const uint8_t> / const uint8_t*
  std::vector<std::string> wire_params;  // names of those parameters
};

struct FileModel {
  LexedFile lexed;
  std::vector<FunctionInfo> functions;
  std::vector<MetricLiteral> metric_literals;
  /// check name -> set of source lines carrying `datlint:allow(check)`.
  /// A suppression on line L covers findings on L and L+1 (same-line and
  /// preceding-line placement).
  std::map<std::string, std::set<int>> allow_lines;
};

/// Builds the model for one lexed file. `collector_calls` lists extra call
/// names whose first string-literal argument is treated as a metric name
/// (e.g. the reactor's collector `add` helper), per datlint.yaml.
FileModel build_model(LexedFile lexed,
                      const std::vector<std::string>& collector_calls);

/// The function (if any) whose body contains token index `ti`. Inner-most
/// match wins (lambdas are part of their enclosing function).
const FunctionInfo* enclosing_function(const FileModel& model,
                                       std::size_t ti);

}  // namespace datlint
