#pragma once

// datlint — project-specific static analysis for the DAT codebase.
//
// This header defines the token model produced by the built-in C++ lexer.
// datlint is structured like a Clang LibTooling tool (a token/AST-lite model,
// matcher-style checks, -verify fixture mode), but carries its own lexer so
// the analysis runs on any build machine: the container toolchain ships LLVM
// without the clang development headers, and datlint must not require
// anything that is not already installed (see tools/datlint/CMakeLists.txt,
// which upgrades to a real LibTooling build when a Clang package is found).

#include <cstddef>
#include <string>
#include <vector>

namespace datlint {

enum class TokenKind {
  kIdentifier,   // identifiers and keywords (checks match on spelling)
  kNumber,       // integer / floating literals, including suffixes
  kString,       // "..." / R"(...)" — text holds the *contents*, unescaped-ish
  kChar,         // '...'
  kPunct,        // one operator/punctuator per token ("::" and "->" fused)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;   // spelling (string tokens: the literal's contents)
  int line = 0;       // 1-based
  int col = 0;        // 1-based
};

/// One `//` or `/* */` comment, kept out of the token stream but retained so
/// checks can find `datlint:allow(...)` suppressions and fixture
/// `expect-diagnostic(...)` annotations.
struct Comment {
  std::string text;
  int line = 0;       // line the comment starts on
  int end_line = 0;   // last line the comment covers (block comments span)
};

struct LexedFile {
  std::string path;           // as given on the command line
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes C++ source. Preprocessor directives are skipped to end of line
/// (continuations honoured) — datlint analyses one configuration, the same
/// posture as running clang-tidy on a single compile command. Never throws
/// on malformed input; unterminated constructs are closed at end of file.
LexedFile lex_file(const std::string& path, const std::string& source);

}  // namespace datlint
