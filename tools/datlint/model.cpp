#include "model.hpp"

#include <algorithm>
#include <cctype>

namespace datlint {

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",     "while",    "switch",        "return",
      "sizeof",   "alignof", "decltype", "static_assert", "catch",
      "noexcept", "assert",  "defined",  "throw",         "co_return",
      "co_await", "co_yield"};
  return kw;
}

bool is_decl_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "const",   "constexpr", "consteval", "constinit", "static", "inline",
      "virtual", "explicit",  "friend",    "typename",  "class",  "struct",
      "union",   "unsigned",  "signed",    "long",      "short",  "auto",
      "void",    "bool",      "char",      "int",       "float",  "double",
      "mutable", "volatile",  "extern",    "register",  "thread_local"};
  return kw.count(s) > 0;
}

struct Matcher {
  std::vector<std::size_t> match;  // match[i] = index of partner, or npos
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit Matcher(const std::vector<Token>& toks)
      : match(toks.size(), npos) {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kPunct) continue;
      const std::string& t = toks[i].text;
      if (t == "(" || t == "{" || t == "[") {
        stack.push_back(i);
      } else if (t == ")" || t == "}" || t == "]") {
        // Pop to the nearest opener of the matching shape; tolerate
        // imbalance from macro tricks by discarding mismatched openers.
        const char want = (t == ")") ? '(' : (t == "}") ? '{' : '[';
        while (!stack.empty() && toks[stack.back()].text[0] != want) {
          stack.pop_back();
        }
        if (!stack.empty()) {
          match[stack.back()] = i;
          match[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }
};

/// Collects the textual qualifier chain ending just before token `ti`
/// (exclusive): e.g. for `t.outq_.push_back(` with ti at `push_back`,
/// returns "t.outq_".
std::string qualifier_chain(const std::vector<Token>& toks, std::size_t ti) {
  if (ti == 0) return {};
  std::size_t i = ti - 1;
  const auto is_link = [&](std::size_t k) {
    return toks[k].kind == TokenKind::kPunct &&
           (toks[k].text == "." || toks[k].text == "->" ||
            toks[k].text == "::");
  };
  if (!is_link(i)) return {};
  // Collect (link, ident) pairs right-to-left; parts.front() is the link
  // that joins the chain to the callee and is dropped from the result.
  std::vector<std::string> parts;
  while (true) {
    if (!is_link(i)) break;
    const std::string link = toks[i].text;
    if (i == 0) break;
    --i;
    if (toks[i].kind == TokenKind::kIdentifier) {
      parts.push_back(link);
      parts.push_back(toks[i].text);
      if (i == 0) break;
      --i;
    } else if (toks[i].kind == TokenKind::kPunct &&
               (toks[i].text == ")" || toks[i].text == "]")) {
      // A call/index result as receiver: keep it opaque.
      parts.push_back(link);
      parts.push_back("()");
      break;
    } else {
      break;
    }
  }
  if (parts.empty()) return {};
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) out += *it;
  // Drop the trailing link ('.', '->', '::') before the callee.
  out.resize(out.size() - parts.front().size());
  return out;
}

/// Last identifier of a token range — used to name a parameter.
std::string last_identifier(const std::vector<Token>& toks, std::size_t b,
                            std::size_t e) {
  std::string name;
  for (std::size_t i = b; i < e; ++i) {
    if (toks[i].kind == TokenKind::kIdentifier) name = toks[i].text;
    if (toks[i].kind == TokenKind::kPunct && toks[i].text == "=") break;
  }
  return name;
}

bool range_contains(const std::vector<Token>& toks, std::size_t b,
                    std::size_t e, const char* word) {
  for (std::size_t i = b; i < e; ++i) {
    if (toks[i].kind == TokenKind::kIdentifier && toks[i].text == word) {
      return true;
    }
  }
  return false;
}

}  // namespace

FileModel build_model(LexedFile lexed,
                      const std::vector<std::string>& collector_calls) {
  FileModel model;
  model.lexed = std::move(lexed);
  const std::vector<Token>& toks = model.lexed.tokens;
  const Matcher m(toks);
  const std::size_t n = toks.size();

  // ---- suppressions -------------------------------------------------------
  for (const Comment& cm : model.lexed.comments) {
    std::size_t pos = 0;
    while ((pos = cm.text.find("datlint:", pos)) != std::string::npos) {
      std::size_t p = pos + 8;
      while (p < cm.text.size() && cm.text[p] == ' ') ++p;
      if (cm.text.compare(p, 3, "hot") == 0 &&
          (p + 3 == cm.text.size() || !std::isalnum(static_cast<unsigned char>(
                                          cm.text[p + 3])))) {
        // `// datlint:hot` annotates the next function definition as a
        // hot-path root (covers the declarator up to two lines below).
        for (int l = cm.line; l <= cm.end_line + 2; ++l) {
          model.allow_lines["__hot__"].insert(l);
        }
        pos = p + 3;
        continue;
      }
      if (cm.text.compare(p, 6, "allow(") != 0) {
        ++pos;
        continue;
      }
      p += 6;
      const std::size_t close = cm.text.find(')', p);
      if (close == std::string::npos) break;
      std::string list = cm.text.substr(p, close - p);
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        std::string check = list.substr(start, comma - start);
        // trim
        while (!check.empty() && check.front() == ' ') check.erase(0, 1);
        while (!check.empty() && check.back() == ' ') check.pop_back();
        if (!check.empty()) {
          for (int l = cm.line; l <= cm.end_line + 1; ++l) {
            model.allow_lines[check].insert(l);
          }
        }
        start = comma + 1;
      }
      pos = close;
    }
  }

  // ---- function definitions ----------------------------------------------
  // Scope stack of namespace / class names; only pushed while walking at
  // declaration scope (function bodies are skipped wholesale below).
  struct Scope {
    std::string name;      // may be empty (anonymous namespace)
    std::size_t close;     // token index of the matching '}'
  };
  std::vector<Scope> scopes;

  const auto scope_prefix = [&]() {
    std::string p;
    for (const Scope& s : scopes) {
      if (s.name.empty()) continue;
      p += s.name;
      p += "::";
    }
    return p;
  };

  const auto scan_body = [&](FunctionInfo& fn) {
    const std::size_t b = fn.body_begin;
    const std::size_t e = fn.body_end;
    int depth = 0;
    for (std::size_t i = b; i < e && i < n; ++i) {
      const Token& t = toks[i];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "{") ++depth;
        if (t.text == "}") --depth;
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) continue;

      // `new` expressions.
      if (t.text == "new") {
        CallSite c;
        c.callee = "new";
        c.token_index = i;
        c.line = t.line;
        fn.calls.push_back(std::move(c));
        continue;
      }

      // Lock guard declarations: lock_guard/unique_lock/scoped_lock <...>
      // var(expr).
      if (t.text == "lock_guard" || t.text == "unique_lock" ||
          t.text == "scoped_lock") {
        std::size_t j = i + 1;
        if (j < n && toks[j].kind == TokenKind::kPunct &&
            toks[j].text == "<") {
          int angle = 1;
          ++j;
          while (j < n && angle > 0) {
            if (toks[j].kind == TokenKind::kPunct) {
              if (toks[j].text == "<") ++angle;
              if (toks[j].text == ">") --angle;
              if (toks[j].text == ">>") angle -= 2;
            }
            ++j;
          }
        }
        // variable name, then parenthesized or braced operand(s)
        if (j < n && toks[j].kind == TokenKind::kIdentifier) ++j;
        if (j < n && toks[j].kind == TokenKind::kPunct &&
            (toks[j].text == "(" || toks[j].text == "{") &&
            m.match[j] != Matcher::npos) {
          const std::size_t close = m.match[j];
          std::size_t arg_start = j + 1;
          int inner = 0;
          for (std::size_t k = j + 1; k <= close; ++k) {
            const bool at_end = (k == close);
            const bool top_comma = !at_end && inner == 0 &&
                                   toks[k].kind == TokenKind::kPunct &&
                                   toks[k].text == ",";
            if (!at_end && !top_comma) {
              if (toks[k].kind == TokenKind::kPunct) {
                if (toks[k].text == "(" || toks[k].text == "[") ++inner;
                if (toks[k].text == ")" || toks[k].text == "]") --inner;
              }
              continue;
            }
            std::string expr;
            for (std::size_t q = arg_start; q < k; ++q) expr += toks[q].text;
            if (!expr.empty()) {
              LockAcquisition a;
              a.lock_expr = expr;
              a.token_index = i;
              a.line = t.line;
              a.brace_depth = depth;
              fn.locks.push_back(std::move(a));
            }
            arg_start = k + 1;
          }
        }
        continue;
      }

      // Call sites.
      if (i + 1 < n && toks[i + 1].kind == TokenKind::kPunct &&
          toks[i + 1].text == "(") {
        if (control_keywords().count(t.text) > 0 || is_decl_keyword(t.text)) {
          continue;
        }
        CallSite c;
        c.callee = t.text;
        c.qualifier = qualifier_chain(toks, i);
        c.token_index = i;
        c.line = t.line;
        c.member_call = i > 0 && toks[i - 1].kind == TokenKind::kPunct &&
                        (toks[i - 1].text == "." || toks[i - 1].text == "->");

        // Explicit .lock() on something mutex-like.
        if (c.callee == "lock" && !c.qualifier.empty()) {
          LockAcquisition a;
          a.lock_expr = c.qualifier;
          a.token_index = i;
          a.line = t.line;
          a.brace_depth = depth;
          fn.locks.push_back(std::move(a));
        }

        // Metric instrument registrations with a literal name.
        const bool is_instrument = c.callee == "counter" ||
                                   c.callee == "gauge" ||
                                   c.callee == "histogram";
        const bool is_collector =
            std::find(collector_calls.begin(), collector_calls.end(),
                      c.callee) != collector_calls.end();
        if ((is_instrument || is_collector) && i + 2 < n &&
            toks[i + 2].kind == TokenKind::kString) {
          const std::string& lit = toks[i + 2].text;
          if (is_instrument || lit.rfind("dat_", 0) == 0) {
            MetricLiteral ml;
            ml.name = lit;
            ml.instrument = is_instrument ? c.callee : "collector";
            ml.line = toks[i + 2].line;
            model.metric_literals.push_back(std::move(ml));
          }
        }

        fn.calls.push_back(std::move(c));
        continue;
      }

      // `sample.name = "dat_..."` style collector names.
      if (t.text == "name" && i + 2 < n &&
          toks[i + 1].kind == TokenKind::kPunct && toks[i + 1].text == "=" &&
          toks[i + 2].kind == TokenKind::kString &&
          toks[i + 2].text.rfind("dat_", 0) == 0) {
        MetricLiteral ml;
        ml.name = toks[i + 2].text;
        ml.instrument = "collector";
        ml.line = toks[i + 2].line;
        model.metric_literals.push_back(std::move(ml));
      }
    }
  };

  std::size_t i = 0;
  while (i < n) {
    const Token& t = toks[i];

    if (t.kind == TokenKind::kPunct && t.text == "}") {
      while (!scopes.empty() && scopes.back().close <= i) scopes.pop_back();
      ++i;
      continue;
    }

    if (t.kind == TokenKind::kIdentifier && t.text == "namespace" &&
        (i == 0 || toks[i - 1].text != "using")) {
      std::size_t j = i + 1;
      std::string name;
      while (j < n && (toks[j].kind == TokenKind::kIdentifier ||
                       toks[j].text == "::")) {
        name += toks[j].text;
        ++j;
      }
      if (j < n && toks[j].kind == TokenKind::kPunct && toks[j].text == "{" &&
          m.match[j] != Matcher::npos) {
        scopes.push_back({name, m.match[j]});
        i = j + 1;
        continue;
      }
      i = j + 1;
      continue;
    }

    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "class" || t.text == "struct") &&
        (i == 0 || toks[i - 1].text != "enum")) {
      // Find the body '{' or a terminating ';' (forward declaration).
      std::size_t j = i + 1;
      std::string name;
      while (j < n) {
        if (toks[j].kind == TokenKind::kPunct &&
            (toks[j].text == "{" || toks[j].text == ";")) {
          break;
        }
        if (name.empty() && toks[j].kind == TokenKind::kIdentifier &&
            toks[j].text != "final" && toks[j].text != "alignas") {
          name = toks[j].text;
        }
        ++j;
      }
      if (j < n && toks[j].text == "{" && m.match[j] != Matcher::npos) {
        scopes.push_back({name, m.match[j]});
        i = j + 1;
        continue;
      }
      i = j + 1;
      continue;
    }

    if (t.kind == TokenKind::kIdentifier && t.text == "enum") {
      std::size_t j = i + 1;
      while (j < n && toks[j].text != "{" && toks[j].text != ";") ++j;
      if (j < n && toks[j].text == "{" && m.match[j] != Matcher::npos) {
        i = m.match[j] + 1;
      } else {
        i = j + 1;
      }
      continue;
    }

    // Candidate function definition: declarator chain ending in ident '('.
    if (t.kind == TokenKind::kPunct && t.text == "(" &&
        m.match[i] != Matcher::npos && i > 0) {
      // Collect the declarator chain leftwards: ident (:: ident)* / ~ident /
      // operator<punct>.
      std::vector<std::string> chain;
      std::size_t k = i - 1;
      bool valid = false;
      if (toks[k].kind == TokenKind::kIdentifier) {
        valid = control_keywords().count(toks[k].text) == 0 &&
                !is_decl_keyword(toks[k].text);
      } else if (toks[k].kind == TokenKind::kPunct && k > 0 &&
                 toks[k - 1].kind == TokenKind::kIdentifier &&
                 toks[k - 1].text == "operator") {
        valid = true;
      }
      if (valid) {
        // Build the qualified declarator name.
        std::string declarator;
        if (toks[k].kind == TokenKind::kPunct) {
          declarator = "operator" + toks[k].text;
          k = (k >= 1) ? k - 1 : 0;
          if (k > 0) --k;  // move before 'operator'
        } else {
          declarator = toks[k].text;
          while (k >= 2 && toks[k - 1].kind == TokenKind::kPunct &&
                 toks[k - 1].text == "::" &&
                 toks[k - 2].kind == TokenKind::kIdentifier) {
            declarator = toks[k - 2].text + "::" + declarator;
            k -= 2;
          }
          if (k >= 1 && toks[k - 1].kind == TokenKind::kPunct &&
              toks[k - 1].text == "~") {
            declarator = "~" + declarator;
          }
        }

        // Scan after the parameter list for the body.
        const std::size_t params_close = m.match[i];
        std::size_t j = params_close + 1;
        bool is_definition = false;
        std::size_t body = 0;
        int angle = 0;
        while (j < n) {
          const Token& u = toks[j];
          if (u.kind == TokenKind::kPunct) {
            if (u.text == "<") ++angle;
            if (u.text == ">") angle = std::max(0, angle - 1);
            if (u.text == ";" || u.text == "=" || u.text == ",") break;
            if (u.text == "{" && angle == 0) {
              is_definition = true;
              body = j;
              break;
            }
            if (u.text == "(" && m.match[j] != Matcher::npos) {
              j = m.match[j] + 1;  // noexcept(...), attribute args
              continue;
            }
            if (u.text == ":") {
              // Constructor init list: items `name (args)` / `name {args}`
              // separated by commas; the body '{' follows the last item.
              ++j;
              bool found = false;
              while (j < n) {
                // skip to the item's '(' or '{'
                while (j < n && toks[j].text != "(" && toks[j].text != "{" &&
                       toks[j].text != ";") {
                  ++j;
                }
                if (j >= n || toks[j].text == ";") break;
                if (toks[j].text == "{") {
                  // Either a brace-init item or the body. An item's '}' is
                  // followed by ',' or '{'; the body's is not preceded by an
                  // identifier... disambiguate via the previous token: a
                  // brace-init follows an identifier or '>'.
                  const Token& prev = toks[j - 1];
                  const bool brace_init =
                      prev.kind == TokenKind::kIdentifier ||
                      prev.text == ">";
                  if (!brace_init) {
                    found = true;
                    body = j;
                    break;
                  }
                }
                if (m.match[j] == Matcher::npos) break;
                j = m.match[j] + 1;
                if (j < n && toks[j].text == ",") {
                  ++j;
                  continue;
                }
                if (j < n && toks[j].text == "{") {
                  found = true;
                  body = j;
                }
                break;
              }
              is_definition = found;
              break;
            }
            ++j;
            continue;
          }
          // identifiers: const, noexcept, override, final, trailing types
          ++j;
        }

        if (is_definition && body != 0 && m.match[body] != Matcher::npos) {
          FunctionInfo fn;
          fn.qualified_name = scope_prefix() + declarator;
          const std::size_t sep = declarator.rfind("::");
          fn.simple_name = (sep == std::string::npos)
                               ? declarator
                               : declarator.substr(sep + 2);
          fn.file = model.lexed.path;
          fn.line = t.line;
          fn.params_begin = i;
          fn.params_end = params_close + 1;
          fn.body_begin = body;
          fn.body_end = m.match[body];

          // Wire-byte parameters: std::span<const std::uint8_t> or
          // `const std::uint8_t*` / `const char*` buffers.
          std::size_t arg_start = i + 1;
          int inner = 0;
          for (std::size_t q = i + 1; q <= params_close; ++q) {
            const bool at_end = (q == params_close);
            const bool top_comma = !at_end && inner == 0 &&
                                   toks[q].kind == TokenKind::kPunct &&
                                   toks[q].text == ",";
            if (!at_end && !top_comma) {
              if (toks[q].kind == TokenKind::kPunct) {
                if (toks[q].text == "(" || toks[q].text == "[" ||
                    toks[q].text == "<") {
                  ++inner;
                }
                if (toks[q].text == ")" || toks[q].text == "]" ||
                    toks[q].text == ">") {
                  --inner;
                }
              }
              continue;
            }
            const bool span_bytes =
                range_contains(toks, arg_start, q, "span") &&
                (range_contains(toks, arg_start, q, "uint8_t") ||
                 range_contains(toks, arg_start, q, "byte"));
            bool ptr_bytes = false;
            if (!span_bytes &&
                (range_contains(toks, arg_start, q, "uint8_t") ||
                 range_contains(toks, arg_start, q, "char"))) {
              for (std::size_t w = arg_start; w < q; ++w) {
                if (toks[w].kind == TokenKind::kPunct &&
                    toks[w].text == "*") {
                  ptr_bytes = range_contains(toks, arg_start, q, "const");
                  break;
                }
              }
            }
            if (span_bytes || ptr_bytes) {
              const std::string pname = last_identifier(toks, arg_start, q);
              if (!pname.empty()) {
                fn.has_wire_param = true;
                fn.wire_params.push_back(pname);
              }
            }
            arg_start = q + 1;
          }

          scan_body(fn);
          model.functions.push_back(std::move(fn));
          i = m.match[body] + 1;
          continue;
        }
      }
    }

    ++i;
  }

  return model;
}

const FunctionInfo* enclosing_function(const FileModel& model,
                                       std::size_t ti) {
  const FunctionInfo* best = nullptr;
  for (const FunctionInfo& fn : model.functions) {
    if (fn.body_begin <= ti && ti <= fn.body_end) {
      if (best == nullptr || fn.body_begin > best->body_begin) best = &fn;
    }
  }
  return best;
}

}  // namespace datlint
