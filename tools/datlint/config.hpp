#pragma once

// datlint.yaml — configuration for the project-specific checks. The format
// is a small YAML subset (two levels of nesting, string scalars and `- item`
// lists) parsed by config.cpp so the tool stays dependency-free.

#include <map>
#include <string>
#include <vector>

namespace datlint {

struct Config {
  /// hot-path: functions whose bodies (and everything they reach through the
  /// static call graph) must stay free of allocation, mutex locks, and
  /// blocking calls. Names are suffix-matched against qualified names.
  std::vector<std::string> hot_roots;
  /// Callee names banned inside hot functions beyond the built-in
  /// allocation/lock set (blocking syscalls etc.).
  std::vector<std::string> hot_banned_calls;
  /// Callee names exempt even though they look like growth/alloc (e.g.
  /// arena-pooled acquire/release).
  std::vector<std::string> hot_allowed_calls;
  /// Hot functions may call DAT_LOG_* only behind a cached level gate; an
  /// identifier matching one of these prefixes within the preceding tokens
  /// counts as the gate (`log_debug`, `log_warn`, ...).
  std::vector<std::string> hot_log_gates;

  /// wire-decode: directories whose span/pointer-consuming functions must
  /// use the bounded helpers; helper functions themselves are exempt.
  std::vector<std::string> wire_paths;
  std::vector<std::string> wire_bounded_helpers;

  /// relaxed-atomics: paths and functions where relaxed loads may steer
  /// control flow (metrics/stat types, the log-level gate).
  std::vector<std::string> relaxed_approved_paths;
  std::vector<std::string> relaxed_approved_functions;

  /// lock-order: directories included in the static lock graph.
  std::vector<std::string> lock_paths;

  /// metrics-name: grammar prefix + calls whose first literal argument is a
  /// metric name contributed by a snapshot collector.
  std::string metrics_pattern = "dat_[a-z0-9]+(_[a-z0-9]+)+";
  std::vector<std::string> metrics_collector_calls;

  /// Checks disabled wholesale (fixture configs enable one at a time).
  std::vector<std::string> disabled_checks;
};

/// Parses the config file; exits with a message on I/O failure. Unknown
/// keys are ignored (forward compatibility).
Config load_config(const std::string& path);

/// True if `name` ends with `suffix` at a `::` boundary (or equals it).
bool suffix_match(const std::string& name, const std::string& suffix);

}  // namespace datlint
