#include "checks.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <regex>
#include <set>

namespace datlint {

namespace {

bool check_enabled(const Config& cfg, const std::string& check) {
  return std::find(cfg.disabled_checks.begin(), cfg.disabled_checks.end(),
                   check) == cfg.disabled_checks.end();
}

bool path_matches(const std::string& file,
                  const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (file.find(p) != std::string::npos) return true;
  }
  return false;
}

bool list_contains(const std::vector<std::string>& list,
                   const std::string& name) {
  return std::find(list.begin(), list.end(), name) != list.end();
}

/// Matches a call against an allow/ban entry: "push_back" matches any
/// callee of that name; "arena_.acquire" additionally requires the textual
/// qualifier chain to end with "arena_".
bool call_matches(const CallSite& c, const std::string& entry) {
  const std::size_t dot = entry.rfind('.');
  if (dot == std::string::npos) return c.callee == entry;
  const std::string want_callee = entry.substr(dot + 1);
  const std::string want_recv = entry.substr(0, dot);
  if (c.callee != want_callee) return false;
  return c.qualifier.size() >= want_recv.size() &&
         c.qualifier.compare(c.qualifier.size() - want_recv.size(),
                             want_recv.size(), want_recv) == 0;
}

/// Method names that, reached through `.`/`->`, are overwhelmingly STL
/// container / smart-pointer / atomic operations. Resolving them by simple
/// name to same-named project functions produces wild call edges
/// (`ring_.clear()` is not FlightRecorder::clear; `due.size()` is not
/// TimerWheel::size). Such calls stay opaque to interprocedural analysis —
/// the direct-call checks (growth, bans) still see them by name.
bool opaque_member_call(const CallSite& c) {
  static const std::set<std::string> kStlMethods = {
      "clear",    "empty",       "size",      "begin",     "end",
      "rbegin",   "rend",        "find",      "count",     "erase",
      "insert",   "emplace",     "emplace_back", "push_back", "pop_back",
      "front",    "back",        "data",      "at",        "swap",
      "reserve",  "resize",      "push",      "pop",       "top",
      "str",      "c_str",       "substr",    "append",    "length",
      "get",      "reset",       "release",   "load",      "store",
      "exchange", "fetch_add",   "fetch_sub", "contains",  "assign",
      "lower_bound", "upper_bound"};
  return c.member_call && kStlMethods.count(c.callee) > 0;
}

bool call_in_list(const CallSite& c, const std::vector<std::string>& list) {
  for (const std::string& e : list) {
    if (call_matches(c, e)) return true;
  }
  return false;
}

struct FunctionRef {
  const FileModel* file = nullptr;
  const FunctionInfo* fn = nullptr;
};

struct Index {
  std::vector<FunctionRef> all;
  std::map<std::string, std::vector<std::size_t>> by_simple;  // name -> idx
};

Index build_index(const std::vector<FileModel>& files) {
  Index ix;
  for (const FileModel& fm : files) {
    for (const FunctionInfo& fn : fm.functions) {
      ix.by_simple[fn.simple_name].push_back(ix.all.size());
      ix.all.push_back({&fm, &fn});
    }
  }
  return ix;
}

bool is_suppressed(const FileModel& fm, const std::string& check, int line) {
  const auto it = fm.allow_lines.find(check);
  return it != fm.allow_lines.end() && it->second.count(line) > 0;
}

void emit(std::vector<Diagnostic>& out, const FileModel& fm,
          const std::string& check, int line, const std::string& function,
          std::string message, std::string detail) {
  Diagnostic d;
  d.check = check;
  d.file = fm.lexed.path;
  d.line = line;
  d.function = function;
  d.message = std::move(message);
  d.detail = std::move(detail);
  d.suppressed = is_suppressed(fm, check, line);
  out.push_back(std::move(d));
}

// ------------------------------------------------------------- hot-path ----

void check_hot_path(const Index& ix, const Config& cfg,
                    std::vector<Diagnostic>& out) {
  static const std::vector<std::string> kAllocCalls = {
      "malloc", "calloc", "realloc", "free", "strdup", "aligned_alloc"};
  static const std::vector<std::string> kGrowthCalls = {
      "push_back", "emplace_back", "emplace", "insert",
      "resize",    "reserve",      "try_emplace"};

  // Seed set: configured roots plus `// datlint:hot`-annotated definitions.
  std::vector<std::size_t> work;
  std::map<std::size_t, std::string> via;  // function idx -> chain label
  for (std::size_t i = 0; i < ix.all.size(); ++i) {
    const FunctionInfo& fn = *ix.all[i].fn;
    bool is_root = false;
    for (const std::string& r : cfg.hot_roots) {
      if (suffix_match(fn.qualified_name, r)) is_root = true;
    }
    const auto hot_it = ix.all[i].file->allow_lines.find("__hot__");
    if (hot_it != ix.all[i].file->allow_lines.end() &&
        hot_it->second.count(fn.line) > 0) {
      is_root = true;
    }
    if (is_root) {
      via[i] = fn.qualified_name;
      work.push_back(i);
    }
  }

  // BFS over the static call graph. Callees matching allowed-calls are
  // vetted seams: neither flagged nor traversed.
  std::set<std::size_t> hot(work.begin(), work.end());
  std::deque<std::size_t> queue(work.begin(), work.end());
  while (!queue.empty()) {
    const std::size_t cur = queue.front();
    queue.pop_front();
    const FunctionInfo& fn = *ix.all[cur].fn;
    for (const CallSite& c : fn.calls) {
      if (call_in_list(c, cfg.hot_allowed_calls)) continue;
      if (opaque_member_call(c)) continue;
      const auto it = ix.by_simple.find(c.callee);
      if (it == ix.by_simple.end()) continue;
      for (const std::size_t callee_ix : it->second) {
        if (callee_ix == cur || hot.count(callee_ix) > 0) continue;
        hot.insert(callee_ix);
        via[callee_ix] =
            via[cur] + " -> " + ix.all[callee_ix].fn->qualified_name;
        queue.push_back(callee_ix);
      }
    }
  }

  for (const std::size_t i : hot) {
    const FunctionInfo& fn = *ix.all[i].fn;
    const FileModel& fm = *ix.all[i].file;
    const std::string& chain = via[i];

    for (const CallSite& c : fn.calls) {
      if (call_in_list(c, cfg.hot_allowed_calls)) continue;
      std::string what;
      if (c.callee == "new") {
        what = "heap allocation (`new`)";
      } else if (list_contains(kAllocCalls, c.callee)) {
        what = "heap allocation (`" + c.callee + "`)";
      } else if (list_contains(kGrowthCalls, c.callee)) {
        what = "container growth (`" +
               (c.qualifier.empty() ? c.callee
                                    : c.qualifier + "." + c.callee) +
               "`)";
      } else if (call_in_list(c, cfg.hot_banned_calls)) {
        what = "blocking/banned call (`" + c.callee + "`)";
      } else if (c.callee.rfind("DAT_LOG", 0) == 0) {
        // Logging in a hot body must sit behind a cached level gate: one of
        // the configured gate identifiers within the preceding tokens.
        bool gated = false;
        const auto& toks = fm.lexed.tokens;
        const std::size_t lo =
            c.token_index > 16 ? c.token_index - 16 : fn.body_begin;
        for (std::size_t t = lo; t < c.token_index && !gated; ++t) {
          if (toks[t].kind != TokenKind::kIdentifier) continue;
          for (const std::string& g : cfg.hot_log_gates) {
            if (toks[t].text.find(g) != std::string::npos) gated = true;
          }
        }
        if (!gated) {
          emit(out, fm, "hot-path", c.line, fn.qualified_name,
               "ungated " + c.callee +
                   " in hot path (wrap in a cached log-level gate) [via " +
                   chain + "]",
               "log:" + c.callee);
        }
        continue;
      }
      if (!what.empty()) {
        emit(out, fm, "hot-path", c.line, fn.qualified_name,
             what + " in reactor hot path [via " + chain + "]",
             "call:" + c.callee);
      }
    }

    for (const LockAcquisition& l : fn.locks) {
      emit(out, fm, "hot-path", l.line, fn.qualified_name,
           "mutex acquisition (`" + l.lock_expr + "`) in reactor hot path "
           "[via " + chain + "]",
           "lock:" + l.lock_expr);
    }
  }
}

// ----------------------------------------------------------- wire-decode ---

void check_wire_decode(const std::vector<FileModel>& files, const Config& cfg,
                       std::vector<Diagnostic>& out) {
  for (const FileModel& fm : files) {
    if (!path_matches(fm.lexed.path, cfg.wire_paths)) continue;
    const auto& toks = fm.lexed.tokens;
    for (const FunctionInfo& fn : fm.functions) {
      if (!fn.has_wire_param) continue;
      bool helper = false;
      for (const std::string& h : cfg.wire_bounded_helpers) {
        if (suffix_match(fn.qualified_name, h)) helper = true;
      }
      if (helper) continue;

      const auto mentions_wire_param = [&](std::size_t b, std::size_t e) {
        for (std::size_t t = b; t < e && t < toks.size(); ++t) {
          if (toks[t].kind == TokenKind::kIdentifier &&
              list_contains(fn.wire_params, toks[t].text)) {
            return true;
          }
        }
        return false;
      };

      // Raw memcpy/memmove where an argument involves the wire buffer, and
      // direct Message::decode (the throwing path) instead of try_decode.
      for (const CallSite& c : fn.calls) {
        if (c.callee == "memcpy" || c.callee == "memmove") {
          // Argument window: scan forward to the end of the call's line
          // worth of tokens (the matcher is not retained here; a bounded
          // window is enough for an argument list).
          const std::size_t end =
              std::min(c.token_index + 40, toks.size());
          if (mentions_wire_param(c.token_index, end)) {
            emit(out, fm, "wire-decode", c.line, fn.qualified_name,
                 "raw " + c.callee +
                     " on wire bytes — use Message::try_decode / the "
                     "bounds-checked Reader",
                 "call:" + c.callee);
          }
        } else if (c.callee == "decode" && !c.qualifier.empty() &&
                   c.qualifier.find("Message") != std::string::npos) {
          emit(out, fm, "wire-decode", c.line, fn.qualified_name,
               "throwing Message::decode on a transport path — use "
               "Message::try_decode",
               "call:decode");
        }
      }

      // reinterpret_cast of the wire buffer, and non-literal index
      // arithmetic / pointer arithmetic on a wire parameter.
      for (std::size_t t = fn.body_begin; t < fn.body_end; ++t) {
        const Token& tok = toks[t];
        if (tok.kind != TokenKind::kIdentifier) continue;
        if (tok.text == "reinterpret_cast") {
          // reinterpret_cast < T > ( expr ) — flag when expr names a wire
          // parameter.
          std::size_t p = t;
          while (p < fn.body_end && toks[p].text != "(") ++p;
          const std::size_t end = std::min(p + 12, toks.size());
          if (mentions_wire_param(p, end)) {
            emit(out, fm, "wire-decode", tok.line, fn.qualified_name,
                 "reinterpret_cast on wire bytes — decode through the "
                 "bounds-checked Reader",
                 "cast:reinterpret");
          }
          continue;
        }
        if (!list_contains(fn.wire_params, tok.text)) continue;
        // param [ expr ] with a non-literal expr.
        if (t + 1 < fn.body_end && toks[t + 1].text == "[") {
          const bool literal_index =
              t + 3 < fn.body_end &&
              toks[t + 2].kind == TokenKind::kNumber &&
              toks[t + 3].text == "]";
          if (!literal_index) {
            emit(out, fm, "wire-decode", tok.line, fn.qualified_name,
                 "index arithmetic on wire buffer `" + tok.text +
                     "` — use the bounds-checked Reader",
                 "index:" + tok.text);
          }
        }
        // param .data() + ...  /  param + n pointer arithmetic.
        if (t + 1 < fn.body_end && toks[t + 1].kind == TokenKind::kPunct &&
            toks[t + 1].text == "+") {
          emit(out, fm, "wire-decode", tok.line, fn.qualified_name,
               "pointer arithmetic on wire buffer `" + tok.text +
                   "` — use the bounds-checked Reader",
               "arith:" + tok.text);
        }
        if (t + 5 < fn.body_end && toks[t + 1].text == "." &&
            toks[t + 2].text == "data" && toks[t + 3].text == "(" &&
            toks[t + 4].text == ")" && toks[t + 5].text == "+") {
          emit(out, fm, "wire-decode", tok.line, fn.qualified_name,
               "pointer arithmetic on wire buffer `" + tok.text +
                   ".data()` — use the bounds-checked Reader",
               "arith:" + tok.text);
        }
      }
    }
  }
}

// ------------------------------------------------------- relaxed-atomics ---

void check_relaxed_atomics(const std::vector<FileModel>& files,
                           const Config& cfg, std::vector<Diagnostic>& out) {
  for (const FileModel& fm : files) {
    if (path_matches(fm.lexed.path, cfg.relaxed_approved_paths)) continue;
    const auto& toks = fm.lexed.tokens;
    for (std::size_t t = 0; t < toks.size(); ++t) {
      if (toks[t].kind != TokenKind::kIdentifier ||
          toks[t].text != "memory_order_relaxed") {
        continue;
      }
      // Must be an argument of .load( ... ): walk back to the nearest
      // unmatched '(' and require the preceding identifier to be `load`.
      int depth = 0;
      std::size_t open = 0;
      bool found_open = false;
      for (std::size_t k = t; k-- > 0;) {
        if (toks[k].kind != TokenKind::kPunct) continue;
        if (toks[k].text == ")") ++depth;
        if (toks[k].text == "(") {
          if (depth == 0) {
            open = k;
            found_open = true;
            break;
          }
          --depth;
        }
      }
      if (!found_open || open == 0) continue;
      if (toks[open - 1].kind != TokenKind::kIdentifier ||
          toks[open - 1].text != "load") {
        continue;
      }
      // Control-flow context: any enclosing unmatched '(' preceded by
      // if / while / for.
      bool control = false;
      depth = 0;
      for (std::size_t k = open; k-- > 0;) {
        if (toks[k].kind == TokenKind::kPunct) {
          if (toks[k].text == ")") ++depth;
          if (toks[k].text == "(") {
            if (depth == 0) {
              if (k > 0 && toks[k - 1].kind == TokenKind::kIdentifier &&
                  (toks[k - 1].text == "if" || toks[k - 1].text == "while" ||
                   toks[k - 1].text == "for")) {
                control = true;
              }
              // keep walking outwards
              continue;
            }
            --depth;
          }
          if (toks[k].text == ";" || toks[k].text == "{") break;
        }
      }
      if (!control) continue;

      const FunctionInfo* fn = enclosing_function(fm, t);
      bool approved = false;
      if (fn != nullptr) {
        for (const std::string& a : cfg.relaxed_approved_functions) {
          if (suffix_match(fn->qualified_name, a)) approved = true;
        }
      }
      if (approved) continue;
      emit(out, fm, "relaxed-atomics", toks[t].line,
           fn != nullptr ? fn->qualified_name : "",
           "relaxed atomic load steering control flow — use acquire (or an "
           "approved stat type)",
           "relaxed-load");
    }
  }
}

// ------------------------------------------------------------ lock-order ---

void check_lock_order(const std::vector<FileModel>& files, const Index& ix,
                      const Config& cfg, std::vector<Diagnostic>& out) {
  // Normalized lock node: ClassPrefix::last_identifier(lock_expr).
  const auto lock_node = [](const FunctionInfo& fn,
                            const LockAcquisition& l) {
    std::string expr = l.lock_expr;
    const std::size_t arrow = expr.rfind("->");
    const std::size_t dot = expr.rfind('.');
    std::size_t cut = std::string::npos;
    if (arrow != std::string::npos) cut = arrow + 2;
    if (dot != std::string::npos && (cut == std::string::npos || dot + 1 > cut))
      cut = dot + 1;
    const std::string member =
        cut == std::string::npos ? expr : expr.substr(cut);
    const std::size_t sep = fn.qualified_name.rfind("::");
    const std::string cls =
        sep == std::string::npos ? "" : fn.qualified_name.substr(0, sep);
    return cls.empty() ? member : cls + "::" + member;
  };

  struct Acq {
    std::string node;
    const FunctionInfo* fn;
    const FileModel* fm;
    const LockAcquisition* lock;
  };

  // Per-function acquisition lists (lock_paths only).
  std::map<const FunctionInfo*, std::vector<Acq>> acqs;
  std::map<const FunctionInfo*, const FileModel*> file_of;
  for (const FileModel& fm : files) {
    if (!path_matches(fm.lexed.path, cfg.lock_paths)) continue;
    for (const FunctionInfo& fn : fm.functions) {
      file_of[&fn] = &fm;
      for (const LockAcquisition& l : fn.locks) {
        acqs[&fn].push_back({lock_node(fn, l), &fn, &fm, &l});
      }
    }
  }

  // Closure: locks eventually acquired by calling a function (depth-capped).
  std::map<const FunctionInfo*, std::set<std::string>> eventually;
  std::function<void(const FunctionInfo*, std::set<const FunctionInfo*>&)>
      collect = [&](const FunctionInfo* fn,
                    std::set<const FunctionInfo*>& seen) {
        if (!seen.insert(fn).second) return;
        for (const auto& a : acqs[fn]) eventually[fn].insert(a.node);
        for (const CallSite& c : fn->calls) {
          if (opaque_member_call(c)) continue;
          const auto it = ix.by_simple.find(c.callee);
          if (it == ix.by_simple.end()) continue;
          for (const std::size_t callee_ix : it->second) {
            const FunctionInfo* callee = ix.all[callee_ix].fn;
            if (file_of.count(callee) == 0) continue;
            collect(callee, seen);
            eventually[fn].insert(eventually[callee].begin(),
                                  eventually[callee].end());
          }
        }
      };
  for (const auto& [fn, list] : acqs) {
    std::set<const FunctionInfo*> seen;
    collect(fn, seen);
  }

  // Edges held -> acquired. A guard's scope runs to the end of its
  // enclosing block; re-derive block extents from the token stream.
  struct Edge {
    std::string from, to;
    const FileModel* fm;
    int line;
    std::string via;
  };
  std::vector<Edge> edges;
  std::map<std::string, std::set<std::string>> graph;

  for (const auto& [fn, list] : acqs) {
    const FileModel& fm = *file_of[fn];
    const auto& toks = fm.lexed.tokens;
    for (const Acq& held : list) {
      // Scope end: the '}' closing the innermost block open at the guard.
      std::size_t scope_end = fn->body_end;
      int depth = 0;
      for (std::size_t t = held.lock->token_index; t < fn->body_end; ++t) {
        if (toks[t].kind != TokenKind::kPunct) continue;
        if (toks[t].text == "{") ++depth;
        if (toks[t].text == "}") {
          if (depth == 0) {
            scope_end = t;
            break;
          }
          --depth;
        }
      }
      // Later acquisitions inside the scope.
      for (const Acq& later : list) {
        if (later.lock->token_index <= held.lock->token_index) continue;
        if (later.lock->token_index > scope_end) continue;
        graph[held.node].insert(later.node);
        edges.push_back({held.node, later.node, &fm, later.lock->line,
                         fn->qualified_name});
      }
      // Calls inside the scope that eventually acquire locks.
      for (const CallSite& c : fn->calls) {
        if (c.token_index <= held.lock->token_index ||
            c.token_index > scope_end) {
          continue;
        }
        if (opaque_member_call(c)) continue;
        const auto it = ix.by_simple.find(c.callee);
        if (it == ix.by_simple.end()) continue;
        for (const std::size_t callee_ix : it->second) {
          const FunctionInfo* callee = ix.all[callee_ix].fn;
          if (file_of.count(callee) == 0) continue;
          // node == held.node means the same lock is re-acquired through a
          // call while held — a self-cycle, i.e. deadlock on a
          // non-recursive mutex.
          for (const std::string& node : eventually[callee]) {
            graph[held.node].insert(node);
            edges.push_back({held.node, node, &fm, c.line,
                             fn->qualified_name + " -> " +
                                 callee->qualified_name});
          }
        }
      }
    }
  }

  // Cycle detection (DFS, colored).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> cycles;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const std::string& v : graph[u]) {
      if (color[v] == 1) {
        std::vector<std::string> cyc;
        auto it = std::find(stack.begin(), stack.end(), v);
        for (; it != stack.end(); ++it) cyc.push_back(*it);
        cyc.push_back(v);
        cycles.push_back(std::move(cyc));
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [node, _] : graph) {
    if (color[node] == 0) dfs(node);
  }

  for (const auto& cyc : cycles) {
    std::string path;
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      if (i != 0) path += " -> ";
      path += cyc[i];
    }
    // Anchor the diagnostic at an edge participating in the cycle.
    for (const Edge& e : edges) {
      const auto pos = std::find(cyc.begin(), cyc.end(), e.from);
      if (pos != cyc.end() && pos + 1 != cyc.end() && *(pos + 1) == e.to) {
        emit(out, *e.fm, "lock-order", e.line, e.via,
             "lock-order cycle: " + path, "cycle:" + path);
        break;
      }
    }
  }
}

// ---------------------------------------------------------- metrics-name ---

void check_metrics_name(const std::vector<FileModel>& files,
                        const Config& cfg, std::vector<Diagnostic>& out) {
  const std::regex grammar(cfg.metrics_pattern);
  struct Seen {
    std::string instrument;
    std::string file;
    int line;
  };
  std::map<std::string, Seen> registry;

  for (const FileModel& fm : files) {
    for (const MetricLiteral& ml : fm.metric_literals) {
      if (!std::regex_match(ml.name, grammar)) {
        emit(out, fm, "metrics-name", ml.line, "",
             "metric name `" + ml.name +
                 "` violates the dat_<subsystem>_<name> grammar (" +
                 cfg.metrics_pattern + ")",
             "grammar:" + ml.name);
        continue;
      }
      const auto it = registry.find(ml.name);
      if (it == registry.end()) {
        registry[ml.name] = {ml.instrument, fm.lexed.path, ml.line};
      } else if (it->second.instrument != ml.instrument) {
        emit(out, fm, "metrics-name", ml.line, "",
             "metric name `" + ml.name + "` registered as " + ml.instrument +
                 " here but as " + it->second.instrument + " at " +
                 it->second.file + ":" + std::to_string(it->second.line),
             "conflict:" + ml.name);
      }
    }
  }
}

}  // namespace

std::string baseline_key(const Diagnostic& d) {
  return d.check + "|" + d.file + "|" + d.function + "|" + d.detail;
}

std::vector<Diagnostic> run_checks(const std::vector<FileModel>& files,
                                   const Config& cfg) {
  std::vector<Diagnostic> out;
  const Index ix = build_index(files);
  if (check_enabled(cfg, "hot-path")) check_hot_path(ix, cfg, out);
  if (check_enabled(cfg, "wire-decode")) check_wire_decode(files, cfg, out);
  if (check_enabled(cfg, "relaxed-atomics"))
    check_relaxed_atomics(files, cfg, out);
  if (check_enabled(cfg, "lock-order")) check_lock_order(files, ix, cfg, out);
  if (check_enabled(cfg, "metrics-name")) check_metrics_name(files, cfg, out);

  std::sort(out.begin(), out.end(), [](const Diagnostic& a,
                                       const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.check < b.check;
  });
  return out;
}

}  // namespace datlint
