// datlint — project-specific static analysis for the DAT codebase.
//
// Checks (see tools/datlint/datlint.yaml and CONTRIBUTING.md):
//   hot-path         no allocation / container growth / mutex locks /
//                    blocking calls / ungated logging reachable from the
//                    netio reactor's receive-send-timer bodies
//   wire-decode      wire-byte-consuming functions go through the hardened
//                    Message::try_decode / Reader helpers — no raw memcpy,
//                    index arithmetic or reinterpret_cast on frame buffers
//   relaxed-atomics  no memory_order_relaxed load steering control flow
//                    outside the approved metrics/stat types
//   lock-order       the static mutex-acquisition graph across src/netio,
//                    src/net, src/obs stays cycle-free
//   metrics-name     every registered instrument literal matches the
//                    dat_<subsystem>_<name> grammar, one instrument kind
//                    per name
//
// Findings are suppressed inline with `// datlint:allow(<check>): reason`
// (same line or the line above) or recorded in the committed baseline
// (tools/datlint/baseline.txt) for intentional exceptions. Exit status is
// non-zero iff un-suppressed, un-baselined findings remain.
//
// Fixture mode (`--verify file...`) mirrors clang's -verify: fixtures carry
// `// expect-diagnostic(<check>): <substring>` comments (or
// `// expect-clean`), and the tool fails on any mismatch in either
// direction. See tests/datlint/.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "config.hpp"
#include "lexer.hpp"
#include "model.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  std::string config_path;
  std::string baseline_path;
  std::string root;
  bool write_baseline = false;
  bool verify = false;
  bool verbose = false;
  std::vector<std::string> paths;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: datlint [--config datlint.yaml] [--baseline baseline.txt]\n"
      "               [--root DIR] [--write-baseline] [--verify]\n"
      "               [--verbose] path...\n"
      "\n"
      "Paths may be files or directories (recursed for .cpp/.hpp/.cc/.h).\n"
      "--verify runs fixture mode: expectations come from\n"
      "  // expect-diagnostic(<check>): <substring>   and\n"
      "  // expect-clean\n"
      "comments inside the given files.\n");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "datlint: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
         ext == ".cxx" || ext == ".hh";
}

std::vector<std::string> collect_files(const std::vector<std::string>& paths) {
  std::vector<std::string> out;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && is_source_file(it->path())) {
          out.push_back(it->path().string());
        }
      }
    } else {
      out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Makes `path` relative to `root` when it lies underneath it, so baseline
/// keys and diagnostics are machine-independent.
std::string relativize(const std::string& path, const std::string& root) {
  if (root.empty()) return path;
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) return path;
  const std::string s = rel.string();
  if (s.rfind("..", 0) == 0) return path;
  return s;
}

// ------------------------------------------------------------- baseline ----

std::set<std::string> load_baseline(const std::string& path) {
  std::set<std::string> keys;
  std::ifstream in(path);
  if (!in) return keys;  // a missing baseline means "no exceptions"
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return keys;
}

// ---------------------------------------------------------- verify mode ----

struct Expectation {
  std::string check;
  std::string substring;
  std::string file;
  int line = 0;
  bool matched = false;
};

void parse_expectations(const datlint::FileModel& fm,
                        std::vector<Expectation>& expectations,
                        std::set<std::string>& clean_files) {
  for (const datlint::Comment& cm : fm.lexed.comments) {
    if (cm.text.find("expect-clean") != std::string::npos) {
      clean_files.insert(fm.lexed.path);
    }
    std::size_t pos = 0;
    while ((pos = cm.text.find("expect-diagnostic(", pos)) !=
           std::string::npos) {
      const std::size_t open = pos + std::strlen("expect-diagnostic(");
      const std::size_t close = cm.text.find(')', open);
      if (close == std::string::npos) break;
      Expectation e;
      e.check = cm.text.substr(open, close - open);
      std::size_t after = close + 1;
      if (after < cm.text.size() && cm.text[after] == ':') {
        ++after;
        while (after < cm.text.size() && cm.text[after] == ' ') ++after;
        e.substring = cm.text.substr(after);
        while (!e.substring.empty() &&
               (e.substring.back() == ' ' || e.substring.back() == '\r')) {
          e.substring.pop_back();
        }
      }
      e.file = fm.lexed.path;
      e.line = cm.line;
      expectations.push_back(std::move(e));
      pos = close;
    }
  }
}

int run_verify(const std::vector<datlint::FileModel>& models,
               std::vector<datlint::Diagnostic> diags) {
  std::vector<Expectation> expectations;
  std::set<std::string> clean_files;
  for (const auto& fm : models) {
    parse_expectations(fm, expectations, clean_files);
  }

  int failures = 0;

  // Active (un-suppressed) findings must each match one expectation.
  for (const datlint::Diagnostic& d : diags) {
    if (d.suppressed) continue;
    bool matched = false;
    for (Expectation& e : expectations) {
      if (e.matched || e.check != d.check || e.file != d.file) continue;
      if (!e.substring.empty() &&
          d.message.find(e.substring) == std::string::npos) {
        continue;
      }
      e.matched = true;
      matched = true;
      break;
    }
    if (!matched) {
      if (clean_files.count(d.file) > 0) {
        std::fprintf(stderr,
                     "verify: %s:%d: unexpected diagnostic in expect-clean "
                     "file: [%s] %s\n",
                     d.file.c_str(), d.line, d.check.c_str(),
                     d.message.c_str());
      } else {
        std::fprintf(stderr, "verify: %s:%d: unexpected diagnostic: [%s] %s\n",
                     d.file.c_str(), d.line, d.check.c_str(),
                     d.message.c_str());
      }
      ++failures;
    }
  }
  for (const Expectation& e : expectations) {
    if (!e.matched) {
      std::fprintf(stderr,
                   "verify: %s:%d: expected diagnostic never emitted: "
                   "[%s] ...%s...\n",
                   e.file.c_str(), e.line, e.check.c_str(),
                   e.substring.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("datlint --verify: %zu expectation(s) satisfied, no "
                "unexpected diagnostics\n",
                expectations.size());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "datlint: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--config") opt.config_path = need_value("--config");
    else if (a == "--baseline") opt.baseline_path = need_value("--baseline");
    else if (a == "--root") opt.root = need_value("--root");
    else if (a == "--write-baseline") opt.write_baseline = true;
    else if (a == "--verify") opt.verify = true;
    else if (a == "--verbose") opt.verbose = true;
    else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "datlint: unknown flag %s\n", a.c_str());
      usage();
      return 2;
    } else {
      opt.paths.push_back(a);
    }
  }
  if (opt.paths.empty()) {
    usage();
    return 2;
  }

  datlint::Config cfg;
  if (!opt.config_path.empty()) cfg = datlint::load_config(opt.config_path);

  const std::vector<std::string> files = collect_files(opt.paths);
  if (files.empty()) {
    std::fprintf(stderr, "datlint: no source files found\n");
    return 2;
  }

  std::vector<datlint::FileModel> models;
  models.reserve(files.size());
  for (const std::string& f : files) {
    datlint::LexedFile lexed =
        datlint::lex_file(relativize(f, opt.root), read_file(f));
    models.push_back(
        datlint::build_model(std::move(lexed), cfg.metrics_collector_calls));
  }

  std::vector<datlint::Diagnostic> diags = datlint::run_checks(models, cfg);

  if (opt.verify) return run_verify(models, std::move(diags));

  if (opt.write_baseline) {
    if (opt.baseline_path.empty()) {
      std::fprintf(stderr, "datlint: --write-baseline requires --baseline\n");
      return 2;
    }
    std::ofstream out(opt.baseline_path);
    out << "# datlint baseline — intentional exceptions, one key per line:\n"
           "#   check|file|function|detail\n"
           "# Regenerate with:  datlint --config ... --baseline this-file "
           "--write-baseline <paths>\n"
           "# Prefer inline `// datlint:allow(check): reason` for new code; "
           "baseline entries\n"
           "# are for pre-existing, reviewed exceptions.\n";
    std::set<std::string> keys;
    for (const datlint::Diagnostic& d : diags) {
      if (!d.suppressed) keys.insert(datlint::baseline_key(d));
    }
    for (const std::string& k : keys) out << k << "\n";
    std::printf("datlint: wrote %zu baseline entr%s to %s\n", keys.size(),
                keys.size() == 1 ? "y" : "ies", opt.baseline_path.c_str());
    return 0;
  }

  const std::set<std::string> baseline = load_baseline(opt.baseline_path);
  std::size_t active = 0;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  for (const datlint::Diagnostic& d : diags) {
    if (d.suppressed) {
      ++suppressed;
      if (opt.verbose) {
        std::printf("%s:%d: suppressed [%s] %s\n", d.file.c_str(), d.line,
                    d.check.c_str(), d.message.c_str());
      }
      continue;
    }
    if (baseline.count(datlint::baseline_key(d)) > 0) {
      ++baselined;
      if (opt.verbose) {
        std::printf("%s:%d: baselined [%s] %s\n", d.file.c_str(), d.line,
                    d.check.c_str(), d.message.c_str());
      }
      continue;
    }
    ++active;
    std::printf("%s:%d: error: [%s] %s\n", d.file.c_str(), d.line,
                d.check.c_str(), d.message.c_str());
    if (opt.verbose) {
      std::printf("    baseline key: %s\n",
                  datlint::baseline_key(d).c_str());
    }
  }

  std::printf(
      "datlint: %zu file(s), %zu finding(s): %zu active, %zu baselined, "
      "%zu suppressed\n",
      files.size(), diags.size(), active, baselined, suppressed);
  return active == 0 ? 0 : 1;
}
