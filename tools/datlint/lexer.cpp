#include "lexer.hpp"

#include <cctype>

namespace datlint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators that checks care about being fused. Longest
/// match first within each leading character.
bool fuse_punct(const std::string& src, std::size_t i, std::string& out) {
  const auto starts = [&](const char* p) {
    return src.compare(i, std::char_traits<char>::length(p), p) == 0;
  };
  static const char* kThree[] = {"<=>", "->*", "...", "<<=", ">>="};
  static const char* kTwo[] = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=",
                               "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
                               "%=", "&=", "|=", "^=", ".*"};
  for (const char* p : kThree) {
    if (starts(p)) {
      out = p;
      return true;
    }
  }
  for (const char* p : kTwo) {
    if (starts(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

}  // namespace

LexedFile lex_file(const std::string& path, const std::string& source) {
  LexedFile out;
  out.path = path;
  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  const auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  const auto push = [&](TokenKind kind, std::string text, int tline,
                        int tcol) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tline;
    t.col = tcol;
    out.tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = source[i];
    const int tline = line;
    const int tcol = col;

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && source[j] != '\n') ++j;
      Comment cm;
      cm.text = source.substr(i + 2, j - (i + 2));
      cm.line = tline;
      cm.end_line = tline;
      out.comments.push_back(std::move(cm));
      advance(j - i);
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) ++j;
      const std::size_t close = (j + 1 < n) ? j + 2 : n;
      Comment cm;
      cm.text = source.substr(i + 2, j - (i + 2));
      cm.line = tline;
      advance(close - i);
      cm.end_line = line;
      out.comments.push_back(std::move(cm));
      continue;
    }

    // Preprocessor directive: skip to end of line, honouring continuations.
    // Only when '#' opens a line (modulo whitespace) — otherwise it is a
    // stray punctuator.
    if (c == '#' && (out.tokens.empty() || col == 1 ||
                     source.find_last_not_of(" \t", i - 1) == std::string::npos ||
                     source[source.find_last_not_of(" \t", i - 1)] == '\n')) {
      std::size_t j = i;
      while (j < n) {
        if (source[j] == '\n') {
          // Continuation?
          std::size_t back = j;
          while (back > i && (source[back - 1] == '\r')) --back;
          if (back > i && source[back - 1] == '\\') {
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      advance(j - i);
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && source[j] != '(' && delim.size() < 16) {
        delim.push_back(source[j]);
        ++j;
      }
      if (j < n && source[j] == '(') {
        const std::string closer = ")" + delim + "\"";
        const std::size_t body_start = j + 1;
        const std::size_t end = source.find(closer, body_start);
        const std::size_t body_end = (end == std::string::npos) ? n : end;
        push(TokenKind::kString,
             source.substr(body_start, body_end - body_start), tline, tcol);
        const std::size_t after =
            (end == std::string::npos) ? n : end + closer.size();
        advance(after - i);
        continue;
      }
      // Not actually a raw string ("R" identifier handled below).
    }

    // String / char literal (with escapes).
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string text;
      std::size_t j = i + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) {
          text.push_back(source[j]);
          text.push_back(source[j + 1]);
          j += 2;
        } else if (source[j] == '\n') {
          break;  // unterminated; close at end of line
        } else {
          text.push_back(source[j]);
          ++j;
        }
      }
      const std::size_t after = (j < n && source[j] == quote) ? j + 1 : j;
      push(quote == '"' ? TokenKind::kString : TokenKind::kChar,
           std::move(text), tline, tcol);
      advance(after - i);
      continue;
    }

    // Identifier / keyword.
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(source[j])) ++j;
      push(TokenKind::kIdentifier, source.substr(i, j - i), tline, tcol);
      advance(j - i);
      continue;
    }

    // Number (decimal, hex, binary, floats, digit separators, suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])) != 0)) {
      std::size_t j = i + 1;
      while (j < n && (is_ident_char(source[j]) || source[j] == '.' ||
                       source[j] == '\'' ||
                       ((source[j] == '+' || source[j] == '-') &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                         source[j - 1] == 'p' || source[j - 1] == 'P')))) {
        ++j;
      }
      push(TokenKind::kNumber, source.substr(i, j - i), tline, tcol);
      advance(j - i);
      continue;
    }

    // Punctuator.
    std::string fused;
    if (fuse_punct(source, i, fused)) {
      push(TokenKind::kPunct, fused, tline, tcol);
      advance(fused.size());
    } else {
      push(TokenKind::kPunct, std::string(1, c), tline, tcol);
      advance(1);
    }
  }

  return out;
}

}  // namespace datlint
