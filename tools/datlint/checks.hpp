#pragma once

// The five datlint checks, run over the whole set of analyzed files at once
// (hot-path reachability and the lock graph are cross-file properties).

#include <string>
#include <vector>

#include "config.hpp"
#include "model.hpp"

namespace datlint {

struct Diagnostic {
  std::string check;     // "hot-path" | "wire-decode" | "relaxed-atomics" |
                         // "lock-order" | "metrics-name"
  std::string file;      // as analyzed (relative when --root is given)
  int line = 0;
  std::string function;  // enclosing function, may be empty
  std::string message;   // human-readable, includes the via-chain for hot-path
  std::string detail;    // stable slug used as the baseline key component
  bool suppressed = false;  // hit a `// datlint:allow(check)` comment
};

/// Baseline key: line numbers are deliberately excluded so the baseline
/// survives unrelated edits to the same file.
std::string baseline_key(const Diagnostic& d);

std::vector<Diagnostic> run_checks(const std::vector<FileModel>& files,
                                   const Config& cfg);

}  // namespace datlint
