#include "config.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace datlint {

namespace {

std::string trim(std::string s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.erase(0, 1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.pop_back();
  }
  return s;
}

std::string unquote(std::string s) {
  if (s.size() >= 2 && ((s.front() == '"' && s.back() == '"') ||
                        (s.front() == '\'' && s.back() == '\''))) {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

}  // namespace

bool suffix_match(const std::string& name, const std::string& suffix) {
  if (suffix.empty()) return false;
  if (name == suffix) return true;
  if (name.size() > suffix.size() + 2 &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0 &&
      name.compare(name.size() - suffix.size() - 2, 2, "::") == 0) {
    return true;
  }
  return false;
}

Config load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "datlint: cannot open config %s\n", path.c_str());
    std::exit(2);
  }
  Config cfg;
  std::string section;  // top-level key (check name or top-level list)
  std::string subkey;   // second-level key inside a section

  const auto store = [&](const std::string& raw) {
    const std::string v = unquote(raw);
    if (v.empty()) return;
    if (section == "disabled-checks") {
      cfg.disabled_checks.push_back(v);
      return;
    }
    const std::string key = section + "." + subkey;
    if (key == "hot-path.roots") cfg.hot_roots.push_back(v);
    else if (key == "hot-path.banned-calls") cfg.hot_banned_calls.push_back(v);
    else if (key == "hot-path.allowed-calls") cfg.hot_allowed_calls.push_back(v);
    else if (key == "hot-path.log-gates") cfg.hot_log_gates.push_back(v);
    else if (key == "wire-decode.paths") cfg.wire_paths.push_back(v);
    else if (key == "wire-decode.bounded-helpers") cfg.wire_bounded_helpers.push_back(v);
    else if (key == "relaxed-atomics.approved-paths") cfg.relaxed_approved_paths.push_back(v);
    else if (key == "relaxed-atomics.approved-functions") cfg.relaxed_approved_functions.push_back(v);
    else if (key == "lock-order.paths") cfg.lock_paths.push_back(v);
    else if (key == "metrics-name.pattern") cfg.metrics_pattern = v;
    else if (key == "metrics-name.collector-calls") cfg.metrics_collector_calls.push_back(v);
    // unknown keys: ignored (forward compatibility)
  };

  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (trim(line).empty()) continue;

    const std::size_t indent = line.find_first_not_of(' ');
    const std::string body = trim(line);

    if (body.rfind("-", 0) == 0) {
      store(trim(body.substr(1)));
      continue;
    }
    const std::size_t colon = body.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = trim(body.substr(0, colon));
    const std::string value = trim(body.substr(colon + 1));
    if (indent == 0 || indent == std::string::npos) {
      section = key;
      subkey.clear();
      if (!value.empty() && section == "metrics-name") {
        cfg.metrics_pattern = unquote(value);
      }
    } else {
      subkey = key;
      if (!value.empty()) store(value);
    }
  }
  return cfg;
}

}  // namespace datlint
