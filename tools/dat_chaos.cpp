// dat_chaos: deterministic chaos campaigns against a simulated DAT cluster.
//
// Runs a scripted fault timeline (crash, graceful leave, restart/rejoin,
// loss bursts, latency spikes, partition/heal) against a SimCluster and
// verifies recovery after every quiescent window: structural invariants,
// coverage re-convergence within a bounded number of epochs, and replica
// query availability. Everything is seeded, so two runs with the same seed
// produce bit-identical event logs — which the CI soak job asserts.
//
//   dat_chaos --nodes 16 --seed 7 --print-events
//   dat_chaos --plan myplan.txt --replicas 3
//   dat_chaos --campaign rebalance-skew --nodes 24 --seed 7

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/campaign.hpp"
#include "chaos/plan.hpp"
#include "common/cli.hpp"
#include "common/logging.hpp"
#include "datd/signals.hpp"
#include "obs/export.hpp"

namespace {

int run_campaign(const dat::CliFlags& flags) {
  using namespace dat;

  chaos::ChaosPlan plan;
  const std::string plan_path = flags.get_string("plan");
  const std::string campaign_name = flags.get_string("campaign");
  if (!plan_path.empty()) {
    std::ifstream in(plan_path);
    if (!in) {
      std::fprintf(stderr, "dat_chaos: cannot open plan file %s\n",
                   plan_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    plan = chaos::ChaosPlan::parse(text.str());
  } else if (campaign_name == "canonical") {
    plan = chaos::ChaosPlan::canonical(
        static_cast<std::uint64_t>(flags.get_int("seed")),
        static_cast<std::size_t>(flags.get_int("nodes")));
  } else if (campaign_name == "rebalance-skew") {
    plan = chaos::ChaosPlan::rebalance_skew(
        static_cast<std::uint64_t>(flags.get_int("seed")),
        static_cast<std::size_t>(flags.get_int("nodes")));
  } else if (campaign_name == "selfmon") {
    plan = chaos::ChaosPlan::selfmon(
        static_cast<std::uint64_t>(flags.get_int("seed")),
        static_cast<std::size_t>(flags.get_int("nodes")));
  } else {
    std::fprintf(stderr, "dat_chaos: unknown --campaign %s\n",
                 campaign_name.c_str());
    return 2;
  }

  harness::ClusterOptions cluster_options;
  cluster_options.seed = plan.seed;
  cluster_options.with_dat = true;
  // Plans can demand an unbalanced deployment (random ids instead of
  // identifier probing) — the shape the rebalance event then repairs.
  cluster_options.node.probing_join = !plan.random_ids;
  // The selfmon campaign asserts the self-monitoring SLO: every node hosts
  // a SelfMonitor, and each verify phase additionally waits for the probe
  // node's coverage alert to reach the state the ground truth implies.
  const bool selfmon_campaign =
      plan_path.empty() && campaign_name == "selfmon";
  cluster_options.with_selfmon = selfmon_campaign;
  harness::SimCluster cluster(plan.nodes, std::move(cluster_options));

  chaos::CampaignOptions options;
  options.replicas = static_cast<unsigned>(flags.get_int("replicas"));
  options.quiesce_us =
      static_cast<std::uint64_t>(flags.get_int("quiesce-ms")) * 1000;
  options.max_recovery_epochs =
      static_cast<unsigned>(flags.get_int("max-epochs"));
  // The skewed workload only matters to plans that actually rebalance;
  // keeping it off elsewhere leaves the canonical soak untouched.
  const bool has_rebalance = std::any_of(
      plan.events.begin(), plan.events.end(), [](const chaos::FaultEvent& e) {
        return e.kind == chaos::FaultKind::kRebalance;
      });
  if (has_rebalance) {
    options.rebalance.hot_aggregates =
        static_cast<unsigned>(flags.get_int("hot-keys"));
  }
  options.rebalance.slo_max_branching =
      static_cast<std::size_t>(flags.get_int("slo-branching"));
  options.rebalance.slo_max_epochs =
      static_cast<unsigned>(flags.get_int("slo-epochs"));
  options.check_selfmon = selfmon_campaign;
  // ^C aborts the timeline between events; the metrics flush and the table
  // below still run on whatever completed, and the exit code becomes 130.
  options.interrupted = [] { return datd::pending_signal() != 0; };

  chaos::Campaign campaign(cluster, plan, options);
  const chaos::CampaignReport report = campaign.run();

  const std::string metrics_path = flags.get_string("metrics-out");
  if (!metrics_path.empty()) {
    // Campaign-level recovery metrics (phase timings, fault counts) merged
    // with the cluster-wide per-node roll-up, as one JSON document.
    obs::MetricsSnapshot snap =
        campaign.metrics().snapshot().with_label("node", "campaign");
    snap.merge(cluster.telemetry_snapshot());
    std::ofstream out(metrics_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "dat_chaos: cannot open %s\n", metrics_path.c_str());
      return 2;
    }
    out << obs::to_json(snap);
  }

  if (flags.get_bool("print-events")) {
    for (const std::string& line : report.event_log) {
      std::printf("%s\n", line.c_str());
    }
  }

  std::printf("\n%-6s %-8s %-6s %-9s %-9s %-7s %-6s %-9s %-7s %s\n", "phase",
              "t(ms)", "live", "expected", "coverage", "epochs", "roots",
              "lb", "alert", "result");
  for (const chaos::PhaseReport& p : report.phases) {
    char lb[32] = "-";
    if (p.rebalance_checked) {
      std::snprintf(lb, sizeof(lb), "%u/%zu", p.lb_epochs,
                    p.lb_max_branching);
    }
    const char* alert =
        p.selfmon_checked ? (p.selfmon_firing ? "firing" : "clear") : "-";
    std::printf("%-6zu %-8llu %-6zu %-9zu %-9zu %-7u %-6u %-9s %-7s %s\n",
                p.phase, static_cast<unsigned long long>(p.at_us / 1000),
                p.live, p.expected_coverage, p.observed_coverage,
                p.epochs_to_recover, p.roots_answered, lb, alert,
                p.ok() ? "OK" : "FAIL");
  }

  const chaos::Campaign::LbSummary& lb = campaign.lb_summary();
  if (lb.ran) {
    std::printf("\nrebalancer: %s in %u epochs, branching %zu -> %zu, "
                "%zu migrations, %zu sheds\n",
                lb.converged ? "converged" : "did NOT converge", lb.epochs,
                lb.initial_max_branching, lb.final_max_branching,
                lb.migrations, lb.sheds);
  }

  if (!report.phases.empty()) {
    const dat::net::RpcStats& rpc = report.phases.back().rpc;
    std::printf("\nrpc totals (live nodes): calls=%llu attempts=%llu "
                "retransmits=%llu timeouts=%llu backoff=%llums\n",
                static_cast<unsigned long long>(rpc.calls),
                static_cast<unsigned long long>(rpc.attempts),
                static_cast<unsigned long long>(rpc.retransmits),
                static_cast<unsigned long long>(rpc.timeouts),
                static_cast<unsigned long long>(rpc.backoff_wait_us / 1000));
  }

  for (const std::string& violation : report.violations) {
    std::fprintf(stderr, "violation: %s\n", violation.c_str());
  }
  std::size_t phases_ok = 0;
  for (const auto& p : report.phases) {
    if (p.ok()) ++phases_ok;
  }
  std::printf("\ncampaign %s: %zu/%zu phases ok\n",
              report.interrupted ? "INTERRUPTED"
                                 : (report.ok() ? "PASSED" : "FAILED"),
              phases_ok, report.phases.size());
  if (report.interrupted) return 130;
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  dat::CliFlags flags;
  flags.flag("nodes", std::int64_t{16}, "cluster size for the canonical plan")
      .flag("seed", std::int64_t{7}, "campaign seed (canonical plan)")
      .flag("plan", std::string{},
            "path to a text plan spec (overrides --nodes/--seed)")
      .flag("campaign", std::string{"canonical"},
            "built-in campaign: canonical | rebalance-skew | selfmon")
      .flag("hot-keys", std::int64_t{2},
            "extra hot trees pushed 10x faster (workload skew)")
      .flag("slo-branching", std::int64_t{4},
            "rebalance SLO: max branching to re-converge to")
      .flag("slo-epochs", std::int64_t{20},
            "rebalance SLO: epoch budget after activation")
      .flag("replicas", std::int64_t{3}, "replica trees for the aggregate")
      .flag("quiesce-ms", std::int64_t{2000},
            "settle window before each verification")
      .flag("max-epochs", std::int64_t{10},
            "recovery SLO: epochs allowed until coverage re-converges")
      .flag("print-events", false, "print the deterministic event log")
      .flag("metrics-out", std::string{},
            "write campaign + cluster telemetry JSON to this path")
      .flag("verbose", false, "chaos events to stderr as they happen");

  if (!flags.parse(argc - 1, argv + 1)) {
    std::fprintf(stderr, "dat_chaos: %s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.get_bool("verbose")) {
    dat::Logger::instance().set_level(dat::LogLevel::kInfo);
  }
  dat::datd::install_signal_guard();
  try {
    return run_campaign(flags);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "dat_chaos: %s\n", err.what());
    return 2;
  }
}
