// Fuzz harness for the wire codec: Message decoding plus the Reader
// primitives, driven by arbitrary bytes. Built behind DAT_FUZZ.
//
// Under Clang the target links libFuzzer (-fsanitize=fuzzer) and explores
// inputs coverage-guided; under other compilers the same harness compiles
// with a standalone driver that replays corpus files given on the command
// line, which is how the checked-in crash corpus regression-runs in CI.
//
// Any crash found here must be distilled into tests/test_codec_fuzz_regressions.cpp
// (and the input dropped into tools/fuzz/corpus/) before the fix lands.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "net/transport.hpp"

namespace {

// Exercises the primitive Reader accessors in a data-driven order: the first
// byte of each step selects the accessor, so the fuzzer can reach every
// decode path, including nested length prefixes.
void fuzz_reader_primitives(std::span<const std::uint8_t> data) {
  dat::net::Reader r(data);
  try {
    while (!r.exhausted()) {
      switch (r.u8() % 8) {
        case 0: (void)r.u8(); break;
        case 1: (void)r.u16(); break;
        case 2: (void)r.u32(); break;
        case 3: (void)r.u64(); break;
        case 4: (void)r.i64(); break;
        case 5: (void)r.f64(); break;
        case 6: (void)r.str(); break;
        case 7: (void)r.bytes(); break;
      }
    }
  } catch (const dat::net::CodecError&) {
    // Expected rejection of malformed input — the invariant under test is
    // "typed error or success, never UB".
  }
}

void fuzz_message_decode(std::span<const std::uint8_t> data) {
  const dat::net::MessageDecodeResult result =
      dat::net::Message::try_decode(data);
  if (result.ok()) {
    // Round-trip invariant: anything that decodes must re-encode to the
    // exact input bytes (the format has a unique encoding).
    const std::vector<std::uint8_t> wire = result.message->encode();
    if (wire.size() != data.size() ||
        !std::equal(wire.begin(), wire.end(), data.begin())) {
      __builtin_trap();
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);
  fuzz_message_decode(input);
  fuzz_reader_primitives(input);
  return 0;
}

#if !defined(DAT_FUZZ_LIBFUZZER)
// Standalone replay driver: feeds each file named on the command line (or
// stdin when none) through the harness once. Exit 0 means no crash.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <vector>

int main(int argc, char** argv) {
  std::size_t ran = 0;
  if (argc < 2) {
    std::vector<std::uint8_t> input(std::istreambuf_iterator<char>(std::cin),
                                    std::istreambuf_iterator<char>{});
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ran = 1;
  } else {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i], std::ios::binary);
      if (!in) {
        std::cerr << "fuzz_codec: cannot open " << argv[i] << "\n";
        return 2;
      }
      std::vector<std::uint8_t> input(std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>{});
      LLVMFuzzerTestOneInput(input.data(), input.size());
      ++ran;
    }
  }
  std::printf("fuzz_codec: replayed %zu input(s), no crash\n", ran);
  return 0;
}
#endif
