// Prototype scale check (paper Sec. 5: "evaluated ... with up to 8192
// nodes"): bootstrap progressively larger *live* overlays — full protocol,
// not the RingView shortcut — and report convergence plus live balanced-DAT
// tree statistics computed from each node's own finger table. The offline
// sweeps (Figs. 7/8) use RingView for the biggest sizes; this bench pins
// the two views together at protocol scale.

#include <chrono>
#include <cstdio>

#include "dat/tree.hpp"
#include "harness/live_tree.hpp"
#include "harness/sim_cluster.hpp"

int main() {
  using namespace dat;
  std::printf("# Live-protocol scale: bootstrap + converged balanced-DAT stats\n");
  std::printf("%6s %10s %10s %8s %10s %12s %10s %10s\n", "n", "boot(s)",
              "conv", "roots", "reaching", "max-branch", "height",
              "wall(s)");

  for (const std::size_t n : {128ul, 256ul, 512ul, 1024ul, 2048ul}) {
    const auto wall0 = std::chrono::steady_clock::now();
    harness::ClusterOptions options;
    options.seed = 4000 + n;
    options.join_settle_us = 100'000;
    options.node.fix_fingers_interval_us = 100'000;
    harness::SimCluster cluster(n, std::move(options));
    const double boot_s = cluster.engine().now() / 1e6;
    const bool converged = cluster.wait_converged(1'200'000'000);

    const Id key = core::rendezvous_key("cpu-usage", cluster.space());
    const auto live = harness::live_tree_stats(
        cluster, key, chord::RoutingScheme::kBalanced);
    // Cross-check against the converged ground truth.
    const core::Tree truth(cluster.ring_view(), key,
                           chord::RoutingScheme::kBalanced);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();
    std::printf("%6zu %10.1f %10s %8zu %7zu/%zu %8zu/%zu %7u/%u %10.1f\n", n,
                boot_s, converged ? "yes" : "no", live.roots,
                live.reaching_root, live.nodes, live.max_branching,
                truth.max_branching(), live.height, truth.height(), wall_s);
  }
  std::printf("\n(live/x columns pair the protocol-computed value with the\n"
              " RingView ground truth; they must agree when converged)\n");
  return 0;
}
