// Ablation: sensitivity of balanced routing to the d0 estimate. The finger
// limiting function g(x) = ceil(log2((x + 2 d0)/3)) needs the average
// inter-node gap d0 = 2^b / n. Deployments estimate it (successor-list
// spacing) or inject it; this bench mis-scales d0 by factors of 2 and
// measures what happens to the tree.
//
// Expected shape: underestimating d0 barely matters (limits get tighter —
// slightly taller trees); overestimating relaxes the limit toward plain
// greedy routing, and the max branching factor drifts up accordingly.

#include <cstdio>

#include "chord/id_assignment.hpp"
#include "chord/ring_view.hpp"
#include "common/stats.hpp"
#include "dat/tree.hpp"

namespace {

using namespace dat;

struct TreeFromD0 {
  std::size_t max_branching = 0;
  unsigned height = 0;
};

TreeFromD0 build(const chord::RingView& ring, Id key, std::uint64_t d0_num,
                 std::uint64_t d0_den) {
  // Materialize the tree through parent_with_d0.
  std::unordered_map<Id, std::size_t> branching;
  std::unordered_map<Id, Id> parent;
  const Id root = ring.successor(key);
  for (const Id v : ring.ids()) {
    if (v == root) continue;
    const auto p = ring.parent_with_d0(v, key, chord::RoutingScheme::kBalanced,
                                       d0_num, d0_den);
    parent[v] = *p;
    ++branching[*p];
  }
  TreeFromD0 out;
  for (const auto& [node, b] : branching) {
    out.max_branching = std::max(out.max_branching, b);
  }
  for (const Id v : ring.ids()) {
    unsigned depth = 0;
    Id cur = v;
    while (cur != root && depth <= ring.size()) {
      cur = parent.at(cur);
      ++depth;
    }
    out.height = std::max(out.height, depth);
  }
  return out;
}

}  // namespace

int main() {
  constexpr unsigned kBits = 32;
  constexpr std::size_t kNodes = 1024;
  constexpr unsigned kTrials = 3;

  std::printf("# Ablation: balanced DAT vs d0 mis-estimation, n=%zu\n",
              kNodes);
  std::printf("%12s %14s %10s\n", "d0-scale", "max-branching", "height");

  const double scales[] = {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  for (const double scale : scales) {
    std::size_t max_branch = 0;
    unsigned max_height = 0;
    for (unsigned t = 0; t < kTrials; ++t) {
      Rng rng(500 + t);
      const IdSpace space(kBits);
      const chord::RingView ring(space,
                                 chord::probed_ids(space, kNodes, rng));
      const auto [num, den] = ring.d0_rational();
      // Scale d0 by `scale` as an exact rational.
      const auto scaled_num =
          static_cast<std::uint64_t>(static_cast<double>(num) * scale);
      const Id key = rng.next_id(space);
      const TreeFromD0 tree = build(ring, key, scaled_num, den);
      max_branch = std::max(max_branch, tree.max_branching);
      max_height = std::max(max_height, tree.height);
    }
    std::printf("%12.3f %14zu %10u\n", scale, max_branch, max_height);
  }
  std::printf("\n(scale 1.0 = exact d0; small scales tighten finger limits\n"
              " and stretch the tree, large scales relax toward greedy\n"
              " routing and re-grow the root's branching factor)\n");
  return 0;
}
