// The O(log n) routing claim (paper Secs. 2.2 / 3.3): hop-count
// distributions of greedy (basic-DAT) and balanced routes as the network
// grows. Greedy routes average ~log2(n)/2 hops; balanced routes trade a
// slightly longer tail (the finger limit forbids the biggest jumps near
// the root) for the constant branching factor.

#include <cmath>
#include <cstdio>

#include "analysis/route_stats.hpp"
#include "chord/id_assignment.hpp"

int main() {
  using namespace dat;
  constexpr unsigned kBits = 32;
  constexpr unsigned kKeys = 4;

  std::printf("# Route length vs network size (probed ids)\n");
  std::printf("%8s %8s | %12s %10s | %12s %10s\n", "n", "log2(n)",
              "greedy-mean", "greedy-max", "balanced-mean", "balanced-max");

  for (std::size_t n = 16; n <= 8192; n *= 4) {
    Rng rng(40 + n);
    const IdSpace space(kBits);
    const chord::RingView ring(space, chord::probed_ids(space, n, rng));
    const auto greedy = analysis::route_lengths(
        ring, chord::RoutingScheme::kGreedy, kKeys, rng);
    const auto balanced = analysis::route_lengths(
        ring, chord::RoutingScheme::kBalanced, kKeys, rng);
    std::printf("%8zu %8.1f | %12.2f %10u | %12.2f %10u\n", n,
                std::log2(static_cast<double>(n)), greedy.hops.mean(),
                greedy.max_hops(), balanced.hops.mean(),
                balanced.max_hops());
  }
  return 0;
}
