#pragma once

// Minimal machine-readable output for the plain-main() benchmarks: an
// ordered JSON object builder plus the BENCH_<suite>.json writing
// convention (suite name, git sha, config, metrics) shared by CI's
// perf-smoke job and EXPERIMENTS.md. google-benchmark binaries use their
// own JSONReporter instead; this is for the harness-style benches.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace dat::benchjson {

inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Insertion-ordered JSON object; values are serialized on insertion so the
/// builder stays a flat list of key/text pairs.
class Object {
 public:
  Object& put(const std::string& key, const std::string& value) {
    return raw(key, "\"" + escape(value) + "\"");
  }
  Object& put(const std::string& key, const char* value) {
    return put(key, std::string(value));
  }
  Object& put(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  Object& put(const std::string& key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  Object& put(const std::string& key, unsigned value) {
    return raw(key, std::to_string(value));
  }
  Object& put(const std::string& key, int value) {
    return raw(key, std::to_string(value));
  }
  Object& put(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << value;
    return raw(key, os.str());
  }
  Object& put(const std::string& key, const Object& value) {
    return raw(key, value.dump());
  }
  Object& put(const std::string& key, const std::vector<Object>& values) {
    std::string text = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) text += ",";
      text += values[i].dump();
    }
    text += "]";
    return raw(key, text);
  }

  [[nodiscard]] std::string dump() const {
    std::string text = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) text += ",";
      text += "\"" + escape(fields_[i].first) + "\":" + fields_[i].second;
    }
    text += "}";
    return text;
  }

 private:
  Object& raw(const std::string& key, std::string serialized) {
    fields_.emplace_back(key, std::move(serialized));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Writes `BENCH_<suite>.json` into the working directory; returns the path.
inline std::string write_suite(const std::string& suite, const Object& root) {
  const std::string path = "BENCH_" + suite + ".json";
  std::ofstream out(path);
  out << root.dump() << "\n";
  return path;
}

}  // namespace dat::benchjson
