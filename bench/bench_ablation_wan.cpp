// Ablation: LAN vs WAN latency. The paper's testbed is a 1-GbE cluster and
// its future work asks how DAT behaves on PlanetLab-scale links. Topology
// metrics are latency-free, but the *freshness* of continuous aggregation
// and the wall-clock cost of lookups are not: we rerun a 96-node
// trace-driven monitoring scenario under three latency models and report
// lookup latency and aggregation staleness.

#include <cstdio>
#include <memory>

#include "common/stats.hpp"
#include "harness/sim_cluster.hpp"
#include "trace/cpu_trace.hpp"

namespace {

using namespace dat;

struct Row {
  const char* name;
  std::unique_ptr<sim::LatencyModel> (*make)();
};

std::unique_ptr<sim::LatencyModel> make_lan() {
  return std::make_unique<sim::UniformLatency>(80, 150);  // 1-GbE cluster
}
std::unique_ptr<sim::LatencyModel> make_wan() {
  // Continental WAN: ~40 ms median, heavy tail.
  return std::make_unique<sim::LogNormalLatency>(40'000.0, 0.6, 5'000);
}
std::unique_ptr<sim::LatencyModel> make_planetlab() {
  // Intercontinental mix: ~120 ms median, heavier tail.
  return std::make_unique<sim::LogNormalLatency>(120'000.0, 0.9, 10'000);
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 96;
  constexpr std::uint64_t kEpochUs = 2'000'000;

  std::printf("# Ablation: latency model vs lookup latency and staleness, n=%zu\n",
              kNodes);
  std::printf("%-12s %16s %16s %14s\n", "model", "lookup-mean(ms)",
              "lookup-p99(ms)", "staleness(ms)");

  const Row rows[] = {{"lan", make_lan},
                      {"wan", make_wan},
                      {"planetlab", make_planetlab}};
  for (const Row& row : rows) {
    harness::ClusterOptions options;
    options.seed = 8080;
    options.dat.epoch_us = kEpochUs;
    options.latency = row.make();
    options.node.rpc.timeout_us = 2'000'000;  // fit the WAN tail
    harness::SimCluster cluster(kNodes, std::move(options));
    cluster.wait_converged(1'200'000'000);

    // Lookup latency: virtual time from issue to completion.
    Rng rng(3);
    std::vector<double> lookup_ms;
    for (int q = 0; q < 60; ++q) {
      const Id key = rng.next_id(cluster.space());
      const std::uint64_t issued = cluster.engine().now();
      bool done = false;
      cluster.node(q % kNodes).find_successor(
          key, [&](net::RpcStatus st, chord::NodeRef) {
            if (st == net::RpcStatus::kOk) done = true;
          });
      const auto deadline = cluster.engine().now() + 60'000'000;
      while (!done && cluster.engine().now() < deadline) {
        cluster.engine().run_steps(64);
      }
      if (done) {
        lookup_ms.push_back((cluster.engine().now() - issued) / 1e3);
      }
    }

    // Aggregation staleness measured directly: every node contributes the
    // current virtual time, so the root's average equals "now minus the
    // mean age of the data that reached it" — the pipeline lag, including
    // per-hop network delay (staleness ~ depth * epoch + path latency).
    sim::Engine& engine = cluster.engine();
    Id key = 0;
    for (std::size_t i = 0; i < kNodes; ++i) {
      key = cluster.dat(i).start_aggregate(
          "clock", core::AggregateKind::kAvg, chord::RoutingScheme::kBalanced,
          [&engine]() { return static_cast<double>(engine.now()); });
    }
    cluster.run_for(15 * kEpochUs);
    RunningStats staleness_ms;
    const Id root_id = cluster.ring_view().successor(key);
    for (int s = 0; s < 20; ++s) {
      cluster.run_for(kEpochUs + 137'000);  // sample off the epoch grid
      for (std::size_t i = 0; i < kNodes; ++i) {
        if (cluster.node(i).id() != root_id) continue;
        if (const auto g = cluster.dat(i).latest(key)) {
          const double mean_contribution_time =
              g->state.result(core::AggregateKind::kAvg);
          staleness_ms.add(
              (static_cast<double>(engine.now()) - mean_contribution_time) /
              1e3);
        }
      }
    }

    RunningStats lookup_stats;
    for (const double v : lookup_ms) lookup_stats.add(v);
    std::printf("%-12s %16.1f %16.1f %14.0f\n", row.name,
                lookup_stats.mean(),
                lookup_ms.empty() ? 0.0 : percentile(lookup_ms, 0.99),
                staleness_ms.mean());
  }
  std::printf("\n(lookup latency scales with per-hop RTT x log n; staleness\n"
              " is dominated by the epoch pipeline, so WAN latency barely\n"
              " moves it — the paper's PlanetLab deployment would mainly pay\n"
              " in lookup and join latency, not monitoring freshness)\n");
  return 0;
}
