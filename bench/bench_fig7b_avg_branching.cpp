// Reproduces Fig. 7(b): average branching factor (over internal nodes) vs.
// network size for basic and balanced DATs, with and without identifier
// probing.
//
// Paper shape: with probing both trees sit at an almost constant average of
// ~2; without probing they rise to ~3 and ~3.2 but stay flat in n.

#include <cstdio>

#include "analysis/tree_metrics.hpp"

int main() {
  using namespace dat;
  constexpr unsigned kBits = 32;
  constexpr unsigned kTrials = 3;
  constexpr unsigned kKeys = 4;

  std::printf("# Fig 7(b): average branching factor vs network size\n");
  std::printf("%8s %18s %18s %18s %18s\n", "n", "basic/random",
              "basic/probed", "balanced/random", "balanced/probed");

  Rng rng(20070326);
  for (std::size_t n = 16; n <= 8192; n *= 2) {
    double cells[4] = {};
    int c = 0;
    for (const auto scheme :
         {chord::RoutingScheme::kGreedy, chord::RoutingScheme::kBalanced}) {
      for (const auto assignment :
           {chord::IdAssignment::kRandom, chord::IdAssignment::kProbed}) {
        const auto props = analysis::measure_tree_properties(
            kBits, n, scheme, assignment, kTrials, kKeys, rng);
        cells[c++] = props.avg_branching_internal;
      }
    }
    std::printf("%8zu %18.2f %18.2f %18.2f %18.2f\n", n, cells[0], cells[1],
                cells[2], cells[3]);
  }
  return 0;
}
