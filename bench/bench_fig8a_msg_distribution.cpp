// Reproduces Fig. 8(a): distribution of aggregation messages per node in a
// 512-node network, for the centralized scheme (values routed to the root
// over Chord), the basic DAT and the balanced DAT. Nodes are sorted by
// descending message count ("node rank"); the paper plots count vs. rank on
// a log y-axis.
//
// Paper shape: centralized root processes 511 messages; the most loaded
// basic-DAT node ~24; the most loaded balanced-DAT node ~4.

#include <cstdio>

#include "analysis/message_load.hpp"
#include "chord/id_assignment.hpp"

int main() {
  using namespace dat;
  constexpr unsigned kBits = 32;
  constexpr std::size_t kNodes = 512;

  const IdSpace space(kBits);
  Rng rng(20070512);
  const chord::RingView ring(space,
                             chord::probed_ids(space, kNodes, rng));
  const Id key = rng.next_id(space);

  const analysis::LoadProfile centralized = analysis::message_load(
      ring, key, analysis::AggregationScheme::kCentralizedDirect);
  const analysis::LoadProfile routed = analysis::message_load(
      ring, key, analysis::AggregationScheme::kCentralizedRouted);
  const analysis::LoadProfile basic = analysis::message_load(
      ring, key, analysis::AggregationScheme::kBasicDat);
  const analysis::LoadProfile balanced = analysis::message_load(
      ring, key, analysis::AggregationScheme::kBalancedDat);

  const auto rc = centralized.by_rank();
  const auto rr = routed.by_rank();
  const auto rb = basic.by_rank();
  const auto rl = balanced.by_rank();

  std::printf("# Fig 8(a): aggregation messages by node rank, n=%zu\n",
              kNodes);
  std::printf("%6s %14s %14s %12s %14s\n", "rank", "centralized",
              "cent-routed", "basic-dat", "balanced-dat");
  for (std::size_t rank = 1; rank <= kNodes; rank *= 2) {
    std::printf("%6zu %14llu %14llu %12llu %14llu\n", rank,
                static_cast<unsigned long long>(rc[rank - 1]),
                static_cast<unsigned long long>(rr[rank - 1]),
                static_cast<unsigned long long>(rb[rank - 1]),
                static_cast<unsigned long long>(rl[rank - 1]));
  }
  std::printf("%6s %14llu %14llu %12llu %14llu\n", "max",
              static_cast<unsigned long long>(centralized.max()),
              static_cast<unsigned long long>(routed.max()),
              static_cast<unsigned long long>(basic.max()),
              static_cast<unsigned long long>(balanced.max()));
  std::printf("%6s %14.2f %14.2f %12.2f %14.2f\n", "avg",
              centralized.average(), routed.average(), basic.average(),
              balanced.average());
  std::printf("%6s %14.2f %14.2f %12.2f %14.2f\n", "imbal",
              centralized.imbalance(), routed.imbalance(), basic.imbalance(),
              balanced.imbalance());
  return 0;
}
