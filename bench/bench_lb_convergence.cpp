// Runtime rebalancing convergence: how many epochs the measurement-driven
// rebalancer needs to bring an unbalanced deployment (random identifiers,
// max branching 7-12+ per Fig. 7a) back to the balanced-tree SLO of max
// branching <= 4, and what the repair costs in messages, under workloads of
// increasing skew. Writes BENCH_lb.json with the per-round convergence
// curve for each skew profile.
//
//   bench_lb_convergence [--nodes 24] [--seed 7]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "json_out.hpp"
#include "harness/sim_cluster.hpp"
#include "lb/ports.hpp"
#include "lb/rebalancer.hpp"

namespace {

using namespace dat;

constexpr std::uint64_t kEpochUs = 200'000;
constexpr unsigned kMaxRounds = 20;
constexpr std::size_t kSloBranching = 4;

struct Profile {
  const char* name;
  unsigned cold;  ///< trees at the base epoch period
  unsigned hot;   ///< trees pushed at base/10 (10x the update volume each)
};

struct RoundRow {
  unsigned round = 0;
  double gap_ratio = 0.0;
  std::size_t max_branching = 0;
  std::size_t migrations = 0;
  std::size_t sheds = 0;
};

struct ProfileResult {
  std::string name;
  double hot_share = 0.0;  ///< fraction of update volume from hot trees
  std::size_t initial_branching = 0;
  std::size_t final_branching = 0;
  bool converged = false;
  unsigned epochs = 0;
  std::uint64_t rpc_attempts = 0;  ///< messages spent while rebalancing
  std::size_t migrations = 0;
  std::size_t sheds = 0;
  std::vector<RoundRow> curve;
};

ProfileResult run_profile(const Profile& profile, std::size_t nodes,
                          std::uint64_t seed) {
  harness::ClusterOptions options;
  options.seed = seed;
  options.dat.epoch_us = kEpochUs;
  options.node.probing_join = false;  // random ids: the unbalanced shape
  harness::SimCluster cluster(nodes, std::move(options));

  const auto local = [](std::size_t slot) -> core::DatNode::LocalValueFn {
    return [slot] { return static_cast<double>(slot + 1); };
  };
  std::vector<Id> keys;
  for (unsigned i = 0; i < profile.cold; ++i) {
    keys.push_back(cluster.start_aggregate_everywhere(
        "cpu#" + std::to_string(i), core::AggregateKind::kSum,
        chord::RoutingScheme::kBalanced, local));
  }
  for (unsigned i = 0; i < profile.hot; ++i) {
    keys.push_back(cluster.start_aggregate_everywhere(
        "cpu-hot#" + std::to_string(i), core::AggregateKind::kSum,
        chord::RoutingScheme::kBalanced, local, kEpochUs / 10));
  }
  cluster.run_for(4 * kEpochUs);  // let the trees form

  const auto measure = [&] {
    std::size_t max_children = 0;
    for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
      if (!cluster.is_live(i)) continue;
      for (const Id key : keys) {
        max_children = std::max(max_children, cluster.dat(i).child_count(key));
      }
    }
    return max_children;
  };
  // Per-slot message baseline; a slot rebooted by a migration restarts its
  // counters, so a post-loop reading below the baseline means "count from
  // zero", not "negative traffic".
  const auto attempts_of = [&](std::size_t i) {
    return cluster.is_live(i) ? cluster.node(i).rpc().stats().attempts
                              : std::uint64_t{0};
  };
  std::vector<std::uint64_t> baseline(cluster.slot_count());
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    baseline[i] = attempts_of(i);
  }

  ProfileResult result;
  result.name = profile.name;
  const double volume =
      profile.cold * 1.0 + profile.hot * 10.0;  // relative updates/epoch
  result.hot_share = volume > 0 ? profile.hot * 10.0 / volume : 0.0;
  result.initial_branching = measure();

  lb::SimClusterPort port(cluster);
  lb::RebalancerOptions lb_options;
  lb_options.epoch_us = kEpochUs;
  lb::Rebalancer rebalancer(port, keys, lb_options);

  std::size_t branching = result.initial_branching;
  while (result.epochs < kMaxRounds) {
    const lb::RoundReport round = rebalancer.run_round();
    cluster.run_for(kEpochUs);
    ++result.epochs;
    branching = measure();
    result.migrations += round.migrations;
    result.sheds += round.sheds;
    RoundRow row;
    row.round = round.round;
    row.gap_ratio = round.gap_ratio;
    row.max_branching = branching;
    row.migrations = round.migrations;
    row.sheds = round.sheds;
    result.curve.push_back(row);
    if (branching <= kSloBranching) {
      result.converged = true;
      break;
    }
  }
  result.final_branching = branching;
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    const std::uint64_t now = attempts_of(i);
    result.rpc_attempts += now >= baseline[i] ? now - baseline[i] : now;
  }
  return result;
}

benchjson::Object to_json(const ProfileResult& r) {
  std::vector<benchjson::Object> curve;
  curve.reserve(r.curve.size());
  for (const RoundRow& row : r.curve) {
    benchjson::Object o;
    o.put("round", row.round)
        .put("gap_ratio", row.gap_ratio)
        .put("max_branching", static_cast<std::uint64_t>(row.max_branching))
        .put("migrations", static_cast<std::uint64_t>(row.migrations))
        .put("sheds", static_cast<std::uint64_t>(row.sheds));
    curve.push_back(std::move(o));
  }
  benchjson::Object o;
  o.put("profile", r.name)
      .put("hot_share", r.hot_share)
      .put("initial_max_branching",
           static_cast<std::uint64_t>(r.initial_branching))
      .put("final_max_branching", static_cast<std::uint64_t>(r.final_branching))
      .put("converged", r.converged)
      .put("epochs_to_converge", r.epochs)
      .put("rpc_attempts", r.rpc_attempts)
      .put("migrations", static_cast<std::uint64_t>(r.migrations))
      .put("sheds", static_cast<std::uint64_t>(r.sheds))
      .put("curve", curve);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 24;
  std::uint64_t seed = 7;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--nodes") == 0) nodes = std::stoul(argv[i + 1]);
    if (std::strcmp(argv[i], "--seed") == 0) seed = std::stoull(argv[i + 1]);
  }

  const Profile profiles[] = {
      {"uniform", 5, 0},  // every tree at the base period
      {"70/30", 4, 1},    // one hot tree: ~71% of the volume
      {"90/10", 3, 2},    // two hot trees: ~87% of the volume
  };

  std::printf("# Rebalancer convergence, n=%zu seed=%llu (random ids, "
              "SLO: max branching <= %zu within %u epochs)\n",
              nodes, static_cast<unsigned long long>(seed), kSloBranching,
              kMaxRounds);
  std::printf("%-10s %-10s %-10s %-10s %-8s %-10s %-10s %-8s\n", "profile",
              "hot_share", "initial", "final", "epochs", "migrations", "sheds",
              "msgs");

  std::vector<benchjson::Object> rows;
  bool all_converged = true;
  for (const Profile& profile : profiles) {
    const ProfileResult r = run_profile(profile, nodes, seed);
    all_converged = all_converged && r.converged;
    std::printf("%-10s %-10.2f %-10zu %-10zu %-8u %-10zu %-10zu %-8llu\n",
                r.name.c_str(), r.hot_share, r.initial_branching,
                r.final_branching, r.epochs, r.migrations, r.sheds,
                static_cast<unsigned long long>(r.rpc_attempts));
    rows.push_back(to_json(r));
  }

  benchjson::Object config;
  config.put("nodes", static_cast<std::uint64_t>(nodes))
      .put("seed", seed)
      .put("epoch_us", kEpochUs)
      .put("max_rounds", kMaxRounds)
      .put("slo_max_branching", static_cast<std::uint64_t>(kSloBranching))
      .put("id_assignment", "random");
  benchjson::Object root;
  root.put("suite", "lb_convergence")
      .put("git_sha", DAT_GIT_SHA)
      .put("config", config)
      .put("results", rows)
      .put("all_converged", all_converged);
  const std::string path = benchjson::write_suite("lb", root);
  std::printf("wrote %s\n", path.c_str());
  return all_converged ? 0 : 1;
}
