// Reproduces the MAAN cost model of Sec. 2.2 on the live protocol stack:
//   registration  : O(m log n) routing hops for m attributes,
//   range query   : O(log n + k) hops, k = nodes in the value range,
//   selectivity   : sweep length proportional to the query's selectivity.

#include <cmath>
#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "harness/sim_cluster.hpp"

int main() {
  using namespace dat;
  std::printf("# MAAN routing cost vs network size (m=3 attributes)\n");
  std::printf("%6s %9s %14s %16s %16s\n", "n", "log2(n)", "reg-hops/attr",
              "query-routing", "sweep(s=0.10)");

  for (const std::size_t n : {32, 64, 128, 256}) {
    harness::ClusterOptions options;
    options.seed = 7000 + n;
    options.with_dat = false;
    options.with_maan = true;
    harness::SimCluster cluster(n, std::move(options));
    cluster.wait_converged(300'000'000);

    Rng rng(99);
    // Register 2n resources with m=3 numeric attributes from random nodes.
    RunningStats reg_hops;
    const std::size_t resources = 2 * n;
    for (std::size_t r = 0; r < resources; ++r) {
      maan::Resource resource;
      resource.id = "res-" + std::to_string(r);
      resource.attributes = {
          {"cpu-usage", maan::AttrValue{rng.next_double() * 100.0}},
          {"cpu-speed", maan::AttrValue{1e9 + rng.next_double() * 3e9}},
          {"memory-size", maan::AttrValue{rng.next_double() * 32e9}},
      };
      bool done = false;
      cluster.maan(r % n).register_resource(
          resource, [&](bool ok, unsigned hops) {
            done = true;
            if (ok) reg_hops.add(static_cast<double>(hops) / 3.0);
          });
      while (!done) cluster.engine().run_steps(512);
    }

    // Range queries with selectivity 0.10 from random origins.
    RunningStats routing;
    RunningStats sweep;
    for (unsigned q = 0; q < 20; ++q) {
      const double lo = rng.next_double() * 90.0;
      bool done = false;
      cluster.maan(q % n).range_query(
          "cpu-usage", lo, lo + 10.0, [&](maan::QueryResult result) {
            done = true;
            routing.add(result.routing_hops);
            sweep.add(result.sweep_hops);
          });
      const std::uint64_t deadline = cluster.engine().now() + 20'000'000;
      while (!done && cluster.engine().now() < deadline) {
        cluster.engine().run_steps(512);
      }
    }

    std::printf("%6zu %9.1f %14.2f %16.2f %16.2f\n", n,
                std::log2(static_cast<double>(n)), reg_hops.mean(),
                routing.mean(), sweep.mean());
  }
  std::printf("\n(expected: reg-hops/attr and query-routing ~ log2 n;\n"
              " sweep ~ selectivity * n = 0.10 n)\n");
  return 0;
}
