// Reproduces the churn claim (abstract / Sec. 2.3): "Without maintaining
// explicit parent-child membership, [DAT] has very low overhead during node
// arrival and departure." The DAT layer exchanges *zero* tree-membership
// messages — parents are recomputed locally from the Chord finger table and
// children are soft state — so the only churn cost is Chord's own
// stabilization, which exists with or without DAT.
//
// For each network size we measure, over equal windows with and without
// churn: Chord maintenance RPCs, DAT update messages, DAT membership
// messages (a message class that does not exist — reported to make the
// zero explicit), and the live-node coverage of the global aggregate after
// churn settles.

#include <cstdio>

#include "dat/dat_node.hpp"
#include "harness/sim_cluster.hpp"

namespace {

struct WindowCounters {
  std::uint64_t chord_maintenance = 0;
  std::uint64_t dat_updates = 0;
};

WindowCounters snapshot(dat::harness::SimCluster& cluster, dat::Id key) {
  WindowCounters counters;
  counters.chord_maintenance = cluster.total_maintenance_rpcs();
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    if (!cluster.is_live(i)) continue;
    counters.dat_updates += cluster.dat(i).updates_sent(key);
  }
  return counters;
}

}  // namespace

int main() {
  using namespace dat;
  constexpr std::uint64_t kWindowUs = 60'000'000;  // 60 s windows
  constexpr std::uint64_t kChurnGapUs = 3'000'000;  // one event / 3 s

  std::printf("# Churn overhead: DAT adds no membership traffic on arrival/departure\n");
  std::printf("%6s %10s %12s %12s %12s %12s %10s\n", "n", "events",
              "chord-idle", "chord-churn", "dat-upd/ep", "dat-member",
              "coverage");

  for (const std::size_t n : {64, 192}) {
    harness::ClusterOptions options;
    options.seed = 1000 + n;
    options.dat.epoch_us = 1'000'000;
    harness::SimCluster cluster(n, std::move(options));
    cluster.wait_converged(300'000'000);

    // One global aggregate, every node contributes 1.0 (COUNT of live nodes).
    Id key = 0;
    for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
      if (!cluster.is_live(i)) continue;
      key = cluster.dat(i).start_aggregate("live-count",
                                           core::AggregateKind::kCount,
                                           chord::RoutingScheme::kBalanced,
                                           []() { return 1.0; });
    }
    cluster.run_for(15'000'000);  // warm the pipeline

    // Window A: steady state.
    const WindowCounters a0 = snapshot(cluster, key);
    cluster.run_for(kWindowUs);
    const WindowCounters a1 = snapshot(cluster, key);

    // Window B: churn — alternate crash-leave and join.
    std::uint64_t churn_events = 0;
    const WindowCounters b0 = snapshot(cluster, key);
    std::size_t victim = 1;  // keep slot 0 alive as the bootstrap
    const std::uint64_t churn_until = cluster.engine().now() + kWindowUs;
    bool join_next = false;
    while (cluster.engine().now() < churn_until) {
      cluster.run_for(kChurnGapUs);
      if (join_next) {
        if (const auto slot = cluster.add_node()) {
          cluster.dat(*slot).start_aggregate(key, core::AggregateKind::kCount,
                                             chord::RoutingScheme::kBalanced,
                                             []() { return 1.0; });
          ++churn_events;
        }
      } else {
        while (victim < cluster.slot_count() && !cluster.is_live(victim)) {
          ++victim;
        }
        if (victim < cluster.slot_count()) {
          cluster.remove_node(victim, (churn_events % 2) == 0);
          ++victim;
          ++churn_events;
        }
      }
      join_next = !join_next;
      cluster.refresh_d0_hints();
    }
    const WindowCounters b1 = snapshot(cluster, key);

    // Let the aggregate re-stabilize, then check coverage at the root.
    cluster.run_for(30'000'000);
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
      if (!cluster.is_live(i)) continue;
      if (const auto g = cluster.dat(i).latest(key)) {
        covered = g->state.count;
        break;
      }
    }
    const double epochs = kWindowUs / 1e6;
    std::printf("%6zu %10llu %12llu %12llu %12.1f %12d %6llu/%zu\n", n,
                static_cast<unsigned long long>(churn_events),
                static_cast<unsigned long long>(a1.chord_maintenance -
                                                a0.chord_maintenance),
                static_cast<unsigned long long>(b1.chord_maintenance -
                                                b0.chord_maintenance),
                static_cast<double>(a1.dat_updates - a0.dat_updates) / epochs,
                0,  // DAT has no membership message class at all
                static_cast<unsigned long long>(covered),
                cluster.live_count());
  }
  std::printf("\n(dat-member is identically 0: no parent/child membership protocol exists;\n"
              " trees are implicit in Chord routing state.)\n");
  return 0;
}
