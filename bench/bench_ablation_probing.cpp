// Ablation: how much identifier probing is enough? Adler et al. (and the
// paper's Sec. 3.5) argue a joining node must probe O(log n) candidates to
// bound the max/min gap ratio by a constant. We sweep the number of fingers
// each join probes and measure the gap ratio and the balanced DAT's maximal
// branching factor at n = 2048.

#include <cstdio>

#include "chord/id_assignment.hpp"
#include "chord/ring_view.hpp"
#include "common/stats.hpp"
#include "dat/tree.hpp"

int main() {
  using namespace dat;
  constexpr unsigned kBits = 32;
  constexpr std::size_t kNodes = 2048;
  constexpr unsigned kTrials = 3;

  std::printf("# Ablation: probing intensity at n=%zu (log2 n = 11)\n",
              kNodes);
  std::printf("%8s %14s %18s %16s\n", "probes", "gap-ratio",
              "balanced-max-br", "basic-max-br");

  for (const unsigned probes : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
    RunningStats ratio;
    std::size_t max_balanced = 0;
    std::size_t max_basic = 0;
    for (unsigned t = 0; t < kTrials; ++t) {
      Rng rng(1000 * probes + t);
      const IdSpace space(kBits);
      const chord::RingView ring(space,
                                 chord::probed_ids(space, kNodes, rng, probes));
      ratio.add(ring.gap_ratio());
      const Id key = rng.next_id(space);
      max_balanced =
          std::max(max_balanced,
                   core::Tree(ring, key, chord::RoutingScheme::kBalanced)
                       .max_branching());
      max_basic = std::max(
          max_basic, core::Tree(ring, key, chord::RoutingScheme::kGreedy)
                         .max_branching());
    }
    std::printf("%8u %14.1f %18zu %16zu\n", probes, ratio.mean(),
                max_balanced, max_basic);
  }
  std::printf("\n(0 probes = split only the landing node's interval;\n"
              " >= ~log2 n probes yield the constant-ratio regime the\n"
              " balanced DAT needs for its constant branching factor)\n");
  return 0;
}
