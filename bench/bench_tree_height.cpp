// Reproduces the tree-height claims of Secs. 3.3 and 3.5: basic DAT height
// is O(log n) (it equals the longest finger route); balanced DAT height is
// at most log2(n) when identifiers are evenly spaced, and stays close to it
// with probing.

#include <cmath>
#include <cstdio>

#include "analysis/tree_metrics.hpp"

int main() {
  using namespace dat;
  constexpr unsigned kBits = 32;
  constexpr unsigned kTrials = 3;
  constexpr unsigned kKeys = 4;

  std::printf("# Tree height vs network size (bound: log2 n for balanced/even)\n");
  std::printf("%8s %8s %14s %14s %14s %16s\n", "n", "log2(n)", "basic/random",
              "basic/probed", "balanced/even", "balanced/probed");

  Rng rng(31337);
  for (std::size_t n = 16; n <= 8192; n *= 2) {
    const auto basic_random = analysis::measure_tree_properties(
        kBits, n, chord::RoutingScheme::kGreedy, chord::IdAssignment::kRandom,
        kTrials, kKeys, rng);
    const auto basic_probed = analysis::measure_tree_properties(
        kBits, n, chord::RoutingScheme::kGreedy, chord::IdAssignment::kProbed,
        kTrials, kKeys, rng);
    const auto balanced_even = analysis::measure_tree_properties(
        kBits, n, chord::RoutingScheme::kBalanced, chord::IdAssignment::kEven,
        1, kKeys, rng);
    const auto balanced_probed = analysis::measure_tree_properties(
        kBits, n, chord::RoutingScheme::kBalanced,
        chord::IdAssignment::kProbed, kTrials, kKeys, rng);
    std::printf("%8zu %8.0f %14u %14u %14u %16u\n", n,
                std::ceil(std::log2(static_cast<double>(n))),
                basic_random.height, basic_probed.height, balanced_even.height,
                balanced_probed.height);
  }
  return 0;
}
