// Reproduces Fig. 8(b): imbalance factor (max / average aggregation
// messages per node) as a function of the network size from 100 to 1000,
// for the centralized, basic-DAT and balanced-DAT schemes.
//
// Paper shape: centralized grows ~linearly with n; basic DAT grows on a log
// scale (4.2 @ 100, 8.5 @ 1000); balanced DAT is ~constant (1.9–2.0).

#include <cstdio>

#include "analysis/message_load.hpp"
#include "chord/id_assignment.hpp"
#include "common/stats.hpp"

int main() {
  using namespace dat;
  constexpr unsigned kBits = 32;
  constexpr unsigned kTrials = 5;

  std::printf("# Fig 8(b): imbalance factor vs network size\n");
  std::printf("%6s %14s %12s %14s\n", "n", "centralized", "basic-dat",
              "balanced-dat");

  Rng rng(20071000);
  const IdSpace space(kBits);
  for (std::size_t n = 100; n <= 1000; n += 100) {
    RunningStats cent;
    RunningStats basic;
    RunningStats balanced;
    for (unsigned t = 0; t < kTrials; ++t) {
      const chord::RingView ring(space, chord::probed_ids(space, n, rng));
      const Id key = rng.next_id(space);
      cent.add(analysis::message_load(
                   ring, key, analysis::AggregationScheme::kCentralizedDirect)
                   .imbalance());
      basic.add(analysis::message_load(
                    ring, key, analysis::AggregationScheme::kBasicDat)
                    .imbalance());
      balanced.add(analysis::message_load(
                       ring, key, analysis::AggregationScheme::kBalancedDat)
                       .imbalance());
    }
    std::printf("%6zu %14.1f %12.1f %14.1f\n", n, cent.mean(), basic.mean(),
                balanced.mean());
  }
  return 0;
}
