// Ablation: successor-list size vs. resilience. Chord survives crashes as
// long as one successor-list entry outlives the failure burst. We crash 25%
// of a 48-node overlay at once and measure lookup availability immediately
// after the burst (before stabilization heals) and the virtual time until
// the ring fully re-converges.

#include <cstdio>

#include "harness/sim_cluster.hpp"

int main() {
  using namespace dat;
  constexpr std::size_t kNodes = 48;
  constexpr std::size_t kCrashes = 12;
  constexpr unsigned kLookups = 60;

  std::printf("# Ablation: successor-list size under a 25%% crash burst, n=%zu\n",
              kNodes);
  std::printf("%10s %16s %18s\n", "list-size", "lookup-ok", "reconverge(s)");

  for (const std::size_t list_size : {1ul, 2ul, 4ul, 8ul}) {
    harness::ClusterOptions options;
    options.seed = 9000 + list_size;
    options.node.successor_list_size = list_size;
    options.with_dat = false;
    harness::SimCluster cluster(kNodes, std::move(options));
    if (!cluster.wait_converged(600'000'000)) {
      std::printf("%10zu  (bootstrap failed to converge)\n", list_size);
      continue;
    }

    // Simultaneous crash burst: every 4th slot.
    for (std::size_t i = 1; i <= kCrashes; ++i) {
      cluster.remove_node(i * 4 - 1, /*graceful=*/false);
    }
    cluster.refresh_d0_hints();

    // Availability probe: lookups issued right after the burst.
    Rng rng(7);
    unsigned ok = 0;
    for (unsigned q = 0; q < kLookups; ++q) {
      std::size_t origin = rng.next_below(cluster.slot_count());
      while (!cluster.is_live(origin)) {
        origin = (origin + 1) % cluster.slot_count();
      }
      const Id key = rng.next_id(cluster.space());
      const Id expected = cluster.ring_view().successor(key);
      bool done = false;
      chord::NodeRef found;
      cluster.node(origin).find_successor(
          key, [&](net::RpcStatus st, chord::NodeRef n) {
            done = true;
            if (st == net::RpcStatus::kOk) found = n;
          });
      const auto deadline = cluster.engine().now() + 10'000'000;
      while (!done && cluster.engine().now() < deadline) {
        cluster.engine().run_steps(128);
      }
      if (done && found.id == expected) ++ok;
    }

    const std::uint64_t heal_start = cluster.engine().now();
    const bool reconverged = cluster.wait_converged(300'000'000);
    const double heal_s =
        reconverged
            ? (cluster.engine().now() - heal_start) / 1e6
            : -1.0;
    std::printf("%10zu %13u/%2u %18.1f\n", list_size, ok, kLookups, heal_s);
  }
  std::printf("\n(-1 reconverge = did not fully converge within 300 s;\n"
              " longer lists keep lookups correct through the burst)\n");
  return 0;
}
