// Reproduces the Sec. 5.1 methodology check: the RPC-based (real UDP
// sockets on loopback) and simulator-based setups share the same Chord and
// DAT layers and must yield consistent results for the topology metrics.
// We bring up the same-size overlay on both transports and compare the
// live balanced-DAT tree statistics.

#include <cstdio>
#include <optional>
#include <vector>

#include "harness/live_tree.hpp"
#include "harness/sim_cluster.hpp"
#include "harness/udp_cluster.hpp"

namespace {

using namespace dat;

harness::LiveTreeStats run_udp(std::size_t n, Id key) {
  harness::UdpClusterOptions options;
  options.seed = 1;
  options.with_dat = false;
  options.node.stabilize_interval_us = 50'000;
  options.node.fix_fingers_interval_us = 10'000;
  options.node.rpc.timeout_us = 200'000;
  harness::UdpCluster cluster(n, std::move(options));
  cluster.wait_converged();
  cluster.inject_d0_hints();

  std::vector<std::pair<Id, std::optional<Id>>> edges;
  for (std::size_t i = 0; i < n; ++i) {
    const auto parent =
        cluster.node(i).dat_parent(key, chord::RoutingScheme::kBalanced);
    edges.emplace_back(cluster.node(i).id(),
                       parent ? std::optional<Id>(parent->id) : std::nullopt);
  }
  return harness::live_tree_stats(edges);
}

harness::LiveTreeStats run_sim(std::size_t n, Id key) {
  harness::ClusterOptions options;
  options.seed = 4242;
  harness::SimCluster cluster(n, std::move(options));
  cluster.wait_converged(300'000'000);
  return harness::live_tree_stats(cluster, key,
                                  chord::RoutingScheme::kBalanced);
}

void print_row(const char* label, const harness::LiveTreeStats& s) {
  std::printf("%-12s %8zu %8zu %10zu %12zu %10.2f %8u\n", label, s.nodes,
              s.roots, s.reaching_root, s.max_branching,
              s.avg_branching_internal, s.height);
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 24;
  const IdSpace space(32);
  const Id key = core::rendezvous_key("cpu-usage", space);

  std::printf("# Transport consistency: same Chord+DAT layers on simulator vs UDP\n");
  std::printf("%-12s %8s %8s %10s %12s %10s %8s\n", "transport", "nodes",
              "roots", "reaching", "max-branch", "avg-branch", "height");
  print_row("simulator", run_sim(kNodes, key));
  print_row("udp-rpc", run_udp(kNodes, key));
  std::printf("\n(both transports should report one root, full reachability,\n"
              " and closely matching branching/height statistics)\n");
  return 0;
}
