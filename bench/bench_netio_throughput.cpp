// Throughput shoot-out between the legacy poll(2) loop and the netio epoll
// reactor on the paper's loopback testbed shape: 64 live instances in one
// process, each holding a window of echo RPCs against its ring neighbor.
// Reports msgs/sec, syscalls/msg and p50/p99 RPC latency for the legacy
// baseline and netio at 1/2/4 shards with coalescing on and off, then
// writes the whole table to BENCH_netio.json (see bench/json_out.hpp).
//
// Usage: bench_netio_throughput [--quick] [--nodes N] [--seconds S]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "json_out.hpp"
#include "net/rpc.hpp"
#include "net/udp_transport.hpp"
#include "netio/reactor_pool.hpp"

#ifndef DAT_GIT_SHA
#define DAT_GIT_SHA "unknown"
#endif

namespace {

using namespace dat;

struct NodeCtx {
  net::Transport* transport = nullptr;
  std::unique_ptr<net::RpcManager> rpc;
  net::Endpoint peer = net::kNullEndpoint;
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::uint64_t> latencies_us;  // shard-confined until joined
};

struct RunResult {
  std::string name;
  std::string backend;
  unsigned shards = 0;
  bool coalesce = false;
  double elapsed_s = 0;
  std::uint64_t completed = 0;   ///< echo round trips in the window
  double msgs_per_sec = 0;       ///< request+response frames per second
  double syscalls_per_msg = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t datagrams_out = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t coalesced_datagrams_out = 0;
};

net::RpcOptions bench_rpc_options() {
  net::RpcOptions options;
  options.timeout_us = 5'000'000;  // loopback: losses are scheduler stalls
  options.attempts = 1;            // no retransmissions polluting the counts
  return options;
}

/// Issues one echo call and re-issues from its completion, keeping the
/// node's window full until `stop` is raised.
void issue(NodeCtx& ctx, const std::atomic<bool>& stop) {
  const std::uint64_t start = ctx.transport->now_us();
  net::Writer body;
  body.u64(start);
  ctx.rpc->call(
      ctx.peer, "echo", body,
      [&ctx, &stop, start](net::RpcStatus status, net::Reader&) {
        if (status == net::RpcStatus::kOk) {
          ctx.latencies_us.push_back(ctx.transport->now_us() - start);
          ctx.completed.fetch_add(1, std::memory_order_relaxed);
        }
        if (!stop.load(std::memory_order_relaxed)) issue(ctx, stop);
      },
      bench_rpc_options());
}

std::vector<std::unique_ptr<NodeCtx>> make_ring(
    const std::vector<net::Transport*>& transports) {
  std::vector<std::unique_ptr<NodeCtx>> ctxs;
  ctxs.reserve(transports.size());
  for (net::Transport* t : transports) {
    auto ctx = std::make_unique<NodeCtx>();
    ctx->transport = t;
    ctx->rpc = std::make_unique<net::RpcManager>(*t);
    ctx->rpc->register_method(
        "echo", [](net::Endpoint, net::Reader& req, net::Writer& reply) {
          reply.u64(req.u64());
        });
    ctx->latencies_us.reserve(1 << 16);
    ctxs.push_back(std::move(ctx));
  }
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    ctxs[i]->peer = transports[(i + 1) % transports.size()]->local();
  }
  return ctxs;
}

std::uint64_t total_completed(
    const std::vector<std::unique_ptr<NodeCtx>>& ctxs) {
  std::uint64_t total = 0;
  for (const auto& ctx : ctxs) {
    total += ctx->completed.load(std::memory_order_relaxed);
  }
  return total;
}

void finish(RunResult& result, std::uint64_t completed, double elapsed_s,
            std::uint64_t syscalls,
            std::vector<std::unique_ptr<NodeCtx>>& ctxs) {
  result.completed = completed;
  result.elapsed_s = elapsed_s;
  const double msgs = 2.0 * static_cast<double>(completed);  // req + resp
  result.msgs_per_sec = elapsed_s > 0 ? msgs / elapsed_s : 0;
  result.syscalls = syscalls;
  result.syscalls_per_msg =
      msgs > 0 ? static_cast<double>(syscalls) / msgs : 0;
  std::vector<std::uint64_t> latencies;
  for (auto& ctx : ctxs) {
    latencies.insert(latencies.end(), ctx->latencies_us.begin(),
                     ctx->latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    result.p50_us = static_cast<double>(latencies[latencies.size() / 2]);
    result.p99_us =
        static_cast<double>(latencies[latencies.size() * 99 / 100]);
  }
}

RunResult run_legacy(std::size_t nodes, unsigned window,
                     std::uint64_t duration_us) {
  RunResult result;
  result.name = "legacy-poll";
  result.backend = "poll";

  net::UdpNetwork network;
  std::vector<net::Transport*> transports;
  transports.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    transports.push_back(&network.add_node());
  }
  auto ctxs = make_ring(transports);

  std::atomic<bool> stop{false};
  for (auto& ctx : ctxs) {
    for (unsigned w = 0; w < window; ++w) issue(*ctx, stop);
  }
  const auto t0 = std::chrono::steady_clock::now();
  network.run_for(duration_us);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::uint64_t completed = total_completed(ctxs);
  const net::LoopCounters loop = network.loop_counters();
  stop.store(true, std::memory_order_relaxed);
  network.run_for(100'000);  // drain the in-flight tail before teardown

  finish(result, completed, elapsed_s,
         loop.poll_syscalls + loop.recv_syscalls + loop.send_syscalls, ctxs);
  return result;
}

RunResult run_netio(std::size_t nodes, unsigned window, unsigned shards,
                    bool coalesce, std::uint64_t duration_us) {
  RunResult result;
  result.name = "netio-" + std::to_string(shards) + "shard-" +
                (coalesce ? std::string("coalesce") : std::string("raw"));
  result.backend = "netio";
  result.shards = shards;
  result.coalesce = coalesce;

  netio::ReactorPoolOptions options;
  options.shards = shards;
  options.reactor.coalesce = coalesce;
  netio::ReactorPool pool(options);
  std::vector<net::Transport*> transports;
  transports.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    transports.push_back(&pool.add_node());
  }
  auto ctxs = make_ring(transports);

  std::atomic<bool> stop{false};
  pool.start();
  for (auto& ctx : ctxs) {
    NodeCtx* raw = ctx.get();
    // RpcManager and the latency vector are shard-confined; the window is
    // opened from the node's own shard.
    pool.shard_of(raw->transport->local())->post([raw, &stop, window] {
      for (unsigned w = 0; w < window; ++w) issue(*raw, stop);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  const netio::ReactorCounters before = pool.counters();
  const std::uint64_t completed_before = total_completed(ctxs);
  std::this_thread::sleep_for(std::chrono::microseconds(duration_us));
  const std::uint64_t completed =
      total_completed(ctxs) - completed_before;
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  netio::ReactorCounters during = pool.counters();
  stop.store(true, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  pool.stop();

  result.datagrams_out = during.datagrams_out - before.datagrams_out;
  result.frames_out = during.frames_out - before.frames_out;
  result.coalesced_datagrams_out =
      during.coalesced_datagrams_out - before.coalesced_datagrams_out;
  const std::uint64_t syscalls =
      (during.epoll_waits - before.epoll_waits) +
      (during.recv_syscalls - before.recv_syscalls) +
      (during.send_syscalls - before.send_syscalls);
  finish(result, completed, elapsed_s, syscalls, ctxs);
  return result;
}

void print_row(const RunResult& r) {
  std::printf("%-22s %12.0f msgs/s  %6.2f syscalls/msg  p50 %7.0f us  "
              "p99 %7.0f us  (%llu round trips)\n",
              r.name.c_str(), r.msgs_per_sec, r.syscalls_per_msg, r.p50_us,
              r.p99_us, static_cast<unsigned long long>(r.completed));
}

benchjson::Object to_json(const RunResult& r) {
  benchjson::Object o;
  o.put("name", r.name)
      .put("backend", r.backend)
      .put("shards", r.shards)
      .put("coalesce", r.coalesce)
      .put("elapsed_s", r.elapsed_s)
      .put("round_trips", r.completed)
      .put("msgs_per_sec", r.msgs_per_sec)
      .put("syscalls_per_msg", r.syscalls_per_msg)
      .put("p50_us", r.p50_us)
      .put("p99_us", r.p99_us)
      .put("syscalls", r.syscalls)
      .put("datagrams_out", r.datagrams_out)
      .put("frames_out", r.frames_out)
      .put("coalesced_datagrams_out", r.coalesced_datagrams_out);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 64;
  double seconds = 2.0;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--nodes N] [--seconds S]\n", argv[0]);
      return 2;
    }
  }
  if (quick) seconds = std::min(seconds, 0.4);
  const auto duration_us = static_cast<std::uint64_t>(seconds * 1e6);
  constexpr unsigned kWindow = 16;

  std::printf("netio throughput: %zu nodes, window %u, %.1fs per config, "
              "mmsg %s\n\n",
              nodes, kWindow, seconds,
              netio::mmsg_compiled() ? "compiled" : "unavailable");

  std::vector<RunResult> results;
  results.push_back(run_legacy(nodes, kWindow, duration_us));
  print_row(results.back());
  for (const unsigned shards : {1u, 2u, 4u}) {
    for (const bool coalesce : {false, true}) {
      results.push_back(
          run_netio(nodes, kWindow, shards, coalesce, duration_us));
      print_row(results.back());
    }
  }

  const double legacy_rate = results.front().msgs_per_sec;
  double best_rate = 0;
  std::string best_name;
  for (const RunResult& r : results) {
    if (r.backend == "netio" && r.msgs_per_sec > best_rate) {
      best_rate = r.msgs_per_sec;
      best_name = r.name;
    }
  }
  const double speedup = legacy_rate > 0 ? best_rate / legacy_rate : 0;
  std::printf("\nbest netio config: %s at %.2fx the legacy poll loop\n",
              best_name.c_str(), speedup);

  benchjson::Object config;
  config.put("nodes", static_cast<std::uint64_t>(nodes))
      .put("window", kWindow)
      .put("seconds_per_config", seconds)
      .put("quick", quick)
      .put("mmsg_compiled", netio::mmsg_compiled());
  std::vector<benchjson::Object> rows;
  rows.reserve(results.size());
  for (const RunResult& r : results) rows.push_back(to_json(r));
  benchjson::Object root;
  root.put("suite", "netio_throughput")
      .put("git_sha", DAT_GIT_SHA)
      .put("config", config)
      .put("results", rows)
      .put("best_netio", best_name)
      .put("speedup_best_vs_legacy", speedup);
  const std::string path = benchjson::write_suite("netio", root);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
