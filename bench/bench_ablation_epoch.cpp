// Ablation: the continuous-mode epoch length trades monitoring freshness
// against message overhead (the knob behind Fig. 9's accuracy). For a
// 128-node trace-driven Grid we sweep the push period and report the
// same-time tracking error of the root's global SUM plus the per-node
// update rate.

#include <cstdio>
#include <vector>

#include "common/stats.hpp"
#include "harness/sim_cluster.hpp"
#include "trace/cpu_trace.hpp"

int main() {
  using namespace dat;
  constexpr std::size_t kNodes = 128;
  constexpr double kMeasureS = 1800.0;  // 30 min window

  std::printf("# Ablation: epoch length vs accuracy and overhead, n=%zu\n",
              kNodes);
  std::printf("%10s %12s %12s %16s\n", "epoch(s)", "pearson-r", "mre",
              "updates/node/min");

  const trace::CpuTrace cpu =
      trace::CpuTrace::synthesize(trace::TraceConfig{}, 99);

  for (const std::uint64_t epoch_us :
       {500'000ull, 1'000'000ull, 2'000'000ull, 5'000'000ull,
        10'000'000ull, 30'000'000ull}) {
    harness::ClusterOptions options;
    options.seed = 77;
    options.dat.epoch_us = epoch_us;
    options.node.stabilize_interval_us = 2'000'000;
    options.node.fix_fingers_interval_us = 1'000'000;
    harness::SimCluster cluster(kNodes, std::move(options));
    cluster.wait_converged(600'000'000);

    sim::Engine& engine = cluster.engine();
    const std::uint64_t t0 = engine.now();
    Id key = 0;
    for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
      key = cluster.dat(i).start_aggregate(
          "cpu", core::AggregateKind::kSum, chord::RoutingScheme::kBalanced,
          [&engine, &cpu, t0]() { return cpu.at((engine.now() - t0) / 1e6); });
    }
    cluster.run_for(12 * epoch_us);  // fill the pipeline

    std::uint64_t updates_before = 0;
    for (std::size_t i = 0; i < kNodes; ++i) {
      updates_before += cluster.dat(i).updates_sent(key);
    }

    const Id root_id = cluster.ring_view().successor(key);
    std::size_t root_slot = 0;
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (cluster.node(i).id() == root_id) root_slot = i;
    }

    std::vector<double> actual;
    std::vector<double> aggregated;
    const std::uint64_t start = engine.now();
    while (engine.now() - start < static_cast<std::uint64_t>(kMeasureS * 1e6)) {
      cluster.run_for(10'000'000);  // sample every 10 s
      const auto g = cluster.dat(root_slot).latest(key);
      if (!g) continue;
      actual.push_back(cpu.at((engine.now() - t0) / 1e6) *
                       static_cast<double>(kNodes));
      aggregated.push_back(g->state.sum);
    }
    std::uint64_t updates_after = 0;
    for (std::size_t i = 0; i < kNodes; ++i) {
      updates_after += cluster.dat(i).updates_sent(key);
    }
    const double per_node_per_min =
        static_cast<double>(updates_after - updates_before) /
        static_cast<double>(kNodes) / (kMeasureS / 60.0);

    std::printf("%10.1f %12.3f %12.3f %16.1f\n", epoch_us / 1e6,
                pearson(actual, aggregated),
                mean_relative_error(aggregated, actual), per_node_per_min);
  }
  std::printf("\n(short epochs track the signal tightly at proportionally\n"
              " higher message cost; the tree keeps overhead at one message\n"
              " per node per epoch regardless of n)\n");
  return 0;
}
