// Reproduces Fig. 9: continuous aggregation of the global total CPU usage
// in a simulated 512-node Grid over a 2-hour trace. The paper replays a
// recorded Sun Fire v880 trace on every node; we replay a synthetic trace
// with the same structure (see DESIGN.md substitutions) through the full
// live protocol stack (Chord + balanced DAT, continuous mode).
//
// Fig. 9(a): actual vs aggregated total usage over time.
// Fig. 9(b): scatter of actual vs aggregated — summarized here by the
// Pearson correlation and mean relative error (paper: "points are
// clustered around the diagonal").

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/stats.hpp"
#include "dat/dat_node.hpp"
#include "harness/sim_cluster.hpp"
#include "trace/cpu_trace.hpp"

int main() {
  using namespace dat;
  constexpr std::size_t kNodes = 512;
  constexpr std::uint64_t kEpochUs = 2'000'000;       // 2 s push period
  constexpr std::uint64_t kSampleUs = 10'000'000;     // sample every 10 s
  constexpr double kDurationS = 7200.0;               // 2 hours
  constexpr std::uint64_t kReportEveryUs = 180'000'000;  // 3 min rows

  const trace::TraceConfig trace_config{};  // 2 h, 5 s samples
  const trace::CpuTrace cpu = trace::CpuTrace::synthesize(trace_config, 7);

  harness::ClusterOptions options;
  options.seed = 512;
  // Relaxed maintenance cadence: the ring is static during the measurement,
  // matching the paper's steady-state accuracy experiment.
  options.node.stabilize_interval_us = 2'000'000;
  options.node.fix_fingers_interval_us = 1'000'000;
  options.node.check_predecessor_interval_us = 5'000'000;
  options.dat.epoch_us = kEpochUs;
  options.join_settle_us = 100'000;

  std::fprintf(stderr, "bootstrapping %zu-node overlay...\n", kNodes);
  harness::SimCluster cluster(kNodes, std::move(options));
  const bool converged = cluster.wait_converged(600'000'000);
  std::fprintf(stderr, "converged=%d at t=%.1fs\n", converged,
               cluster.engine().now() / 1e6);

  // Every node replays the identical trace (the paper's setup) and feeds a
  // SUM aggregate over the balanced DAT.
  const std::uint64_t t0 = cluster.engine().now();
  Id key = 0;
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    if (!cluster.is_live(i)) continue;
    sim::Engine& engine = cluster.engine();
    key = cluster.dat(i).start_aggregate(
        "cpu-usage-total", core::AggregateKind::kSum,
        chord::RoutingScheme::kBalanced, [&engine, &cpu, t0]() {
          return cpu.at((engine.now() - t0) / 1e6);
        });
  }

  // Warm-up: let the pipeline fill (tree height ~ log2 512 = 9 epochs).
  cluster.run_for(12 * kEpochUs);

  std::printf("# Fig 9(a): actual vs aggregated total CPU usage, n=%zu\n",
              kNodes);
  std::printf("%10s %16s %16s %10s\n", "t(min)", "actual-total",
              "aggregated", "nodes");

  std::vector<double> actual_series;
  std::vector<double> agg_series;
  const std::uint64_t measure_start = cluster.engine().now();
  std::uint64_t next_report = measure_start;
  while (cluster.engine().now() - measure_start <
         static_cast<std::uint64_t>(kDurationS * 1e6)) {
    cluster.run_for(kSampleUs);
    const double t_s = (cluster.engine().now() - t0) / 1e6;
    const double actual = cpu.at(t_s) * static_cast<double>(kNodes);
    // The root is whichever node owns the key; poll all slots for it.
    std::optional<core::GlobalValue> g;
    for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
      if (!cluster.is_live(i)) continue;
      if (auto v = cluster.dat(i).latest(key)) {
        g = v;
        break;
      }
    }
    if (!g) continue;
    actual_series.push_back(actual);
    agg_series.push_back(g->state.sum);
    if (cluster.engine().now() >= next_report) {
      std::printf("%10.1f %16.0f %16.0f %10llu\n",
                  (cluster.engine().now() - measure_start) / 6e7,
                  actual, g->state.sum,
                  static_cast<unsigned long long>(g->state.count));
      next_report += kReportEveryUs;
    }
  }

  std::printf("\n# Fig 9(b): actual vs aggregated scatter summary\n");
  std::printf("samples:            %zu\n", actual_series.size());
  std::printf("pearson r:          %.4f\n",
              pearson(actual_series, agg_series));
  std::printf("mean rel. error:    %.4f\n",
              mean_relative_error(agg_series, actual_series));
  // The aggregate lags by ~height epochs; the lag-compensated correlation
  // isolates pipeline delay from aggregation error.
  double best = -1.0;
  for (std::size_t lag = 0; lag <= 6; ++lag) {
    const std::vector<double> a(actual_series.begin(),
                                actual_series.end() - lag);
    const std::vector<double> g(agg_series.begin() + lag, agg_series.end());
    best = std::max(best, pearson(a, g));
  }
  std::printf("lag-compensated r:  %.4f\n", best);
  return 0;
}
