// Reproduces Fig. 7(a): maximal branching factor vs. network size for the
// basic and balanced DAT schemes, with and without identifier probing.
//
// Paper shape: basic DAT grows ~log n (43 @ 8192 random ids, 16 with
// probing); balanced DAT is ~constant (≈4) with probing and ~log n without.

#include <cstdio>

#include "analysis/tree_metrics.hpp"

int main() {
  using namespace dat;
  constexpr unsigned kBits = 32;
  constexpr unsigned kTrials = 3;
  constexpr unsigned kKeys = 4;

  std::printf("# Fig 7(a): maximal branching factor vs network size\n");
  std::printf("%8s %18s %18s %18s %18s\n", "n", "basic/random",
              "basic/probed", "balanced/random", "balanced/probed");

  Rng rng(20070326);  // IPDPS 2007
  for (std::size_t n = 16; n <= 8192; n *= 2) {
    std::size_t cells[4] = {};
    int c = 0;
    for (const auto scheme :
         {chord::RoutingScheme::kGreedy, chord::RoutingScheme::kBalanced}) {
      for (const auto assignment :
           {chord::IdAssignment::kRandom, chord::IdAssignment::kProbed}) {
        const auto props = analysis::measure_tree_properties(
            kBits, n, scheme, assignment, kTrials, kKeys, rng);
        cells[c++] = props.max_branching;
      }
    }
    std::printf("%8zu %18zu %18zu %18zu %18zu\n", n, cells[0], cells[1],
                cells[2], cells[3]);
  }
  return 0;
}
