// Micro-benchmarks (google-benchmark) of the hot paths underneath the
// experiments: SHA-1 hashing, wire codec round-trips, routing next-hop
// selection, full tree construction, and the event queue. Results also land
// in BENCH_micro.json (google-benchmark's JSON schema, tagged with the git
// sha) for CI artifact archival.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "chord/id_assignment.hpp"
#include "chord/ring_view.hpp"
#include "chord/routing.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "dat/tree.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace dat;

void BM_Sha1HashToId(benchmark::State& state) {
  const IdSpace space(32);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Sha1::hash_to_id("node:" + std::to_string(i++), space));
  }
}
BENCHMARK(BM_Sha1HashToId);

void BM_MessageCodecRoundTrip(benchmark::State& state) {
  net::Message msg;
  msg.method = "chord.lookup_step";
  msg.kind = net::MessageKind::kRequest;
  msg.request_id = 77;
  net::Writer w;
  w.u64(123456789);
  w.f64(3.14);
  w.str("payload-payload-payload");
  msg.body = w.take();
  for (auto _ : state) {
    const auto wire = msg.encode();
    benchmark::DoNotOptimize(net::Message::decode(wire));
  }
}
BENCHMARK(BM_MessageCodecRoundTrip);

void BM_NextHopBalanced(benchmark::State& state) {
  const IdSpace space(32);
  Rng rng(1);
  const auto ids = chord::probed_ids(space, 4096, rng);
  const chord::RingView ring(space, ids);
  const auto fingers = ring.finger_ids(ids[100]);
  const Id key = rng.next_id(space);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chord::next_hop_balanced(
        space, ids[100], key, fingers, false, space.size(), ids.size()));
  }
}
BENCHMARK(BM_NextHopBalanced);

void BM_TreeBuild(benchmark::State& state) {
  const IdSpace space(32);
  Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = chord::probed_ids(space, n, rng);
  const chord::RingView ring(space, ids);
  for (auto _ : state) {
    core::Tree tree(ring, 12345, chord::RoutingScheme::kBalanced);
    benchmark::DoNotOptimize(tree.max_branching());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TreeBuild)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_MetricsCounterInc(benchmark::State& state) {
  // The instrumented-hot-path cost every layer pays per event: one relaxed
  // atomic add through a borrowed instrument pointer.
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench_counter_total");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("bench_hist");
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.observe(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG spread
  }
  benchmark::DoNotOptimize(hist.sum());
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    std::uint64_t fired = 0;
    for (int i = 0; i < 1000; ++i) {
      queue.schedule_at(static_cast<sim::SimTime>((i * 7919) % 1000),
                        [&fired]() { ++fired; });
    }
    while (!queue.empty()) queue.run_next();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventQueueChurn);

}  // namespace

#ifndef DAT_GIT_SHA
#define DAT_GIT_SHA "unknown"
#endif

int main(int argc, char** argv) {
  benchmark::AddCustomContext("git_sha", DAT_GIT_SHA);
  benchmark::AddCustomContext("suite", "micro");
  // Default the JSON artifact on (console output stays untouched); an
  // explicit --benchmark_out on the command line wins.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  const bool has_out = std::any_of(
      args.begin(), args.end(), [](const char* arg) {
        return std::string_view(arg).starts_with("--benchmark_out=");
      });
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
