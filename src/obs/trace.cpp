#include "obs/trace.hpp"

namespace dat::obs {

namespace {

/// splitmix64 — the standard 64-bit mixer; one step per generated id gives
/// a deterministic, well-spread stream per node.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return z;
}

}  // namespace

FlightRecorder::FlightRecorder(std::uint64_t id_seed, std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      // Mix the seed once so consecutive node seeds (0, 1, 2, ...) still
      // yield unrelated id streams; never generate id 0 (0 = "no trace").
      id_state_(id_seed ^ 0x6a09e667f3bcc909ULL) {
  ring_.reserve(capacity_);
}

std::uint64_t FlightRecorder::new_trace_id() {
  const std::scoped_lock lock(mutex_);
  std::uint64_t id = 0;
  while (id == 0) id = splitmix64(id_state_);
  return id;
}

std::uint64_t FlightRecorder::new_span_id() { return new_trace_id(); }

void FlightRecorder::record(const Span& span) {
  const std::scoped_lock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[recorded_ % capacity_] = span;
  }
  ++recorded_;
}

std::vector<Span> FlightRecorder::spans() const {
  const std::scoped_lock lock(mutex_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: the oldest span sits at the next write position.
    const std::size_t head = recorded_ % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

std::vector<Span> FlightRecorder::spans_for(std::uint64_t trace_id) const {
  std::vector<Span> out = spans();
  std::erase_if(out, [&](const Span& s) { return s.trace_id != trace_id; });
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  const std::scoped_lock lock(mutex_);
  return recorded_;
}

void FlightRecorder::clear() {
  const std::scoped_lock lock(mutex_);
  ring_.clear();
  recorded_ = 0;
}

}  // namespace dat::obs
