#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dat::obs {

/// Crash postmortems: on SIGSEGV / SIGABRT / SIGBUS, dump the last refreshed
/// telemetry (FlightRecorder span ring + metrics snapshot) to
/// `postmortem-<pid>.json` and re-raise the signal with its default
/// disposition, so the supervisor still observes the real termination
/// signal.
///
/// The split that makes this async-signal-safe: the expensive rendering
/// (locks, allocation, JSON escaping) runs in normal context via refresh(),
/// which fills one of two pre-reserved buffers and flips an atomic index.
/// The signal handler only open()s a pre-rendered path and write()s the
/// published buffer plus a small integer-formatted header — every call in
/// the handler is on the POSIX async-signal-safe list, and a crash landing
/// mid-refresh still finds the previously published buffer intact.
///
/// Process-global by nature (signal dispositions are): install() replaces
/// any previous installation. The recorder/registry pointers must stay
/// valid until uninstall() — in the daemon they live for the whole main().
class Postmortem {
 public:
  struct Config {
    /// Directory the dump is written into (created files are named
    /// postmortem-<pid>.json). Empty disables installation.
    std::string directory = ".";
    const FlightRecorder* recorder = nullptr;  ///< optional span source
    const MetricsRegistry* registry = nullptr; ///< optional metrics source
    /// Most recent spans included in a dump (bounds refresh cost).
    std::size_t max_spans = 128;
    /// Pre-reserved render buffer size; refreshes are truncated to fit, so
    /// a crash can never allocate.
    std::size_t buffer_bytes = 256 * 1024;
  };

  /// Installs the SIGSEGV/SIGABRT/SIGBUS handlers and performs an initial
  /// refresh(). Returns false (and installs nothing) when the directory is
  /// empty.
  static bool install(Config config);

  /// Re-renders the telemetry body into the standby buffer and publishes
  /// it. Call periodically from the event loop (each metrics period is
  /// plenty); the dump is only as fresh as the last refresh.
  static void refresh();

  /// Restores default signal dispositions and drops the config.
  static void uninstall();

  /// True while handlers are installed.
  [[nodiscard]] static bool installed() noexcept;

  /// The path a dump would be written to (empty when not installed).
  [[nodiscard]] static std::string dump_path();

  /// Renders and writes a dump immediately from normal context, tagged
  /// with `signal` — the testable face of the crash path (same buffers,
  /// same writer, no signal required). Returns true when fully written.
  static bool write_now(int signal);
};

/// Name of the postmortem dump a process with `pid` would write.
[[nodiscard]] std::string postmortem_file_name(std::int64_t pid);

}  // namespace dat::obs
