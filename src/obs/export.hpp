#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace dat::obs {

/// Renders a snapshot in the Prometheus text exposition format (0.0.4):
/// one `# TYPE` line per metric family, `{label="value"}` series, and
/// histograms expanded into cumulative `_bucket{le=...}` plus `_sum` and
/// `_count` series. Ready to serve on /metrics or feed promtool.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Renders a snapshot as a self-describing JSON document
/// (`"schema": "dat.metrics.v1"`), the format the periodic dump writes and
/// the CI metrics-smoke job validates with jq.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Serialization format selector for dump options and CLI flags.
enum class ExportFormat : std::uint8_t { kJson = 0, kPrometheus = 1 };

[[nodiscard]] std::string render(const MetricsSnapshot& snapshot,
                                 ExportFormat format);

/// JSON string escaping per RFC 8259 (shared by the exporters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace dat::obs
