#include "obs/runtime.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>

#ifndef DAT_BUILD_SHA
#define DAT_BUILD_SHA "unknown"
#endif
#ifndef DAT_BUILD_VERSION
#define DAT_BUILD_VERSION "dev"
#endif

namespace dat::obs {

const char* build_sha() noexcept { return DAT_BUILD_SHA; }
const char* build_version() noexcept { return DAT_BUILD_VERSION; }

namespace {
std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

std::uint64_t process_rss_bytes() {
  // statm field 2 is resident pages; multiplied out here so consumers never
  // need the page size. Collector-path code: runs at scrape cadence only.
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long total_pages = 0;
  unsigned long long resident_pages = 0;
  const int fields =
      std::fscanf(statm, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(statm);
  if (fields != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::uint64_t>(resident_pages) *
         static_cast<std::uint64_t>(page);
}

ProcessRuntime::ProcessRuntime(MetricsRegistry& registry,
                               std::uint64_t incarnation, std::string backend)
    : registry_(registry),
      incarnation_(incarnation),
      backend_(std::move(backend)),
      start_us_(steady_now_us()) {
  collector_id_ = registry_.add_collector([this](MetricsSnapshot& out) {
    const auto add = [&out](const char* name, double value) {
      Sample s;
      s.name = name;
      s.type = MetricType::kGauge;
      s.value = value;
      out.samples.push_back(std::move(s));
    };
    add("dat_daemon_uptime_us", static_cast<double>(uptime_us()));
    add("dat_daemon_incarnation", static_cast<double>(incarnation_));
    add("dat_daemon_pid", static_cast<double>(::getpid()));
    add("dat_daemon_rss_bytes", static_cast<double>(process_rss_bytes()));
    Sample info;
    info.name = "dat_build_info";
    info.type = MetricType::kGauge;
    info.labels = canonical_labels({{"sha", build_sha()},
                                    {"version", build_version()},
                                    {"backend", backend_}});
    info.value = 1.0;
    out.samples.push_back(std::move(info));
  });
}

ProcessRuntime::~ProcessRuntime() { registry_.remove_collector(collector_id_); }

std::uint64_t ProcessRuntime::uptime_us() const {
  return steady_now_us() - start_us_;
}

}  // namespace dat::obs
