#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace dat::obs {

/// Spans recorded by one node's flight recorder, tagged with the display
/// identity Chrome should show for that node.
struct NodeSpans {
  std::string node_name;  ///< e.g. "node-3 (id 0x1a2b3c4d)"
  std::uint64_t pid = 0;  ///< Chrome process id; use the node's slot index
  std::vector<Span> spans;
};

/// Renders spans from many flight recorders as a Chrome trace-event JSON
/// document (load in chrome://tracing or https://ui.perfetto.dev). Each
/// node becomes a "process"; spans are complete ("X") events; cross-node
/// parent links become flow arrows, so one aggregation wave renders as a
/// chain of arrows climbing the DAT tree from the leaves to the root.
/// Pass trace_id to restrict the document to one wave, or 0 for all spans.
[[nodiscard]] std::string to_chrome_trace(const std::vector<NodeSpans>& nodes,
                                          std::uint64_t trace_id = 0);

}  // namespace dat::obs
