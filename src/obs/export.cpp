#include "obs/export.hpp"

#include <cstdio>
#include <set>

namespace dat::obs {

namespace {

/// Formats a double the way Prometheus expects: integers without a
/// fractional part, everything else with enough digits to round-trip.
std::string format_value(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}` (empty string for no labels); `extra` appends one
/// more pair, used for the histogram `le` label.
std::string prom_labels(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + prom_escape(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

/// Index of the last bucket worth emitting: the highest non-empty one
/// (everything above it adds nothing to the cumulative counts).
std::size_t last_used_bucket(const std::vector<std::uint64_t>& buckets) {
  std::size_t last = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] != 0) last = i;
  }
  return last;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::set<std::string> typed;  // one # TYPE line per family
  for (const Sample& s : snapshot.samples) {
    if (typed.insert(s.name).second) {
      out += "# TYPE " + s.name + " " + to_string(s.type) + "\n";
    }
    if (s.type != MetricType::kHistogram) {
      out += s.name + prom_labels(s.labels) + " " + format_value(s.value) +
             "\n";
      continue;
    }
    std::uint64_t cumulative = 0;
    const std::size_t last = last_used_bucket(s.buckets);
    for (std::size_t i = 0; i <= last && i < s.buckets.size(); ++i) {
      cumulative += s.buckets[i];
      out += s.name + "_bucket" +
             prom_labels(s.labels, "le=\"" +
                                       std::to_string(Histogram::bucket_upper(
                                           i)) +
                                       "\"") +
             " " + std::to_string(cumulative) + "\n";
    }
    out += s.name + "_bucket" + prom_labels(s.labels, "le=\"+Inf\"") + " " +
           std::to_string(s.count) + "\n";
    out += s.name + "_sum" + prom_labels(s.labels) + " " +
           std::to_string(s.sum) + "\n";
    out += s.name + "_count" + prom_labels(s.labels) + " " +
           std::to_string(s.count) + "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"schema\":\"dat.metrics.v1\",\"metrics\":[";
  bool first_metric = true;
  for (const Sample& s : snapshot.samples) {
    if (!first_metric) out += ',';
    first_metric = false;
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"type\":\"" +
           to_string(s.type) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : s.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    out += '}';
    if (s.type != MetricType::kHistogram) {
      out += ",\"value\":" + format_value(s.value);
    } else {
      out += ",\"count\":" + std::to_string(s.count) +
             ",\"sum\":" + std::to_string(s.sum) + ",\"buckets\":[";
      std::uint64_t cumulative = 0;
      const std::size_t last = last_used_bucket(s.buckets);
      for (std::size_t i = 0; i <= last && i < s.buckets.size(); ++i) {
        cumulative += s.buckets[i];
        if (i != 0) out += ',';
        out += "{\"le\":" + std::to_string(Histogram::bucket_upper(i)) +
               ",\"count\":" + std::to_string(cumulative) + "}";
      }
      out += "]";
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string render(const MetricsSnapshot& snapshot, ExportFormat format) {
  return format == ExportFormat::kPrometheus ? to_prometheus(snapshot)
                                             : to_json(snapshot);
}

}  // namespace dat::obs
