#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace dat::obs {

/// Git revision and semantic version baked in at configure time (CMake
/// passes DAT_BUILD_SHA / DAT_BUILD_VERSION; "unknown" / "dev" otherwise).
[[nodiscard]] const char* build_sha() noexcept;
[[nodiscard]] const char* build_version() noexcept;

/// Process-level runtime telemetry for a daemon: registers a snapshot-time
/// collector emitting
///
///   dat_daemon_uptime_us     gauge  microseconds since construction
///   dat_daemon_incarnation   gauge  restart generation (supervisor-managed)
///   dat_daemon_pid           gauge  OS process id
///   dat_daemon_rss_bytes     gauge  resident set size (0 if unreadable)
///   dat_build_info           gauge  constant 1 with sha/version/backend
///                                   labels (mixed-version fleets show up as
///                                   distinct label sets during rolling
///                                   restarts)
///
/// The chaos supervisor scrapes these to tell a restarted daemon from the
/// incarnation it replaced, and the health snapshot reports uptime from the
/// same clock. Unregisters itself on destruction.
class ProcessRuntime {
 public:
  ProcessRuntime(MetricsRegistry& registry, std::uint64_t incarnation,
                 std::string backend = {});
  ~ProcessRuntime();

  ProcessRuntime(const ProcessRuntime&) = delete;
  ProcessRuntime& operator=(const ProcessRuntime&) = delete;

  [[nodiscard]] std::uint64_t uptime_us() const;
  [[nodiscard]] std::uint64_t incarnation() const noexcept {
    return incarnation_;
  }

 private:
  MetricsRegistry& registry_;
  std::uint64_t incarnation_;
  std::string backend_;
  std::uint64_t start_us_;
  std::uint64_t collector_id_;
};

/// Resident set size of the calling process in bytes, via /proc/self/statm;
/// 0 when the proc filesystem is unavailable.
[[nodiscard]] std::uint64_t process_rss_bytes();

}  // namespace dat::obs
