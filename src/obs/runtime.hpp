#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace dat::obs {

/// Process-level runtime telemetry for a daemon: registers a snapshot-time
/// collector emitting
///
///   dat_daemon_uptime_us     gauge  microseconds since construction
///   dat_daemon_incarnation   gauge  restart generation (supervisor-managed)
///   dat_daemon_pid           gauge  OS process id
///   dat_daemon_rss_bytes     gauge  resident set size (0 if unreadable)
///
/// The chaos supervisor scrapes these to tell a restarted daemon from the
/// incarnation it replaced, and the health snapshot reports uptime from the
/// same clock. Unregisters itself on destruction.
class ProcessRuntime {
 public:
  ProcessRuntime(MetricsRegistry& registry, std::uint64_t incarnation);
  ~ProcessRuntime();

  ProcessRuntime(const ProcessRuntime&) = delete;
  ProcessRuntime& operator=(const ProcessRuntime&) = delete;

  [[nodiscard]] std::uint64_t uptime_us() const;
  [[nodiscard]] std::uint64_t incarnation() const noexcept {
    return incarnation_;
  }

 private:
  MetricsRegistry& registry_;
  std::uint64_t incarnation_;
  std::uint64_t start_us_;
  std::uint64_t collector_id_;
};

/// Resident set size of the calling process in bytes, via /proc/self/statm;
/// 0 when the proc filesystem is unavailable.
[[nodiscard]] std::uint64_t process_rss_bytes();

}  // namespace dat::obs
