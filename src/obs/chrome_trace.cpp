#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/export.hpp"

namespace dat::obs {

namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Shared fields of one trace event: phase, name, pid and timestamp (the
/// Chrome trace format counts ts/dur in microseconds, matching ours).
std::string event_head(const char* ph, const std::string& name,
                       std::uint64_t pid, std::uint64_t ts) {
  return std::string("{\"ph\":\"") + ph + "\",\"name\":\"" +
         json_escape(name) + "\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"ts\":" + std::to_string(ts);
}

}  // namespace

std::string to_chrome_trace(const std::vector<NodeSpans>& nodes,
                            std::uint64_t trace_id) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](std::string event) {
    if (!first) out += ',';
    first = false;
    out += event;
  };

  for (const NodeSpans& node : nodes) {
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
         std::to_string(node.pid) + ",\"args\":{\"name\":\"" +
         json_escape(node.node_name) + "\"}}");
  }

  for (const NodeSpans& node : nodes) {
    for (const Span& s : node.spans) {
      if (trace_id != 0 && s.trace_id != trace_id) continue;
      // Chrome drops zero-duration complete events in some views; clamp to
      // a visible 1us.
      const std::uint64_t dur = std::max<std::uint64_t>(
          1, s.end_us >= s.start_us ? s.end_us - s.start_us : 0);
      std::string ev = event_head("X", s.name, node.pid, s.start_us) +
                       ",\"dur\":" + std::to_string(dur) +
                       ",\"cat\":\"dat\",\"args\":{\"trace\":\"" +
                       hex_u64(s.trace_id) + "\",\"span\":\"" +
                       hex_u64(s.span_id) + "\",\"parent\":\"" +
                       hex_u64(s.parent_span_id) + "\"";
      if (s.key != 0) ev += ",\"key\":\"" + hex_u64(s.key) + "\"";
      if (s.epoch != 0) ev += ",\"epoch\":" + std::to_string(s.epoch);
      if (s.peer != 0) ev += ",\"peer\":\"" + hex_u64(s.peer) + "\"";
      ev += "}}";
      emit(std::move(ev));

      // Flow arrows: every span opens a flow under its own span id when it
      // ends, and binds to its parent's flow when it starts — chaining
      // leaf send -> parent receive -> parent send -> ... -> root.
      emit(event_head("s", "wave", node.pid, s.end_us) +
           ",\"cat\":\"dat\",\"id\":\"" + hex_u64(s.span_id) + "\"}");
      if (s.parent_span_id != 0) {
        emit(event_head("f", "wave", node.pid, s.start_us) +
             ",\"cat\":\"dat\",\"bp\":\"e\",\"id\":\"" +
             hex_u64(s.parent_span_id) + "\"}");
      }
    }
  }
  out += "]}";
  return out;
}

}  // namespace dat::obs
