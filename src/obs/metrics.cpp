#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace dat::obs {

namespace {

/// Canonical map key for one instrument: name + sorted labels, with
/// separators that cannot appear in Prometheus-legal metric names.
std::string series_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

Labels canonical_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

const char* to_string(MetricType type) noexcept {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::quantile(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> counts{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return quantile_from_buckets(counts, q);
}

double quantile_from_buckets(std::span<const std::uint64_t> buckets,
                             double q) noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next >= target) {
      const double lower =
          i == 0 ? 0.0
                 : static_cast<double>(Histogram::bucket_upper(i - 1));
      const double upper = static_cast<double>(Histogram::bucket_upper(i));
      const double fraction =
          (target - cumulative) / static_cast<double>(buckets[i]);
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(Histogram::bucket_upper(buckets.size() - 1));
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const Sample& in : other.samples) {
    Sample* out = nullptr;
    for (Sample& s : samples) {
      if (s.name == in.name && s.type == in.type && s.labels == in.labels) {
        out = &s;
        break;
      }
    }
    if (out == nullptr) {
      samples.push_back(in);
      continue;
    }
    out->value += in.value;
    out->count += in.count;
    out->sum += in.sum;
    if (out->buckets.size() < in.buckets.size()) {
      out->buckets.resize(in.buckets.size(), 0);
    }
    for (std::size_t i = 0; i < in.buckets.size(); ++i) {
      out->buckets[i] += in.buckets[i];
    }
  }
}

MetricsSnapshot MetricsSnapshot::with_label(const std::string& key,
                                            const std::string& value) const {
  MetricsSnapshot out;
  out.samples.reserve(samples.size());
  for (Sample s : samples) {
    std::erase_if(s.labels, [&](const auto& kv) { return kv.first == key; });
    s.labels.emplace_back(key, value);
    s.labels = canonical_labels(std::move(s.labels));
    out.samples.push_back(std::move(s));
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::rollup(const std::string& drop_key) const {
  MetricsSnapshot out;
  for (Sample s : samples) {
    std::erase_if(s.labels,
                  [&](const auto& kv) { return kv.first == drop_key; });
    MetricsSnapshot one;
    one.samples.push_back(std::move(s));
    out.merge(one);
  }
  return out;
}

const Sample* MetricsSnapshot::find(const std::string& name) const {
  for (const Sample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Sample* MetricsSnapshot::find(const std::string& name,
                                    const Labels& labels) const {
  const Labels wanted = canonical_labels(labels);
  for (const Sample& s : samples) {
    if (s.name == name && s.labels == wanted) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::value_or_zero(const std::string& name) const {
  const Sample* s = find(name);
  return s != nullptr ? s->value : 0.0;
}

std::vector<std::pair<std::string, double>> MetricsSnapshot::values_by_label(
    const std::string& name, const std::string& label_key) const {
  std::map<std::string, double> by_value;
  for (const Sample& s : samples) {
    if (s.name != name) continue;
    for (const auto& [k, v] : s.labels) {
      if (k == label_key) {
        by_value[v] += s.value;
        break;
      }
    }
  }
  return {by_value.begin(), by_value.end()};
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return find_or_create(name, std::move(labels), MetricType::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return find_or_create(name, std::move(labels), MetricType::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels) {
  return find_or_create(name, std::move(labels), MetricType::kHistogram)
      .histogram;
}

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(
    const std::string& name, Labels labels, MetricType type) {
  Labels canonical = canonical_labels(std::move(labels));
  const std::string key = series_key(name, canonical);
  const std::scoped_lock lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    Instrument& existing = instruments_[it->second];
    if (existing.type != type) {
      throw std::logic_error("metric '" + name + "' re-registered as " +
                             to_string(type) + ", was " +
                             to_string(existing.type));
    }
    return existing;
  }
  Instrument& inst = instruments_.emplace_back();
  inst.name = name;
  inst.type = type;
  inst.labels = std::move(canonical);
  index_.emplace(key, instruments_.size() - 1);
  return inst;
}

std::uint64_t MetricsRegistry::add_collector(Collector collector) {
  const std::scoped_lock lock(mutex_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(collector));
  return id;
}

void MetricsRegistry::remove_collector(std::uint64_t id) {
  const std::scoped_lock lock(mutex_);
  collectors_.erase(id);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  const std::scoped_lock lock(mutex_);
  out.samples.reserve(instruments_.size());
  for (const Instrument& inst : instruments_) {
    Sample s;
    s.name = inst.name;
    s.type = inst.type;
    s.labels = inst.labels;
    switch (inst.type) {
      case MetricType::kCounter:
        s.value = static_cast<double>(inst.counter.value());
        break;
      case MetricType::kGauge:
        s.value = static_cast<double>(inst.gauge.value());
        break;
      case MetricType::kHistogram: {
        s.buckets.resize(Histogram::kBuckets);
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          s.buckets[i] = inst.histogram.bucket_count(i);
          s.count += s.buckets[i];
        }
        s.sum = inst.histogram.sum();
        s.value = static_cast<double>(s.count);
        break;
      }
    }
    out.samples.push_back(std::move(s));
  }
  for (const auto& [id, collect] : collectors_) collect(out);
  return out;
}

}  // namespace dat::obs
