#include "obs/selfmon.hpp"

#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace dat::obs {

// -- SLO rules ----------------------------------------------------------------

const char* to_string(SloStat s) noexcept {
  switch (s) {
    case SloStat::kValue: return "value";
    case SloStat::kSum: return "sum";
    case SloStat::kCount: return "count";
    case SloStat::kMin: return "min";
    case SloStat::kMax: return "max";
    case SloStat::kAvg: return "avg";
    case SloStat::kP50: return "p50";
    case SloStat::kP90: return "p90";
    case SloStat::kP99: return "p99";
  }
  return "?";
}

const char* to_string(SloOp o) noexcept {
  switch (o) {
    case SloOp::kLt: return "<";
    case SloOp::kLe: return "<=";
    case SloOp::kGt: return ">";
    case SloOp::kGe: return ">=";
    case SloOp::kEq: return "==";
    case SloOp::kNe: return "!=";
  }
  return "?";
}

namespace {

SloStat stat_from(const std::string& token) {
  for (const SloStat s :
       {SloStat::kValue, SloStat::kSum, SloStat::kCount, SloStat::kMin,
        SloStat::kMax, SloStat::kAvg, SloStat::kP50, SloStat::kP90,
        SloStat::kP99}) {
    if (token == to_string(s)) return s;
  }
  throw std::invalid_argument("slo: unknown stat \"" + token + "\"");
}

SloOp op_from(const std::string& token) {
  for (const SloOp o : {SloOp::kLt, SloOp::kLe, SloOp::kGt, SloOp::kGe,
                        SloOp::kEq, SloOp::kNe}) {
    if (token == to_string(o)) return o;
  }
  throw std::invalid_argument("slo: unknown operator \"" + token + "\"");
}

bool compare(double value, SloOp op, double threshold) noexcept {
  switch (op) {
    case SloOp::kLt: return value < threshold;
    case SloOp::kLe: return value <= threshold;
    case SloOp::kGt: return value > threshold;
    case SloOp::kGe: return value >= threshold;
    case SloOp::kEq: return value == threshold;
    case SloOp::kNe: return value != threshold;
  }
  return false;
}

/// The statistic a rule reads off a root state; nullopt = not computable
/// yet (empty aggregate, no histogram payload), which skips the evaluation
/// rather than fabricating a breach.
std::optional<double> eval_stat(SloStat stat, const core::AggState& s,
                                core::AggregateKind kind) {
  using core::AggregateKind;
  switch (stat) {
    case SloStat::kValue:
      if (s.empty() && kind != AggregateKind::kSum &&
          kind != AggregateKind::kCount &&
          kind != AggregateKind::kHistogram) {
        return std::nullopt;
      }
      return s.result(kind);
    case SloStat::kSum:
      return s.sum;
    case SloStat::kCount:
      return static_cast<double>(s.count);
    case SloStat::kMin:
      if (s.empty()) return std::nullopt;
      return s.min;
    case SloStat::kMax:
      if (s.empty()) return std::nullopt;
      return s.max;
    case SloStat::kAvg:
      if (s.empty()) return std::nullopt;
      return s.sum / static_cast<double>(s.count);
    case SloStat::kP50:
    case SloStat::kP90:
    case SloStat::kP99: {
      if (s.hist.empty()) return std::nullopt;
      const double q = stat == SloStat::kP50   ? 0.5
                       : stat == SloStat::kP90 ? 0.9
                                               : 0.99;
      return s.quantile(q);
    }
  }
  return std::nullopt;
}

constexpr std::uint32_t kMaxWireList = 256;

}  // namespace

SloRuleset SloRuleset::defaults() {
  SloRuleset set;
  // Coverage: every configured node reports into the meta-tree. Fires when
  // a kill wave drops leaves out, clears once the fleet converges back.
  SloRule coverage;
  coverage.name = "coverage";
  coverage.series = "nodes";
  coverage.stat = SloStat::kCount;
  coverage.op = SloOp::kEq;
  coverage.threshold_is_fleet = true;
  set.rules.push_back(std::move(coverage));
  // Fleet-wide RPC tail latency stays under half a second.
  SloRule p99;
  p99.name = "rpc-p99";
  p99.series = "rpc.latency";
  p99.stat = SloStat::kP99;
  p99.op = SloOp::kLt;
  p99.threshold = 500'000.0;
  set.rules.push_back(std::move(p99));
  return set;
}

SloRuleset SloRuleset::parse(const std::string& text) {
  SloRuleset set;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    SloRule rule;
    std::string stat;
    std::string op;
    std::string threshold;
    fields >> rule.name >> rule.series >> stat >> op >> threshold;
    if (!fields && fields.eof() && threshold.empty()) {
      throw std::invalid_argument("slo: short rule line \"" + line + "\"");
    }
    rule.stat = stat_from(stat);
    rule.op = op_from(op);
    if (threshold == "fleet") {
      rule.threshold_is_fleet = true;
    } else {
      try {
        rule.threshold = std::stod(threshold);
      } catch (const std::exception&) {
        throw std::invalid_argument("slo: bad threshold \"" + threshold +
                                    "\" in \"" + line + "\"");
      }
    }
    std::string word;
    while (fields >> word) {
      unsigned n = 0;
      if (!(fields >> n) || n == 0) {
        throw std::invalid_argument("slo: bad modifier \"" + word +
                                    "\" in \"" + line + "\"");
      }
      if (word == "fire") {
        rule.fire_epochs = n;
      } else if (word == "clear") {
        rule.clear_epochs = n;
      } else {
        throw std::invalid_argument("slo: unknown modifier \"" + word +
                                    "\" in \"" + line + "\"");
      }
    }
    set.rules.push_back(std::move(rule));
  }
  return set;
}

std::string SloRuleset::to_spec() const {
  std::string out;
  for (const SloRule& rule : rules) {
    out += rule.name + " " + rule.series + " " + to_string(rule.stat) + " " +
           to_string(rule.op) + " ";
    if (rule.threshold_is_fleet) {
      out += "fleet";
    } else {
      std::ostringstream num;
      num << rule.threshold;
      out += num.str();
    }
    out += " fire " + std::to_string(rule.fire_epochs) + " clear " +
           std::to_string(rule.clear_epochs) + "\n";
  }
  return out;
}

void write_alerts(net::Writer& w, const std::vector<Alert>& alerts) {
  w.u32(static_cast<std::uint32_t>(alerts.size()));
  for (const Alert& a : alerts) {
    w.str(a.rule);
    w.str(a.series);
    w.boolean(a.firing);
    w.f64(a.value);
    w.f64(a.threshold);
    w.u64(a.since_us);
    w.u64(a.breaches);
  }
}

std::vector<Alert> read_alerts(net::Reader& r) {
  const std::uint32_t n = r.u32();
  if (n > kMaxWireList) {
    throw net::CodecError({net::DecodeErrorCode::kLengthOverflow, r.position()},
                          "read_alerts");
  }
  std::vector<Alert> alerts(n);
  for (Alert& a : alerts) {
    a.rule = r.str();
    a.series = r.str();
    a.firing = r.boolean();
    a.value = r.f64();
    a.threshold = r.f64();
    a.since_us = r.u64();
    a.breaches = r.u64();
  }
  return alerts;
}

// -- SelfMonitor --------------------------------------------------------------

std::vector<SelfMonSeries> SelfMonitor::default_series() {
  using core::AggregateKind;
  return {
      // Coverage: the constant-1 series whose fleet sum/count is the number
      // of nodes currently feeding the meta-tree.
      {"nodes", "", AggregateKind::kSum},
      // Counters -> sum trees (fleet totals; dashboards derive rates).
      {"net.msgs", "dat_net_messages_sent_total", AggregateKind::kSum},
      {"rpc.retries", "dat_rpc_retransmits_total", AggregateKind::kSum},
      // Gauges -> max/min trees.
      {"proc.rss", "dat_daemon_rss_bytes", AggregateKind::kMax},
      {"proc.uptime", "dat_daemon_uptime_us", AggregateKind::kMin},
      // The mergeable histogram aggregate: fleet-wide RPC latency
      // distribution, quantiles read at the root.
      {"rpc.latency", "dat_rpc_latency_us", AggregateKind::kHistogram},
  };
}

SelfMonitor::SelfMonitor(core::DatNode& dat, SelfMonitorOptions options)
    : dat_(dat), options_(std::move(options)) {
  if (options_.epoch_us == 0) options_.epoch_us = 1'000'000;
  series_ = options_.series.empty() ? default_series() : options_.series;
  rules_ = (options_.rules.rules.empty() ? SloRuleset::defaults()
                                         : options_.rules)
               .rules;
  rule_states_.resize(rules_.size());
  publish_.resize(series_.size());
  views_.resize(series_.size());

  MetricsRegistry& reg = dat_.chord().telemetry().registry;
  m_ticks_ = &reg.counter("dat_selfmon_ticks_total");
  m_queries_ = &reg.counter("dat_selfmon_queries_total");
  m_query_failures_ = &reg.counter("dat_selfmon_query_failures_total");
  m_evaluations_ = &reg.counter("dat_slo_evaluations_total");
  m_breaches_ = &reg.counter("dat_slo_breaches_total");
  m_alerts_firing_ = &reg.gauge("dat_slo_alerts_firing");
  m_coverage_ = &reg.gauge("dat_selfmon_coverage");
  rule_gauges_.reserve(rules_.size());
  for (const SloRule& rule : rules_) {
    rule_gauges_.push_back(
        &reg.gauge("dat_slo_rule_firing", {{"rule", rule.name}}));
  }

  keys_.reserve(series_.size());
  for (std::size_t i = 0; i < series_.size(); ++i) {
    views_[i].name = series_[i].name;
    views_[i].kind = series_[i].kind;
    const Id key = dat_.start_aggregate_state(
        tree_name(series_[i].name), series_[i].kind, options_.scheme,
        [this, i] { return publish_state(i); }, options_.epoch_us);
    keys_.push_back(key);
  }
  alive_token_ = std::make_shared<bool>(true);
  arm_tick();
}

SelfMonitor::~SelfMonitor() {
  alive_ = false;
  *alive_token_ = false;
  if (timer_ != 0) dat_.chord().rpc().transport().cancel_timer(timer_);
  // The leaf closures capture `this`; drop the table entries before the
  // captures dangle. Peers' updates re-create passive relay entries as
  // needed.
  for (const Id key : keys_) dat_.stop_aggregate(key);
}

void SelfMonitor::arm_tick() {
  timer_ = dat_.chord().rpc().transport().set_timer(options_.epoch_us,
                                                    [this] {
                                                      if (!alive_) return;
                                                      tick();
                                                      arm_tick();
                                                    });
}

void SelfMonitor::refresh_publish_states(std::uint64_t now_us) {
  if (publish_refreshed_us_ != 0 &&
      now_us - publish_refreshed_us_ < options_.epoch_us / 2) {
    return;
  }
  publish_refreshed_us_ = now_us;
  const MetricsSnapshot snapshot =
      dat_.chord().telemetry().registry.snapshot();
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const SelfMonSeries& spec = series_[i];
    if (spec.metric.empty()) {
      publish_[i] = core::AggState::of(1.0);
      continue;
    }
    const Sample* sample = snapshot.find(spec.metric);
    if (sample == nullptr) {
      publish_[i] = core::AggState::identity();
      continue;
    }
    if (spec.kind == core::AggregateKind::kHistogram) {
      publish_[i] = core::AggState::of_histogram(
          sample->buckets, static_cast<double>(sample->sum));
    } else {
      publish_[i] = core::AggState::of(sample->value);
    }
  }
}

core::AggState SelfMonitor::publish_state(std::size_t index) {
  refresh_publish_states(dat_.chord().rpc().transport().now_us());
  return publish_[index];
}

void SelfMonitor::tick() {
  const std::uint64_t now = dat_.chord().rpc().transport().now_us();
  m_ticks_->inc();
  refresh_publish_states(now);
  if (!dat_.draining()) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      m_queries_->inc();
      dat_.query_global(
          keys_[i],
          [this, i, token = std::weak_ptr<bool>(alive_token_)](
              net::RpcStatus status,
              std::optional<core::GlobalValue> global) {
            const auto alive = token.lock();
            if (!alive || !*alive) return;
            if (status != net::RpcStatus::kOk || !global.has_value()) {
              m_query_failures_->inc();
              return;
            }
            SeriesView& view = views_[i];
            view.state = global->state;
            view.epoch = global->epoch;
            view.updated_at_us = global->updated_at_us;
            view.fetched_at_us = dat_.chord().rpc().transport().now_us();
          });
    }
  }
  evaluate(now);
}

void SelfMonitor::evaluate(std::uint64_t now_us) {
  const std::uint64_t ttl =
      static_cast<std::uint64_t>(options_.view_ttl_epochs) * options_.epoch_us;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    RuleState& st = rule_states_[i];
    if (rule.threshold_is_fleet && options_.fleet_size == 0) continue;
    const double threshold = rule.threshold_is_fleet
                                 ? static_cast<double>(options_.fleet_size)
                                 : rule.threshold;
    const SeriesView* view = nullptr;
    for (const SeriesView& v : views_) {
      if (v.name == rule.series) {
        view = &v;
        break;
      }
    }
    if (view == nullptr || view->fetched_at_us == 0 ||
        now_us - view->fetched_at_us > ttl) {
      continue;  // no fresh root data; hold the current alert state
    }
    const std::optional<double> value =
        eval_stat(rule.stat, view->state, view->kind);
    if (!value.has_value()) continue;
    m_evaluations_->inc();
    st.evaluated = true;
    st.last_value = *value;
    st.last_threshold = threshold;
    if (compare(*value, rule.op, threshold)) {
      ++st.ok_streak;
      st.breach_streak = 0;
      if (st.firing && st.ok_streak >= rule.clear_epochs) st.firing = false;
    } else {
      ++st.breaches;
      m_breaches_->inc();
      ++st.breach_streak;
      st.ok_streak = 0;
      if (!st.firing && st.breach_streak >= rule.fire_epochs) {
        st.firing = true;
        st.since_us = now_us;
      }
    }
    rule_gauges_[i]->set(st.firing ? 1 : 0);
  }
  std::int64_t firing = 0;
  for (const RuleState& st : rule_states_) firing += st.firing ? 1 : 0;
  m_alerts_firing_->set(firing);
  for (const SeriesView& v : views_) {
    if (v.name == "nodes" && v.fetched_at_us != 0) {
      m_coverage_->set(static_cast<std::int64_t>(v.state.count));
    }
  }
}

std::vector<Alert> SelfMonitor::alerts() const {
  std::vector<Alert> out;
  out.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    const RuleState& st = rule_states_[i];
    Alert a;
    a.rule = rule.name;
    a.series = rule.series;
    a.firing = st.firing;
    a.value = st.last_value;
    a.threshold = st.last_threshold;
    a.since_us = st.since_us;
    a.breaches = st.breaches;
    out.push_back(std::move(a));
  }
  return out;
}

bool SelfMonitor::alert_firing(const std::string& rule) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].name == rule) return rule_states_[i].firing;
  }
  return false;
}

SelfMonitor::FleetView SelfMonitor::view() const {
  FleetView out;
  out.now_us = dat_.chord().rpc().transport().now_us();
  out.fleet_size = options_.fleet_size;
  out.epoch_us = options_.epoch_us;
  out.series = views_;
  for (std::size_t i = 0; i < out.series.size(); ++i) {
    out.series[i].local_children =
        static_cast<std::uint32_t>(dat_.child_count(keys_[i]));
  }
  out.alerts = alerts();
  return out;
}

Id SelfMonitor::series_key(const std::string& name) const {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) return keys_[i];
  }
  return 0;
}

const SelfMonitor::SeriesView* SelfMonitor::FleetView::find(
    const std::string& name) const {
  for (const SeriesView& v : series) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

void write_fleet_view(net::Writer& w, const SelfMonitor::FleetView& view) {
  w.u64(view.now_us);
  w.u64(view.fleet_size);
  w.u64(view.epoch_us);
  w.u32(static_cast<std::uint32_t>(view.series.size()));
  for (const SelfMonitor::SeriesView& v : view.series) {
    w.str(v.name);
    w.u8(static_cast<std::uint8_t>(v.kind));
    core::write_agg_state(w, v.state);
    w.u64(v.epoch);
    w.u64(v.updated_at_us);
    w.u64(v.fetched_at_us);
    w.u32(v.local_children);
  }
  write_alerts(w, view.alerts);
}

SelfMonitor::FleetView read_fleet_view(net::Reader& r) {
  SelfMonitor::FleetView view;
  view.now_us = r.u64();
  view.fleet_size = r.u64();
  view.epoch_us = r.u64();
  const std::uint32_t n = r.u32();
  if (n > kMaxWireList) {
    throw net::CodecError({net::DecodeErrorCode::kLengthOverflow, r.position()},
                          "read_fleet_view");
  }
  view.series.resize(n);
  for (SelfMonitor::SeriesView& v : view.series) {
    v.name = r.str();
    v.kind = core::aggregate_kind_from(r.u8());
    v.state = core::read_agg_state(r);
    v.epoch = r.u64();
    v.updated_at_us = r.u64();
    v.fetched_at_us = r.u64();
    v.local_children = r.u32();
  }
  view.alerts = read_alerts(r);
  return view;
}

}  // namespace dat::obs
