#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dat/aggregate.hpp"
#include "dat/dat_node.hpp"
#include "obs/metrics.hpp"

namespace dat::obs {

// -- SLO rules ----------------------------------------------------------------

/// Statistic a rule reads off a meta-tree root's AggState.
enum class SloStat : std::uint8_t {
  kValue = 0,  ///< AggState::result under the series' aggregate kind
  kSum = 1,
  kCount = 2,
  kMin = 3,
  kMax = 4,
  kAvg = 5,
  kP50 = 6,  ///< histogram-payload quantiles
  kP90 = 7,
  kP99 = 8,
};

enum class SloOp : std::uint8_t {
  kLt = 0,
  kLe = 1,
  kGt = 2,
  kGe = 3,
  kEq = 4,
  kNe = 5,
};

[[nodiscard]] const char* to_string(SloStat s) noexcept;
[[nodiscard]] const char* to_string(SloOp o) noexcept;

/// One SLO rule: `stat(series) op threshold` states the GOOD condition
/// (e.g. `p99(rpc.latency) < 500000`); the alert fires after `fire_epochs`
/// consecutive breaches and clears after `clear_epochs` consecutive OKs —
/// the hysteresis that keeps one noisy epoch from flapping the alert.
struct SloRule {
  std::string name;
  std::string series;
  SloStat stat = SloStat::kValue;
  SloOp op = SloOp::kLt;
  double threshold = 0.0;
  /// Threshold token `fleet`: compare against the configured fleet size
  /// (the coverage rule). Rules with this set are skipped when the fleet
  /// size is unknown (0).
  bool threshold_is_fleet = false;
  unsigned fire_epochs = 2;
  unsigned clear_epochs = 2;
};

/// Rule list plus its text format:
///
///   # comment
///   coverage nodes count == fleet fire 2 clear 2
///   rpc-p99  rpc.latency p99 < 500000
///
/// one rule per line: `<name> <series> <stat> <op> <threshold|fleet>
/// [fire <n>] [clear <n>]`.
struct SloRuleset {
  std::vector<SloRule> rules;

  [[nodiscard]] static SloRuleset defaults();
  /// Parses the text format; throws std::invalid_argument on a bad line.
  [[nodiscard]] static SloRuleset parse(const std::string& text);
  [[nodiscard]] std::string to_spec() const;
};

/// Point-in-time alert status of one rule.
struct Alert {
  std::string rule;
  std::string series;
  bool firing = false;
  double value = 0.0;      ///< last evaluated statistic
  double threshold = 0.0;  ///< resolved threshold (fleet token expanded)
  std::uint64_t since_us = 0;   ///< local clock when it last fired (0 = never)
  std::uint64_t breaches = 0;   ///< breach evaluations since construction
};

void write_alerts(net::Writer& w, const std::vector<Alert>& alerts);
[[nodiscard]] std::vector<Alert> read_alerts(net::Reader& r);

// -- self-monitoring ----------------------------------------------------------

/// One published series: a local metric fed into a dedicated meta-DAT tree
/// named `selfmon:<name>`. Counters/rates go into kSum trees, gauges into
/// kMax/kMin trees, and log2-bucket histograms into a kHistogram tree whose
/// root merges every node's buckets bucket-wise.
struct SelfMonSeries {
  std::string name;    ///< series name, e.g. "rpc.latency"
  std::string metric;  ///< registry sample to read; empty = constant 1
                       ///< (the coverage series)
  core::AggregateKind kind = core::AggregateKind::kSum;
};

struct SelfMonitorOptions {
  /// Telemetry epoch: meta-tree push period, fleet-view refresh period and
  /// SLO evaluation period.
  std::uint64_t epoch_us = 1'000'000;
  /// Configured fleet size for coverage rules; 0 = unknown.
  std::uint64_t fleet_size = 0;
  chord::RoutingScheme scheme = chord::RoutingScheme::kBalanced;
  /// Empty = SloRuleset::defaults().
  SloRuleset rules;
  /// Empty = SelfMonitor::default_series().
  std::vector<SelfMonSeries> series;
  /// A fleet-view entry older than this many epochs is reported stale and
  /// skipped by rule evaluation.
  unsigned view_ttl_epochs = 4;
};

/// Self-monitoring of the monitoring system (the tentpole of the paper's
/// argument applied to ourselves): each node publishes an allowlist of its
/// own `dat_*` telemetry as leaf updates into meta-aggregation DAT trees,
/// so ANY single node can answer fleet-wide health queries in O(log N)
/// routed hops — no scrape-everyone collector. Each telemetry epoch the
/// node also refreshes a cached fleet view by querying the meta-tree roots
/// and evaluates the SLO ruleset against it, firing/clearing alerts that
/// the `datd.alerts` admin RPC (and the supervisor's SLO gates) surface.
class SelfMonitor {
 public:
  SelfMonitor(core::DatNode& dat, SelfMonitorOptions options);
  ~SelfMonitor();

  SelfMonitor(const SelfMonitor&) = delete;
  SelfMonitor& operator=(const SelfMonitor&) = delete;

  [[nodiscard]] static std::vector<SelfMonSeries> default_series();

  /// Meta-tree name of a series: the attribute the rendezvous key hashes.
  [[nodiscard]] static std::string tree_name(const std::string& series) {
    return "selfmon:" + series;
  }

  /// Cached root state of one meta-tree as last fetched by this node.
  struct SeriesView {
    std::string name;
    core::AggregateKind kind = core::AggregateKind::kSum;
    core::AggState state;
    std::uint64_t epoch = 0;           ///< root's aggregation epoch
    std::uint64_t updated_at_us = 0;   ///< root clock of the global value
    std::uint64_t fetched_at_us = 0;   ///< local clock of the fetch; 0 = never
    std::uint32_t local_children = 0;  ///< branching of this node's tree slot
  };

  /// The single-node answer to "how is the fleet?": every cached series
  /// view plus the current alert states.
  struct FleetView {
    std::uint64_t now_us = 0;
    std::uint64_t fleet_size = 0;  ///< configured; 0 = unknown
    std::uint64_t epoch_us = 0;    ///< telemetry epoch of the polled node
    std::vector<SeriesView> series;
    std::vector<Alert> alerts;

    [[nodiscard]] const SeriesView* find(const std::string& name) const;
  };

  [[nodiscard]] FleetView view() const;
  [[nodiscard]] std::vector<Alert> alerts() const;
  /// True while the named rule's alert is firing.
  [[nodiscard]] bool alert_firing(const std::string& rule) const;

  /// One telemetry epoch, exposed for tests: refresh the published leaf
  /// states, query every meta-tree root, evaluate the ruleset. Runs
  /// automatically on the transport timer.
  void tick();

  [[nodiscard]] const SelfMonitorOptions& options() const noexcept {
    return options_;
  }
  /// Rendezvous key of a series' meta-tree (0 when unknown).
  [[nodiscard]] Id series_key(const std::string& name) const;

 private:
  struct RuleState {
    unsigned breach_streak = 0;
    unsigned ok_streak = 0;
    bool firing = false;
    std::uint64_t since_us = 0;
    std::uint64_t breaches = 0;
    double last_value = 0.0;
    double last_threshold = 0.0;
    bool evaluated = false;  ///< at least one non-skipped evaluation
  };

  void arm_tick();
  /// Re-reads the local registry into the per-series publish states when
  /// the cache is older than half an epoch (one registry snapshot serves
  /// every series and every tree push in that window).
  void refresh_publish_states(std::uint64_t now_us);
  [[nodiscard]] core::AggState publish_state(std::size_t index);
  void evaluate(std::uint64_t now_us);

  core::DatNode& dat_;
  SelfMonitorOptions options_;
  std::vector<SelfMonSeries> series_;
  std::vector<Id> keys_;
  std::vector<core::AggState> publish_;  ///< cached leaf states
  std::uint64_t publish_refreshed_us_ = 0;
  std::vector<SeriesView> views_;
  std::vector<SloRule> rules_;
  std::vector<RuleState> rule_states_;
  net::TimerId timer_ = 0;
  bool alive_ = true;
  /// Lifetime token captured (weakly) by in-flight query callbacks, so a
  /// response landing after destruction is dropped instead of dereferencing
  /// a dead monitor.
  std::shared_ptr<bool> alive_token_;

  Counter* m_ticks_ = nullptr;
  Counter* m_queries_ = nullptr;
  Counter* m_query_failures_ = nullptr;
  Counter* m_evaluations_ = nullptr;
  Counter* m_breaches_ = nullptr;
  Gauge* m_alerts_firing_ = nullptr;
  Gauge* m_coverage_ = nullptr;
  std::vector<Gauge*> rule_gauges_;  ///< dat_slo_rule_firing{rule=...}
};

void write_fleet_view(net::Writer& w, const SelfMonitor::FleetView& view);
[[nodiscard]] SelfMonitor::FleetView read_fleet_view(net::Reader& r);

}  // namespace dat::obs
