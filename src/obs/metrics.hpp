#pragma once

#include <atomic>
#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace dat::obs {

/// Sorted key/value label set of one metric instrument (Prometheus-style
/// dimensions, e.g. {{"key", "0x1a2b"}, {"node", "3"}}).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonicalizes a label set: sorted by key so that two logically equal
/// sets compare equal regardless of construction order.
[[nodiscard]] Labels canonical_labels(Labels labels);

enum class MetricType : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

[[nodiscard]] const char* to_string(MetricType type) noexcept;

/// Monotonic event counter. Increment is one relaxed atomic add — safe from
/// any thread, cheap enough for per-datagram hot paths.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (queue depths, child counts, liveness flags).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative integer samples (latencies in
/// microseconds, sizes in bytes, batch sizes). Bucket i holds samples with
/// value <= 2^i; the last bucket is the +Inf overflow. observe() is two
/// relaxed atomic adds plus a bit_width — no locks, no allocation.
class Histogram {
 public:
  /// Buckets 2^0 .. 2^63 plus +Inf.
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) noexcept {
    counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Index of the bucket that counts `v`: the smallest i with v <= 2^i
  /// (0 and 1 both land in bucket 0; 2^k -> k; 2^k + 1 -> k + 1; anything
  /// above 2^63 overflows into the +Inf bucket).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v <= 1) return 0;
    return std::bit_width(v - 1);
  }

  /// Upper bound of bucket i (inclusive); the last bucket has no bound.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
    return std::uint64_t{1} << (i < 64 ? i : 63);
  }

  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Estimated q-quantile (q in [0, 1]) of the observed distribution; a
  /// point-in-time read of the buckets fed to quantile_from_buckets().
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Estimated q-quantile of a log2-bucketed count vector (the layout produced
/// by Histogram and carried by Sample::buckets): bucket 0 spans [0, 1],
/// bucket i spans (2^(i-1), 2^i], and ranks interpolate linearly inside the
/// containing bucket. The +Inf bucket is clamped to its 2^63 lower bound,
/// and an empty distribution reads as 0.
[[nodiscard]] double quantile_from_buckets(
    std::span<const std::uint64_t> buckets, double q) noexcept;

/// Plain-value reading of one instrument at snapshot time. Counters and
/// gauges use `value`; histograms use `buckets`/`sum`/`count`.
struct Sample {
  std::string name;
  MetricType type = MetricType::kCounter;
  Labels labels;
  double value = 0.0;
  std::vector<std::uint64_t> buckets;  ///< per-bucket (non-cumulative) counts
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Estimated q-quantile of a histogram sample's buckets (0 when this is
  /// not a histogram or nothing was observed).
  [[nodiscard]] double quantile(double q) const noexcept {
    return quantile_from_buckets(buckets, q);
  }
};

/// Point-in-time reading of a whole registry (or a merge of several). The
/// unit every exporter consumes, and the unit cluster roll-ups are built
/// from: merge() sums same-(name, labels) samples, with_label() stamps a
/// dimension (e.g. node=) onto every sample, rollup() drops a dimension and
/// re-merges — turning per-node snapshots into cluster totals.
struct MetricsSnapshot {
  std::vector<Sample> samples;

  /// Appends `other`, summing into any existing sample with the same name,
  /// type and labels (counters/histograms add; gauges add, which makes a
  /// roll-up gauge the cluster total).
  void merge(const MetricsSnapshot& other);

  /// Adds (or overwrites) one label on every sample.
  [[nodiscard]] MetricsSnapshot with_label(const std::string& key,
                                           const std::string& value) const;

  /// Drops a label key everywhere and merges the now-identical series:
  /// rollup("node") collapses per-node samples into cluster-wide sums.
  [[nodiscard]] MetricsSnapshot rollup(const std::string& drop_key) const;

  /// First sample matching `name` (and `labels` when given); nullptr if
  /// absent.
  [[nodiscard]] const Sample* find(const std::string& name) const;
  [[nodiscard]] const Sample* find(const std::string& name,
                                   const Labels& labels) const;

  /// Value of a counter/gauge sample, 0.0 when absent.
  [[nodiscard]] double value_or_zero(const std::string& name) const;

  /// Values of every sample named `name`, keyed by its value of `label_key`
  /// (samples lacking that label are skipped; duplicate label values sum).
  /// Splits per-dimension series back out of a snapshot — e.g. the lb load
  /// collector reading dat_tree_children{key=...} per aggregate key.
  [[nodiscard]] std::vector<std::pair<std::string, double>> values_by_label(
      const std::string& name, const std::string& label_key) const;
};

/// Lock-light metrics registry: one per node (plus one per cluster for
/// shared infrastructure like the netio shards). Instrument creation takes
/// a mutex once; the returned references stay valid for the registry's
/// lifetime (deque storage, instruments never move), so hot paths hold the
/// pointer and pay only relaxed atomics. Existing counter structs
/// (RpcStats, TrafficCounters, ReactorCounters, the DAT aggregation table)
/// join the registry as collectors — callbacks that contribute samples at
/// snapshot time, making them registry views without touching their own
/// hot paths.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Type mismatches on an existing name+labels throw
  /// std::logic_error (two layers disagreeing about a metric is a bug).
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {});

  /// Snapshot-time sample source; returns an id for remove_collector.
  /// Collectors run under the registry mutex — keep them cheap and never
  /// re-enter the registry from inside one.
  using Collector = std::function<void(MetricsSnapshot&)>;
  std::uint64_t add_collector(Collector collector);
  void remove_collector(std::uint64_t id);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Instrument {
    std::string name;
    MetricType type = MetricType::kCounter;
    Labels labels;
    // Exactly one is live, selected by `type`; kept side by side instead of
    // a variant so the atomics never move.
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Instrument& find_or_create(const std::string& name, Labels labels,
                             MetricType type);

  mutable std::mutex mutex_;
  std::deque<Instrument> instruments_;
  std::map<std::string, std::size_t> index_;  // canonical key -> deque index
  std::map<std::uint64_t, Collector> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

}  // namespace dat::obs
