#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dat::obs {

/// One recorded operation in a causal trace: a named interval on one node,
/// linked to its cause by parent_span_id (which may live on another node —
/// the wire extension carries {trace_id, span_id} across RPC hops, so a
/// receive span's parent is the sender's send span).
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  ///< 0 = trace root
  const char* name = "";             ///< static string (never freed)
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  /// Optional domain tags (aggregate key, epoch, peer) for trace viewers.
  std::uint64_t key = 0;
  std::uint64_t epoch = 0;
  std::uint64_t peer = 0;  ///< remote endpoint involved, if any
};

/// Per-node fixed-size span ring: always-on tracing with bounded memory.
/// New spans overwrite the oldest once the ring wraps — the recorder keeps
/// the recent flight history, like an aircraft FDR. Id generation is
/// deterministic per node (splitmix64 stream seeded from the node seed), so
/// simulated runs produce reproducible traces.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::uint64_t id_seed, std::size_t capacity = 4096);

  /// Fresh globally-unlikely-to-collide ids from this node's stream.
  [[nodiscard]] std::uint64_t new_trace_id();
  [[nodiscard]] std::uint64_t new_span_id();

  void record(const Span& span);

  /// Spans in record order (oldest first), optionally restricted to one
  /// trace id.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::vector<Span> spans_for(std::uint64_t trace_id) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total spans ever recorded (>= spans().size() once the ring wraps).
  [[nodiscard]] std::uint64_t recorded() const;

  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Span> ring_;
  std::uint64_t recorded_ = 0;  // next write = recorded_ % capacity_
  std::uint64_t id_state_;
};

/// The ambient trace of the operation currently executing on a node.
/// RpcManager sets it while dispatching a traced message (so handlers —
/// and any RPCs they issue — inherit the caller's trace) and stamps it
/// onto outgoing messages. Confined to the node's event-loop thread, like
/// every other per-node structure.
class TraceContext {
 public:
  [[nodiscard]] bool active() const noexcept { return trace_id_ != 0; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }
  [[nodiscard]] std::uint64_t span_id() const noexcept { return span_id_; }

  void set(std::uint64_t trace_id, std::uint64_t span_id) noexcept {
    trace_id_ = trace_id;
    span_id_ = span_id;
  }
  void clear() noexcept { set(0, 0); }

  /// RAII save/set/restore, so nested dispatches unwind correctly.
  class Scope {
   public:
    Scope(TraceContext& ctx, std::uint64_t trace_id,
          std::uint64_t span_id) noexcept
        : ctx_(ctx), saved_trace_(ctx.trace_id_), saved_span_(ctx.span_id_) {
      ctx_.set(trace_id, span_id);
    }
    ~Scope() { ctx_.set(saved_trace_, saved_span_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceContext& ctx_;
    std::uint64_t saved_trace_;
    std::uint64_t saved_span_;
  };

 private:
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
};

/// The telemetry bundle owned by one node: its metrics registry, flight
/// recorder and ambient trace context. Layers hold a pointer to this (the
/// owning node outlives its RPC manager and DAT state, which unregister
/// their collectors on destruction).
struct NodeTelemetry {
  explicit NodeTelemetry(std::uint64_t id_seed,
                         std::size_t recorder_capacity = 4096)
      : recorder(id_seed, recorder_capacity) {}

  MetricsRegistry registry;
  FlightRecorder recorder;
  TraceContext trace;
};

}  // namespace dat::obs
