#include "obs/postmortem.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <vector>

#include "obs/export.hpp"

namespace dat::obs {

namespace {

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Process-global crash-dump state. The two render buffers are sized once
/// at install() and never reallocated, so the handler's view of their
/// data() pointers is stable; `published` selects the buffer whose length
/// was completely written (release/acquire pair with refresh()).
struct State {
  Postmortem::Config config;
  bool installed = false;
  char path[512] = {0};
  std::vector<char> buffers[2];
  std::atomic<std::size_t> lengths[2] = {0, 0};
  std::atomic<int> published{-1};
};

State& state() {
  static State s;
  return s;
}

/// write() until done or error; the handler has nothing better to do with
/// a short write than try again.
void write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) return;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Formats a non-negative integer into `buf`; returns the length. Stack
/// buffers and integer stores only — usable from the signal handler.
std::size_t format_u64(char* buf, std::uint64_t v) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void append_literal(int fd, const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0') ++n;
  write_all(fd, s, n);
}

/// The crash path shared by the handler and write_now(): open the
/// pre-rendered path, emit the envelope with the signal number, splice in
/// the published body, close. Every call here is async-signal-safe.
bool write_dump(int sig) {
  State& s = state();
  if (!s.installed) return false;
  const int fd = ::open(s.path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  char num[24];
  append_literal(fd, "{\"schema\":\"dat.postmortem.v1\",\"signal\":");
  write_all(fd, num, format_u64(num, static_cast<std::uint64_t>(sig)));
  append_literal(fd, ",\"pid\":");
  write_all(fd, num,
            format_u64(num, static_cast<std::uint64_t>(::getpid())));
  append_literal(fd, ",\"body\":");
  const int idx = s.published.load(std::memory_order_acquire);
  if (idx < 0) {
    append_literal(fd, "null");
  } else {
    write_all(fd, s.buffers[idx].data(),
              s.lengths[idx].load(std::memory_order_acquire));
  }
  append_literal(fd, "}\n");
  ::close(fd);
  return true;
}

void crash_handler(int sig) {
  write_dump(sig);
  // SA_RESETHAND already restored the default disposition, so re-raising
  // terminates the process with the real signal (the supervisor sees the
  // genuine WTERMSIG, not an exit code).
  ::raise(sig);
}

constexpr int kSignals[] = {SIGSEGV, SIGABRT, SIGBUS};

/// Renders the refreshable part of the dump (normal context: locks and
/// allocation allowed here, never in the handler).
std::string render_body(const Postmortem::Config& config) {
  std::string out = "{\"captured_at_us\":";
  out += std::to_string(wall_now_us());
  if (config.recorder != nullptr) {
    std::vector<Span> spans = config.recorder->spans();
    if (spans.size() > config.max_spans) {
      spans.erase(spans.begin(),
                  spans.end() - static_cast<std::ptrdiff_t>(config.max_spans));
    }
    out += ",\"spans_recorded\":";
    out += std::to_string(config.recorder->recorded());
    out += ",\"spans\":[";
    bool first = true;
    for (const Span& span : spans) {
      if (!first) out += ',';
      first = false;
      out += "{\"trace\":" + std::to_string(span.trace_id);
      out += ",\"span\":" + std::to_string(span.span_id);
      out += ",\"parent\":" + std::to_string(span.parent_span_id);
      out += ",\"name\":\"" + json_escape(span.name) + "\"";
      out += ",\"start_us\":" + std::to_string(span.start_us);
      out += ",\"end_us\":" + std::to_string(span.end_us);
      out += ",\"key\":" + std::to_string(span.key);
      out += ",\"epoch\":" + std::to_string(span.epoch);
      out += ",\"peer\":" + std::to_string(span.peer);
      out += "}";
    }
    out += "]";
  }
  if (config.registry != nullptr) {
    out += ",\"metrics\":";
    out += to_json(config.registry->snapshot());
  }
  out += "}";
  return out;
}

}  // namespace

std::string postmortem_file_name(std::int64_t pid) {
  return "postmortem-" + std::to_string(pid) + ".json";
}

bool Postmortem::install(Config config) {
  if (config.directory.empty()) return false;
  State& s = state();
  if (s.installed) uninstall();
  s.config = std::move(config);
  const std::string path =
      s.config.directory + "/" + postmortem_file_name(::getpid());
  if (path.size() >= sizeof(s.path)) return false;
  std::memcpy(s.path, path.c_str(), path.size() + 1);
  for (auto& b : s.buffers) b.assign(s.config.buffer_bytes, '\0');
  s.lengths[0].store(0);
  s.lengths[1].store(0);
  s.published.store(-1);
  s.installed = true;
  refresh();
  struct sigaction sa {};
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND | SA_NODEFER;
  for (const int sig : kSignals) ::sigaction(sig, &sa, nullptr);
  return true;
}

void Postmortem::refresh() {
  State& s = state();
  if (!s.installed) return;
  const int standby = s.published.load(std::memory_order_relaxed) == 0 ? 1 : 0;
  std::string body = render_body(s.config);
  if (body.size() > s.buffers[standby].size()) {
    // Too big for the pre-reserved buffer: degrade to a marker rather than
    // grow memory the crash path would then depend on.
    body = "{\"truncated\":true}";
  }
  std::copy(body.begin(), body.end(), s.buffers[standby].begin());
  s.lengths[standby].store(body.size(), std::memory_order_release);
  s.published.store(standby, std::memory_order_release);
}

void Postmortem::uninstall() {
  State& s = state();
  if (!s.installed) return;
  struct sigaction sa {};
  sa.sa_handler = SIG_DFL;
  sigemptyset(&sa.sa_mask);
  for (const int sig : kSignals) ::sigaction(sig, &sa, nullptr);
  s.installed = false;
  s.published.store(-1);
}

bool Postmortem::installed() noexcept { return state().installed; }

std::string Postmortem::dump_path() {
  const State& s = state();
  return s.installed ? std::string(s.path) : std::string();
}

bool Postmortem::write_now(int signal) {
  refresh();
  return write_dump(signal);
}

}  // namespace dat::obs
