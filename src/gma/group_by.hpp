#pragma once

#include <string>
#include <string_view>

#include "dat/dat_node.hpp"

namespace dat::gma {

/// Name of the per-group aggregate for (attribute, group) — the paper's
/// "Group By" remark (Sec. 2.3: "a rendezvous key is the Chord identifier
/// of a given aggregate index similar to the 'Group By' clause in SQL").
/// Each group value gets its own rendezvous key and therefore its own DAT
/// tree with its own (consistently hashed, hence load-spread) root.
[[nodiscard]] std::string grouped_attribute(std::string_view attribute,
                                            std::string_view group);

/// One attribute aggregated separately per group — e.g. average cpu-usage
/// GROUP BY os. A producer contributes its node's value to exactly its own
/// group's tree; consumers query any group from any node.
class GroupedAggregate {
 public:
  /// Does not start anything yet; contribute()/query() drive it.
  GroupedAggregate(core::DatNode& dat, std::string attribute,
                   core::AggregateKind kind, chord::RoutingScheme scheme);
  ~GroupedAggregate();

  GroupedAggregate(const GroupedAggregate&) = delete;
  GroupedAggregate& operator=(const GroupedAggregate&) = delete;

  /// Producer side: start contributing this node's value to `group`'s
  /// tree. A node belongs to one group per attribute; contributing to a
  /// second group stops the first.
  void contribute(const std::string& group, core::DatNode::LocalValueFn fn);

  /// Stops contributing (the soft-state child record upstream expires).
  void stop();

  /// Rendezvous key of a group's tree.
  [[nodiscard]] Id key_for(const std::string& group) const;

  /// Consumer side: latest global value of `group`'s aggregate.
  void query(const std::string& group, core::DatNode::QueryHandler handler);

  /// Consumer side: on-demand snapshot of `group`'s aggregate.
  void snapshot(const std::string& group,
                core::DatNode::SnapshotHandler handler);

  [[nodiscard]] const std::string& attribute() const noexcept {
    return attribute_;
  }

 private:
  core::DatNode& dat_;
  std::string attribute_;
  core::AggregateKind kind_;
  chord::RoutingScheme scheme_;
  std::optional<Id> active_key_;  // key we currently contribute to
};

}  // namespace dat::gma
