#include "gma/producer.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace dat::gma {

Producer::Producer(core::DatNode& dat, maan::MaanNode& maan,
                   std::string resource_id)
    : dat_(dat), maan_(maan), resource_id_(std::move(resource_id)) {
  if (resource_id_.empty()) {
    throw std::invalid_argument("Producer: empty resource id");
  }
}

Producer::~Producer() { stop(); }

void Producer::add_sensor(Sensor sensor) {
  if (running_) {
    throw std::logic_error("Producer::add_sensor after start");
  }
  if (!sensor.sample || sensor.attribute.empty()) {
    throw std::invalid_argument("Producer::add_sensor: incomplete sensor");
  }
  sensors_.push_back(std::move(sensor));
}

void Producer::add_static_attribute(std::string attr, maan::AttrValue value) {
  static_attrs_.emplace_back(std::move(attr), std::move(value));
}

void Producer::start(chord::RoutingScheme scheme, std::uint64_t refresh_us) {
  if (running_) return;
  running_ = true;
  refresh_us_ = refresh_us;
  keys_.clear();
  for (const Sensor& sensor : sensors_) {
    const Id key = dat_.start_aggregate(sensor.attribute, sensor.kind, scheme,
                                        sensor.sample);
    keys_.push_back(key);
  }
  refresh_registration();
}

void Producer::stop() {
  if (!running_) return;
  running_ = false;
  for (const Id key : keys_) {
    dat_.stop_aggregate(key);
  }
  if (refresh_timer_ != 0) {
    dat_.chord().rpc().transport().cancel_timer(refresh_timer_);
    refresh_timer_ = 0;
  }
}

maan::Resource Producer::current_resource() const {
  maan::Resource resource;
  resource.id = resource_id_;
  for (const Sensor& sensor : sensors_) {
    resource.attributes.emplace_back(sensor.attribute,
                                     maan::AttrValue{sensor.sample()});
  }
  for (const auto& [attr, value] : static_attrs_) {
    resource.attributes.emplace_back(attr, value);
  }
  return resource;
}

void Producer::refresh_registration() {
  if (!running_) return;
  maan_.register_resource(current_resource(), [](bool ok, unsigned) {
    if (!ok) {
      DAT_LOG_DEBUG("gma", "resource registration incomplete; will retry");
    }
  });
  if (refresh_us_ == 0) return;  // one-shot registration
  refresh_timer_ = dat_.chord().rpc().transport().set_timer(
      refresh_us_, [this]() { refresh_registration(); });
}

void Consumer::monitor_global(const std::string& attribute,
                              core::DatNode::QueryHandler handler) {
  const Id key =
      core::rendezvous_key(attribute, dat_.chord().space());
  dat_.query_global(key, std::move(handler));
}

void Consumer::snapshot_global(const std::string& attribute,
                               core::DatNode::SnapshotHandler handler) {
  const Id key =
      core::rendezvous_key(attribute, dat_.chord().space());
  dat_.snapshot(key, std::move(handler));
}

void Consumer::discover(const std::vector<maan::RangePredicate>& predicates,
                        maan::MaanNode::QueryHandler handler) {
  maan_.multi_query(predicates, std::move(handler));
}

}  // namespace dat::gma
