#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dat/dat_node.hpp"
#include "maan/maan_node.hpp"

namespace dat::gma {

/// A sensor monitors the status of one or more resources and generates
/// events to producers (P-GMA sensor layer, paper Sec. 2.1). In this
/// library a sensor is a sampling function — e.g. a /proc-style CPU reader,
/// or a TraceReplayer adapter in simulations.
struct Sensor {
  std::string attribute;            ///< e.g. "cpu-usage"
  core::AggregateKind kind = core::AggregateKind::kAvg;
  std::function<double()> sample;   ///< current value
};

/// The P-GMA producer of one node (paper Fig. 1): collects sensor events,
/// registers the node's resource descriptor with the MAAN indexing layer,
/// and feeds each sensor into a DAT aggregate so the attribute's global
/// statistic is continuously maintained at the tree root.
class Producer {
 public:
  Producer(core::DatNode& dat, maan::MaanNode& maan, std::string resource_id);
  ~Producer();

  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;

  void add_sensor(Sensor sensor);

  /// Also attach static (non-aggregated) attributes to the resource
  /// descriptor, e.g. <os, "linux">, <cpu-speed, 3.0e9>.
  void add_static_attribute(std::string attr, maan::AttrValue value);

  /// Starts the producer: begins the DAT aggregates for every sensor and
  /// (re-)registers the resource descriptor in MAAN every `refresh_us`.
  void start(chord::RoutingScheme scheme, std::uint64_t refresh_us);
  void stop();

  /// The resource descriptor with current sensor readings.
  [[nodiscard]] maan::Resource current_resource() const;

  /// Rendezvous keys of the aggregates this producer feeds, in sensor
  /// registration order.
  [[nodiscard]] const std::vector<Id>& aggregate_keys() const noexcept {
    return keys_;
  }

 private:
  void refresh_registration();

  core::DatNode& dat_;
  maan::MaanNode& maan_;
  std::string resource_id_;
  std::vector<Sensor> sensors_;
  std::vector<std::pair<std::string, maan::AttrValue>> static_attrs_;
  std::vector<Id> keys_;
  std::uint64_t refresh_us_ = 0;
  net::TimerId refresh_timer_ = 0;
  bool running_ = false;
};

/// The P-GMA consumer side (paper Fig. 1's consumer layer): monitors global
/// aggregates and discovers resources by multi-attribute range query — the
/// building blocks for application scheduling, diagnostics and capacity
/// planning.
class Consumer {
 public:
  Consumer(core::DatNode& dat, maan::MaanNode& maan)
      : dat_(dat), maan_(maan) {}

  /// Latest global statistic of `attribute` from the root of its DAT tree.
  void monitor_global(const std::string& attribute,
                      core::DatNode::QueryHandler handler);

  /// On-demand snapshot of `attribute` across all live nodes.
  void snapshot_global(const std::string& attribute,
                       core::DatNode::SnapshotHandler handler);

  /// Discover resources matching all predicates.
  void discover(const std::vector<maan::RangePredicate>& predicates,
                maan::MaanNode::QueryHandler handler);

 private:
  core::DatNode& dat_;
  maan::MaanNode& maan_;
};

}  // namespace dat::gma
