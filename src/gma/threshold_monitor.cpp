#include "gma/threshold_monitor.hpp"

#include <stdexcept>

namespace dat::gma {

ThresholdMonitor::ThresholdMonitor(core::DatNode& dat, std::string attribute,
                                   Options options, AlertHandler alert)
    : dat_(dat),
      key_(core::rendezvous_key(attribute, dat.chord().space())),
      options_(options),
      alert_(std::move(alert)) {
  if (!alert_) {
    throw std::invalid_argument("ThresholdMonitor: null alert handler");
  }
  const bool above = options_.direction == Direction::kAbove;
  if ((above && options_.clear > options_.trigger) ||
      (!above && options_.clear < options_.trigger)) {
    throw std::invalid_argument(
        "ThresholdMonitor: clear level must re-arm on the safe side of the "
        "trigger");
  }
}

ThresholdMonitor::~ThresholdMonitor() {
  alive_ = false;
  stop();
}

void ThresholdMonitor::start() {
  if (running_) return;
  running_ = true;
  poll();
}

void ThresholdMonitor::stop() {
  running_ = false;
  if (timer_ != 0) {
    dat_.chord().rpc().transport().cancel_timer(timer_);
    timer_ = 0;
  }
}

void ThresholdMonitor::poll() {
  if (!running_ || !alive_) return;
  dat_.query_global(key_, [this](net::RpcStatus status,
                                 std::optional<core::GlobalValue> global) {
    if (!alive_) return;
    if (status == net::RpcStatus::kOk && global &&
        !global->state.empty()) {
      const double value = global->state.result(options_.statistic);
      last_value_ = value;
      evaluate(value, *global);
    }
    if (!running_) return;
    timer_ = dat_.chord().rpc().transport().set_timer(
        options_.poll_interval_us, [this]() {
          timer_ = 0;
          poll();
        });
  });
}

void ThresholdMonitor::evaluate(double value,
                                const core::GlobalValue& global) {
  const bool above = options_.direction == Direction::kAbove;
  const bool breached = above ? value >= options_.trigger
                              : value <= options_.trigger;
  const bool cleared = above ? value <= options_.clear
                             : value >= options_.clear;
  if (armed_ && breached) {
    armed_ = false;
    ++alerts_fired_;
    alert_(value, global);
  } else if (!armed_ && cleared) {
    armed_ = true;  // hysteresis: re-arm only after a full recovery
  }
}

}  // namespace dat::gma
