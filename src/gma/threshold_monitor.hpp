#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "dat/dat_node.hpp"

namespace dat::gma {

/// Fires when a monitored global statistic crosses a threshold — the
/// "system diagnostics" consumer of the paper's P-GMA (Sec. 2.1): e.g.
/// alert when the Grid-wide average CPU usage exceeds 90 %. Polls the
/// aggregate's root at a fixed period; edge-triggered with hysteresis
/// (re-arms only after the value falls back past `clear` in the other
/// direction).
class ThresholdMonitor {
 public:
  enum class Direction : std::uint8_t { kAbove, kBelow };

  struct Options {
    double trigger = 90.0;             ///< alert when value crosses this
    double clear = 85.0;               ///< re-arm when it comes back past this
    Direction direction = Direction::kAbove;
    core::AggregateKind statistic = core::AggregateKind::kAvg;
    std::uint64_t poll_interval_us = 2'000'000;
  };

  /// alert(value, global) fires once per excursion past the threshold.
  using AlertHandler =
      std::function<void(double value, const core::GlobalValue& global)>;

  ThresholdMonitor(core::DatNode& dat, std::string attribute, Options options,
                   AlertHandler alert);
  ~ThresholdMonitor();

  ThresholdMonitor(const ThresholdMonitor&) = delete;
  ThresholdMonitor& operator=(const ThresholdMonitor&) = delete;

  void start();
  void stop();

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] std::uint64_t alerts_fired() const noexcept {
    return alerts_fired_;
  }
  /// Value observed at the last completed poll, if any.
  [[nodiscard]] std::optional<double> last_value() const noexcept {
    return last_value_;
  }

 private:
  void poll();
  void evaluate(double value, const core::GlobalValue& global);

  core::DatNode& dat_;
  Id key_;
  Options options_;
  AlertHandler alert_;
  bool running_ = false;
  bool armed_ = true;  // fires on the next crossing
  std::optional<double> last_value_;
  std::uint64_t alerts_fired_ = 0;
  net::TimerId timer_ = 0;
  bool alive_ = true;
};

}  // namespace dat::gma
