#include "gma/group_by.hpp"

#include <stdexcept>

namespace dat::gma {

std::string grouped_attribute(std::string_view attribute,
                              std::string_view group) {
  if (attribute.empty() || group.empty()) {
    throw std::invalid_argument("grouped_attribute: empty attribute or group");
  }
  std::string out;
  out.reserve(attribute.size() + group.size() + 1);
  out.append(attribute);
  out.push_back('@');
  out.append(group);
  return out;
}

GroupedAggregate::GroupedAggregate(core::DatNode& dat, std::string attribute,
                                   core::AggregateKind kind,
                                   chord::RoutingScheme scheme)
    : dat_(dat), attribute_(std::move(attribute)), kind_(kind),
      scheme_(scheme) {
  if (attribute_.empty()) {
    throw std::invalid_argument("GroupedAggregate: empty attribute");
  }
}

GroupedAggregate::~GroupedAggregate() { stop(); }

Id GroupedAggregate::key_for(const std::string& group) const {
  return core::rendezvous_key(grouped_attribute(attribute_, group),
                              dat_.chord().space());
}

void GroupedAggregate::contribute(const std::string& group,
                                  core::DatNode::LocalValueFn fn) {
  stop();
  const Id key = key_for(group);
  dat_.start_aggregate(key, kind_, scheme_, std::move(fn));
  active_key_ = key;
}

void GroupedAggregate::stop() {
  if (active_key_) {
    dat_.stop_aggregate(*active_key_);
    active_key_.reset();
  }
}

void GroupedAggregate::query(const std::string& group,
                             core::DatNode::QueryHandler handler) {
  dat_.query_global(key_for(group), std::move(handler));
}

void GroupedAggregate::snapshot(const std::string& group,
                                core::DatNode::SnapshotHandler handler) {
  dat_.snapshot(key_for(group), std::move(handler));
}

}  // namespace dat::gma
