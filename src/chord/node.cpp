#include "chord/node.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"
#include "common/sha1.hpp"

namespace dat::chord {

namespace {

constexpr const char* kLookupStep = "chord.lookup_step";
constexpr const char* kGetNeighbors = "chord.get_neighbors";
constexpr const char* kNotify = "chord.notify";
constexpr const char* kPing = "chord.ping";
constexpr const char* kSplitInterval = "chord.split_interval";
constexpr const char* kLeaving = "chord.leaving";
constexpr const char* kRoute = "chord.route";
constexpr const char* kBroadcast = "chord.bcast";
constexpr const char* kRecursiveFind = "chord.rfind";
constexpr const char* kRecursiveFindDone = "chord.rfind_done";

Id endpoint_hash_id(net::Endpoint ep, const IdSpace& space) {
  return Sha1::hash_to_id("node:" + std::to_string(ep), space);
}

}  // namespace

Node::Node(const IdSpace& space, net::Transport& transport,
           NodeOptions options, std::uint64_t seed)
    : space_(space),
      transport_(transport),
      options_(options),
      rng_(seed),
      telemetry_(std::make_unique<obs::NodeTelemetry>(
          (seed * 0x9e3779b97f4a7c15ULL) ^ transport.local())),
      rpc_(std::make_unique<net::RpcManager>(transport)),
      fingers_(space.bits()),
      finger_pred_(space.bits()) {
  self_.endpoint = transport.local();
  self_.id = endpoint_hash_id(self_.endpoint, space_);
  rpc_->set_telemetry(telemetry_.get());
  obs::MetricsRegistry& reg = telemetry_->registry;
  m_lookups_ = &reg.counter("dat_chord_lookups_total");
  m_lookup_failures_ = &reg.counter("dat_chord_lookup_failures_total");
  m_lookup_hops_ = &reg.histogram("dat_chord_lookup_hops");
  m_stabilize_rounds_ = &reg.counter("dat_chord_stabilize_rounds_total");
  m_finger_fixes_ = &reg.counter("dat_chord_finger_fixes_total");
  m_join_probes_ = &reg.counter("dat_chord_join_probes_total");
  m_purges_ = &reg.counter("dat_chord_purges_total");
  // Protocol-state view: sampled at snapshot time, no hot-path cost. The
  // collector lives in the registry, which this node owns, so `this` cannot
  // dangle.
  reg.add_collector([this](obs::MetricsSnapshot& out) {
    const auto add = [&out](const char* name, obs::MetricType type,
                            double value) {
      obs::Sample s;
      s.name = name;
      s.type = type;
      s.value = value;
      out.samples.push_back(std::move(s));
    };
    std::uint64_t valid_fingers = 0;
    for (const NodeRef& f : fingers_) {
      if (f.valid()) ++valid_fingers;
    }
    using enum obs::MetricType;
    add("dat_chord_maintenance_rpcs_total", kCounter,
        static_cast<double>(maintenance_rpcs_));
    add("dat_chord_fingers_valid", kGauge,
        static_cast<double>(valid_fingers));
    add("dat_chord_successor_list_len", kGauge,
        static_cast<double>(successor_list_.size()));
    add("dat_chord_joined", kGauge, joined_ ? 1.0 : 0.0);
  });
  register_handlers();
}

Node::~Node() { stop_timers(); }

void Node::register_handlers() {
  rpc_->register_method(kLookupStep,
                        [this](net::Endpoint from, net::Reader& req,
                               net::Writer& reply) {
                          handle_lookup_step(from, req, reply);
                        });
  rpc_->register_method(kGetNeighbors,
                        [this](net::Endpoint from, net::Reader& req,
                               net::Writer& reply) {
                          handle_get_neighbors(from, req, reply);
                        });
  rpc_->register_method(
      kNotify, [this](net::Endpoint from, net::Reader& req,
                      net::Writer& reply) { handle_notify(from, req, reply); });
  rpc_->register_method(
      kPing, [this](net::Endpoint from, net::Reader& req, net::Writer& reply) {
        handle_ping(from, req, reply);
      });
  rpc_->register_method(kSplitInterval,
                        [this](net::Endpoint from, net::Reader& req,
                               net::Writer& reply) {
                          handle_split_interval(from, req, reply);
                        });
  rpc_->register_one_way(kLeaving,
                         [this](net::Endpoint from, net::Reader& msg) {
                           handle_leaving(from, msg);
                         });
  rpc_->register_one_way(kRoute,
                         [this](net::Endpoint from, net::Reader& msg) {
                           handle_route(from, msg);
                         });
  rpc_->register_one_way(kBroadcast,
                         [this](net::Endpoint from, net::Reader& msg) {
                           handle_broadcast(from, msg);
                         });
  rpc_->register_one_way(kRecursiveFind,
                         [this](net::Endpoint from, net::Reader& msg) {
                           handle_rfind(from, msg);
                         });
  rpc_->register_one_way(kRecursiveFindDone,
                         [this](net::Endpoint from, net::Reader& msg) {
                           handle_rfind_done(from, msg);
                         });
}

// -- recursive lookup ---------------------------------------------------------

void Node::find_successor_recursive(
    Id key, std::function<void(net::RpcStatus, NodeRef, unsigned)> h) {
  key &= space_.mask();
  m_lookups_->inc();
  const std::uint64_t qid = next_rlookup_id_++;
  PendingRecursiveLookup pending;
  pending.key = key;
  pending.attempts_left = 1;  // one full retry on timeout
  pending.handler = [this, h = std::move(h)](net::RpcStatus st, NodeRef node,
                                             unsigned hops) {
    m_lookup_hops_->observe(hops);
    if (st != net::RpcStatus::kOk) m_lookup_failures_->inc();
    h(st, node, hops);
  };
  rlookups_.emplace(qid, std::move(pending));
  send_rfind(qid, key);
}

void Node::send_rfind(std::uint64_t qid, Id key) {
  auto it = rlookups_.find(qid);
  if (it == rlookups_.end()) return;

  // Resolve locally when possible (singleton, or the key is between us and
  // our successor).
  const NodeRef succ = successor();
  if (!succ.valid() || succ.endpoint == self_.endpoint) {
    auto handler = std::move(it->second.handler);
    rlookups_.erase(it);
    handler(net::RpcStatus::kOk, self_, 0);
    return;
  }
  if (space_.in_open_closed(self_.id, key, succ.id)) {
    auto handler = std::move(it->second.handler);
    rlookups_.erase(it);
    handler(net::RpcStatus::kOk, succ, 0);
    return;
  }
  const NodeRef next = closest_preceding(key);
  if (next.endpoint == self_.endpoint) {
    auto handler = std::move(it->second.handler);
    rlookups_.erase(it);
    handler(net::RpcStatus::kOk, succ, 0);
    return;
  }

  net::Writer w;
  w.u64(qid);
  w.u64(key);
  w.u64(self_.endpoint);  // reply-to
  w.u8(static_cast<std::uint8_t>(2 * space_.bits() + 8));  // TTL
  w.u8(1);                // hops so far
  rpc_->send_one_way(next.endpoint, kRecursiveFind, w);

  // End-to-end timeout: recursive forwarding has no per-hop acks.
  const std::uint64_t budget =
      options_.rpc.timeout_us * (space_.bits() / 4 + 2);
  it->second.timer = transport_.set_timer(
      budget, [this, qid]() { fail_or_retry_rfind(qid); });
}

void Node::fail_or_retry_rfind(std::uint64_t qid) {
  auto it = rlookups_.find(qid);
  if (it == rlookups_.end()) return;
  it->second.timer = 0;
  if (it->second.attempts_left > 0) {
    --it->second.attempts_left;
    send_rfind(qid, it->second.key);
    return;
  }
  auto handler = std::move(it->second.handler);
  rlookups_.erase(it);
  handler(net::RpcStatus::kTimeout, NodeRef{}, 0);
}

void Node::handle_rfind(net::Endpoint /*from*/, net::Reader& msg) {
  const std::uint64_t qid = msg.u64();
  const Id key = msg.u64();
  const net::Endpoint reply_to = msg.u64();
  const std::uint8_t ttl = msg.u8();
  const std::uint8_t hops = msg.u8();

  const auto answer = [&](const NodeRef& result) {
    net::Writer w;
    w.u64(qid);
    write_node_ref(w, result);
    w.u8(hops);
    rpc_->send_one_way(reply_to, kRecursiveFindDone, w);
  };

  const NodeRef succ = successor();
  if (!joined_ || !succ.valid() || succ.endpoint == self_.endpoint) {
    answer(self_);
    return;
  }
  if (space_.in_open_closed(self_.id, key, succ.id)) {
    answer(succ);
    return;
  }
  const NodeRef next = closest_preceding(key);
  if (next.endpoint == self_.endpoint || ttl == 0) {
    answer(succ);
    return;
  }
  net::Writer w;
  w.u64(qid);
  w.u64(key);
  w.u64(reply_to);
  w.u8(static_cast<std::uint8_t>(ttl - 1));
  // hops saturates instead of wrapping: a forged hop counter near 255 must
  // not reset the accounting to zero.
  w.u8(hops == UINT8_MAX ? UINT8_MAX
                         : static_cast<std::uint8_t>(hops + 1));
  rpc_->send_one_way(next.endpoint, kRecursiveFind, w);
}

void Node::handle_rfind_done(net::Endpoint /*from*/, net::Reader& msg) {
  const std::uint64_t qid = msg.u64();
  const NodeRef result = read_node_ref(msg);
  const std::uint8_t hops = msg.u8();
  auto it = rlookups_.find(qid);
  if (it == rlookups_.end()) return;  // stale answer after retry resolution
  if (it->second.timer != 0) transport_.cancel_timer(it->second.timer);
  auto handler = std::move(it->second.handler);
  rlookups_.erase(it);
  handler(net::RpcStatus::kOk, result, hops);
}

// -- route / broadcast / upcall ---------------------------------------------

void Node::set_upcall(std::string topic, UpcallHandler handler) {
  if (handler) {
    upcalls_[std::move(topic)] = std::move(handler);
  } else {
    upcalls_.erase(topic);
  }
}

void Node::deliver_upcall(const std::string& topic, Id key,
                          std::span<const std::uint8_t> payload) {
  const auto it = upcalls_.find(topic);
  if (it == upcalls_.end()) {
    // Per-delivery drop path; gate computed in-branch so registered-topic
    // deliveries pay nothing.
    const bool log_debug = Logger::instance().enabled(LogLevel::kDebug);
    if (log_debug) {
      DAT_LOG_DEBUG("chord", "no upcall registered for topic " << topic);
    }
    return;
  }
  net::Reader reader(payload);
  try {
    it->second(key, reader);
  } catch (const std::exception& e) {
    const bool log_warn = Logger::instance().enabled(LogLevel::kWarn);
    if (log_warn) {
      DAT_LOG_WARN("chord", "upcall " << topic << " threw: " << e.what());
    }
  }
}

void Node::route(Id key, const std::string& topic,
                 const net::Writer& payload) {
  key &= space_.mask();
  if (owns(key)) {
    deliver_upcall(topic, key, payload.data());
    return;
  }
  const auto target = dat_parent(key, RoutingScheme::kGreedy);
  if (!target || target->endpoint == self_.endpoint) {
    deliver_upcall(topic, key, payload.data());
    return;
  }
  net::Writer w;
  w.str(topic);
  w.u64(key);
  w.u8(static_cast<std::uint8_t>(2 * space_.bits() + 8));  // TTL
  w.bytes(payload.data());
  rpc_->send_one_way(target->endpoint, kRoute, w);
}

void Node::handle_route(net::Endpoint /*from*/, net::Reader& msg) {
  const std::string topic = msg.str();
  const Id key = msg.u64();
  const std::uint8_t ttl = msg.u8();
  const std::vector<std::uint8_t> payload = msg.bytes();

  if (owns(key) || ttl == 0) {
    deliver_upcall(topic, key, payload);
    return;
  }
  const auto target = dat_parent(key, RoutingScheme::kGreedy);
  if (!target || target->endpoint == self_.endpoint) {
    deliver_upcall(topic, key, payload);
    return;
  }
  net::Writer w;
  w.str(topic);
  w.u64(key);
  w.u8(static_cast<std::uint8_t>(ttl - 1));
  w.bytes(payload);
  rpc_->send_one_way(target->endpoint, kRoute, w);
}

void Node::broadcast_segment(const std::string& topic, Id limit,
                             std::span<const std::uint8_t> payload) {
  // Delegate (f, boundary) to each distinct finger f inside the segment
  // (self, limit), highest first — every node is covered exactly once when
  // fingers are converged (the same segmentation as DAT snapshots).
  const auto in_segment = [&](Id x) {
    if (x == self_.id) return false;
    if (limit == self_.id) return true;  // full circle minus self
    return space_.in_open_open(self_.id, x, limit);
  };
  std::vector<NodeRef> targets;
  for (unsigned j = space_.bits(); j-- > 0;) {
    const NodeRef& f = j == 0 ? successor() : fingers_[j];
    if (!f.valid() || f.endpoint == self_.endpoint) continue;
    if (!in_segment(f.id)) continue;
    if (std::any_of(targets.begin(), targets.end(),
                    [&](const NodeRef& t) { return t.id == f.id; })) {
      continue;
    }
    targets.push_back(f);
  }
  std::sort(targets.begin(), targets.end(),
            [&](const NodeRef& a, const NodeRef& b) {
              return space_.clockwise(self_.id, a.id) >
                     space_.clockwise(self_.id, b.id);
            });
  Id boundary = limit;
  for (const NodeRef& target : targets) {
    net::Writer w;
    w.str(topic);
    w.u64(boundary);
    w.bytes(payload);
    rpc_->send_one_way(target.endpoint, kBroadcast, w);
    boundary = target.id;
  }
}

void Node::broadcast(const std::string& topic, const net::Writer& payload) {
  deliver_upcall(topic, Sha1::hash_to_id("topic:" + topic, space_),
                 payload.data());
  broadcast_segment(topic, self_.id, payload.data());
}

void Node::handle_broadcast(net::Endpoint /*from*/, net::Reader& msg) {
  const std::string topic = msg.str();
  const Id limit = msg.u64();
  const std::vector<std::uint8_t> payload = msg.bytes();
  deliver_upcall(topic, Sha1::hash_to_id("topic:" + topic, space_), payload);
  broadcast_segment(topic, limit, payload);
}

void Node::create(std::optional<Id> id) {
  if (alive_) throw std::logic_error("Node::create on a live node");
  if (id) self_.id = *id & space_.mask();
  predecessor_ = std::nullopt;
  successor_list_.assign(1, self_);
  alive_ = true;
  joined_ = true;
  start_timers();
}

void Node::join(net::Endpoint bootstrap, std::function<void(bool)> done,
                std::optional<Id> forced_id) {
  if (alive_) throw std::logic_error("Node::join on a live node");
  alive_ = true;

  // Step 1: learn the bootstrap node's identifier.
  rpc_->call(
      bootstrap, kPing, net::Writer{},
      [this, bootstrap, done = std::move(done),
       forced_id](net::RpcStatus status, net::Reader& r) mutable {
        if (!alive_) return;
        if (status != net::RpcStatus::kOk) {
          alive_ = false;
          if (done) done(false);
          return;
        }
        NodeRef well_known;
        well_known.endpoint = bootstrap;
        well_known.id = r.u64();

        auto finish_join = [this, done = std::move(done)](Id chosen_id,
                                                          NodeRef start) mutable {
          complete_join(chosen_id, start, /*attempts_left=*/5,
                        std::move(done));
        };

        if (forced_id) {
          finish_join(*forced_id, well_known);
          return;
        }
        if (!options_.probing_join) {
          finish_join(self_.id, well_known);
          return;
        }

        // Step 2 (probing join, paper Sec. 4): route to the successor of a
        // random point and ask it to designate an identifier splitting the
        // largest interval it knows about.
        const Id z = rng_.next_id(space_);
        auto state = std::make_shared<LookupState>();
        state->key = z;
        state->current = well_known;
        state->max_hops = 2 * space_.bits() + 8;
        state->handler = [this, well_known, finish_join = std::move(finish_join)](
                             net::RpcStatus st, NodeRef succ,
                             unsigned /*hops*/) mutable {
          if (!alive_) return;
          if (st != net::RpcStatus::kOk || !succ.valid()) {
            alive_ = false;
            return;
          }
          m_join_probes_->inc();
          rpc_->call(
              succ.endpoint, kSplitInterval, net::Writer{},
              [this, well_known, finish_join = std::move(finish_join)](
                  net::RpcStatus st2, net::Reader& r2) mutable {
                if (!alive_) return;
                if (st2 != net::RpcStatus::kOk) {
                  // Fall back to plain join with the hash id.
                  finish_join(self_.id, well_known);
                  return;
                }
                if (r2.boolean()) {
                  finish_join(r2.u64(), well_known);
                  return;
                }
                // Delegated: the largest interval belongs to another node;
                // ask its owner, which serializes splits of that interval.
                const net::Endpoint owner = r2.u64();
                net::Writer own_only;
                own_only.boolean(true);
                m_join_probes_->inc();
                rpc_->call(owner, kSplitInterval, own_only,
                           [this, well_known,
                            finish_join = std::move(finish_join)](
                               net::RpcStatus st3, net::Reader& r3) mutable {
                             if (!alive_) return;
                             if (st3 != net::RpcStatus::kOk || !r3.boolean()) {
                               finish_join(self_.id, well_known);
                               return;
                             }
                             finish_join(r3.u64(), well_known);
                           },
                           options_.rpc);
              },
              options_.rpc);
        };
        lookup_step(std::move(state));
      },
      options_.rpc);
}

void Node::complete_join(Id chosen_id, NodeRef start, unsigned attempts_left,
                         std::function<void(bool)> done) {
  self_.id = chosen_id & space_.mask();
  // Find our successor and splice in; stabilization integrates us fully
  // afterwards. An identifier collision (successor already holds our id)
  // triggers a bounded retry with a perturbed id.
  auto state = std::make_shared<LookupState>();
  state->key = self_.id;
  state->current = start;
  state->max_hops = 2 * space_.bits() + 8;
  state->handler = [this, start, attempts_left, done = std::move(done)](
                       net::RpcStatus st, NodeRef succ,
                       unsigned /*hops*/) mutable {
    if (!alive_) return;
    if (st != net::RpcStatus::kOk || !succ.valid()) {
      alive_ = false;
      if (done) done(false);
      return;
    }
    if (succ.endpoint == self_.endpoint) {
      // The lookup collapsed onto our own (still empty) tables — a timeout
      // mid-route restarted it from self before we ever joined. We cannot
      // be our own successor when joining through a bootstrap; retry from
      // the bootstrap, by which time its ring has purged the stale hop.
      if (attempts_left == 0) {
        alive_ = false;
        if (done) done(false);
        return;
      }
      complete_join(self_.id, start, attempts_left - 1, std::move(done));
      return;
    }
    if (succ.id == self_.id) {
      if (attempts_left == 0) {
        alive_ = false;
        if (done) done(false);
        return;
      }
      // Fall back to a fresh uniform identifier: a tiny offset would leave
      // a microscopic gap next to the collided node.
      complete_join(rng_.next_id(space_), start, attempts_left - 1,
                    std::move(done));
      return;
    }
    successor_list_.assign(1, succ);
    predecessor_ = std::nullopt;
    joined_ = true;
    start_timers();
    if (done) done(true);
  };
  lookup_step(std::move(state));
}

void Node::leave() {
  if (!alive_ || !joined_) {
    fail();
    return;
  }
  const NodeRef succ = successor();
  // Tell the successor to adopt our predecessor…
  if (succ.valid() && succ.endpoint != self_.endpoint) {
    net::Writer w;
    w.u8(0);  // 0: predecessor update (to our successor)
    w.boolean(predecessor_.has_value());
    write_node_ref(w, predecessor_.value_or(NodeRef{}));
    rpc_->send_one_way(succ.endpoint, kLeaving, w);
  }
  // …and the predecessor to adopt our successor list.
  if (predecessor_ && predecessor_->valid() &&
      predecessor_->endpoint != self_.endpoint) {
    net::Writer w;
    w.u8(1);  // 1: successor update (to our predecessor)
    w.u32(static_cast<std::uint32_t>(successor_list_.size()));
    for (const NodeRef& s : successor_list_) write_node_ref(w, s);
    rpc_->send_one_way(predecessor_->endpoint, kLeaving, w);
  }
  fail();
}

void Node::fail() {
  alive_ = false;
  joined_ = false;
  stop_timers();
}

NodeRef Node::successor() const {
  return successor_list_.empty() ? self_ : successor_list_.front();
}

std::vector<Id> Node::finger_ids() const {
  std::vector<Id> out(space_.bits(), self_.id);
  for (unsigned j = 0; j < space_.bits(); ++j) {
    if (fingers_[j].valid()) out[j] = fingers_[j].id;
  }
  // Finger 0 is by definition the successor; keep it authoritative.
  if (!successor_list_.empty()) out[0] = successor_list_.front().id;
  return out;
}

bool Node::owns(Id key) const {
  if (!alive_) return false;
  if (!predecessor_) {
    // Singleton ring owns everything; otherwise unknown yet.
    return successor().id == self_.id;
  }
  return space_.in_open_closed(predecessor_->id, key, self_.id);
}

std::optional<NodeRef> Node::dat_parent(Id key, RoutingScheme scheme) const {
  const bool is_root = owns(key);
  const std::vector<Id> ids = finger_ids();
  std::optional<Id> next;
  switch (scheme) {
    case RoutingScheme::kGreedy:
      next = next_hop_greedy(space_, self_.id, key, ids, is_root);
      break;
    case RoutingScheme::kBalanced: {
      const auto [num, den] = estimate_d0();
      next = next_hop_balanced(space_, self_.id, key, ids, is_root, num, den);
      break;
    }
  }
  if (!next) return std::nullopt;
  // Map the chosen identifier back to an endpoint.
  if (!successor_list_.empty() && successor_list_.front().id == *next) {
    return successor_list_.front();
  }
  for (unsigned j = 0; j < space_.bits(); ++j) {
    if (fingers_[j].valid() && fingers_[j].id == *next) return fingers_[j];
  }
  for (const NodeRef& s : successor_list_) {
    if (s.id == *next) return s;
  }
  return std::nullopt;  // table churned between selection and mapping
}

std::pair<std::uint64_t, std::uint64_t> Node::estimate_d0() const {
  if (d0_hint_) return *d0_hint_;
  // Estimate from successor-list spacing: the clockwise span covered by the
  // list divided by the number of gaps in it.
  if (successor_list_.size() >= 2 &&
      successor_list_.back().id != self_.id) {
    const Id span = space_.clockwise(self_.id, successor_list_.back().id);
    const std::uint64_t gaps = successor_list_.size();
    if (span > 0) return {span, gaps};
  }
  return {space_.size(), 1};  // singleton: the whole circle
}

bool Node::converged_against(const RingView& ring) const {
  if (!alive_ || !ring.contains(self_.id)) return false;
  const std::size_t idx = ring.index_of(self_.id);
  const Id true_succ = ring.id((idx + 1) % ring.size());
  const Id true_pred = ring.id((idx + ring.size() - 1) % ring.size());
  if (successor().id != true_succ) return false;
  if (ring.size() > 1 && (!predecessor_ || predecessor_->id != true_pred)) {
    return false;
  }
  for (unsigned j = 0; j < space_.bits(); ++j) {
    const Id expect = ring.finger(self_.id, j);
    const Id have = fingers_[j].valid() ? fingers_[j].id
                                        : (j == 0 ? successor().id : self_.id);
    if (have != expect) return false;
  }
  return true;
}

std::string Node::describe() const {
  std::string out;
  out += "node " + to_string(self_) + (alive_ ? "" : " [dead]") +
         (joined_ ? "" : " [not joined]") + "\n";
  out += "  predecessor: " +
         (predecessor_ ? to_string(*predecessor_) : std::string("(none)")) +
         "\n";
  out += "  successors:  ";
  for (const NodeRef& s : successor_list_) out += to_string(s) + " ";
  out += "\n  fingers:\n";
  // Collapse runs of identical finger entries, as real tables are sparse.
  for (unsigned j = 0; j < space_.bits();) {
    unsigned k = j;
    while (k + 1 < space_.bits() &&
           fingers_[k + 1].endpoint == fingers_[j].endpoint) {
      ++k;
    }
    out += "    [" + std::to_string(j) +
           (k != j ? ".." + std::to_string(k) : "") + "] ";
    out += fingers_[j].valid() ? to_string(fingers_[j])
                               : std::string("(unset)");
    if (finger_pred_[j]) {
      out += " pred-gap " +
             std::to_string(space_.clockwise(*finger_pred_[j],
                                             fingers_[j].id));
    }
    out += "\n";
    j = k + 1;
  }
  return out;
}

// -- timers -------------------------------------------------------------

void Node::start_timers() {
  arm_stabilize();
  arm_fix_fingers();
  arm_check_predecessor();
}

void Node::stop_timers() {
  if (stabilize_timer_ != 0) transport_.cancel_timer(stabilize_timer_);
  if (fix_fingers_timer_ != 0) transport_.cancel_timer(fix_fingers_timer_);
  if (check_pred_timer_ != 0) transport_.cancel_timer(check_pred_timer_);
  stabilize_timer_ = fix_fingers_timer_ = check_pred_timer_ = 0;
  for (auto& [qid, pending] : rlookups_) {
    if (pending.timer != 0) transport_.cancel_timer(pending.timer);
  }
  rlookups_.clear();
}

void Node::arm_stabilize() {
  const std::uint64_t jitter = rng_.next_below(options_.start_jitter_us + 1);
  stabilize_timer_ = transport_.set_timer(
      options_.stabilize_interval_us + jitter, [this]() {
        if (!alive_) return;
        do_stabilize();
        arm_stabilize();
      });
}

void Node::arm_fix_fingers() {
  const std::uint64_t jitter = rng_.next_below(options_.start_jitter_us + 1);
  fix_fingers_timer_ = transport_.set_timer(
      options_.fix_fingers_interval_us + jitter, [this]() {
        if (!alive_) return;
        do_fix_fingers();
        arm_fix_fingers();
      });
}

void Node::arm_check_predecessor() {
  const std::uint64_t jitter = rng_.next_below(options_.start_jitter_us + 1);
  check_pred_timer_ = transport_.set_timer(
      options_.check_predecessor_interval_us + jitter, [this]() {
        if (!alive_) return;
        do_check_predecessor();
        arm_check_predecessor();
      });
}

// -- periodic protocols ---------------------------------------------------

void Node::do_stabilize() {
  const NodeRef succ = successor();
  if (!succ.valid() || succ.endpoint == self_.endpoint) {
    // Singleton: if someone notified us, close the two-node ring.
    if (predecessor_ && predecessor_->id != self_.id) {
      successor_list_.assign(1, *predecessor_);
    }
    return;
  }
  ++maintenance_rpcs_;
  m_stabilize_rounds_->inc();
  rpc_->call(
      succ.endpoint, kGetNeighbors, net::Writer{},
      [this, succ](net::RpcStatus status, net::Reader& r) {
        if (!alive_) return;
        if (status != net::RpcStatus::kOk) {
          promote_next_successor();
          return;
        }
        const bool has_pred = r.boolean();
        const NodeRef pred = read_node_ref(r);
        const auto count = r.u32();
        std::vector<NodeRef> their_list;
        // count is wire-controlled: cap the reservation by what the buffer
        // can actually hold (16 bytes per NodeRef) so a forged count cannot
        // demand a huge allocation; the read loop below throws on truncation.
        their_list.reserve(std::min<std::size_t>(count, r.remaining() / 16));
        for (std::uint32_t i = 0; i < count; ++i) {
          their_list.push_back(read_node_ref(r));
        }

        NodeRef new_succ = succ;
        if (has_pred && pred.valid() &&
            space_.in_open_open(self_.id, pred.id, succ.id)) {
          new_succ = pred;
        }
        // Rebuild the successor list: [new_succ] + its list, minus self,
        // truncated.
        std::vector<NodeRef> list{new_succ};
        if (new_succ.id == succ.id) {
          for (const NodeRef& s : their_list) {
            if (s.endpoint == self_.endpoint) continue;
            if (std::any_of(list.begin(), list.end(), [&](const NodeRef& x) {
                  return x.endpoint == s.endpoint;
                })) {
              continue;
            }
            list.push_back(s);
            if (list.size() >= options_.successor_list_size) break;
          }
        }
        successor_list_ = std::move(list);

        net::Writer w;
        write_node_ref(w, self_);
        ++maintenance_rpcs_;
        // Notify is advisory (the next stabilize repeats it): two fixed
        // attempts, no backoff.
        rpc_->call(successor().endpoint, kNotify, w,
                   [](net::RpcStatus, net::Reader&) {},
                   options_.rpc.fixed(2));
      },
      // Explicit maintenance budget: fixed timeout, full attempts. Backing
      // off here would only postpone promote_next_successor past the next
      // stabilize tick.
      options_.rpc.fixed(options_.rpc.attempts));
}

void Node::promote_next_successor() {
  if (successor_list_.size() > 1) {
    successor_list_.erase(successor_list_.begin());
    return;
  }
  // Last resort: fall back to the best finger, else become a singleton.
  for (unsigned j = 0; j < space_.bits(); ++j) {
    if (fingers_[j].valid() && fingers_[j].endpoint != self_.endpoint &&
        fingers_[j].endpoint != successor().endpoint) {
      successor_list_.assign(1, fingers_[j]);
      return;
    }
  }
  successor_list_.assign(1, self_);
}

void Node::do_fix_fingers() {
  m_finger_fixes_->inc();
  const unsigned j = next_finger_to_fix_;
  next_finger_to_fix_ = (next_finger_to_fix_ + 1) % space_.bits();
  const Id target = space_.finger_target(self_.id, j);
  ++maintenance_rpcs_;
  find_successor(target, [this, j](net::RpcStatus status, NodeRef node) {
    if (!alive_ || status != net::RpcStatus::kOk || !node.valid()) return;
    fingers_[j] = node;
    if (j == 0 && !successor_list_.empty() &&
        node.endpoint != successor_list_.front().endpoint &&
        space_.in_open_open(self_.id, node.id, successor_list_.front().id)) {
      successor_list_.insert(successor_list_.begin(), node);
      if (successor_list_.size() > options_.successor_list_size) {
        successor_list_.pop_back();
      }
    }
    if (node.endpoint != self_.endpoint) {
      // Refresh the finger's predecessor gap (FOF metadata, paper Sec. 4)
      // on every fix so split_interval answers for probing joins reflect
      // intervals that recent joiners have already subdivided.
      ++maintenance_rpcs_;
      // Metadata-only refresh, repeated every fix_fingers cycle: a tight
      // two-attempt fixed budget instead of the data-plane default.
      rpc_->call(node.endpoint, kGetNeighbors, net::Writer{},
                 [this, j, node](net::RpcStatus st, net::Reader& r) {
                   if (!alive_ || st != net::RpcStatus::kOk) return;
                   const bool has_pred = r.boolean();
                   const NodeRef pred = read_node_ref(r);
                   if (fingers_[j] == node && has_pred) {
                     finger_pred_[j] = pred.id;
                   }
                 },
                 options_.rpc.fixed(2));
    } else {
      finger_pred_[j] = std::nullopt;
    }
  });
}

void Node::do_check_predecessor() {
  if (!predecessor_ || predecessor_->endpoint == self_.endpoint) return;
  const NodeRef pred = *predecessor_;
  ++maintenance_rpcs_;
  // Failure-detector ping: fixed budget with full attempts — a false
  // positive drops the predecessor (flapping tree roots), so keep the
  // redundancy but never the backoff, which would blur the detection window.
  rpc_->call(pred.endpoint, kPing, net::Writer{},
             [this, pred](net::RpcStatus status, net::Reader&) {
               if (!alive_) return;
               if (status != net::RpcStatus::kOk && predecessor_ &&
                   predecessor_->endpoint == pred.endpoint) {
                 predecessor_ = std::nullopt;
               }
             },
             options_.rpc.fixed(options_.rpc.attempts));
}

// -- lookup ---------------------------------------------------------------

NodeRef Node::closest_preceding(Id key) const {
  // Largest finger (or successor-list entry) strictly inside (self, key).
  NodeRef best = self_;
  Id best_progress = 0;
  auto consider = [&](const NodeRef& cand) {
    if (!cand.valid() || cand.endpoint == self_.endpoint) return;
    const Id progress = space_.clockwise(self_.id, cand.id);
    if (progress == 0) return;
    if (progress < space_.clockwise(self_.id, key) && progress > best_progress) {
      best_progress = progress;
      best = cand;
    }
  };
  for (unsigned j = 0; j < space_.bits(); ++j) consider(fingers_[j]);
  for (const NodeRef& s : successor_list_) consider(s);
  return best;
}

void Node::find_successor(Id key, LookupHandler handler) {
  find_successor_traced(
      key, [handler = std::move(handler)](net::RpcStatus st, NodeRef node,
                                          unsigned /*hops*/) {
        handler(st, node);
      });
}

void Node::find_successor_traced(
    Id key, std::function<void(net::RpcStatus, NodeRef, unsigned)> h) {
  m_lookups_->inc();
  auto state = std::make_shared<LookupState>();
  state->key = key & space_.mask();
  state->current = self_;
  state->max_hops = 2 * space_.bits() + 8;
  state->handler = [this, h = std::move(h)](net::RpcStatus st, NodeRef node,
                                            unsigned hops) {
    m_lookup_hops_->observe(hops);
    if (st != net::RpcStatus::kOk) m_lookup_failures_->inc();
    h(st, node, hops);
  };
  lookup_step(std::move(state));
}

void Node::lookup_step(std::shared_ptr<LookupState> state) {
  if (!alive_) return;
  if (state->hops > state->max_hops) {
    state->handler(net::RpcStatus::kTimeout, NodeRef{}, state->hops);
    return;
  }

  if (state->current.endpoint == self_.endpoint) {
    // Local step: no RPC needed.
    const NodeRef succ = successor();
    if (!succ.valid() || succ.endpoint == self_.endpoint) {
      state->handler(net::RpcStatus::kOk, self_, state->hops);
      return;
    }
    if (space_.in_open_closed(self_.id, state->key, succ.id)) {
      state->handler(net::RpcStatus::kOk, succ, state->hops);
      return;
    }
    const NodeRef next = closest_preceding(state->key);
    if (next.endpoint == self_.endpoint) {
      state->handler(net::RpcStatus::kOk, succ, state->hops);
      return;
    }
    state->current = next;
    // fall through to the remote step below
  }

  net::Writer w;
  w.u64(state->key);
  ++state->hops;
  rpc_->call(state->current.endpoint, kLookupStep, w,
             [this, state](net::RpcStatus status, net::Reader& r) {
               if (!alive_) return;
               if (status == net::RpcStatus::kTimeout) {
                 // The hop is unresponsive — most likely crashed. Evict it
                 // from our own tables (otherwise a stale finger could keep
                 // winning closest_preceding and wedge every future lookup
                 // through the same dead node) and reroute from scratch.
                 purge_endpoint(state->current.endpoint);
                 if (state->restarts_left > 0) {
                   --state->restarts_left;
                   state->current = self_;
                   lookup_step(state);
                   return;
                 }
               }
               if (status != net::RpcStatus::kOk) {
                 state->handler(status, NodeRef{}, state->hops);
                 return;
               }
               const bool done = r.boolean();
               const NodeRef node = read_node_ref(r);
               if (done) {
                 state->handler(net::RpcStatus::kOk, node, state->hops);
                 return;
               }
               if (node.endpoint == state->current.endpoint ||
                   !node.valid()) {
                 // No progress: treat the reporting node's successor info as
                 // final to avoid a livelock during convergence.
                 state->handler(net::RpcStatus::kOk, node.valid() ? node
                                                                  : state->current,
                                state->hops);
                 return;
               }
               state->current = node;
               lookup_step(state);
             },
             options_.rpc);
}

// -- RPC server handlers ----------------------------------------------------

void Node::handle_lookup_step(net::Endpoint /*from*/, net::Reader& req,
                              net::Writer& reply) {
  const Id key = req.u64() & space_.mask();
  const NodeRef succ = successor();
  if (!joined_ || !succ.valid() || succ.endpoint == self_.endpoint) {
    reply.boolean(true);
    write_node_ref(reply, self_);
    return;
  }
  if (space_.in_open_closed(self_.id, key, succ.id)) {
    reply.boolean(true);
    write_node_ref(reply, succ);
    return;
  }
  const NodeRef next = closest_preceding(key);
  if (next.endpoint == self_.endpoint) {
    reply.boolean(true);
    write_node_ref(reply, succ);
    return;
  }
  reply.boolean(false);
  write_node_ref(reply, next);
}

void Node::handle_get_neighbors(net::Endpoint /*from*/, net::Reader& /*req*/,
                                net::Writer& reply) {
  reply.boolean(predecessor_.has_value());
  write_node_ref(reply, predecessor_.value_or(NodeRef{}));
  reply.u32(static_cast<std::uint32_t>(successor_list_.size()));
  for (const NodeRef& s : successor_list_) write_node_ref(reply, s);
}

void Node::handle_notify(net::Endpoint /*from*/, net::Reader& req,
                         net::Writer& /*reply*/) {
  const NodeRef candidate = read_node_ref(req);
  if (!candidate.valid()) return;
  if (!predecessor_ ||
      space_.in_open_open(predecessor_->id, candidate.id, self_.id) ||
      predecessor_->endpoint == self_.endpoint) {
    predecessor_ = candidate;
    // Designations at or behind the new predecessor are now real members
    // (or moot); stop treating them as split boundaries.
    std::erase_if(pending_splits_, [this](Id d) {
      return !space_.in_open_open(predecessor_->id, d, self_.id);
    });
  }
  // A notify also doubles as a hint for a lone node to close the ring.
  if (successor().endpoint == self_.endpoint &&
      candidate.endpoint != self_.endpoint) {
    successor_list_.assign(1, candidate);
  }
}

void Node::handle_ping(net::Endpoint /*from*/, net::Reader& /*req*/,
                       net::Writer& reply) {
  reply.u64(self_.id);
}

void Node::handle_split_interval(net::Endpoint /*from*/, net::Reader& req,
                                 net::Writer& reply) {
  // Two-step designation protocol. A plain request surveys the largest
  // interval we know about — our own predecessor interval plus every
  // finger's predecessor interval (the FOF metadata refreshed during
  // fix_fingers). If the largest interval belongs to a finger we DELEGATE:
  // the reply names that finger and the joiner asks it directly with
  // own_only set. Only the interval's owner designates identifiers inside
  // it, which serializes concurrent splits and prevents two designators
  // with equally stale metadata from issuing the same midpoint (duplicate
  // node identifiers).
  const bool own_only = req.remaining() > 0 && req.boolean();

  // Survey candidate intervals: (gap, owner-finger-index or -1 for self).
  std::vector<std::pair<Id, int>> candidates;
  Id best_gap = 0;
  const Id own_pred = predecessor_ ? predecessor_->id : self_.id;
  if (own_pred != self_.id) {
    best_gap = space_.clockwise(own_pred, self_.id);
    candidates.emplace_back(best_gap, -1);
  }
  if (!own_only) {
    std::vector<net::Endpoint> seen;
    for (unsigned j = 0; j < space_.bits(); ++j) {
      if (!fingers_[j].valid() || !finger_pred_[j]) continue;
      if (fingers_[j].endpoint == self_.endpoint) continue;
      if (std::find(seen.begin(), seen.end(), fingers_[j].endpoint) !=
          seen.end()) {
        continue;
      }
      seen.push_back(fingers_[j].endpoint);
      const Id gap = space_.clockwise(*finger_pred_[j], fingers_[j].id);
      candidates.emplace_back(gap, static_cast<int>(j));
      best_gap = std::max(best_gap, gap);
    }
  }
  // Pick uniformly among near-maximal intervals (within 2x of the largest):
  // the survey data is stale by up to a fix_fingers cycle, so insisting on
  // the strict maximum would funnel a burst of joiners into one interval
  // and geometrically cluster their identifiers.
  int chosen_finger = -1;
  if (!candidates.empty() && best_gap > 0) {
    std::vector<int> near_max;
    for (const auto& [gap, j] : candidates) {
      if (gap >= best_gap / 2 && gap >= 2) near_max.push_back(j);
    }
    if (!near_max.empty()) {
      chosen_finger = near_max[rng_.next_below(near_max.size())];
    }
  }
  if (chosen_finger >= 0) {
    // Delegate to the interval's owner.
    reply.boolean(false);
    reply.u64(fingers_[static_cast<unsigned>(chosen_finger)].endpoint);
    return;
  }
  // From here on we designate from our own interval (own_pred, self]. When
  // we have not even learned a predecessor yet (a freshly bootstrapped node
  // hit by back-to-back joiners), fall back to the span toward our
  // successor, or the full circle for a singleton.
  Id interval_start = own_pred;
  Id interval_end = self_.id;
  if (own_pred == self_.id) {
    interval_start = self_.id;
    interval_end = successor().endpoint != self_.endpoint ? successor().id
                                                          : self_.id;
  }
  const bool full_circle = interval_start == interval_end;

  // Boundary points: interval start, every pending (not-yet-materialized)
  // designation inside it, and the interval end. Designate the midpoint of
  // the largest sub-interval, so a burst of joiners lands evenly spread
  // instead of geometrically clustered.
  std::erase_if(pending_splits_, [&](Id d) {
    if (full_circle) return d == interval_start;
    return !space_.in_open_open(interval_start, d, interval_end);
  });
  std::vector<Id> boundaries{interval_start};
  boundaries.insert(boundaries.end(), pending_splits_.begin(),
                    pending_splits_.end());
  boundaries.push_back(interval_end);
  std::sort(boundaries.begin() + 1, boundaries.end() - 1,
            [&](Id a, Id b) {
              return space_.clockwise(interval_start, a) <
                     space_.clockwise(interval_start, b);
            });

  Id widest_lo = interval_start;
  Id widest_gap = full_circle && boundaries.size() == 2 ? space_.mask() : 0;
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    Id gap;
    if (boundaries[i] == boundaries[i + 1]) {
      // Only possible in the full-circle case where start == end: the arc
      // between the last pending split and the start wraps the whole way.
      gap = i == 0 ? space_.mask() : space_.clockwise(boundaries[i],
                                                      boundaries[i + 1]);
    } else {
      gap = space_.clockwise(boundaries[i], boundaries[i + 1]);
    }
    if (gap > widest_gap) {
      widest_gap = gap;
      widest_lo = boundaries[i];
    }
  }
  const Id designated = space_.add(widest_lo, std::max<Id>(widest_gap / 2, 1));
  if (designated != self_.id) {
    pending_splits_.push_back(designated);
    if (pending_splits_.size() > 64) {
      pending_splits_.erase(pending_splits_.begin());
    }
  }
  reply.boolean(true);
  reply.u64(designated);
}

void Node::purge_endpoint(net::Endpoint ep) {
  if (ep == net::kNullEndpoint || ep == self_.endpoint) return;
  m_purges_->inc();
  for (unsigned j = 0; j < space_.bits(); ++j) {
    if (fingers_[j].endpoint == ep) {
      fingers_[j] = NodeRef{};
      finger_pred_[j] = std::nullopt;
    }
  }
  const bool had_successors = !successor_list_.empty();
  std::erase_if(successor_list_,
                [ep](const NodeRef& s) { return s.endpoint == ep; });
  // Only a list this purge actually emptied warrants promotion. A node that
  // is still joining has no successors yet; fabricating a self-successor
  // here would turn its in-flight join lookup into a singleton ring.
  if (had_successors && successor_list_.empty()) {
    promote_next_successor();  // falls back to a live finger or singleton
  }
  if (predecessor_ && predecessor_->endpoint == ep) {
    predecessor_ = std::nullopt;
  }
}

void Node::handle_leaving(net::Endpoint /*from*/, net::Reader& msg) {
  const std::uint8_t kind = msg.u8();
  if (kind == 0) {
    // Our predecessor is leaving; adopt its predecessor.
    const bool has_pred = msg.boolean();
    const NodeRef pred = read_node_ref(msg);
    predecessor_ = has_pred && pred.valid() ? std::optional<NodeRef>(pred)
                                            : std::nullopt;
  } else {
    // Our successor is leaving; adopt its successor list.
    const auto count = msg.u32();
    std::vector<NodeRef> list;
    // Wire-controlled count: bound the reservation by the bytes present.
    list.reserve(std::min<std::size_t>(count, msg.remaining() / 16));
    for (std::uint32_t i = 0; i < count; ++i) {
      const NodeRef s = read_node_ref(msg);
      if (s.valid() && s.endpoint != self_.endpoint) list.push_back(s);
    }
    if (!list.empty()) {
      successor_list_ = std::move(list);
    } else {
      successor_list_.assign(1, self_);
    }
  }
}

}  // namespace dat::chord
