#include "chord/ring_view.hpp"

#include <algorithm>
#include <stdexcept>

namespace dat::chord {

RingView::RingView(IdSpace space, std::vector<Id> ids)
    : space_(space), ids_(std::move(ids)) {
  if (ids_.empty()) {
    throw std::invalid_argument("RingView: empty node set");
  }
  for (const Id id : ids_) {
    if (!space_.contains(id)) {
      throw std::invalid_argument("RingView: id outside identifier space");
    }
  }
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

std::size_t RingView::index_of(Id node) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), node);
  if (it == ids_.end() || *it != node) {
    throw std::out_of_range("RingView::index_of: node not in ring");
  }
  return static_cast<std::size_t>(it - ids_.begin());
}

bool RingView::contains(Id node) const {
  return std::binary_search(ids_.begin(), ids_.end(), node);
}

std::size_t RingView::successor_index(Id key) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), key);
  if (it == ids_.end()) return 0;  // wrap to the smallest id
  return static_cast<std::size_t>(it - ids_.begin());
}

Id RingView::predecessor(Id node) const {
  const std::size_t i = index_of(node);
  return ids_[(i + ids_.size() - 1) % ids_.size()];
}

Id RingView::finger(Id node, unsigned j) const {
  return successor(space_.finger_target(node, j));
}

std::vector<Id> RingView::finger_ids(Id node) const {
  std::vector<Id> out;
  out.reserve(space_.bits());
  for (unsigned j = 0; j < space_.bits(); ++j) {
    out.push_back(finger(node, j));
  }
  return out;
}

std::pair<std::uint64_t, std::uint64_t> RingView::d0_rational() const {
  // d0 = 2^b / n. At b == 64 size() saturates; the library caps experiment
  // spaces well below that (see IdSpace::size()).
  return {space_.size(), ids_.size()};
}

std::optional<Id> RingView::parent(Id node, Id key,
                                   RoutingScheme scheme) const {
  const auto [num, den] = d0_rational();
  return parent_with_d0(node, key, scheme, num, den);
}

std::optional<Id> RingView::parent_with_d0(Id node, Id key,
                                           RoutingScheme scheme,
                                           std::uint64_t d0_num,
                                           std::uint64_t d0_den) const {
  const bool is_root = successor(key) == node;
  const std::vector<Id> fingers = finger_ids(node);
  switch (scheme) {
    case RoutingScheme::kGreedy:
      return next_hop_greedy(space_, node, key, fingers, is_root);
    case RoutingScheme::kBalanced:
      return next_hop_balanced(space_, node, key, fingers, is_root, d0_num,
                               d0_den);
  }
  return std::nullopt;
}

std::vector<Id> RingView::route(Id from, Id key, RoutingScheme scheme) const {
  std::vector<Id> path{from};
  Id current = from;
  while (true) {
    const std::optional<Id> next = parent(current, key, scheme);
    if (!next) break;
    path.push_back(*next);
    current = *next;
    if (path.size() > ids_.size()) {
      throw std::logic_error("RingView::route: path longer than ring size");
    }
  }
  return path;
}

double RingView::gap_ratio() const {
  if (ids_.size() < 2) return 1.0;
  Id max_gap = 0;
  Id min_gap = space_.mask();
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    const Id next = ids_[(i + 1) % ids_.size()];
    const Id gap = space_.clockwise(ids_[i], next);
    max_gap = std::max(max_gap, gap);
    min_gap = std::min(min_gap, gap);
  }
  return min_gap == 0 ? 0.0
                      : static_cast<double>(max_gap) /
                            static_cast<double>(min_gap);
}

}  // namespace dat::chord
