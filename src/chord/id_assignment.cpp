#include "chord/id_assignment.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace dat::chord {

const char* to_string(IdAssignment a) noexcept {
  switch (a) {
    case IdAssignment::kRandom: return "random";
    case IdAssignment::kProbed: return "probed";
    case IdAssignment::kEven: return "even";
  }
  return "?";
}

std::vector<Id> random_ids(const IdSpace& space, std::size_t n, Rng& rng) {
  if (n == 0) throw std::invalid_argument("random_ids: n == 0");
  if (space.bits() < 64 && n > space.size()) {
    throw std::invalid_argument("random_ids: n exceeds identifier space");
  }
  std::set<Id> ids;
  while (ids.size() < n) {
    ids.insert(rng.next_id(space));
  }
  return {ids.begin(), ids.end()};
}

std::vector<Id> even_ids(const IdSpace& space, std::size_t n) {
  if (n == 0) throw std::invalid_argument("even_ids: n == 0");
  if (space.bits() < 64 && n > space.size()) {
    throw std::invalid_argument("even_ids: n exceeds identifier space");
  }
  std::vector<Id> ids;
  ids.reserve(n);
  // floor(i * 2^b / n) via 128-bit to avoid overflow at large b.
  const unsigned __int128 sz =
      space.bits() == 64 ? (static_cast<unsigned __int128>(1) << 64)
                         : static_cast<unsigned __int128>(space.size());
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<Id>(sz * i / n) & space.mask());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() != n) {
    throw std::invalid_argument("even_ids: space too small for distinct ids");
  }
  return ids;
}

namespace {

/// Gap from the predecessor of ids[i] to ids[i] on the circle.
Id pred_gap(const IdSpace& space, const std::vector<Id>& ids, std::size_t i) {
  const std::size_t p = (i + ids.size() - 1) % ids.size();
  return space.clockwise(ids[p], ids[i]);
}

std::size_t successor_index_sorted(const std::vector<Id>& ids, Id key) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), key);
  return it == ids.end() ? 0 : static_cast<std::size_t>(it - ids.begin());
}

}  // namespace

std::vector<Id> probed_ids(const IdSpace& space, std::size_t n, Rng& rng,
                           unsigned probe_fingers) {
  if (n == 0) throw std::invalid_argument("probed_ids: n == 0");
  std::vector<Id> ids;  // kept sorted
  ids.push_back(rng.next_id(space));

  while (ids.size() < n) {
    // Route a join request to the successor of a random point (the paper's
    // "join request with a random identifier to a well-known node").
    const Id z = rng.next_id(space);
    const std::size_t s = successor_index_sorted(ids, z);

    // Probe the successor's fingers (it and successor(s + 2^j), widest
    // spans first): O(log n-ish) distinct nodes spaced across the ring.
    std::set<std::size_t> candidates;
    candidates.insert(s);
    const unsigned lowest_j =
        probe_fingers >= space.bits() ? 0 : space.bits() - probe_fingers;
    for (unsigned j = lowest_j; j < space.bits(); ++j) {
      const Id target = space.finger_target(ids[s], j);
      candidates.insert(successor_index_sorted(ids, target));
    }

    // Split the probed node with the maximal predecessor interval.
    std::size_t best = *candidates.begin();
    Id best_gap = 0;
    for (const std::size_t c : candidates) {
      const Id gap = pred_gap(space, ids, c);
      if (gap > best_gap) {
        best_gap = gap;
        best = c;
      }
    }
    if (best_gap < 2) {
      // Identifier space locally exhausted; fall back to a random free id.
      Id id = rng.next_id(space);
      while (std::binary_search(ids.begin(), ids.end(), id)) {
        id = space.add(id, 1);
      }
      ids.insert(std::upper_bound(ids.begin(), ids.end(), id), id);
      continue;
    }
    const std::size_t p = (best + ids.size() - 1) % ids.size();
    const Id new_id = space.add(ids[p], best_gap / 2);
    if (std::binary_search(ids.begin(), ids.end(), new_id)) {
      continue;  // midpoint collides (tiny space); retry with a new probe
    }
    ids.insert(std::upper_bound(ids.begin(), ids.end(), new_id), new_id);
  }
  return ids;
}

double gap_ratio(const IdSpace& space, std::vector<Id> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() < 2) return 1.0;
  Id min_gap = space.size() ? space.size() - 1 : ~Id{0};
  Id max_gap = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Id gap = space.clockwise(ids[i], ids[(i + 1) % ids.size()]);
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
  }
  if (min_gap == 0) return static_cast<double>(max_gap);
  return static_cast<double>(max_gap) / static_cast<double>(min_gap);
}

Id largest_gap_midpoint(const IdSpace& space, std::vector<Id> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.empty()) {
    throw std::invalid_argument("largest_gap_midpoint: no ids");
  }
  Id best_start = ids.front();
  Id best_gap = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Id next = ids[(i + 1) % ids.size()];
    const Id gap = ids.size() == 1 ? (space.size() ? space.size() - 1 : ~Id{0})
                                   : space.clockwise(ids[i], next);
    if (gap > best_gap) {
      best_gap = gap;
      best_start = ids[i];
    }
  }
  return space.add(best_start, best_gap / 2);
}

std::vector<Id> make_ids(IdAssignment kind, const IdSpace& space, std::size_t n,
                         Rng& rng) {
  switch (kind) {
    case IdAssignment::kRandom: return random_ids(space, n, rng);
    case IdAssignment::kProbed: return probed_ids(space, n, rng);
    case IdAssignment::kEven: return even_ids(space, n);
  }
  throw std::invalid_argument("make_ids: bad assignment kind");
}

}  // namespace dat::chord
