#pragma once

#include <cstdint>
#include <string>

#include "common/id_space.hpp"
#include "net/codec.hpp"
#include "net/transport.hpp"

namespace dat::chord {

/// A remote node as known to its peers: Chord identifier + network address.
struct NodeRef {
  Id id = 0;
  net::Endpoint endpoint = net::kNullEndpoint;

  [[nodiscard]] bool valid() const noexcept {
    return endpoint != net::kNullEndpoint;
  }

  friend bool operator==(const NodeRef& a, const NodeRef& b) noexcept {
    return a.id == b.id && a.endpoint == b.endpoint;
  }
};

inline void write_node_ref(net::Writer& w, const NodeRef& ref) {
  w.u64(ref.id);
  w.u64(ref.endpoint);
}

inline NodeRef read_node_ref(net::Reader& r) {
  NodeRef ref;
  ref.id = r.u64();
  ref.endpoint = r.u64();
  return ref;
}

[[nodiscard]] inline std::string to_string(const NodeRef& ref) {
  return "N" + std::to_string(ref.id) + "@" + std::to_string(ref.endpoint);
}

}  // namespace dat::chord
