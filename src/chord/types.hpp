#pragma once

#include <cstdint>
#include <string>

#include "common/id_space.hpp"
#include "net/codec.hpp"
#include "net/transport.hpp"

namespace dat::chord {

/// A remote node as known to its peers: Chord identifier + network address.
struct NodeRef {
  Id id = 0;
  net::Endpoint endpoint = net::kNullEndpoint;

  [[nodiscard]] bool valid() const noexcept {
    return endpoint != net::kNullEndpoint;
  }

  friend bool operator==(const NodeRef& a, const NodeRef& b) noexcept {
    return a.id == b.id && a.endpoint == b.endpoint;
  }
};

inline void write_node_ref(net::Writer& w, const NodeRef& ref) {
  w.u64(ref.id);
  w.u64(ref.endpoint);
}

inline NodeRef read_node_ref(net::Reader& r) {
  NodeRef ref;
  ref.id = r.u64();
  ref.endpoint = r.u64();
  return ref;
}

[[nodiscard]] inline std::string to_string(const NodeRef& ref) {
  // Built up with += rather than operator+ chains: GCC 12's -Wrestrict has a
  // false positive on `const char* + std::string&&` under inlining (PR105651)
  // that would trip -Werror builds.
  std::string out = "N";
  out += std::to_string(ref.id);
  out += '@';
  out += std::to_string(ref.endpoint);
  return out;
}

}  // namespace dat::chord
