#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "chord/routing.hpp"
#include "common/id_space.hpp"

namespace dat::chord {

/// A globally consistent view of a *converged* Chord ring: the successor
/// relationships and finger tables that the distributed protocol reaches
/// after stabilization settles. The paper's tree-property analyses
/// (Figs. 7 and 8) are functions of this converged topology only, so the
/// large-scale experiments (up to 8192 nodes) evaluate on a RingView while
/// protocol-level tests verify that live nodes converge to the same tables.
class RingView {
 public:
  /// Takes the node identifier multiset; duplicates are removed. Throws if
  /// empty or if any id is outside the space.
  RingView(IdSpace space, std::vector<Id> ids);

  [[nodiscard]] const IdSpace& space() const noexcept { return space_; }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] const std::vector<Id>& ids() const noexcept { return ids_; }

  /// Identifier of the i-th node in ascending order.
  [[nodiscard]] Id id(std::size_t index) const { return ids_.at(index); }

  /// Index of a node known to be present; throws if absent.
  [[nodiscard]] std::size_t index_of(Id node) const;

  [[nodiscard]] bool contains(Id node) const;

  /// Index of successor(key): the first node whose id is >= key, wrapping.
  [[nodiscard]] std::size_t successor_index(Id key) const;
  [[nodiscard]] Id successor(Id key) const { return ids_[successor_index(key)]; }

  /// The node immediately preceding `node` on the ring.
  [[nodiscard]] Id predecessor(Id node) const;

  /// FINGER(node, j) = successor(node + 2^j), j in [0, bits).
  [[nodiscard]] Id finger(Id node, unsigned j) const;

  /// All bits() fingers of `node`, index j -> FINGER(node, j).
  [[nodiscard]] std::vector<Id> finger_ids(Id node) const;

  /// Average inter-node gap d0 = 2^b / n as an exact rational (num, den).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> d0_rational() const;

  /// Parent of `node` on the route toward `key` under `scheme`, or nullopt
  /// when node == successor(key) (the root). See chord::next_hop.
  [[nodiscard]] std::optional<Id> parent(Id node, Id key,
                                         RoutingScheme scheme) const;

  /// As parent(), but with an explicit d0 = d0_num/d0_den for the balanced
  /// scheme's finger-limiting function — the sensitivity-analysis hook for
  /// the d0-estimation ablation (greedy routing ignores d0).
  [[nodiscard]] std::optional<Id> parent_with_d0(Id node, Id key,
                                                 RoutingScheme scheme,
                                                 std::uint64_t d0_num,
                                                 std::uint64_t d0_den) const;

  /// Full route from `from` to the root successor(key), inclusive of both
  /// endpoints. Throws if the route exceeds n hops (would indicate a loop —
  /// impossible by construction, checked defensively).
  [[nodiscard]] std::vector<Id> route(Id from, Id key,
                                      RoutingScheme scheme) const;

  /// Max/min adjacent gap ratio — the quantity identifier probing bounds.
  [[nodiscard]] double gap_ratio() const;

 private:
  IdSpace space_;
  std::vector<Id> ids_;  // ascending
};

}  // namespace dat::chord
