#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/id_space.hpp"

namespace dat::chord {

/// Which next-hop policy a route (and hence a DAT tree) is built with.
/// kGreedy is ordinary Chord finger routing (basic DAT, paper Sec. 3.2);
/// kBalanced is the finger-limiting scheme (balanced DAT, Sec. 3.4).
enum class RoutingScheme : std::uint8_t { kGreedy = 0, kBalanced = 1 };

[[nodiscard]] const char* to_string(RoutingScheme s) noexcept;

/// ceil(log2(num / den)) for positive rationals, exact in integer
/// arithmetic: the smallest k >= 0 with 2^k * den >= num. Values <= 1
/// yield 0. Used to evaluate the finger-limiting function without floating
/// point (d0 = 2^b / n is rational when n does not divide 2^b).
[[nodiscard]] unsigned ceil_log2_rational(std::uint64_t num, std::uint64_t den);

/// The paper's finger limiting function g(x) = ceil(log2((x + 2*d0) / 3))
/// (Sec. 3.4, Eq. 1 solved), with d0 expressed as the rational
/// d0_num/d0_den = 2^b / n. `x` is the clockwise distance from the node to
/// the rendezvous key. A node running balanced routing may only use fingers
/// whose span 2^j satisfies j <= g(x).
[[nodiscard]] unsigned finger_limit(std::uint64_t x, std::uint64_t d0_num,
                                    std::uint64_t d0_den);

/// Routing-policy core shared by the analytic RingView and the live
/// protocol node. The caller supplies, for each finger index j in
/// [0, bits), the identifier of FINGER(v, j) = successor(v + 2^j); entries
/// may repeat (sparse rings) and may equal `self` (then they are skipped).
///
/// Returns the identifier of the parent/next hop of `self` on the route to
/// `key`, or nullopt when `self` is the root (i.e. self == successor(key),
/// signalled by the caller via `self_is_root`).
///
/// Rule (paper Sec. 3.2 / 3.4): among admissible fingers f in the interval
/// (self, key] choose the one closest to `key` (equivalently, the largest
/// admissible span). If no admissible finger lies in (self, key] — the key
/// falls between self and its successor — the next hop is the successor,
/// which is then the root. Admissible means j <= limit.
[[nodiscard]] std::optional<Id> next_hop(const IdSpace& space, Id self, Id key,
                                         std::span<const Id> fingers,
                                         bool self_is_root, unsigned limit);

/// Greedy next hop: no finger limit (limit = bits-1).
[[nodiscard]] std::optional<Id> next_hop_greedy(const IdSpace& space, Id self,
                                                Id key,
                                                std::span<const Id> fingers,
                                                bool self_is_root);

/// Balanced next hop: fingers limited by g(clockwise(self, key)) with
/// d0 = d0_num / d0_den.
[[nodiscard]] std::optional<Id> next_hop_balanced(const IdSpace& space, Id self,
                                                  Id key,
                                                  std::span<const Id> fingers,
                                                  bool self_is_root,
                                                  std::uint64_t d0_num,
                                                  std::uint64_t d0_den);

}  // namespace dat::chord
