#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "chord/ring_view.hpp"
#include "chord/routing.hpp"
#include "chord/types.hpp"
#include "common/id_space.hpp"
#include "common/rng.hpp"
#include "net/rpc.hpp"
#include "obs/trace.hpp"

namespace dat::chord {

/// Tunables of the live protocol. Defaults target the simulator's LAN
/// latency model; the UDP examples use the same values.
struct NodeOptions {
  std::size_t successor_list_size = 4;
  std::uint64_t stabilize_interval_us = 200'000;
  std::uint64_t fix_fingers_interval_us = 50'000;  ///< one finger per tick
  std::uint64_t check_predecessor_interval_us = 400'000;
  /// Base budget of data-plane RPCs (lookups, join probing): adaptive —
  /// exponential per-attempt timeouts with decorrelated-jitter backoff, so
  /// retry volume stays bounded under loss. Maintenance RPCs (stabilize,
  /// notify, ping, finger-metadata refresh) derive explicit fixed budgets
  /// from this instead of inheriting it: their periodic timers are the
  /// retry mechanism, so backing off inside one tick only delays failure
  /// detection.
  net::RpcManager::Options rpc = net::RpcOptions::adaptive();
  bool probing_join = true;         ///< identifier probing (Sec. 3.5 / 4)
  std::uint64_t start_jitter_us = 50'000;  ///< staggers periodic timers
};

/// Result of an asynchronous lookup.
using LookupHandler = std::function<void(net::RpcStatus, NodeRef)>;

/// A live Chord node (paper Sec. 3.1/4): ring membership, finger table,
/// periodic stabilization, iterative key lookup, and the identifier-probing
/// join extension. Runs unmodified over the simulator or UDP transports.
///
/// Lifecycle: construct, then either create() (first node of a ring) or
/// join() (any later node). leave() departs gracefully; destruction without
/// leave() models a crash. All callbacks fire on the transport's event
/// loop; the class is not thread-safe (single-threaded event model).
class Node {
 public:
  Node(const IdSpace& space, net::Transport& transport, NodeOptions options,
       std::uint64_t seed);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Bootstraps a one-node ring with the given identifier (or a hash of the
  /// endpoint when omitted). Starts the periodic protocols.
  void create(std::optional<Id> id = std::nullopt);

  /// Joins the ring via any existing member. With probing_join the node
  /// first routes to the successor of a random point and asks it to
  /// designate an identifier splitting its largest known interval; without
  /// it the identifier is the endpoint hash (plain Chord). `done` fires
  /// once the node has a live successor (stabilization still continues to
  /// refine fingers afterwards).
  void join(net::Endpoint bootstrap, std::function<void(bool ok)> done,
            std::optional<Id> forced_id = std::nullopt);

  /// Graceful departure: hands predecessor/successor to the neighbors and
  /// stops all timers. The node can not rejoin.
  void leave();

  /// Crash: stop processing without telling anyone (failure injection).
  void fail();

  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] bool joined() const noexcept { return joined_; }

  /// Iterative find_successor(key) (paper Sec. 3.1's finger routing,
  /// executed as a sequence of lookup_step RPCs). Counts one "routing hop"
  /// per remote step; the hop count is delivered via hops() of the last
  /// lookup or the instrumented variant below.
  void find_successor(Id key, LookupHandler handler);

  /// As find_successor but also reports the number of remote hops taken.
  void find_successor_traced(
      Id key, std::function<void(net::RpcStatus, NodeRef, unsigned hops)> h);

  /// Recursive lookup: the query is forwarded hop-by-hop through the
  /// overlay (one one-way message per hop) and the key's owner answers the
  /// origin directly — half the messages of the iterative mode, at the cost
  /// of in-network state-lessness (a lost hop can only be detected by the
  /// origin's timeout; one full retry is attempted). The iterative mode
  /// remains the default because its failure handling (purge + reroute) is
  /// strictly stronger.
  void find_successor_recursive(
      Id key, std::function<void(net::RpcStatus, NodeRef, unsigned hops)> h);

  // -- local state accessors ------------------------------------------------
  [[nodiscard]] NodeRef self() const noexcept { return self_; }
  [[nodiscard]] Id id() const noexcept { return self_.id; }
  [[nodiscard]] NodeRef successor() const;
  [[nodiscard]] std::optional<NodeRef> predecessor() const noexcept {
    return predecessor_;
  }
  [[nodiscard]] const std::vector<NodeRef>& successor_list() const noexcept {
    return successor_list_;
  }
  /// Finger table entry j (successor(self + 2^j)), invalid if not yet fixed.
  [[nodiscard]] const NodeRef& finger(unsigned j) const {
    return fingers_.at(j);
  }
  /// Identifiers of all fingers (invalid entries collapse to self's id so
  /// that routing skips them). Index j -> FINGER(self, j).
  [[nodiscard]] std::vector<Id> finger_ids() const;

  /// True iff `key` is owned by this node: key in (predecessor, self].
  /// Unknowable (false) until a predecessor is learned.
  [[nodiscard]] bool owns(Id key) const;

  /// Parent selection for DAT (Algorithm 1, executed locally from the live
  /// finger table): next hop toward `key` under `scheme`. Returns nullopt
  /// when this node owns the key (it is the root). d0 is estimated from the
  /// successor-list spacing unless an exact value was injected via
  /// set_d0_hint.
  [[nodiscard]] std::optional<NodeRef> dat_parent(Id key,
                                                  RoutingScheme scheme) const;

  /// Injects the exact average gap (2^b, n) when the deployment knows n.
  void set_d0_hint(std::uint64_t num, std::uint64_t den) {
    d0_hint_ = {num, den};
  }

  /// Estimated average inter-node gap as a rational (num/den), from the
  /// hint or from successor-list spacing.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> estimate_d0() const;

  // -- application upcalls (the paper Fig. 6's route/broadcast/upcall) ------

  /// Payload delivery callback. `key` is the routed key (or the broadcast
  /// topic hash for broadcasts); `payload` is the sender's bytes.
  using UpcallHandler = std::function<void(Id key, net::Reader& payload)>;

  /// Registers the upcall for a topic. Replaces any previous handler.
  void set_upcall(std::string topic, UpcallHandler handler);

  /// Routes `payload` toward successor(key) along greedy finger routing and
  /// delivers the topic's upcall there. Fire-and-forget, O(log n) hops.
  void route(Id key, const std::string& topic, const net::Writer& payload);

  /// Delivers the topic's upcall on every node of the ring exactly once
  /// (assuming converged fingers): segmented DHT broadcast, n-1 messages,
  /// O(log n) depth. Also delivers locally, synchronously.
  void broadcast(const std::string& topic, const net::Writer& payload);

  /// Compares local tables against converged ground truth (tests).
  [[nodiscard]] bool converged_against(const RingView& ring) const;

  /// Multi-line human-readable dump of this node's protocol state
  /// (identifier, predecessor, successor list, distinct fingers) for
  /// operator tooling and debugging.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] const IdSpace& space() const noexcept { return space_; }
  [[nodiscard]] net::RpcManager& rpc() noexcept { return *rpc_; }
  [[nodiscard]] const NodeOptions& options() const noexcept { return options_; }

  /// This node's telemetry bundle: metrics registry (chord, rpc and
  /// transport series), flight-recorder span ring and ambient trace
  /// context. Lives as long as the node.
  [[nodiscard]] obs::NodeTelemetry& telemetry() noexcept { return *telemetry_; }
  [[nodiscard]] const obs::NodeTelemetry& telemetry() const noexcept {
    return *telemetry_;
  }

  /// Messages of Chord maintenance traffic sent since the counter reset —
  /// used by the churn-overhead experiment.
  [[nodiscard]] std::uint64_t maintenance_rpcs() const noexcept {
    return maintenance_rpcs_;
  }

 private:
  struct LookupState {
    Id key = 0;
    NodeRef current;
    unsigned hops = 0;
    unsigned max_hops = 0;
    unsigned restarts_left = 3;  ///< retries after purging a dead hop
    std::function<void(net::RpcStatus, NodeRef, unsigned)> handler;
  };

  void register_handlers();
  void complete_join(Id chosen_id, NodeRef start, unsigned attempts_left,
                     std::function<void(bool)> done);
  void start_timers();
  void stop_timers();
  void arm_stabilize();
  void arm_fix_fingers();
  void arm_check_predecessor();

  void do_stabilize();
  void do_fix_fingers();
  void do_check_predecessor();

  void lookup_step(std::shared_ptr<LookupState> state);
  [[nodiscard]] NodeRef closest_preceding(Id key) const;
  /// Drops a failed endpoint from the finger table, successor list and
  /// predecessor so routing immediately stops selecting it (it may be
  /// re-learned if it was merely slow).
  void purge_endpoint(net::Endpoint ep);
  void adopt_successor(const NodeRef& node);
  void promote_next_successor();

  // RPC server handlers
  void handle_lookup_step(net::Endpoint from, net::Reader& req,
                          net::Writer& reply);
  void handle_get_neighbors(net::Endpoint from, net::Reader& req,
                            net::Writer& reply);
  void handle_notify(net::Endpoint from, net::Reader& req, net::Writer& reply);
  void handle_ping(net::Endpoint from, net::Reader& req, net::Writer& reply);
  void handle_split_interval(net::Endpoint from, net::Reader& req,
                             net::Writer& reply);
  void handle_leaving(net::Endpoint from, net::Reader& msg);
  void handle_route(net::Endpoint from, net::Reader& msg);
  void handle_broadcast(net::Endpoint from, net::Reader& msg);
  void handle_rfind(net::Endpoint from, net::Reader& msg);
  void handle_rfind_done(net::Endpoint from, net::Reader& msg);
  void deliver_upcall(const std::string& topic, Id key,
                      std::span<const std::uint8_t> payload);
  void broadcast_segment(const std::string& topic, Id limit,
                         std::span<const std::uint8_t> payload);

  IdSpace space_;
  net::Transport& transport_;
  NodeOptions options_;
  Rng rng_;
  /// Declared before rpc_: the RPC manager unregisters its metrics
  /// collector on destruction, so the registry must still be alive then.
  std::unique_ptr<obs::NodeTelemetry> telemetry_;
  std::unique_ptr<net::RpcManager> rpc_;

  NodeRef self_;
  std::optional<NodeRef> predecessor_;
  std::vector<NodeRef> successor_list_;  // [0] is the immediate successor
  std::vector<NodeRef> fingers_;         // index j; invalid until fixed
  // Predecessor-gap metadata per finger, learned during fix_fingers; powers
  // the split_interval answer for probing joins (the paper's FOF extension).
  std::vector<std::optional<Id>> finger_pred_;

  bool alive_ = false;
  bool joined_ = false;
  unsigned next_finger_to_fix_ = 0;
  net::TimerId stabilize_timer_ = 0;
  net::TimerId fix_fingers_timer_ = 0;
  net::TimerId check_pred_timer_ = 0;
  std::optional<std::pair<std::uint64_t, std::uint64_t>> d0_hint_;
  std::uint64_t maintenance_rpcs_ = 0;

  // Borrowed instrument pointers into telemetry_->registry; the deque-backed
  // registry guarantees they stay valid for the node's lifetime.
  obs::Counter* m_lookups_ = nullptr;
  obs::Counter* m_lookup_failures_ = nullptr;
  obs::Histogram* m_lookup_hops_ = nullptr;
  obs::Counter* m_stabilize_rounds_ = nullptr;
  obs::Counter* m_finger_fixes_ = nullptr;
  obs::Counter* m_join_probes_ = nullptr;
  obs::Counter* m_purges_ = nullptr;
  std::unordered_map<std::string, UpcallHandler> upcalls_;

  struct PendingRecursiveLookup {
    Id key = 0;
    unsigned attempts_left = 1;
    net::TimerId timer = 0;
    std::function<void(net::RpcStatus, NodeRef, unsigned)> handler;
  };
  std::unordered_map<std::uint64_t, PendingRecursiveLookup> rlookups_;
  std::uint64_t next_rlookup_id_ = 1;
  void send_rfind(std::uint64_t qid, Id key);
  void fail_or_retry_rfind(std::uint64_t qid);

  /// Identifiers designated from our own predecessor interval whose owners
  /// have not yet shown up as our predecessor. They partition the interval
  /// we offer to back-to-back joiners: each new designation bisects the
  /// largest remaining sub-interval, keeping a join burst evenly spread.
  /// Pruned whenever the real predecessor advances past them.
  std::vector<Id> pending_splits_;
};

}  // namespace dat::chord
