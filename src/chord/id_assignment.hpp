#pragma once

#include <vector>

#include "common/id_space.hpp"
#include "common/rng.hpp"

namespace dat::chord {

/// How node identifiers are chosen — the experimental axis of Fig. 7.
enum class IdAssignment : std::uint8_t {
  kRandom = 0,  ///< plain Chord: uniform random ids (max/min gap ratio O(log n))
  kProbed = 1,  ///< Adler-style identifier probing at join (constant ratio)
  kEven = 2,    ///< perfectly even spacing (the closed-form analyses' regime)
};

[[nodiscard]] const char* to_string(IdAssignment a) noexcept;

/// n distinct uniformly random identifiers.
[[nodiscard]] std::vector<Id> random_ids(const IdSpace& space, std::size_t n,
                                         Rng& rng);

/// Perfectly even identifiers: floor(i * 2^b / n). The regime in which the
/// paper's closed-form branching/height results hold exactly.
[[nodiscard]] std::vector<Id> even_ids(const IdSpace& space, std::size_t n);

/// Identifier probing (paper Sec. 3.5 / 4, after Adler et al.): nodes join
/// one at a time; each join routes to the successor of a random point,
/// probes that node's O(log n) fingers, finds the probed node owning the
/// largest predecessor interval, and takes the midpoint of that interval as
/// its own identifier. Keeps the max/min gap ratio bounded by a constant.
/// `probe_fingers` limits how many fingers of the landing node each join
/// probes (counted from the widest span down); by default all b fingers are
/// probed. 0 means only the landing node itself — the knob for the probing
/// ablation bench (Adler et al. need O(log n) probes for the constant
/// gap-ratio bound).
[[nodiscard]] std::vector<Id> probed_ids(const IdSpace& space, std::size_t n,
                                         Rng& rng,
                                         unsigned probe_fingers = 64);

/// Dispatch helper for experiment sweeps.
[[nodiscard]] std::vector<Id> make_ids(IdAssignment kind, const IdSpace& space,
                                       std::size_t n, Rng& rng);

/// Max/min adjacent-gap ratio of a live id set — the imbalance measure the
/// probing bound (Sec. 3.5) keeps constant, and the signal the runtime
/// rebalancer watches. 1.0 for fewer than two ids.
[[nodiscard]] double gap_ratio(const IdSpace& space, std::vector<Id> ids);

/// Midpoint of the largest clockwise gap between adjacent ids — the target
/// identifier for a rebalancing migration (the same split rule a probed
/// join applies, computed from a global measurement instead of probes).
/// Throws std::invalid_argument for an empty id set.
[[nodiscard]] Id largest_gap_midpoint(const IdSpace& space,
                                      std::vector<Id> ids);

}  // namespace dat::chord
