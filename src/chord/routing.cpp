#include "chord/routing.hpp"

#include <stdexcept>

namespace dat::chord {

const char* to_string(RoutingScheme s) noexcept {
  switch (s) {
    case RoutingScheme::kGreedy: return "greedy";
    case RoutingScheme::kBalanced: return "balanced";
  }
  return "?";
}

unsigned ceil_log2_rational(std::uint64_t num, std::uint64_t den) {
  if (num == 0 || den == 0) {
    throw std::invalid_argument("ceil_log2_rational: zero argument");
  }
  // Smallest k with den * 2^k >= num; 128-bit to stay exact for any b <= 64.
  unsigned __int128 shifted = den;
  unsigned k = 0;
  while (shifted < num) {
    shifted <<= 1;
    ++k;
  }
  return k;
}

unsigned finger_limit(std::uint64_t x, std::uint64_t d0_num,
                      std::uint64_t d0_den) {
  if (d0_num == 0 || d0_den == 0) {
    throw std::invalid_argument("finger_limit: d0 must be positive");
  }
  // g(x) = ceil(log2((x + 2*d0) / 3)), d0 = d0_num / d0_den
  //      = ceil(log2((x*d0_den + 2*d0_num) / (3*d0_den))).
  // 128-bit intermediates: x can be as large as 2^b and d0_den as large as n.
  const unsigned __int128 num = static_cast<unsigned __int128>(x) * d0_den +
                                static_cast<unsigned __int128>(2) * d0_num;
  const unsigned __int128 den = static_cast<unsigned __int128>(3) * d0_den;
  // Smallest k with den * 2^k >= num.
  unsigned __int128 shifted = den;
  unsigned k = 0;
  while (shifted < num) {
    shifted <<= 1;
    ++k;
  }
  return k;
}

std::optional<Id> next_hop(const IdSpace& space, Id self, Id key,
                           std::span<const Id> fingers, bool self_is_root,
                           unsigned limit) {
  if (self_is_root) return std::nullopt;

  // Best admissible finger in (self, key]: maximize progress toward key.
  std::optional<Id> best;
  Id best_progress = 0;
  const Id to_key = space.clockwise(self, key);
  const unsigned max_j =
      std::min<unsigned>(limit, fingers.empty() ? 0 : unsigned(fingers.size() - 1));
  for (unsigned j = 0; j <= max_j && j < fingers.size(); ++j) {
    const Id f = fingers[j];
    if (f == self) continue;  // degenerate entry on tiny rings
    const Id progress = space.clockwise(self, f);
    if (progress <= to_key && progress > best_progress) {
      best_progress = progress;
      best = f;
    }
  }
  if (best) return best;

  // No admissible finger precedes (or lands on) the key: the key lies
  // strictly between self and its immediate successor, so the successor is
  // successor(key) — the root — and the final hop.
  if (!fingers.empty() && fingers[0] != self) return fingers[0];
  return std::nullopt;  // singleton ring: self is everything
}

std::optional<Id> next_hop_greedy(const IdSpace& space, Id self, Id key,
                                  std::span<const Id> fingers,
                                  bool self_is_root) {
  return next_hop(space, self, key, fingers, self_is_root, space.bits());
}

std::optional<Id> next_hop_balanced(const IdSpace& space, Id self, Id key,
                                    std::span<const Id> fingers,
                                    bool self_is_root, std::uint64_t d0_num,
                                    std::uint64_t d0_den) {
  const Id x = space.clockwise(self, key);
  const unsigned limit = finger_limit(x, d0_num, d0_den);
  return next_hop(space, self, key, fingers, self_is_root, limit);
}

}  // namespace dat::chord
