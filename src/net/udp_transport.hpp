#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/transport.hpp"

namespace dat::net {

/// Packs an IPv4 address and UDP port into a Transport endpoint:
/// (ipv4 << 16) | port, both host byte order. Never 0 for a bound socket.
[[nodiscard]] Endpoint make_udp_endpoint(std::uint32_t ipv4_host_order,
                                         std::uint16_t port);
[[nodiscard]] std::uint32_t endpoint_ipv4(Endpoint ep);
[[nodiscard]] std::uint16_t endpoint_port(Endpoint ep);
[[nodiscard]] std::string endpoint_to_string(Endpoint ep);

class UdpTransport;

/// Single-threaded UDP event loop hosting any number of node sockets in one
/// process — how the paper ran "up to 64 DAT instances on each machine".
/// Sockets are polled with poll(2); timers run on a monotonic clock. All
/// callbacks fire on the thread that calls run_for()/run_while().
class UdpNetwork {
 public:
  UdpNetwork();
  ~UdpNetwork();

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  /// Binds a new UDP socket on 127.0.0.1 with an OS-assigned port and
  /// returns its transport.
  UdpTransport& add_node();

  /// Closes the node's socket and destroys its transport.
  void remove_node(Endpoint ep);

  /// Microseconds since the network was constructed (monotonic).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Pumps I/O and timers for the given wall-clock duration.
  void run_for(std::uint64_t duration_us);

  /// Pumps while `keep_going()` is true, up to `max_us`. Returns true if the
  /// predicate turned false (i.e. the awaited condition was met).
  bool run_while(const std::function<bool()>& keep_going, std::uint64_t max_us);

 private:
  friend class UdpTransport;

  struct Timer {
    std::uint64_t deadline_us;
    TimerId id;
    std::function<void()> cb;
  };
  // Heap comparator for std::push_heap/pop_heap (max-heap semantics, so the
  // "later" timer compares greater and the earliest deadline sits at front).
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const noexcept {
      return a.deadline_us != b.deadline_us ? a.deadline_us > b.deadline_us
                                            : a.id > b.id;
    }
  };

  TimerId set_timer(std::uint64_t delay_us, std::function<void()> cb);
  void cancel_timer(TimerId id);
  void pump_once(std::uint64_t max_wait_us);
  void fire_due_timers();
  void drain_socket(int fd, UdpTransport& transport);

  std::uint64_t t0_us_;
  std::unordered_map<Endpoint, std::unique_ptr<UdpTransport>> nodes_;
  std::vector<Timer> timers_;  // binary heap ordered by TimerLater
  std::unordered_set<TimerId> cancelled_timers_;
  TimerId next_timer_id_ = 1;
  std::vector<std::uint8_t> recv_buf_;
};

/// Transport bound to one UDP socket; created via UdpNetwork::add_node().
class UdpTransport final : public Transport {
 public:
  UdpTransport(UdpNetwork& net, int fd, Endpoint self);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  [[nodiscard]] Endpoint local() const override { return self_; }
  void send(Endpoint to, const Message& msg) override;
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }
  TimerId set_timer(std::uint64_t delay_us, std::function<void()> cb) override;
  void cancel_timer(TimerId id) override;
  [[nodiscard]] std::uint64_t now_us() const override { return net_.now_us(); }

 private:
  friend class UdpNetwork;

  UdpNetwork& net_;
  int fd_;
  Endpoint self_;
  ReceiveHandler handler_;
};

}  // namespace dat::net
