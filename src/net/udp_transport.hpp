#pragma once

#include <poll.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/endpoint.hpp"
#include "net/node_host.hpp"
#include "net/transport.hpp"

namespace dat::net {

class UdpNetwork;

/// Per-loop syscall accounting, kept distinct from TrafficCounters (which
/// count protocol messages): the throughput bench derives syscalls/message
/// from these to compare the legacy loop against netio's batched paths.
struct LoopCounters {
  std::uint64_t poll_syscalls = 0;
  std::uint64_t recv_syscalls = 0;
  std::uint64_t send_syscalls = 0;

  void reset() noexcept { *this = LoopCounters{}; }
};

/// Transport bound to one UDP socket; created via UdpNetwork::add_node().
class UdpTransport final : public Transport {
 public:
  UdpTransport(UdpNetwork& net, int fd, Endpoint self);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  [[nodiscard]] Endpoint local() const override { return self_; }
  void send(Endpoint to, const Message& msg) override;
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }
  TimerId set_timer(std::uint64_t delay_us, std::function<void()> cb) override;
  void cancel_timer(TimerId id) override;
  [[nodiscard]] std::uint64_t now_us() const override;

 private:
  friend class UdpNetwork;

  UdpNetwork& net_;
  int fd_;
  Endpoint self_;
  ReceiveHandler handler_;
  /// Wire-encoding scratch for send(); capacity persists across messages so
  /// steady-state sends do not allocate. The loop is single-threaded, so
  /// one buffer per transport suffices.
  std::vector<std::uint8_t> send_buf_;
};

/// Single-threaded UDP event loop hosting any number of node sockets in one
/// process — how the paper ran "up to 64 DAT instances on each machine".
/// Sockets are polled with poll(2); timers run on a monotonic clock. All
/// callbacks fire on the thread that calls run_for()/run_while().
///
/// This is the legacy backend; src/netio hosts the same Transport contract
/// on an epoll reactor with batched syscalls. Both understand coalesced
/// batch datagrams (net/frame.hpp) on receive, so they interoperate.
class UdpNetwork final : public NodeHostNetwork {
 public:
  UdpNetwork();
  ~UdpNetwork() override;

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  /// Binds a new UDP socket on 127.0.0.1 and returns its transport. Port 0
  /// asks the OS for one; a nonzero port is bound with SO_REUSEADDR so a
  /// restarted daemon can reclaim its address immediately.
  UdpTransport& add_node(std::uint16_t port) override;
  using NodeHostNetwork::add_node;

  /// Closes the node's socket and destroys its transport. Destruction is
  /// deferred to the end of the current pump iteration, so a node may
  /// remove itself (or a peer) from inside a receive handler or timer.
  void remove_node(Endpoint ep) override;

  /// Microseconds since the network was constructed (monotonic).
  [[nodiscard]] std::uint64_t now_us() const override;

  /// Pumps I/O and timers for the given wall-clock duration.
  void run_for(std::uint64_t duration_us) override;

  /// Pumps while `keep_going()` is true, up to `max_us`. Returns true if the
  /// predicate turned false (i.e. the awaited condition was met).
  bool run_while(const std::function<bool()>& keep_going,
                 std::uint64_t max_us) override;

  [[nodiscard]] const LoopCounters& loop_counters() const noexcept {
    return loop_counters_;
  }
  void reset_loop_counters() noexcept { loop_counters_.reset(); }

 private:
  friend class UdpTransport;

  struct Timer {
    std::uint64_t deadline_us;
    TimerId id;
    std::function<void()> cb;
  };
  // Heap comparator for std::push_heap/pop_heap (max-heap semantics, so the
  // "later" timer compares greater and the earliest deadline sits at front).
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const noexcept {
      return a.deadline_us != b.deadline_us ? a.deadline_us > b.deadline_us
                                            : a.id > b.id;
    }
  };

  TimerId set_timer(std::uint64_t delay_us, std::function<void()> cb);
  void cancel_timer(TimerId id);
  void pump_once(std::uint64_t max_wait_us);
  void fire_due_timers();
  void drain_socket(int fd, Endpoint ep);
  /// `warn_logging` is the caller's cached warn-level gate (one Logger
  /// check per drain, not per datagram — the drop paths below can fire at
  /// line rate under a malformed-datagram flood).
  void deliver_datagram(Endpoint ep, Endpoint src,
                        std::span<const std::uint8_t> dgram,
                        bool warn_logging);
  void rebuild_pollfds();
  void reap_graveyard();

  std::uint64_t t0_us_;
  std::unordered_map<Endpoint, std::unique_ptr<UdpTransport>> nodes_;
  /// Transports removed mid-iteration; destroyed at the next safe point so
  /// a handler that removes its own node never frees the object under its
  /// feet (the remove-while-pending hazard).
  std::vector<std::unique_ptr<UdpTransport>> graveyard_;
  /// poll(2) set cached across iterations (parallel arrays); rebuilt only
  /// when add_node/remove_node invalidates it instead of on every pump.
  std::vector<pollfd> pollfds_;
  std::vector<Endpoint> poll_eps_;
  bool pollfds_dirty_ = true;
  std::vector<Timer> timers_;  // binary heap ordered by TimerLater
  std::unordered_set<TimerId> cancelled_timers_;
  TimerId next_timer_id_ = 1;
  std::vector<std::uint8_t> recv_buf_;
  LoopCounters loop_counters_;
};

inline std::uint64_t UdpTransport::now_us() const { return net_.now_us(); }

}  // namespace dat::net
