#include "net/transport.hpp"

namespace dat::net {

std::vector<std::uint8_t> Message::encode() const {
  std::vector<std::uint8_t> out;
  encode_into(out);
  return out;
}

void Message::encode_into(std::vector<std::uint8_t>& out) const {
  out.clear();
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(request_id);
  w.str(method);
  w.bytes(body);
  if (trace.has_value()) {
    w.u8(kFrameExtMagic);
    w.u8(kFrameExtTraceTag);
    w.u8(16);  // extension payload length: two u64s
    w.u64(trace->trace_id);
    w.u64(trace->span_id);
  }
}

Message Message::decode(std::span<const std::uint8_t> wire) {
  Reader r(wire);
  Message m;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(MessageKind::kOneWay)) {
    throw CodecError({DecodeErrorCode::kBadKind, 0});
  }
  m.kind = static_cast<MessageKind>(kind);
  m.request_id = r.u64();
  m.method = r.str();
  m.body = r.bytes();
  if (!r.exhausted()) {
    // Optional extension area: marker byte, then (tag, length, payload)
    // records. Unknown tags are skipped for forward compatibility; any
    // other trailing byte is still a malformed frame.
    const std::size_t marker_pos = r.position();
    if (r.u8() != kFrameExtMagic) {
      throw CodecError({DecodeErrorCode::kTrailingBytes, marker_pos});
    }
    while (!r.exhausted()) {
      const std::uint8_t tag = r.u8();
      const std::uint8_t len = r.u8();
      if (tag == kFrameExtTraceTag && len == 16) {
        WireTrace t;
        t.trace_id = r.u64();
        t.span_id = r.u64();
        m.trace = t;
      } else {
        r.skip(len);
      }
    }
  }
  return m;
}

Message::DecodeResult Message::try_decode(
    std::span<const std::uint8_t> wire) noexcept {
  DecodeResult result;
  try {
    result.message = decode(wire);
  } catch (const CodecError& e) {
    result.error = e.error();
  } catch (...) {
    // Allocation failure while materializing method/body. Surface it as a
    // truncation-class rejection rather than letting the exception escape
    // the noexcept boundary.
    result.error = {DecodeErrorCode::kLengthOverflow, 0};
  }
  return result;
}

}  // namespace dat::net
