#include "net/transport.hpp"

namespace dat::net {

std::vector<std::uint8_t> Message::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(request_id);
  w.str(method);
  w.bytes(body);
  return w.take();
}

Message Message::decode(std::span<const std::uint8_t> wire) {
  Reader r(wire);
  Message m;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(MessageKind::kOneWay)) {
    throw CodecError({DecodeErrorCode::kBadKind, 0});
  }
  m.kind = static_cast<MessageKind>(kind);
  m.request_id = r.u64();
  m.method = r.str();
  m.body = r.bytes();
  if (!r.exhausted()) {
    throw CodecError({DecodeErrorCode::kTrailingBytes, r.position()});
  }
  return m;
}

Message::DecodeResult Message::try_decode(
    std::span<const std::uint8_t> wire) noexcept {
  DecodeResult result;
  try {
    result.message = decode(wire);
  } catch (const CodecError& e) {
    result.error = e.error();
  } catch (...) {
    // Allocation failure while materializing method/body. Surface it as a
    // truncation-class rejection rather than letting the exception escape
    // the noexcept boundary.
    result.error = {DecodeErrorCode::kLengthOverflow, 0};
  }
  return result;
}

}  // namespace dat::net
