#include "net/node_host.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace dat::net {

const char* to_string(NetBackend backend) noexcept {
  switch (backend) {
    case NetBackend::kPoll: return "poll";
    case NetBackend::kNetio: return "netio";
  }
  return "?";
}

NetBackend net_backend_from_env(NetBackend fallback) {
  const char* value = std::getenv("DAT_NET_BACKEND");
  if (value == nullptr || *value == '\0') return fallback;
  if (std::strcmp(value, "poll") == 0 || std::strcmp(value, "legacy") == 0) {
    return NetBackend::kPoll;
  }
  if (std::strcmp(value, "netio") == 0 || std::strcmp(value, "epoll") == 0) {
    return NetBackend::kNetio;
  }
  throw std::invalid_argument(
      std::string("DAT_NET_BACKEND=\"") + value +
      "\": unknown backend (valid: poll, legacy, netio, epoll)");
}

}  // namespace dat::net
