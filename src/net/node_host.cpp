#include "net/node_host.hpp"

#include <cstdlib>
#include <cstring>

namespace dat::net {

const char* to_string(NetBackend backend) noexcept {
  switch (backend) {
    case NetBackend::kPoll: return "poll";
    case NetBackend::kNetio: return "netio";
  }
  return "?";
}

NetBackend net_backend_from_env(NetBackend fallback) noexcept {
  const char* value = std::getenv("DAT_NET_BACKEND");
  if (value == nullptr) return fallback;
  if (std::strcmp(value, "poll") == 0 || std::strcmp(value, "legacy") == 0) {
    return NetBackend::kPoll;
  }
  if (std::strcmp(value, "netio") == 0 || std::strcmp(value, "epoll") == 0) {
    return NetBackend::kNetio;
  }
  return fallback;
}

}  // namespace dat::net
