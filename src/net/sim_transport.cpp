#include "net/sim_transport.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace dat::net {

SimTransport& SimNetwork::add_node() {
  const Endpoint ep = next_endpoint_++;
  auto transport = std::make_unique<SimTransport>(*this, ep);
  auto* raw = transport.get();
  nodes_.emplace(ep, std::move(transport));
  return *raw;
}

void SimNetwork::remove_node(Endpoint ep) {
  nodes_.erase(ep);
  partitioned_.erase(ep);
}

void SimNetwork::set_loss_rate(double p) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("SimNetwork: loss rate must be in [0, 1)");
  }
  loss_rate_ = p;
}

void SimNetwork::set_latency_multiplier(double m) {
  if (m < 0.0) {
    throw std::invalid_argument("SimNetwork: latency multiplier must be >= 0");
  }
  latency_multiplier_ = m;
}

void SimNetwork::latency_burst(double m, std::uint64_t duration_us) {
  set_latency_multiplier(m);
  engine_.schedule_after(duration_us, [this]() { latency_multiplier_ = 1.0; });
}

void SimNetwork::loss_burst(double p, std::uint64_t duration_us) {
  const double previous = loss_rate_;
  set_loss_rate(p);
  engine_.schedule_after(duration_us,
                         [this, previous]() { loss_rate_ = previous; });
}

void SimNetwork::set_partitioned(Endpoint ep, bool partitioned) {
  if (partitioned) {
    partitioned_.insert(ep);
  } else {
    partitioned_.erase(ep);
  }
}

void SimNetwork::route(Endpoint from, Endpoint to, Message msg) {
  // Hoisted level gate (one relaxed load per message instead of one per log
  // site): route() is the simulator's hottest path, and under configured
  // loss the drop branch fires at traffic rate.
  const bool log_debug = Logger::instance().enabled(LogLevel::kDebug);
  // Loss and partitions are evaluated at send time; a message already in
  // flight when a partition heals is still lost, matching UDP semantics
  // closely enough for protocol testing.
  if (partitioned_.contains(from) || partitioned_.contains(to) ||
      (loss_rate_ > 0.0 && engine_.rng().next_double() < loss_rate_)) {
    ++dropped_;
    if (log_debug) {
      DAT_LOG_DEBUG("sim", "dropped " << msg.method << " " << from << " -> "
                                      << to << " (loss/partition)");
    }
    return;
  }
  sim::SimDuration delay = engine_.latency().sample(from, to, engine_.rng());
  if (latency_multiplier_ != 1.0) {
    delay = static_cast<sim::SimDuration>(static_cast<double>(delay) *
                                          latency_multiplier_);
  }
  engine_.schedule_after(delay, [this, from, to, log_debug,
                                 m = std::move(msg)]() {
    const auto it = nodes_.find(to);
    if (it == nodes_.end()) {
      ++dropped_;
      if (log_debug) {
        DAT_LOG_DEBUG("sim", "dropped " << m.method << " " << from << " -> "
                                        << to << " (endpoint gone)");
      }
      return;
    }
    ++delivered_;
    it->second->deliver(from, m);
  });
}

void SimTransport::send(Endpoint to, const Message& msg) {
  ++counters_.messages_sent;
  counters_.bytes_sent += msg.body.size();
  net_.route(self_, to, msg);
}

void SimTransport::deliver(Endpoint from, const Message& msg) {
  ++counters_.messages_received;
  counters_.bytes_received += msg.body.size();
  // Invoke through a stack copy: the handler may remove this very node from
  // the network (a crash inside a receive upcall), which destroys `this` —
  // and with it the handler_ member — while the callback is still running.
  if (handler_) {
    const ReceiveHandler handler = handler_;
    handler(from, msg);
  }
}

TimerId SimTransport::set_timer(std::uint64_t delay_us,
                                std::function<void()> cb) {
  return net_.engine().schedule_after(delay_us, std::move(cb));
}

void SimTransport::cancel_timer(TimerId id) { net_.engine().cancel(id); }

}  // namespace dat::net
