#include "net/sim_transport.hpp"

#include <stdexcept>

namespace dat::net {

SimTransport& SimNetwork::add_node() {
  const Endpoint ep = next_endpoint_++;
  auto transport = std::make_unique<SimTransport>(*this, ep);
  auto* raw = transport.get();
  nodes_.emplace(ep, std::move(transport));
  return *raw;
}

void SimNetwork::remove_node(Endpoint ep) {
  nodes_.erase(ep);
  partitioned_.erase(ep);
}

void SimNetwork::set_loss_rate(double p) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("SimNetwork: loss rate must be in [0, 1)");
  }
  loss_rate_ = p;
}

void SimNetwork::set_partitioned(Endpoint ep, bool partitioned) {
  if (partitioned) {
    partitioned_.insert(ep);
  } else {
    partitioned_.erase(ep);
  }
}

void SimNetwork::route(Endpoint from, Endpoint to, Message msg) {
  // Loss and partitions are evaluated at send time; a message already in
  // flight when a partition heals is still lost, matching UDP semantics
  // closely enough for protocol testing.
  if (partitioned_.contains(from) || partitioned_.contains(to) ||
      (loss_rate_ > 0.0 && engine_.rng().next_double() < loss_rate_)) {
    ++dropped_;
    return;
  }
  const sim::SimDuration delay = engine_.latency().sample(from, to, engine_.rng());
  engine_.schedule_after(delay, [this, from, to, m = std::move(msg)]() {
    const auto it = nodes_.find(to);
    if (it == nodes_.end()) {
      ++dropped_;
      return;
    }
    ++delivered_;
    it->second->deliver(from, m);
  });
}

void SimTransport::send(Endpoint to, const Message& msg) {
  ++counters_.messages_sent;
  counters_.bytes_sent += msg.body.size();
  net_.route(self_, to, msg);
}

void SimTransport::deliver(Endpoint from, const Message& msg) {
  ++counters_.messages_received;
  counters_.bytes_received += msg.body.size();
  if (handler_) handler_(from, msg);
}

TimerId SimTransport::set_timer(std::uint64_t delay_us,
                                std::function<void()> cb) {
  return net_.engine().schedule_after(delay_us, std::move(cb));
}

void SimTransport::cancel_timer(TimerId id) { net_.engine().cancel(id); }

}  // namespace dat::net
