#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/codec.hpp"

namespace dat::net {

/// Opaque network address of a node. The simulator uses dense indices; the
/// UDP stack packs IPv4:port into the low 48 bits. Value 0 is reserved as
/// "no endpoint".
using Endpoint = std::uint64_t;

constexpr Endpoint kNullEndpoint = 0;

/// Kind of a wire message. Requests expect a Response with the same
/// request_id; OneWay messages are fire-and-forget (used by continuous
/// aggregation updates, which are idempotent and refreshed every epoch).
enum class MessageKind : std::uint8_t { kRequest = 0, kResponse = 1, kOneWay = 2 };

struct MessageDecodeResult;

/// Frame extension area marker. A message may carry optional extensions
/// after the body: the byte 0xE7 followed by (tag, u8 length, payload)
/// records. Decoders skip unknown tags, so new extensions stay
/// backward-compatible; a frame without the marker is byte-identical to
/// the pre-extension format, so old peers interoperate unchanged. Any
/// trailing byte other than the marker is still rejected as kTrailingBytes.
inline constexpr std::uint8_t kFrameExtMagic = 0xE7;
/// Extension tag: causal trace correlation, payload = u64 trace id + u64
/// span id (16 bytes).
inline constexpr std::uint8_t kFrameExtTraceTag = 0x01;

/// Causal trace correlation carried in the frame extension area: which
/// trace this message belongs to and which span on the sender caused it
/// (obs layer flight recorders stitch these into cross-node traces).
struct WireTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  friend bool operator==(const WireTrace&, const WireTrace&) = default;
};

/// A single datagram: method name, correlation id, kind, body, plus
/// optional frame extensions (trace correlation).
struct Message {
  std::string method;
  std::uint64_t request_id = 0;
  MessageKind kind = MessageKind::kOneWay;
  std::vector<std::uint8_t> body;
  /// When set, encode() appends the trace extension; decode() fills it
  /// from the wire. Absent on untraced messages (and the encoding is then
  /// byte-identical to the pre-extension wire format).
  std::optional<WireTrace> trace;

  /// Flat wire encoding of the whole message.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Encodes into `out` (cleared first), reusing its capacity: the
  /// allocation-free variant for per-datagram send paths, where `out` is a
  /// scratch or arena buffer that lives across messages.
  void encode_into(std::vector<std::uint8_t>& out) const;

  /// Parses a datagram; throws CodecError on malformed input.
  [[nodiscard]] static Message decode(std::span<const std::uint8_t> wire);

  /// Parses a datagram without throwing: malformed input yields the typed
  /// DecodeError instead. This is the entry point for untrusted bytes (the
  /// UDP receive path).
  [[nodiscard]] static MessageDecodeResult try_decode(
      std::span<const std::uint8_t> wire) noexcept;

  using DecodeResult = MessageDecodeResult;
};

/// Outcome of a non-throwing decode: either a Message or a typed
/// DecodeError saying what was malformed and where.
struct MessageDecodeResult {
  std::optional<Message> message;
  DecodeError error{};

  [[nodiscard]] bool ok() const noexcept { return message.has_value(); }
  [[nodiscard]] Message& value() { return *message; }
};

/// Per-transport traffic accounting. The load-balancing evaluation
/// (Figs. 8a/8b) is computed from these counters.
struct TrafficCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  /// Datagrams dropped because they failed Message decoding (malformed or
  /// adversarial input on the UDP path).
  std::uint64_t decode_errors = 0;
  /// Datagrams dropped because they exceeded the receive buffer (kernel
  /// truncation reported via MSG_TRUNC).
  std::uint64_t truncated_datagrams = 0;

  void reset() noexcept { *this = TrafficCounters{}; }
};

/// Timer handle; 0 is "no timer".
using TimerId = std::uint64_t;

/// Asynchronous, unreliable datagram transport with timers — the narrow
/// waist shared by the discrete-event simulator and the UDP/RPC stack
/// (paper Fig. 6). One Transport instance belongs to exactly one node.
class Transport {
 public:
  using ReceiveHandler = std::function<void(Endpoint from, const Message&)>;

  virtual ~Transport() = default;

  /// This node's own address.
  [[nodiscard]] virtual Endpoint local() const = 0;

  /// Sends `msg` to `to`. Unreliable: delivery may fail silently (simulated
  /// loss or a dead UDP peer); reliability is layered in RpcManager.
  virtual void send(Endpoint to, const Message& msg) = 0;

  /// Installs the upcall for inbound messages. Pass nullptr to mute.
  virtual void set_receive_handler(ReceiveHandler handler) = 0;

  /// One-shot timer after `delay_us` microseconds (virtual or wall time,
  /// depending on the implementation).
  virtual TimerId set_timer(std::uint64_t delay_us, std::function<void()> cb) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  /// Current time in microseconds on this transport's clock.
  [[nodiscard]] virtual std::uint64_t now_us() const = 0;

  [[nodiscard]] const TrafficCounters& counters() const noexcept {
    return counters_;
  }
  void reset_counters() noexcept { counters_.reset(); }

 protected:
  TrafficCounters counters_;
};

}  // namespace dat::net
