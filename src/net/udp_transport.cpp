#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <system_error>

#include "common/logging.hpp"

namespace dat::net {

namespace {

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

// Thread-safe strerror replacement (::strerror is concurrency-mt-unsafe).
std::string errno_message(int err) {
  return std::error_code(err, std::generic_category()).message();
}

}  // namespace

Endpoint make_udp_endpoint(std::uint32_t ipv4_host_order, std::uint16_t port) {
  return (static_cast<Endpoint>(ipv4_host_order) << 16) | port;
}

std::uint32_t endpoint_ipv4(Endpoint ep) {
  return static_cast<std::uint32_t>(ep >> 16);
}

std::uint16_t endpoint_port(Endpoint ep) {
  return static_cast<std::uint16_t>(ep & 0xFFFF);
}

std::string endpoint_to_string(Endpoint ep) {
  const std::uint32_t ip = endpoint_ipv4(ep);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF,
                endpoint_port(ep));
  return buf;
}

UdpNetwork::UdpNetwork() : t0_us_(steady_now_us()) {
  recv_buf_.resize(64 * 1024);
}

UdpNetwork::~UdpNetwork() = default;

std::uint64_t UdpNetwork::now_us() const { return steady_now_us() - t0_us_; }

UdpTransport& UdpNetwork::add_node() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // OS-assigned
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno("bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  const Endpoint ep =
      make_udp_endpoint(ntohl(addr.sin_addr.s_addr), ntohs(addr.sin_port));
  auto transport = std::make_unique<UdpTransport>(*this, fd, ep);
  auto* raw = transport.get();
  nodes_.emplace(ep, std::move(transport));
  return *raw;
}

void UdpNetwork::remove_node(Endpoint ep) { nodes_.erase(ep); }

TimerId UdpNetwork::set_timer(std::uint64_t delay_us,
                              std::function<void()> cb) {
  const TimerId id = next_timer_id_++;
  timers_.push_back(Timer{now_us() + delay_us, id, std::move(cb)});
  std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
  return id;
}

void UdpNetwork::cancel_timer(TimerId id) {
  if (id == 0 || id >= next_timer_id_) return;
  cancelled_timers_.insert(id);
}

void UdpNetwork::fire_due_timers() {
  const std::uint64_t now = now_us();
  while (!timers_.empty() && timers_.front().deadline_us <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
    Timer t = std::move(timers_.back());
    timers_.pop_back();
    const auto it = cancelled_timers_.find(t.id);
    if (it != cancelled_timers_.end()) {
      cancelled_timers_.erase(it);
      continue;
    }
    t.cb();
  }
  // Cancellations of already-fired timers would otherwise pin their ids in
  // the set forever; once no timer is pending the set is trivially stale.
  if (timers_.empty()) cancelled_timers_.clear();
}

void UdpNetwork::drain_socket(int fd, UdpTransport& transport) {
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    // MSG_TRUNC makes recvfrom report the datagram's real length even when
    // it exceeds the buffer, so short reads are detected instead of being
    // decoded as if they were complete messages.
    const ssize_t n =
        ::recvfrom(fd, recv_buf_.data(), recv_buf_.size(),
                   MSG_DONTWAIT | MSG_TRUNC,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;
      if (err == EINTR) continue;
      if (err == ECONNREFUSED) {
        // Deferred ICMP port-unreachable from an earlier sendto to a dead
        // peer; it does not affect this socket's ability to receive.
        continue;
      }
      DAT_LOG_WARN("udp", "recvfrom failed: " << errno_message(err));
      return;
    }
    if (from_len < sizeof(sockaddr_in) || from.sin_family != AF_INET) {
      DAT_LOG_WARN("udp", "dropping datagram with non-IPv4 source address");
      continue;
    }
    const Endpoint src =
        make_udp_endpoint(ntohl(from.sin_addr.s_addr), ntohs(from.sin_port));
    transport.counters_.messages_received += 1;
    transport.counters_.bytes_received += static_cast<std::uint64_t>(n);
    if (static_cast<std::size_t>(n) > recv_buf_.size()) {
      ++transport.counters_.truncated_datagrams;
      DAT_LOG_WARN("udp", "dropping truncated "
                              << n << "-byte datagram from "
                              << endpoint_to_string(src) << " (buffer is "
                              << recv_buf_.size() << " bytes)");
      continue;
    }
    Message::DecodeResult decoded = Message::try_decode(
        std::span<const std::uint8_t>(recv_buf_.data(),
                                      static_cast<std::size_t>(n)));
    if (!decoded.ok()) {
      ++transport.counters_.decode_errors;
      DAT_LOG_WARN("udp", "dropping malformed datagram from "
                              << endpoint_to_string(src) << ": "
                              << decoded.error.to_string());
      continue;
    }
    if (transport.handler_) transport.handler_(src, decoded.value());
  }
}

void UdpNetwork::pump_once(std::uint64_t max_wait_us) {
  fire_due_timers();

  std::uint64_t wait_us = max_wait_us;
  if (!timers_.empty()) {
    const std::uint64_t now = now_us();
    const std::uint64_t until_timer = timers_.front().deadline_us > now
                                          ? timers_.front().deadline_us - now
                                          : 0;
    wait_us = std::min(wait_us, until_timer);
  }

  std::vector<pollfd> fds;
  std::vector<UdpTransport*> owners;
  fds.reserve(nodes_.size());
  owners.reserve(nodes_.size());
  for (auto& [ep, transport] : nodes_) {
    fds.push_back(pollfd{transport->fd_, POLLIN, 0});
    owners.push_back(transport.get());
  }

  const int timeout_ms =
      static_cast<int>(std::min<std::uint64_t>(wait_us / 1000 + 1, 100));
  const int ready =
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return;
    throw_errno("poll");
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & POLLIN) != 0) {
      // The transport may have been removed by an earlier handler this
      // iteration; verify it is still registered.
      if (nodes_.contains(owners[i]->self_)) {
        drain_socket(fds[i].fd, *owners[i]);
      }
    }
  }
  fire_due_timers();
}

void UdpNetwork::run_for(std::uint64_t duration_us) {
  const std::uint64_t deadline = now_us() + duration_us;
  while (now_us() < deadline) {
    pump_once(deadline - now_us());
  }
}

bool UdpNetwork::run_while(const std::function<bool()>& keep_going,
                           std::uint64_t max_us) {
  const std::uint64_t deadline = now_us() + max_us;
  while (keep_going()) {
    if (now_us() >= deadline) return false;
    pump_once(deadline - now_us());
  }
  return true;
}

UdpTransport::UdpTransport(UdpNetwork& net, int fd, Endpoint self)
    : net_(net), fd_(fd), self_(self) {}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::send(Endpoint to, const Message& msg) {
  const std::vector<std::uint8_t> wire = msg.encode();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(endpoint_ipv4(to));
  addr.sin_port = htons(endpoint_port(to));
  ++counters_.messages_sent;
  counters_.bytes_sent += wire.size();
  ssize_t n = 0;
  do {
    n = ::sendto(fd_, wire.data(), wire.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    // UDP is fire-and-forget; log and move on (RpcManager retries).
    const int err = errno;
    DAT_LOG_DEBUG("udp", "sendto " << endpoint_to_string(to)
                                   << " failed: " << errno_message(err));
  } else if (static_cast<std::size_t>(n) != wire.size()) {
    // A datagram socket never splits a message, so a short write here means
    // the message could not have been sent intact; surface it loudly.
    DAT_LOG_WARN("udp", "short sendto " << endpoint_to_string(to) << ": " << n
                                        << " of " << wire.size() << " bytes");
  }
}

TimerId UdpTransport::set_timer(std::uint64_t delay_us,
                                std::function<void()> cb) {
  return net_.set_timer(delay_us, std::move(cb));
}

void UdpTransport::cancel_timer(TimerId id) { net_.cancel_timer(id); }

}  // namespace dat::net
