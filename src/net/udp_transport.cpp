#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <system_error>

#include "common/logging.hpp"
#include "net/frame.hpp"

namespace dat::net {

namespace {

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

// Thread-safe strerror replacement (::strerror is concurrency-mt-unsafe).
std::string errno_message(int err) {
  return std::error_code(err, std::generic_category()).message();
}

}  // namespace

UdpNetwork::UdpNetwork() : t0_us_(steady_now_us()) {
  recv_buf_.resize(64 * 1024);
}

UdpNetwork::~UdpNetwork() = default;

std::uint64_t UdpNetwork::now_us() const { return steady_now_us() - t0_us_; }

UdpTransport& UdpNetwork::add_node(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw_errno("socket");

  if (port != 0) {
    // A pinned port belongs to a daemon restarting in place: let the new
    // socket rebind even while the dead incarnation's socket lingers.
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0) {
      ::close(fd);
      throw_errno("setsockopt(SO_REUSEADDR)");
    }
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);  // 0 → OS-assigned
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno("bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  const Endpoint ep =
      make_udp_endpoint(ntohl(addr.sin_addr.s_addr), ntohs(addr.sin_port));
  auto transport = std::make_unique<UdpTransport>(*this, fd, ep);
  auto* raw = transport.get();
  nodes_.emplace(ep, std::move(transport));
  pollfds_dirty_ = true;
  return *raw;
}

void UdpNetwork::remove_node(Endpoint ep) {
  const auto it = nodes_.find(ep);
  if (it == nodes_.end()) return;
  // Defer destruction: the caller may be this very transport's receive
  // handler (a node crashing itself), and its socket may still appear in the
  // poll set of the iteration in progress.
  graveyard_.push_back(std::move(it->second));
  nodes_.erase(it);
  pollfds_dirty_ = true;
}

void UdpNetwork::reap_graveyard() { graveyard_.clear(); }

TimerId UdpNetwork::set_timer(std::uint64_t delay_us,
                              std::function<void()> cb) {
  const TimerId id = next_timer_id_++;
  timers_.push_back(Timer{now_us() + delay_us, id, std::move(cb)});
  std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
  return id;
}

void UdpNetwork::cancel_timer(TimerId id) {
  if (id == 0 || id >= next_timer_id_) return;
  cancelled_timers_.insert(id);
}

void UdpNetwork::fire_due_timers() {
  const std::uint64_t now = now_us();
  while (!timers_.empty() && timers_.front().deadline_us <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
    Timer t = std::move(timers_.back());
    timers_.pop_back();
    const auto it = cancelled_timers_.find(t.id);
    if (it != cancelled_timers_.end()) {
      cancelled_timers_.erase(it);
      continue;
    }
    t.cb();
  }
  // Cancellations of already-fired timers would otherwise pin their ids in
  // the set forever; once no timer is pending the set is trivially stale.
  if (timers_.empty()) cancelled_timers_.clear();
}

void UdpNetwork::deliver_datagram(Endpoint ep, Endpoint src,
                                  std::span<const std::uint8_t> dgram,
                                  bool warn_logging) {
  // A coalesced batch (netio's write coalescer) carries several sub-frames;
  // anything else is a single Message. Between frames the transport is
  // re-looked up: a handler may have removed this node (or any other), and
  // the remaining frames of a removed node must be dropped, not delivered
  // to freed state.
  const auto dispatch_frame = [&](std::span<const std::uint8_t> frame) {
    const auto it = nodes_.find(ep);
    if (it == nodes_.end()) return;
    UdpTransport& transport = *it->second;
    Message::DecodeResult decoded = Message::try_decode(frame);
    if (!decoded.ok()) {
      ++transport.counters_.decode_errors;
      if (warn_logging) {
        DAT_LOG_WARN("udp", "dropping malformed datagram from "
                                << endpoint_to_string(src) << ": "
                                << decoded.error.to_string());
      }
      return;
    }
    ++transport.counters_.messages_received;
    if (transport.handler_) transport.handler_(src, decoded.value());
  };

  if (is_batch_datagram(dgram)) {
    const auto container_error = split_batch(dgram, dispatch_frame);
    if (container_error) {
      const auto it = nodes_.find(ep);
      if (it != nodes_.end()) ++it->second->counters_.decode_errors;
      if (warn_logging) {
        DAT_LOG_WARN("udp", "dropping malformed batch tail from "
                                << endpoint_to_string(src) << ": "
                                << container_error->to_string());
      }
    }
    return;
  }
  dispatch_frame(dgram);
}

void UdpNetwork::drain_socket(int fd, Endpoint ep) {
  // Hot path: one level check per drain, not per datagram, so disabled
  // debug (and warn — every drop path below is attacker-reachable at line
  // rate) logging costs nothing on the receive path.
  const bool debug_logging =
      Logger::instance().enabled(LogLevel::kDebug);
  const bool warn_logging =
      Logger::instance().enabled(LogLevel::kWarn);
  for (;;) {
    const auto node_it = nodes_.find(ep);
    if (node_it == nodes_.end()) return;  // removed by a handler mid-drain
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    // MSG_TRUNC makes recvfrom report the datagram's real length even when
    // it exceeds the buffer, so short reads are detected instead of being
    // decoded as if they were complete messages.
    const ssize_t n =
        ::recvfrom(fd, recv_buf_.data(), recv_buf_.size(),
                   MSG_DONTWAIT | MSG_TRUNC,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    ++loop_counters_.recv_syscalls;
    if (n < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;
      if (err == EINTR) continue;
      if (err == ECONNREFUSED) {
        // Deferred ICMP port-unreachable from an earlier sendto to a dead
        // peer; it does not affect this socket's ability to receive.
        continue;
      }
      if (warn_logging) {
        DAT_LOG_WARN("udp", "recvfrom failed: " << errno_message(err));
      }
      return;
    }
    if (from_len < sizeof(sockaddr_in) || from.sin_family != AF_INET) {
      if (warn_logging) {
        DAT_LOG_WARN("udp", "dropping datagram with non-IPv4 source address");
      }
      continue;
    }
    const Endpoint src =
        make_udp_endpoint(ntohl(from.sin_addr.s_addr), ntohs(from.sin_port));
    UdpTransport& transport = *node_it->second;
    transport.counters_.bytes_received += static_cast<std::uint64_t>(n);
    if (static_cast<std::size_t>(n) > recv_buf_.size()) {
      ++transport.counters_.truncated_datagrams;
      if (warn_logging) {
        DAT_LOG_WARN("udp", "dropping truncated "
                                << n << "-byte datagram from "
                                << endpoint_to_string(src) << " (buffer is "
                                << recv_buf_.size() << " bytes)");
      }
      continue;
    }
    if (debug_logging) {
      DAT_LOG_DEBUG("udp", "recv " << n << "B " << endpoint_to_string(src)
                                   << " -> " << endpoint_to_string(ep));
    }
    deliver_datagram(ep, src,
                     std::span<const std::uint8_t>(
                         recv_buf_.data(), static_cast<std::size_t>(n)),
                     warn_logging);
  }
}

void UdpNetwork::rebuild_pollfds() {
  pollfds_.clear();
  poll_eps_.clear();
  pollfds_.reserve(nodes_.size());
  poll_eps_.reserve(nodes_.size());
  for (auto& [ep, transport] : nodes_) {
    pollfds_.push_back(pollfd{transport->fd_, POLLIN, 0});
    poll_eps_.push_back(ep);
  }
  pollfds_dirty_ = false;
}

void UdpNetwork::pump_once(std::uint64_t max_wait_us) {
  reap_graveyard();
  fire_due_timers();

  std::uint64_t wait_us = max_wait_us;
  if (!timers_.empty()) {
    const std::uint64_t now = now_us();
    const std::uint64_t until_timer = timers_.front().deadline_us > now
                                          ? timers_.front().deadline_us - now
                                          : 0;
    wait_us = std::min(wait_us, until_timer);
  }

  // The poll set is cached across iterations and rebuilt only when
  // add_node/remove_node changed the socket population — the previous
  // rebuild-every-pump loop dominated the syscall path at 64 instances.
  if (pollfds_dirty_) rebuild_pollfds();

  const int timeout_ms =
      static_cast<int>(std::min<std::uint64_t>(wait_us / 1000 + 1, 100));
  const int ready =
      ::poll(pollfds_.data(), static_cast<nfds_t>(pollfds_.size()),
             timeout_ms);
  ++loop_counters_.poll_syscalls;
  if (ready < 0) {
    if (errno == EINTR) return;
    throw_errno("poll");
  }
  for (std::size_t i = 0; i < pollfds_.size(); ++i) {
    if ((pollfds_[i].revents & POLLIN) != 0) {
      // The transport may have been removed by an earlier handler this
      // iteration; drain_socket re-resolves the endpoint per datagram.
      drain_socket(pollfds_[i].fd, poll_eps_[i]);
    }
  }
  fire_due_timers();
  reap_graveyard();
}

void UdpNetwork::run_for(std::uint64_t duration_us) {
  const std::uint64_t deadline = now_us() + duration_us;
  while (now_us() < deadline) {
    pump_once(deadline - now_us());
  }
  reap_graveyard();
}

bool UdpNetwork::run_while(const std::function<bool()>& keep_going,
                           std::uint64_t max_us) {
  const std::uint64_t deadline = now_us() + max_us;
  bool met = true;
  while (keep_going()) {
    if (now_us() >= deadline) {
      met = false;
      break;
    }
    pump_once(deadline - now_us());
  }
  reap_graveyard();
  return met;
}

UdpTransport::UdpTransport(UdpNetwork& net, int fd, Endpoint self)
    : net_(net), fd_(fd), self_(self) {}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::send(Endpoint to, const Message& msg) {
  std::vector<std::uint8_t>& wire = send_buf_;
  msg.encode_into(wire);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(endpoint_ipv4(to));
  addr.sin_port = htons(endpoint_port(to));
  ++counters_.messages_sent;
  counters_.bytes_sent += wire.size();
  ssize_t n = 0;
  do {
    n = ::sendto(fd_, wire.data(), wire.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    ++net_.loop_counters_.send_syscalls;
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    // UDP is fire-and-forget; log and move on (RpcManager retries). The
    // gate lives inside the failure branch: free on the happy path, one
    // check per failure (ENOBUFS can fire at line rate under send floods).
    const int err = errno;
    const bool debug_logging = Logger::instance().enabled(LogLevel::kDebug);
    if (debug_logging) {
      DAT_LOG_DEBUG("udp", "sendto " << endpoint_to_string(to)
                                     << " failed: " << errno_message(err));
    }
  } else if (static_cast<std::size_t>(n) != wire.size()) {
    // A datagram socket never splits a message, so a short write here means
    // the message could not have been sent intact; surface it loudly.
    const bool warn_logging = Logger::instance().enabled(LogLevel::kWarn);
    if (warn_logging) {
      DAT_LOG_WARN("udp", "short sendto " << endpoint_to_string(to) << ": "
                                          << n << " of " << wire.size()
                                          << " bytes");
    }
  }
}

TimerId UdpTransport::set_timer(std::uint64_t delay_us,
                                std::function<void()> cb) {
  return net_.set_timer(delay_us, std::move(cb));
}

void UdpTransport::cancel_timer(TimerId id) { net_.cancel_timer(id); }

}  // namespace dat::net
