#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "common/logging.hpp"

namespace dat::net {

namespace {

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Endpoint make_udp_endpoint(std::uint32_t ipv4_host_order, std::uint16_t port) {
  return (static_cast<Endpoint>(ipv4_host_order) << 16) | port;
}

std::uint32_t endpoint_ipv4(Endpoint ep) {
  return static_cast<std::uint32_t>(ep >> 16);
}

std::uint16_t endpoint_port(Endpoint ep) {
  return static_cast<std::uint16_t>(ep & 0xFFFF);
}

std::string endpoint_to_string(Endpoint ep) {
  const std::uint32_t ip = endpoint_ipv4(ep);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF,
                endpoint_port(ep));
  return buf;
}

UdpNetwork::UdpNetwork() : t0_us_(steady_now_us()) {
  recv_buf_.resize(64 * 1024);
}

UdpNetwork::~UdpNetwork() = default;

std::uint64_t UdpNetwork::now_us() const { return steady_now_us() - t0_us_; }

UdpTransport& UdpNetwork::add_node() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // OS-assigned
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno("bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  const Endpoint ep =
      make_udp_endpoint(ntohl(addr.sin_addr.s_addr), ntohs(addr.sin_port));
  auto transport = std::make_unique<UdpTransport>(*this, fd, ep);
  auto* raw = transport.get();
  nodes_.emplace(ep, std::move(transport));
  return *raw;
}

void UdpNetwork::remove_node(Endpoint ep) { nodes_.erase(ep); }

TimerId UdpNetwork::set_timer(std::uint64_t delay_us,
                              std::function<void()> cb) {
  const TimerId id = next_timer_id_++;
  timers_.push(Timer{now_us() + delay_us, id, std::move(cb)});
  return id;
}

void UdpNetwork::cancel_timer(TimerId id) {
  if (id == 0 || id >= next_timer_id_) return;
  cancelled_timers_.insert(id);
}

void UdpNetwork::fire_due_timers() {
  const std::uint64_t now = now_us();
  while (!timers_.empty() && timers_.top().deadline_us <= now) {
    Timer t = std::move(const_cast<Timer&>(timers_.top()));
    timers_.pop();
    const auto it = cancelled_timers_.find(t.id);
    if (it != cancelled_timers_.end()) {
      cancelled_timers_.erase(it);
      continue;
    }
    t.cb();
  }
}

void UdpNetwork::drain_socket(int fd, UdpTransport& transport) {
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    const ssize_t n =
        ::recvfrom(fd, recv_buf_.data(), recv_buf_.size(), MSG_DONTWAIT,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      DAT_LOG_WARN("udp", "recvfrom failed: " << std::strerror(errno));
      return;
    }
    const Endpoint src =
        make_udp_endpoint(ntohl(from.sin_addr.s_addr), ntohs(from.sin_port));
    transport.counters_.messages_received += 1;
    transport.counters_.bytes_received += static_cast<std::uint64_t>(n);
    try {
      const Message msg = Message::decode(std::span<const std::uint8_t>(
          recv_buf_.data(), static_cast<std::size_t>(n)));
      if (transport.handler_) transport.handler_(src, msg);
    } catch (const CodecError& e) {
      DAT_LOG_WARN("udp", "dropping malformed datagram from "
                              << endpoint_to_string(src) << ": " << e.what());
    }
  }
}

void UdpNetwork::pump_once(std::uint64_t max_wait_us) {
  fire_due_timers();

  std::uint64_t wait_us = max_wait_us;
  if (!timers_.empty()) {
    const std::uint64_t now = now_us();
    const std::uint64_t until_timer =
        timers_.top().deadline_us > now ? timers_.top().deadline_us - now : 0;
    wait_us = std::min(wait_us, until_timer);
  }

  std::vector<pollfd> fds;
  std::vector<UdpTransport*> owners;
  fds.reserve(nodes_.size());
  owners.reserve(nodes_.size());
  for (auto& [ep, transport] : nodes_) {
    fds.push_back(pollfd{transport->fd_, POLLIN, 0});
    owners.push_back(transport.get());
  }

  const int timeout_ms =
      static_cast<int>(std::min<std::uint64_t>(wait_us / 1000 + 1, 100));
  const int ready = ::poll(fds.data(), fds.size(), fds.empty() ? timeout_ms : timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return;
    throw_errno("poll");
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & POLLIN) != 0) {
      // The transport may have been removed by an earlier handler this
      // iteration; verify it is still registered.
      if (nodes_.contains(owners[i]->self_)) {
        drain_socket(fds[i].fd, *owners[i]);
      }
    }
  }
  fire_due_timers();
}

void UdpNetwork::run_for(std::uint64_t duration_us) {
  const std::uint64_t deadline = now_us() + duration_us;
  while (now_us() < deadline) {
    pump_once(deadline - now_us());
  }
}

bool UdpNetwork::run_while(const std::function<bool()>& keep_going,
                           std::uint64_t max_us) {
  const std::uint64_t deadline = now_us() + max_us;
  while (keep_going()) {
    if (now_us() >= deadline) return false;
    pump_once(deadline - now_us());
  }
  return true;
}

UdpTransport::UdpTransport(UdpNetwork& net, int fd, Endpoint self)
    : net_(net), fd_(fd), self_(self) {}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::send(Endpoint to, const Message& msg) {
  const std::vector<std::uint8_t> wire = msg.encode();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(endpoint_ipv4(to));
  addr.sin_port = htons(endpoint_port(to));
  ++counters_.messages_sent;
  counters_.bytes_sent += wire.size();
  const ssize_t n = ::sendto(fd_, wire.data(), wire.size(), 0,
                             reinterpret_cast<const sockaddr*>(&addr),
                             sizeof addr);
  if (n < 0) {
    // UDP is fire-and-forget; log and move on (RpcManager retries).
    DAT_LOG_DEBUG("udp", "sendto " << endpoint_to_string(to)
                                   << " failed: " << std::strerror(errno));
  }
}

TimerId UdpTransport::set_timer(std::uint64_t delay_us,
                                std::function<void()> cb) {
  return net_.set_timer(delay_us, std::move(cb));
}

void UdpTransport::cancel_timer(TimerId id) { net_.cancel_timer(id); }

}  // namespace dat::net
