#include "net/rpc.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <utility>

#include "common/logging.hpp"

namespace dat::net {

namespace {
// Reserved method name of error responses; the body is the exception text.
constexpr const char* kErrorMethod = "$error";

// splitmix64: a tiny deterministic stream for backoff jitter. Kept local to
// the RPC layer so retry timing never perturbs the protocol layers' seeded
// Rng streams.
std::uint64_t next_jitter(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t RpcOptions::attempt_timeout_us(unsigned attempt) const {
  if (timeout_multiplier <= 1.0) return timeout_us;
  double t = static_cast<double>(timeout_us);
  for (unsigned k = 0; k < attempt; ++k) t *= timeout_multiplier;
  // Cap at something sane; a multiplier cannot overflow the u64 clock.
  constexpr double kMaxTimeout = 3600.0 * 1e6;  // one hour
  if (t > kMaxTimeout) t = kMaxTimeout;
  return static_cast<std::uint64_t>(t);
}

std::uint64_t RpcOptions::max_total_us() const {
  std::uint64_t total = 0;
  for (unsigned k = 0; k < attempts; ++k) total += attempt_timeout_us(k);
  if (backoff_base_us > 0 && attempts > 1) {
    total += static_cast<std::uint64_t>(attempts - 1) * backoff_cap_us;
  }
  return total;
}

const char* to_string(RpcStatus s) noexcept {
  switch (s) {
    case RpcStatus::kOk: return "ok";
    case RpcStatus::kTimeout: return "timeout";
    case RpcStatus::kRemoteError: return "remote-error";
  }
  return "?";
}

RpcManager::RpcManager(Transport& transport)
    : transport_(transport),
      jitter_state_(transport.local() * 0x9E3779B97F4A7C15ull + 1) {
  transport_.set_receive_handler(
      [this](Endpoint from, const Message& msg) { on_message(from, msg); });
}

RpcManager::~RpcManager() {
  set_telemetry(nullptr);
  transport_.set_receive_handler(nullptr);
  for (auto& [id, call] : pending_) {
    if (call.timer != 0) transport_.cancel_timer(call.timer);
  }
}

void RpcManager::set_telemetry(obs::NodeTelemetry* telemetry) {
  if (telemetry_ != nullptr && collector_id_ != 0) {
    telemetry_->registry.remove_collector(collector_id_);
    collector_id_ = 0;
  }
  telemetry_ = telemetry;
  m_latency_ = nullptr;
  if (telemetry_ == nullptr) return;
  m_latency_ = &telemetry_->registry.histogram("dat_rpc_latency_us");
  collector_id_ =
      telemetry_->registry.add_collector([this](obs::MetricsSnapshot& out) {
        const auto add = [&out](const char* name, obs::MetricType type,
                                double value) {
          obs::Sample s;
          s.name = name;
          s.type = type;
          s.value = value;
          out.samples.push_back(std::move(s));
        };
        using enum obs::MetricType;
        add("dat_rpc_calls_total", kCounter,
            static_cast<double>(stats_.calls));
        add("dat_rpc_attempts_total", kCounter,
            static_cast<double>(stats_.attempts));
        add("dat_rpc_retransmits_total", kCounter,
            static_cast<double>(stats_.retransmits));
        add("dat_rpc_timeouts_total", kCounter,
            static_cast<double>(stats_.timeouts));
        add("dat_rpc_ok_total", kCounter, static_cast<double>(stats_.ok));
        add("dat_rpc_remote_errors_total", kCounter,
            static_cast<double>(stats_.remote_errors));
        add("dat_rpc_backoff_wait_us_total", kCounter,
            static_cast<double>(stats_.backoff_wait_us));
        add("dat_rpc_pending", kGauge, static_cast<double>(pending_.size()));
        const TrafficCounters& traffic = transport_.counters();
        add("dat_net_messages_sent_total", kCounter,
            static_cast<double>(traffic.messages_sent));
        add("dat_net_messages_received_total", kCounter,
            static_cast<double>(traffic.messages_received));
        add("dat_net_bytes_sent_total", kCounter,
            static_cast<double>(traffic.bytes_sent));
        add("dat_net_bytes_received_total", kCounter,
            static_cast<double>(traffic.bytes_received));
        add("dat_net_decode_errors_total", kCounter,
            static_cast<double>(traffic.decode_errors));
        add("dat_net_truncated_datagrams_total", kCounter,
            static_cast<double>(traffic.truncated_datagrams));
      });
}

void RpcManager::stamp_trace(Message& msg) const {
  if (telemetry_ != nullptr && telemetry_->trace.active()) {
    msg.trace = WireTrace{telemetry_->trace.trace_id(),
                          telemetry_->trace.span_id()};
  }
}

void RpcManager::register_method(std::string method, MethodHandler handler) {
  methods_[std::move(method)] = std::move(handler);
}

void RpcManager::register_one_way(std::string method, OneWayHandler handler) {
  one_ways_[std::move(method)] = std::move(handler);
}

void RpcManager::unregister_method(const std::string& method) {
  methods_.erase(method);
}

void RpcManager::unregister_one_way(const std::string& method) {
  one_ways_.erase(method);
}

void RpcManager::call(Endpoint to, const std::string& method,
                      const Writer& body, ResponseHandler handler,
                      Options options) {
  const std::uint64_t id = next_request_id_++;
  Message req;
  req.kind = MessageKind::kRequest;
  req.request_id = id;
  req.method = method;
  req.body = body.data();
  stamp_trace(req);

  PendingCall call{to,      std::move(req), std::move(handler), options,
                   options.attempts, 0,     0,                  0,
                   transport_.now_us()};
  auto [it, inserted] = pending_.emplace(id, std::move(call));
  (void)inserted;
  --it->second.attempts_left;
  ++stats_.calls;
  ++stats_.attempts;
  transport_.send(to, it->second.request);
  arm_timer(id);
}

void RpcManager::send_one_way(Endpoint to, const std::string& method,
                              const Writer& body) {
  Message msg;
  msg.kind = MessageKind::kOneWay;
  msg.method = method;
  msg.body = body.data();
  stamp_trace(msg);
  transport_.send(to, msg);
}

void RpcManager::arm_timer(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  it->second.timer = transport_.set_timer(
      it->second.options.attempt_timeout_us(it->second.attempt),
      [this, request_id]() { on_timeout(request_id); });
}

void RpcManager::on_timeout(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingCall& call = it->second;
  call.timer = 0;
  if (call.attempts_left > 0) {
    const Options& opts = call.options;
    if (opts.backoff_base_us > 0) {
      // Decorrelated jitter: wait uniform(base, 3 * previous wait) before
      // the retransmission, capped. Spreads synchronized retries apart and
      // grows the expected wait geometrically without full lockstep.
      const std::uint64_t lo = opts.backoff_base_us;
      const std::uint64_t hi =
          std::max<std::uint64_t>(lo + 1, 3 * std::max(call.last_backoff_us, lo));
      std::uint64_t wait = lo + next_jitter(jitter_state_) % (hi - lo);
      wait = std::min(wait, opts.backoff_cap_us);
      call.last_backoff_us = wait;
      stats_.backoff_wait_us += wait;
      call.timer = transport_.set_timer(
          wait, [this, request_id]() { retransmit(request_id); });
      return;
    }
    retransmit(request_id);
    return;
  }
  // Exhausted: deliver timeout. Move the handler out before erasing so a
  // re-entrant call() from the handler is safe.
  ++stats_.timeouts;
  ResponseHandler handler = std::move(call.handler);
  pending_.erase(it);
  Reader empty(std::span<const std::uint8_t>{});
  if (handler) handler(RpcStatus::kTimeout, empty);
}

void RpcManager::retransmit(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingCall& call = it->second;
  call.timer = 0;
  --call.attempts_left;
  ++call.attempt;
  ++stats_.attempts;
  ++stats_.retransmits;
  transport_.send(call.to, call.request);
  arm_timer(request_id);
}

void RpcManager::on_message(Endpoint from, const Message& msg) {
  // A traced message carries its cause across the wire: make that the
  // ambient context for the whole dispatch, so handlers (and any RPCs or
  // spans they produce) are causally linked to the sender's span.
  std::optional<obs::TraceContext::Scope> scope;
  if (telemetry_ != nullptr && msg.trace.has_value()) {
    scope.emplace(telemetry_->trace, msg.trace->trace_id, msg.trace->span_id);
  }
  switch (msg.kind) {
    case MessageKind::kRequest:
      on_request(from, msg);
      return;
    case MessageKind::kResponse:
      on_response(msg);
      return;
    case MessageKind::kOneWay: {
      const auto it = one_ways_.find(msg.method);
      if (it == one_ways_.end()) {
        // Unknown methods are attacker-reachable per datagram; the level
        // gate is computed in-branch so the dispatch happy path pays nothing.
        const bool log_debug = Logger::instance().enabled(LogLevel::kDebug);
        if (log_debug) {
          DAT_LOG_DEBUG("rpc", "unknown one-way method " << msg.method);
        }
        return;
      }
      ++served_[msg.method];
      Reader r(msg.body);
      try {
        it->second(from, r);
      } catch (const std::exception& e) {
        const bool log_warn = Logger::instance().enabled(LogLevel::kWarn);
        if (log_warn) {
          DAT_LOG_WARN("rpc", "one-way handler " << msg.method
                                                 << " threw: " << e.what());
        }
      }
      return;
    }
  }
}

void RpcManager::on_request(Endpoint from, const Message& msg) {
  Message reply;
  reply.kind = MessageKind::kResponse;
  reply.request_id = msg.request_id;
  // Echo the request's trace so the caller's response handler runs in the
  // same causal context (even when this node has no telemetry attached).
  reply.trace = msg.trace;

  const auto it = methods_.find(msg.method);
  if (it == methods_.end()) {
    reply.method = kErrorMethod;
    Writer w;
    w.str("unknown method: " + msg.method);
    reply.body = w.take();
    transport_.send(from, reply);
    return;
  }
  ++served_[msg.method];
  Reader req(msg.body);
  Writer out;
  try {
    it->second(from, req, out);
    reply.method = msg.method;
    reply.body = out.take();
  } catch (const std::exception& e) {
    reply.method = kErrorMethod;
    Writer w;
    w.str(e.what());
    reply.body = w.take();
  }
  transport_.send(from, reply);
}

void RpcManager::on_response(const Message& msg) {
  auto it = pending_.find(msg.request_id);
  if (it == pending_.end()) {
    // Duplicate response after a retransmission already completed the call.
    return;
  }
  if (it->second.timer != 0) transport_.cancel_timer(it->second.timer);
  if (m_latency_ != nullptr) {
    m_latency_->observe(transport_.now_us() - it->second.issued_at_us);
  }
  ResponseHandler handler = std::move(it->second.handler);
  pending_.erase(it);
  Reader r(msg.body);
  if (msg.method == kErrorMethod) {
    ++stats_.remote_errors;
    if (handler) handler(RpcStatus::kRemoteError, r);
  } else {
    ++stats_.ok;
    if (handler) handler(RpcStatus::kOk, r);
  }
}

}  // namespace dat::net
