#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "net/transport.hpp"
#include "sim/engine.hpp"

namespace dat::net {

class SimTransport;

/// In-process network fabric for the discrete-event simulator. Owns one
/// SimTransport per simulated node, delivers datagrams through the engine's
/// event queue with sampled latency, and can inject loss and partitions for
/// failure testing.
class SimNetwork {
 public:
  explicit SimNetwork(sim::Engine& engine) : engine_(engine) {}

  /// Creates a transport bound to a fresh endpoint. Endpoints are dense,
  /// starting at 1 (0 is kNullEndpoint).
  SimTransport& add_node();

  /// Disconnects and destroys the node's transport. In-flight messages to
  /// it are dropped on delivery, like datagrams to a crashed host.
  void remove_node(Endpoint ep);

  /// Fraction of datagrams dropped uniformly at random in [0, 1).
  void set_loss_rate(double p);
  [[nodiscard]] double loss_rate() const noexcept { return loss_rate_; }

  /// Scales every sampled delivery delay by `m` (>= 0) — a latency spike
  /// without swapping the LatencyModel. 1.0 restores nominal delays.
  void set_latency_multiplier(double m);
  [[nodiscard]] double latency_multiplier() const noexcept {
    return latency_multiplier_;
  }

  /// Timed latency spike: multiplier `m` for `duration_us` of virtual time,
  /// then automatically back to 1.0 via the engine's event queue.
  void latency_burst(double m, std::uint64_t duration_us);

  /// Timed loss burst: loss rate `p` for `duration_us` of virtual time, then
  /// automatically back to the rate in effect when the burst started.
  void loss_burst(double p, std::uint64_t duration_us);

  /// Marks a node unreachable (network partition) without destroying it.
  void set_partitioned(Endpoint ep, bool partitioned);
  [[nodiscard]] bool is_partitioned(Endpoint ep) const {
    return partitioned_.contains(ep);
  }

  [[nodiscard]] bool exists(Endpoint ep) const {
    return nodes_.contains(ep);
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

  /// Total datagrams delivered (diagnostic).
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  /// Total datagrams dropped by loss, partition, or dead destination.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  friend class SimTransport;
  void route(Endpoint from, Endpoint to, Message msg);

  sim::Engine& engine_;
  std::unordered_map<Endpoint, std::unique_ptr<SimTransport>> nodes_;
  std::unordered_set<Endpoint> partitioned_;
  Endpoint next_endpoint_ = 1;
  double loss_rate_ = 0.0;
  double latency_multiplier_ = 1.0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Transport implementation for one simulated node. Obtained from
/// SimNetwork::add_node(); lifetime is managed by the network.
class SimTransport final : public Transport {
 public:
  SimTransport(SimNetwork& net, Endpoint self) : net_(net), self_(self) {}

  [[nodiscard]] Endpoint local() const override { return self_; }

  void send(Endpoint to, const Message& msg) override;

  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }

  TimerId set_timer(std::uint64_t delay_us, std::function<void()> cb) override;
  void cancel_timer(TimerId id) override;

  [[nodiscard]] std::uint64_t now_us() const override {
    return net_.engine().now();
  }

 private:
  friend class SimNetwork;
  void deliver(Endpoint from, const Message& msg);

  SimNetwork& net_;
  Endpoint self_;
  ReceiveHandler handler_;
};

}  // namespace dat::net
