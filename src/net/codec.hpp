#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dat::net {

/// Machine-readable classification of a decode failure. Every way a
/// malformed datagram can be rejected maps to exactly one code, so transport
/// layers can count and log rejections without string matching.
enum class DecodeErrorCode : std::uint8_t {
  kTruncated = 0,     ///< a field extends past the end of the buffer
  kBadKind = 1,       ///< unknown MessageKind discriminator
  kTrailingBytes = 2, ///< well-formed prefix followed by extra bytes
  kLengthOverflow = 3 ///< a length prefix exceeds representable bounds
};

[[nodiscard]] constexpr const char* to_string(DecodeErrorCode code) noexcept {
  switch (code) {
    case DecodeErrorCode::kTruncated: return "truncated";
    case DecodeErrorCode::kBadKind: return "bad-kind";
    case DecodeErrorCode::kTrailingBytes: return "trailing-bytes";
    case DecodeErrorCode::kLengthOverflow: return "length-overflow";
  }
  return "?";
}

/// Typed decode failure: what went wrong and where in the buffer. This is
/// the value carried by CodecError and returned by Message::try_decode, so
/// malformed input is always reported as data, never as UB.
struct DecodeError {
  DecodeErrorCode code = DecodeErrorCode::kTruncated;
  std::size_t offset = 0;  ///< byte offset at which decoding failed

  [[nodiscard]] std::string to_string() const {
    return std::string(net::to_string(code)) + " at byte " +
           std::to_string(offset);
  }
};

/// Raised when a Reader runs past the end of its buffer or encounters a
/// malformed field. RPC servers catch this and drop the datagram, the usual
/// posture for a UDP protocol. Carries the typed DecodeError.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(DecodeError error)
      : std::runtime_error("codec: " + error.to_string()), error_(error) {}

  CodecError(DecodeError error, const std::string& context)
      : std::runtime_error("codec: " + context + ": " + error.to_string()),
        error_(error) {}

  [[nodiscard]] const DecodeError& error() const noexcept { return error_; }

 private:
  DecodeError error_;
};

/// Append-only binary writer, little-endian fixed-width integers plus
/// length-prefixed byte strings. This is the wire format of the paper's
/// "RPC manager ... at the socket-level to send and receive UDP packets".
///
/// Two modes: the default constructor owns its buffer (retrieve with
/// take()); the reference constructor appends into a caller-provided
/// vector whose capacity survives across messages, which is how the send
/// paths encode without a per-datagram allocation (Message::encode_into).
class Writer {
 public:
  Writer() : buf_(owned_) {}
  explicit Writer(std::vector<std::uint8_t>& out) : buf_(out) {}

  // datlint:allow(hot-path): appends into a capacity-retained buffer
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void str(std::string_view s) {
    if (s.size() > UINT32_MAX) {
      throw CodecError({DecodeErrorCode::kLengthOverflow, buf_.size()},
                       "Writer::str");
    }
    u32(static_cast<std::uint32_t>(s.size()));
    // datlint:allow(hot-path): appends into a capacity-retained buffer
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void bytes(std::span<const std::uint8_t> s) {
    if (s.size() > UINT32_MAX) {
      throw CodecError({DecodeErrorCode::kLengthOverflow, buf_.size()},
                       "Writer::bytes");
    }
    u32(static_cast<std::uint32_t>(s.size()));
    // datlint:allow(hot-path): appends into a capacity-retained buffer
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  /// Owning mode only: moves the internal buffer out. Meaningless (returns
  /// an empty vector) when constructed over an external buffer.
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(owned_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      // datlint:allow(hot-path): appends into a capacity-retained buffer
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> owned_;
  std::vector<std::uint8_t>& buf_;
};

/// Sequential binary reader over a borrowed buffer; the mirror of Writer.
/// Every accessor is bounds-checked: reading past the end (or any malformed
/// length prefix) throws CodecError with a typed DecodeError — no read ever
/// touches memory outside the buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint32_t len = u32();
    require(len);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return out;
  }

  std::vector<std::uint8_t> bytes() {
    const std::uint32_t len = u32();
    require(len);
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  /// Advances past `n` bytes without copying them.
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  void require(std::size_t n) const {
    // Overflow-safe form of `pos_ + n > data_.size()`: pos_ <= size() is an
    // invariant, so the subtraction cannot wrap.
    if (n > data_.size() - pos_) {
      throw CodecError({DecodeErrorCode::kTruncated, pos_});
    }
  }

  template <typename T>
  T take_le() {
    require(sizeof(T));
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dat::net
