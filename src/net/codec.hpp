#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dat::net {

/// Raised when a Reader runs past the end of its buffer or encounters a
/// malformed field. RPC servers catch this and drop the datagram, the usual
/// posture for a UDP protocol.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only binary writer, little-endian fixed-width integers plus
/// length-prefixed byte strings. This is the wire format of the paper's
/// "RPC manager ... at the socket-level to send and receive UDP packets".
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void str(std::string_view s) {
    if (s.size() > UINT32_MAX) throw CodecError("Writer::str: too long");
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void bytes(std::span<const std::uint8_t> s) {
    if (s.size() > UINT32_MAX) throw CodecError("Writer::bytes: too long");
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Sequential binary reader over a borrowed buffer; the mirror of Writer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint32_t len = u32();
    require(len);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return out;
  }

  std::vector<std::uint8_t> bytes() {
    const std::uint32_t len = u32();
    require(len);
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw CodecError("Reader: truncated buffer");
    }
  }

  template <typename T>
  T take_le() {
    require(sizeof(T));
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dat::net
