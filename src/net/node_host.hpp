#pragma once

#include <cstdint>
#include <functional>

#include "net/transport.hpp"

namespace dat::net {

/// Which event-loop backend hosts a cluster's node sockets.
enum class NetBackend : std::uint8_t {
  kPoll = 0,   ///< legacy single-threaded poll(2) loop (UdpNetwork)
  kNetio = 1,  ///< epoll reactor with syscall batching and write coalescing
};

[[nodiscard]] const char* to_string(NetBackend backend) noexcept;

/// Runtime backend selection: reads DAT_NET_BACKEND ("poll"/"legacy" or
/// "netio"/"epoll", case-sensitive) and falls back to `fallback` when the
/// variable is unset. Lets every UDP harness, daemon and example switch
/// backends without a rebuild. A set-but-unrecognized value is a deployment
/// error, not a preference: it throws std::invalid_argument naming the
/// valid backends instead of silently running on the fallback.
[[nodiscard]] NetBackend net_backend_from_env(NetBackend fallback);

/// Narrow interface of an in-process network hosting many node sockets in
/// one OS process — the paper's "up to 64 DAT instances on each machine".
/// Implemented by the legacy UdpNetwork (poll loop) and netio::NetioNetwork
/// (epoll reactor); UdpCluster drives either through this seam, selected at
/// runtime.
class NodeHostNetwork {
 public:
  virtual ~NodeHostNetwork() = default;

  NodeHostNetwork() = default;
  NodeHostNetwork(const NodeHostNetwork&) = delete;
  NodeHostNetwork& operator=(const NodeHostNetwork&) = delete;

  /// Binds a new UDP socket on 127.0.0.1 and returns its transport.
  /// `port` 0 lets the OS assign one (harness mode); a daemon passes its
  /// configured port so peers can find it across process restarts. Pinned
  /// ports are bound with SO_REUSEADDR, so a restarted daemon can rebind
  /// immediately even while stale sockets linger in the kernel.
  virtual Transport& add_node(std::uint16_t port) = 0;

  Transport& add_node() { return add_node(0); }

  /// Closes the node's socket and destroys its transport. Safe to call from
  /// a receive handler or timer of the same network: destruction is
  /// deferred to the end of the current pump iteration.
  virtual void remove_node(Endpoint ep) = 0;

  /// Microseconds since the network was constructed (monotonic wall clock).
  [[nodiscard]] virtual std::uint64_t now_us() const = 0;

  /// Pumps I/O and timers for the given wall-clock duration.
  virtual void run_for(std::uint64_t duration_us) = 0;

  /// Pumps while `keep_going()` is true, up to `max_us`. Returns true if
  /// the predicate turned false (i.e. the awaited condition was met).
  virtual bool run_while(const std::function<bool()>& keep_going,
                         std::uint64_t max_us) = 0;
};

}  // namespace dat::net
