#include "net/frame.hpp"

namespace dat::net {

void begin_batch(std::vector<std::uint8_t>& dgram) {
  dgram.clear();
  // `dgram` is an arena-pooled buffer whose capacity survives
  // release/acquire; steady-state appends never allocate.
  // datlint:allow(hot-path): appends into an arena-pooled buffer
  dgram.push_back(kBatchMagic);
  // datlint:allow(hot-path): appends into an arena-pooled buffer
  dgram.push_back(kBatchVersion);
}

void append_batch_frame(std::vector<std::uint8_t>& dgram,
                        std::span<const std::uint8_t> frame) {
  if (frame.size() > UINT32_MAX) {
    throw CodecError({DecodeErrorCode::kLengthOverflow, dgram.size()},
                     "append_batch_frame");
  }
  const auto len = static_cast<std::uint32_t>(frame.size());
  for (std::size_t i = 0; i < sizeof len; ++i) {
    // datlint:allow(hot-path): appends into an arena-pooled buffer
    dgram.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  // datlint:allow(hot-path): appends into an arena-pooled buffer
  dgram.insert(dgram.end(), frame.begin(), frame.end());
}

std::optional<DecodeError> split_batch(
    std::span<const std::uint8_t> dgram,
    const std::function<void(std::span<const std::uint8_t>)>& on_frame) {
  if (!is_batch_datagram(dgram)) {
    return DecodeError{DecodeErrorCode::kBadKind, 0};
  }
  std::size_t pos = kBatchHeaderBytes;
  while (pos < dgram.size()) {
    if (dgram.size() - pos < kBatchFrameOverheadBytes) {
      return DecodeError{DecodeErrorCode::kTruncated, pos};
    }
    std::uint32_t len = 0;
    for (std::size_t i = 0; i < sizeof len; ++i) {
      len |= static_cast<std::uint32_t>(dgram[pos + i]) << (8 * i);
    }
    pos += kBatchFrameOverheadBytes;
    if (len > dgram.size() - pos) {
      return DecodeError{DecodeErrorCode::kTruncated, pos};
    }
    on_frame(dgram.subspan(pos, len));
    pos += len;
  }
  return std::nullopt;
}

}  // namespace dat::net
