#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "obs/trace.hpp"

namespace dat::net {

/// Outcome of an RPC call as seen by the caller.
enum class RpcStatus : std::uint8_t {
  kOk = 0,
  kTimeout = 1,      ///< all retransmissions exhausted without a response
  kRemoteError = 2,  ///< the remote handler threw; body carries the message
};

[[nodiscard]] const char* to_string(RpcStatus s) noexcept;

/// Retry/timeout policy of a single RPC. The default is the classic fixed
/// policy (constant per-attempt timeout, immediate retransmission); the
/// adaptive profile adds exponential backoff with decorrelated jitter so
/// retry volume stays bounded exactly when the network is sick (a fixed
/// policy amplifies load under loss — every timeout injects a retransmission
/// into an already-lossy path at full rate).
struct RpcOptions {
  std::uint64_t timeout_us = 500'000;  ///< first-attempt timeout
  unsigned attempts = 3;               ///< total send attempts
  /// Per-attempt timeout growth: attempt k waits timeout_us * multiplier^k.
  /// 1.0 keeps the classic fixed timeout.
  double timeout_multiplier = 1.0;
  /// Delay inserted before each retransmission, grown with decorrelated
  /// jitter: d_k = min(cap, uniform(base, 3 * d_{k-1})), d_0 = base.
  /// 0 disables the backoff delay (immediate retransmission).
  std::uint64_t backoff_base_us = 0;
  std::uint64_t backoff_cap_us = 2'000'000;

  /// The adaptive retry profile used by the protocol layers' data-plane
  /// calls (lookups, queries, stores).
  [[nodiscard]] static RpcOptions adaptive(std::uint64_t timeout_us = 500'000,
                                           unsigned attempts = 3) {
    RpcOptions o;
    o.timeout_us = timeout_us;
    o.attempts = attempts;
    o.timeout_multiplier = 2.0;
    o.backoff_base_us = 25'000;
    return o;
  }

  /// A copy with an explicit budget — named derivation for call sites that
  /// must not inherit the caller's global default.
  [[nodiscard]] RpcOptions with_budget(std::uint64_t new_timeout_us,
                                       unsigned new_attempts) const {
    RpcOptions o = *this;
    o.timeout_us = new_timeout_us;
    o.attempts = new_attempts;
    return o;
  }

  /// A copy without backoff or timeout growth — the right budget for
  /// periodic maintenance RPCs, whose own timer is the retry mechanism.
  [[nodiscard]] RpcOptions fixed(unsigned new_attempts) const {
    RpcOptions o = *this;
    o.attempts = new_attempts;
    o.timeout_multiplier = 1.0;
    o.backoff_base_us = 0;
    return o;
  }

  /// Timeout of the (0-based) k-th attempt under the multiplier.
  [[nodiscard]] std::uint64_t attempt_timeout_us(unsigned attempt) const;

  /// Worst-case wall time a call can occupy: every per-attempt timeout plus
  /// every backoff delay at its cap. Upper layers size end-to-end deadlines
  /// from this instead of assuming attempts * timeout_us.
  [[nodiscard]] std::uint64_t max_total_us() const;
};

/// Client-side retry/latency accounting of one RpcManager — the observable
/// surface chaos campaigns use to assert retry storms stay bounded under
/// loss.
struct RpcStats {
  std::uint64_t calls = 0;           ///< call() invocations
  std::uint64_t attempts = 0;        ///< request datagrams sent (incl. retransmissions)
  std::uint64_t retransmits = 0;     ///< attempts beyond each call's first
  std::uint64_t timeouts = 0;        ///< calls that exhausted every attempt
  std::uint64_t ok = 0;              ///< calls completed with kOk
  std::uint64_t remote_errors = 0;   ///< calls completed with kRemoteError
  std::uint64_t backoff_wait_us = 0; ///< total time spent in backoff delays

  RpcStats& operator+=(const RpcStats& other) noexcept {
    calls += other.calls;
    attempts += other.attempts;
    retransmits += other.retransmits;
    timeouts += other.timeouts;
    ok += other.ok;
    remote_errors += other.remote_errors;
    backoff_wait_us += other.backoff_wait_us;
    return *this;
  }
};

/// Request/response RPC with timeouts and retransmission over an unreliable
/// Transport — the paper's "RPC manager" (Sec. 4, Fig. 6). Also dispatches
/// inbound one-way messages to registered handlers.
///
/// Server handlers are synchronous: they parse the request from a Reader and
/// serialize the reply into a Writer. A handler that throws produces a
/// kRemoteError response carrying the exception text. All upper-layer
/// protocols (Chord, DAT, MAAN) are built from iterative RPCs so synchronous
/// handlers suffice.
class RpcManager {
 public:
  /// cb(status, body): body is valid only when status == kOk; on
  /// kRemoteError it carries the remote exception text as a string field.
  using ResponseHandler = std::function<void(RpcStatus, Reader&)>;
  /// Request handler: decode from `req`, encode reply into `reply`.
  using MethodHandler =
      std::function<void(Endpoint from, Reader& req, Writer& reply)>;
  /// One-way handler: no reply channel.
  using OneWayHandler = std::function<void(Endpoint from, Reader& msg)>;

  using Options = RpcOptions;

  explicit RpcManager(Transport& transport);
  ~RpcManager();

  RpcManager(const RpcManager&) = delete;
  RpcManager& operator=(const RpcManager&) = delete;

  /// Registers the server-side handler for `method`. Replaces any previous
  /// registration.
  void register_method(std::string method, MethodHandler handler);
  void register_one_way(std::string method, OneWayHandler handler);

  /// Drops the handler for `method`; later requests get kUnknownMethod (or
  /// are ignored, for one-ways). A layer that dies before its transport
  /// must unregister, or queued messages dispatch into freed memory.
  void unregister_method(const std::string& method);
  void unregister_one_way(const std::string& method);

  /// Issues a request. The handler fires exactly once, possibly re-entrantly
  /// from within the transport's event loop.
  void call(Endpoint to, const std::string& method, const Writer& body,
            ResponseHandler handler, Options options = Options());

  /// Fire-and-forget message.
  void send_one_way(Endpoint to, const std::string& method, const Writer& body);

  [[nodiscard]] Transport& transport() noexcept { return transport_; }
  [[nodiscard]] Endpoint local() const { return transport_.local(); }

  /// Number of requests currently awaiting a response.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }

  /// Per-method counters of requests served (diagnostics / experiments).
  [[nodiscard]] const std::unordered_map<std::string, std::uint64_t>&
  served_counts() const noexcept {
    return served_;
  }

  /// Client-side retry accounting since construction (or the last reset).
  [[nodiscard]] const RpcStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = RpcStats{}; }

  /// Attaches this manager to a node's telemetry bundle (nullptr detaches):
  /// RpcStats becomes a registry view (a snapshot-time collector — the retry
  /// hot path is untouched), outgoing messages are stamped with the ambient
  /// trace context, and inbound traced messages set that context around
  /// handler dispatch so causality propagates across RPC hops. The bundle
  /// must outlive this manager.
  void set_telemetry(obs::NodeTelemetry* telemetry);
  [[nodiscard]] obs::NodeTelemetry* telemetry() const noexcept {
    return telemetry_;
  }

 private:
  struct PendingCall {
    Endpoint to;
    Message request;
    ResponseHandler handler;
    Options options;
    unsigned attempts_left;
    unsigned attempt = 0;            ///< 0-based index of the attempt in flight
    std::uint64_t last_backoff_us = 0;
    TimerId timer = 0;
    std::uint64_t issued_at_us = 0;  ///< call() time, for end-to-end latency
  };

  void on_message(Endpoint from, const Message& msg);
  void on_request(Endpoint from, const Message& msg);
  void on_response(const Message& msg);
  void arm_timer(std::uint64_t request_id);
  void on_timeout(std::uint64_t request_id);
  void retransmit(std::uint64_t request_id);

  /// Stamps the ambient trace onto an outgoing message, when tracing is on.
  void stamp_trace(Message& msg) const;

  Transport& transport_;
  obs::NodeTelemetry* telemetry_ = nullptr;
  std::uint64_t collector_id_ = 0;
  /// End-to-end call latency (call() to completing response), registered as
  /// dat_rpc_latency_us while telemetry is attached. Borrowed from the
  /// registry's deque, so the pointer stays valid for the bundle's lifetime.
  obs::Histogram* m_latency_ = nullptr;
  std::unordered_map<std::string, MethodHandler> methods_;
  std::unordered_map<std::string, OneWayHandler> one_ways_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::unordered_map<std::string, std::uint64_t> served_;
  RpcStats stats_;
  /// Jitter source for decorrelated backoff; seeded from the local endpoint
  /// so simulated runs stay deterministic per node.
  std::uint64_t jitter_state_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace dat::net
