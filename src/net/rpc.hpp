#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"

namespace dat::net {

/// Outcome of an RPC call as seen by the caller.
enum class RpcStatus : std::uint8_t {
  kOk = 0,
  kTimeout = 1,      ///< all retransmissions exhausted without a response
  kRemoteError = 2,  ///< the remote handler threw; body carries the message
};

[[nodiscard]] const char* to_string(RpcStatus s) noexcept;

/// Retry/timeout policy of a single RPC.
struct RpcOptions {
  std::uint64_t timeout_us = 500'000;  ///< per-attempt timeout
  unsigned attempts = 3;               ///< total send attempts
};

/// Request/response RPC with timeouts and retransmission over an unreliable
/// Transport — the paper's "RPC manager" (Sec. 4, Fig. 6). Also dispatches
/// inbound one-way messages to registered handlers.
///
/// Server handlers are synchronous: they parse the request from a Reader and
/// serialize the reply into a Writer. A handler that throws produces a
/// kRemoteError response carrying the exception text. All upper-layer
/// protocols (Chord, DAT, MAAN) are built from iterative RPCs so synchronous
/// handlers suffice.
class RpcManager {
 public:
  /// cb(status, body): body is valid only when status == kOk; on
  /// kRemoteError it carries the remote exception text as a string field.
  using ResponseHandler = std::function<void(RpcStatus, Reader&)>;
  /// Request handler: decode from `req`, encode reply into `reply`.
  using MethodHandler =
      std::function<void(Endpoint from, Reader& req, Writer& reply)>;
  /// One-way handler: no reply channel.
  using OneWayHandler = std::function<void(Endpoint from, Reader& msg)>;

  using Options = RpcOptions;

  explicit RpcManager(Transport& transport);
  ~RpcManager();

  RpcManager(const RpcManager&) = delete;
  RpcManager& operator=(const RpcManager&) = delete;

  /// Registers the server-side handler for `method`. Replaces any previous
  /// registration.
  void register_method(std::string method, MethodHandler handler);
  void register_one_way(std::string method, OneWayHandler handler);

  /// Issues a request. The handler fires exactly once, possibly re-entrantly
  /// from within the transport's event loop.
  void call(Endpoint to, const std::string& method, const Writer& body,
            ResponseHandler handler, Options options = Options());

  /// Fire-and-forget message.
  void send_one_way(Endpoint to, const std::string& method, const Writer& body);

  [[nodiscard]] Transport& transport() noexcept { return transport_; }
  [[nodiscard]] Endpoint local() const { return transport_.local(); }

  /// Number of requests currently awaiting a response.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }

  /// Per-method counters of requests served (diagnostics / experiments).
  [[nodiscard]] const std::unordered_map<std::string, std::uint64_t>&
  served_counts() const noexcept {
    return served_;
  }

 private:
  struct PendingCall {
    Endpoint to;
    Message request;
    ResponseHandler handler;
    Options options;
    unsigned attempts_left;
    TimerId timer = 0;
  };

  void on_message(Endpoint from, const Message& msg);
  void on_request(Endpoint from, const Message& msg);
  void on_response(const Message& msg);
  void arm_timer(std::uint64_t request_id);
  void on_timeout(std::uint64_t request_id);

  Transport& transport_;
  std::unordered_map<std::string, MethodHandler> methods_;
  std::unordered_map<std::string, OneWayHandler> one_ways_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::unordered_map<std::string, std::uint64_t> served_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace dat::net
