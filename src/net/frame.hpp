#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "net/codec.hpp"

namespace dat::net {

/// Wire container that packs several independently-encoded Message frames
/// bound for the same destination into one datagram — the netio write
/// coalescer's format, also understood by the legacy poll loop so the two
/// backends interoperate. Layout:
///
///   u8 magic (0xB7) | u8 version (1) | ( u32 frame_len | frame bytes )*
///
/// The magic byte can never open a plain Message (whose leading byte is a
/// MessageKind in 0..2), so receivers classify a datagram from its first
/// byte without negotiation. Each sub-frame is decoded through the same
/// hardened Message::try_decode path as a standalone datagram.
inline constexpr std::uint8_t kBatchMagic = 0xB7;
inline constexpr std::uint8_t kBatchVersion = 1;
inline constexpr std::size_t kBatchHeaderBytes = 2;
/// Per-frame container overhead: the u32 length prefix.
inline constexpr std::size_t kBatchFrameOverheadBytes = 4;

[[nodiscard]] inline bool is_batch_datagram(
    std::span<const std::uint8_t> dgram) noexcept {
  return dgram.size() >= kBatchHeaderBytes && dgram[0] == kBatchMagic &&
         dgram[1] == kBatchVersion;
}

/// Starts a batch datagram: clears `dgram` and writes the 2-byte header.
void begin_batch(std::vector<std::uint8_t>& dgram);

/// Appends one length-prefixed sub-frame to a batch started by begin_batch.
void append_batch_frame(std::vector<std::uint8_t>& dgram,
                        std::span<const std::uint8_t> frame);

/// Walks every sub-frame of a batch datagram, invoking `on_frame` for each.
/// Returns std::nullopt on success, or the typed error if the container
/// itself is malformed (frames already visited stay delivered — exactly the
/// drop-the-tail posture of a UDP protocol).
[[nodiscard]] std::optional<DecodeError> split_batch(
    std::span<const std::uint8_t> dgram,
    const std::function<void(std::span<const std::uint8_t>)>& on_frame);

}  // namespace dat::net
