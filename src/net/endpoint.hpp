#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "net/transport.hpp"

namespace dat::net {

/// Packs an IPv4 address and UDP port into a Transport endpoint:
/// (ipv4 << 16) | port, both host byte order. Never 0 for a bound socket.
/// Shared by every real-socket backend (the legacy poll loop and netio).
[[nodiscard]] inline Endpoint make_udp_endpoint(std::uint32_t ipv4_host_order,
                                                std::uint16_t port) {
  return (static_cast<Endpoint>(ipv4_host_order) << 16) | port;
}

[[nodiscard]] inline std::uint32_t endpoint_ipv4(Endpoint ep) {
  return static_cast<std::uint32_t>(ep >> 16);
}

[[nodiscard]] inline std::uint16_t endpoint_port(Endpoint ep) {
  return static_cast<std::uint16_t>(ep & 0xFFFF);
}

[[nodiscard]] inline std::string endpoint_to_string(Endpoint ep) {
  const std::uint32_t ip = endpoint_ipv4(ep);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF,
                endpoint_port(ep));
  return buf;
}

}  // namespace dat::net
