#include "trace/cpu_trace.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dat::trace {

CpuTrace CpuTrace::synthesize(const TraceConfig& config, std::uint64_t seed) {
  if (config.sample_interval_s <= 0.0 || config.duration_s <= 0.0) {
    throw std::invalid_argument("CpuTrace: non-positive duration/interval");
  }
  Rng rng(seed);
  const auto count = static_cast<std::size_t>(
      config.duration_s / config.sample_interval_s);
  std::vector<double> samples;
  samples.reserve(count);

  // Poisson burst schedule.
  std::vector<std::pair<double, double>> bursts;  // (start_s, end_s)
  if (config.bursts_per_hour > 0.0) {
    const double rate_per_s = config.bursts_per_hour / 3600.0;
    double t = rng.next_exponential(rate_per_s);
    while (t < config.duration_s) {
      bursts.emplace_back(t, t + config.burst_duration_s);
      t += rng.next_exponential(rate_per_s);
    }
  }

  double ar = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) * config.sample_interval_s;
    const double drift =
        config.drift_amplitude_pct *
        std::sin(2.0 * std::numbers::pi * t / config.drift_period_s);
    ar = config.ar_coefficient * ar +
         rng.next_normal(0.0, config.ar_sigma_pct);
    double burst = 0.0;
    for (const auto& [start, end] : bursts) {
      if (t >= start && t < end) {
        burst += config.burst_magnitude_pct;
      }
    }
    const double noise = rng.next_normal(0.0, config.noise_sigma_pct);
    const double value =
        config.base_load_pct + drift + ar + burst + noise;
    samples.push_back(std::clamp(value, 0.0, 100.0));
  }
  return CpuTrace(std::move(samples), config.sample_interval_s);
}

CpuTrace::CpuTrace(std::vector<double> samples, double sample_interval_s)
    : samples_(std::move(samples)), interval_s_(sample_interval_s) {
  if (samples_.empty()) {
    throw std::invalid_argument("CpuTrace: empty sample set");
  }
  if (interval_s_ <= 0.0) {
    throw std::invalid_argument("CpuTrace: non-positive sample interval");
  }
}

double CpuTrace::at(double t_s) const {
  if (t_s <= 0.0) return samples_.front();
  const auto idx = static_cast<std::size_t>(t_s / interval_s_);
  if (idx >= samples_.size()) return samples_.back();
  return samples_[idx];
}

TraceReplayer::TraceReplayer(const CpuTrace& trace, double phase_s,
                             double gain)
    : trace_(trace), phase_s_(phase_s), gain_(gain) {
  if (gain <= 0.0) {
    throw std::invalid_argument("TraceReplayer: non-positive gain");
  }
}

double TraceReplayer::at(double t_s) const {
  const double duration = trace_.duration_s();
  double t = t_s + phase_s_;
  // Wrap the phase into the trace (periodic extension).
  t = std::fmod(t, duration);
  if (t < 0.0) t += duration;
  return std::clamp(trace_.at(t) * gain_, 0.0, 100.0);
}

}  // namespace dat::trace
