#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace dat::trace {

/// Parameters of the synthetic CPU-usage trace. The paper replays a 2-hour
/// trace of an 8-processor Sun Fire v880 at USC; that trace is not
/// available, so we synthesize a signal with the same qualitative structure
/// (see DESIGN.md substitutions): a slowly drifting base load (diurnal-ish
/// sinusoid), AR(1) short-term correlation, white measurement noise, and
/// Poisson-arriving load bursts — then clamp to [0, 100] percent.
struct TraceConfig {
  double duration_s = 7200.0;        ///< 2 hours
  double sample_interval_s = 5.0;    ///< sampling period
  unsigned processors = 8;           ///< Sun Fire v880 had 8 CPUs
  double base_load_pct = 45.0;       ///< mean utilization
  double drift_amplitude_pct = 18.0; ///< slow sinusoidal swing
  double drift_period_s = 3600.0;
  double ar_coefficient = 0.92;      ///< short-term correlation
  double ar_sigma_pct = 2.5;         ///< AR innovation stddev
  double noise_sigma_pct = 1.0;      ///< white measurement noise
  double bursts_per_hour = 6.0;      ///< Poisson burst arrivals
  double burst_magnitude_pct = 30.0;
  double burst_duration_s = 90.0;
};

/// An immutable, pre-sampled CPU-utilization trace in percent [0, 100].
/// Piecewise-constant between samples (like /proc sampling).
class CpuTrace {
 public:
  /// Deterministically synthesizes a trace: same config+seed => same trace.
  static CpuTrace synthesize(const TraceConfig& config, std::uint64_t seed);

  /// Builds a trace from explicit samples (tests, or a real recorded trace).
  CpuTrace(std::vector<double> samples, double sample_interval_s);

  /// Utilization percent at time `t_s` seconds; clamps outside the trace.
  [[nodiscard]] double at(double t_s) const;

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] double sample(std::size_t i) const { return samples_.at(i); }
  [[nodiscard]] double sample_interval_s() const noexcept {
    return interval_s_;
  }
  [[nodiscard]] double duration_s() const noexcept {
    return interval_s_ * static_cast<double>(samples_.size());
  }

 private:
  std::vector<double> samples_;
  double interval_s_;
};

/// Per-node view of a trace: optionally phase-shifted and amplitude-jittered
/// so a simulated Grid's nodes are correlated but not identical (the paper
/// replays the identical trace on every node; phase 0 and jitter 0
/// reproduce that exactly).
class TraceReplayer {
 public:
  TraceReplayer(const CpuTrace& trace, double phase_s, double gain);

  [[nodiscard]] double at(double t_s) const;

 private:
  const CpuTrace& trace_;
  double phase_s_;
  double gain_;
};

}  // namespace dat::trace
