#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dat {

/// Identifier of a node or key in the Chord circle. Interpreted modulo 2^b
/// for the `IdSpace` it belongs to.
using Id = std::uint64_t;

/// b-bit circular identifier space used by Chord and DAT (paper Sec. 3.1).
///
/// All arithmetic is modulo 2^b. The paper writes
/// `DIST(i1,i2) = (i1 + 2^b - i2) mod 2^b` but then uses `d = DIST(i,r)` as
/// the clockwise distance from node `i` forward to the root `r` (see
/// DESIGN.md Sec. 5). To avoid that ambiguity this class exposes
/// `clockwise(from, to)` = "how far one must travel clockwise from `from`
/// to reach `to`", which is the quantity every algorithm in the paper
/// actually consumes.
class IdSpace {
 public:
  /// Constructs a 2^bits identifier circle. `bits` must be in [1, 64].
  explicit IdSpace(unsigned bits);

  [[nodiscard]] unsigned bits() const noexcept { return bits_; }

  /// Number of identifiers in the space (2^bits). Saturates the return type
  /// at bits == 64, where size() would be 2^64; callers needing exact cardinality
  /// at 64 bits should treat mask() + 1 with care. For this library b <= 48
  /// in all experiments.
  [[nodiscard]] Id size() const noexcept;

  /// All-ones mask for the low `bits` bits: the largest valid identifier.
  [[nodiscard]] Id mask() const noexcept { return mask_; }

  /// True iff `id` is a canonical identifier of this space.
  [[nodiscard]] bool contains(Id id) const noexcept { return (id & mask_) == id; }

  /// (a + b) mod 2^bits.
  [[nodiscard]] Id add(Id a, Id b) const noexcept { return (a + b) & mask_; }

  /// (a - b) mod 2^bits.
  [[nodiscard]] Id sub(Id a, Id b) const noexcept { return (a - b) & mask_; }

  /// Clockwise distance travelled going from `from` to `to`:
  /// (to - from) mod 2^bits. Zero iff from == to.
  [[nodiscard]] Id clockwise(Id from, Id to) const noexcept {
    return (to - from) & mask_;
  }

  /// True iff x lies in the open interval (a, b) walking clockwise from a.
  /// Empty when a == b (the full circle minus a point is expressed via
  /// in_open_closed / in_closed_open instead).
  [[nodiscard]] bool in_open_open(Id a, Id x, Id b) const noexcept {
    return clockwise(a, x) != 0 && clockwise(a, x) < clockwise(a, b) &&
           clockwise(a, b) != 0;
  }

  /// True iff x lies in (a, b] walking clockwise from a. When a == b the
  /// interval is the whole circle minus {a}... plus b itself: Chord's
  /// convention is that (a, a] covers the entire circle, which this follows.
  [[nodiscard]] bool in_open_closed(Id a, Id x, Id b) const noexcept {
    if (a == b) return true;  // full circle
    const Id ax = clockwise(a, x);
    const Id ab = clockwise(a, b);
    return ax != 0 && ax <= ab;
  }

  /// True iff x lies in [a, b) walking clockwise from a. [a, a) is the full
  /// circle (mirror of the (a, a] convention above).
  [[nodiscard]] bool in_closed_open(Id a, Id x, Id b) const noexcept {
    if (a == b) return true;  // full circle
    const Id ax = clockwise(a, x);
    const Id ab = clockwise(a, b);
    return ax < ab;
  }

  /// The identifier 2^j clockwise of `base` — the *target point* of the j-th
  /// outbound finger FINGER+(base, j+1) in the paper's 1-based notation.
  /// Requires j < bits().
  [[nodiscard]] Id finger_target(Id base, unsigned j) const;

  /// ceil(log2(v)) for v >= 1 computed in integer arithmetic (no floating
  /// point, exact for the full 64-bit range). ceil_log2(1) == 0.
  [[nodiscard]] static unsigned ceil_log2(Id v);

  /// floor(log2(v)) for v >= 1.
  [[nodiscard]] static unsigned floor_log2(Id v);

  /// Human-readable "id/bits" string for diagnostics.
  [[nodiscard]] std::string to_string(Id id) const;

  friend bool operator==(const IdSpace& a, const IdSpace& b) noexcept {
    return a.bits_ == b.bits_;
  }

 private:
  unsigned bits_;
  Id mask_;
};

}  // namespace dat
