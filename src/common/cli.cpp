#include "common/cli.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace dat {

namespace {

bool parse_bool(const std::string& text, bool& out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

CliFlags& CliFlags::flag(std::string name, std::string default_value,
                         std::string help) {
  order_.push_back(name);
  entries_[std::move(name)] =
      Entry{Kind::kString, default_value, default_value, std::move(help)};
  return *this;
}

CliFlags& CliFlags::flag(std::string name, std::int64_t default_value,
                         std::string help) {
  const std::string text = std::to_string(default_value);
  order_.push_back(name);
  entries_[std::move(name)] = Entry{Kind::kInt, text, text, std::move(help)};
  return *this;
}

CliFlags& CliFlags::flag(std::string name, double default_value,
                         std::string help) {
  std::ostringstream oss;
  oss << default_value;
  order_.push_back(name);
  entries_[std::move(name)] =
      Entry{Kind::kDouble, oss.str(), oss.str(), std::move(help)};
  return *this;
}

CliFlags& CliFlags::flag(std::string name, bool default_value,
                         std::string help) {
  const std::string text = default_value ? "true" : "false";
  order_.push_back(name);
  entries_[std::move(name)] = Entry{Kind::kBool, text, text, std::move(help)};
  return *this;
}

bool CliFlags::assign(const std::string& name, const std::string& value) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    error_ = "unknown flag --" + name;
    return false;
  }
  switch (it->second.kind) {
    case Kind::kString:
      break;
    case Kind::kInt: {
      std::int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec != std::errc() || ptr != value.data() + value.size()) {
        error_ = "flag --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    }
    case Kind::kDouble: {
      try {
        std::size_t used = 0;
        (void)std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument("trailing");
      } catch (const std::exception&) {
        error_ = "flag --" + name + " expects a number, got '" + value + "'";
        return false;
      }
      break;
    }
    case Kind::kBool: {
      bool v = false;
      if (!parse_bool(value, v)) {
        error_ = "flag --" + name + " expects a boolean, got '" + value + "'";
        return false;
      }
      break;
    }
  }
  it->second.value = value;
  return true;
}

bool CliFlags::parse(const std::vector<std::string>& args) {
  error_.clear();
  positional_.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    if (!value) {
      if (it->second.kind == Kind::kBool) {
        value = "true";  // bare boolean flag
      } else if (i + 1 < args.size()) {
        value = args[++i];
      } else {
        error_ = "flag --" + name + " needs a value";
        return false;
      }
    }
    if (!assign(name, *value)) return false;
  }
  return true;
}

bool CliFlags::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

const CliFlags::Entry& CliFlags::require(const std::string& name,
                                         Kind kind) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("CliFlags: undeclared flag " + name);
  }
  if (it->second.kind != kind) {
    throw std::invalid_argument("CliFlags: type mismatch for flag " + name);
  }
  return it->second;
}

std::string CliFlags::get_string(const std::string& name) const {
  return require(name, Kind::kString).value;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::stoll(require(name, Kind::kInt).value);
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(require(name, Kind::kDouble).value);
}

bool CliFlags::get_bool(const std::string& name) const {
  bool v = false;
  parse_bool(require(name, Kind::kBool).value, v);
  return v;
}

std::string CliFlags::usage() const {
  std::ostringstream oss;
  for (const std::string& name : order_) {
    const Entry& entry = entries_.at(name);
    oss << "  --" << name << " (default: " << entry.default_value << ")  "
        << entry.help << "\n";
  }
  return oss.str();
}

}  // namespace dat
