#include "common/logging.hpp"

namespace dat {

namespace {
constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  const std::scoped_lock lock(mutex_);
  std::cerr << "[" << level_name(level) << "] " << component << ": " << msg
            << '\n';
}

}  // namespace dat
