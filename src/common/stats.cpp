#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dat {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile of empty set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile q out of [0,1]");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: series length mismatch");
  }
  const std::size_t n = xs.size();
  if (n == 0) return 0.0;
  RunningStats sx;
  RunningStats sy;
  for (std::size_t i = 0; i < n; ++i) {
    sx.add(xs[i]);
    sy.add(ys[i]);
  }
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(n);
  const double denom = sx.stddev() * sy.stddev();
  return denom > 0.0 ? cov / denom : 0.0;
}

double mean_relative_error(std::span<const double> measured,
                           std::span<const double> truth, double eps) {
  if (measured.size() != truth.size()) {
    throw std::invalid_argument("mean_relative_error: length mismatch");
  }
  if (measured.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    acc += std::abs(measured[i] - truth[i]) / std::max(std::abs(truth[i]), eps);
  }
  return acc / static_cast<double>(measured.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0) throw std::invalid_argument("Histogram: zero buckets");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_low(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bucket_low");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

}  // namespace dat
