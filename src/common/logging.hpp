#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace dat {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration. Default level is kWarn so that library
/// internals stay quiet in tests and benches unless explicitly raised.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    const LogLevel current = level_.load(std::memory_order_relaxed);
    return level >= current && current != LogLevel::kOff;
  }

  void write(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  /// Atomic: the level may be set from a test/driver thread while worker
  /// threads evaluate enabled(); the log stream itself is mutex-guarded.
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;
};

namespace detail {
inline void log(LogLevel level, std::string_view component,
                const std::ostringstream& oss) {
  Logger::instance().write(level, component, oss.str());
}
}  // namespace detail

#define DAT_LOG(level, component, expr)                              \
  do {                                                               \
    if (::dat::Logger::instance().enabled(level)) {                  \
      std::ostringstream dat_log_oss_;                               \
      dat_log_oss_ << expr;                                          \
      ::dat::detail::log(level, component, dat_log_oss_);            \
    }                                                                \
  } while (0)

#define DAT_LOG_DEBUG(component, expr) DAT_LOG(::dat::LogLevel::kDebug, component, expr)
#define DAT_LOG_INFO(component, expr) DAT_LOG(::dat::LogLevel::kInfo, component, expr)
#define DAT_LOG_WARN(component, expr) DAT_LOG(::dat::LogLevel::kWarn, component, expr)
#define DAT_LOG_ERROR(component, expr) DAT_LOG(::dat::LogLevel::kError, component, expr)

}  // namespace dat
