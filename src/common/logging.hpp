#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace dat {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration. Default level is kWarn so that library
/// internals stay quiet in tests and benches unless explicitly raised.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= level_ && level_ != LogLevel::kOff;
  }

  void write(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {
inline void log(LogLevel level, std::string_view component,
                const std::ostringstream& oss) {
  Logger::instance().write(level, component, oss.str());
}
}  // namespace detail

#define DAT_LOG(level, component, expr)                              \
  do {                                                               \
    if (::dat::Logger::instance().enabled(level)) {                  \
      std::ostringstream dat_log_oss_;                               \
      dat_log_oss_ << expr;                                          \
      ::dat::detail::log(level, component, dat_log_oss_);            \
    }                                                                \
  } while (0)

#define DAT_LOG_DEBUG(component, expr) DAT_LOG(::dat::LogLevel::kDebug, component, expr)
#define DAT_LOG_INFO(component, expr) DAT_LOG(::dat::LogLevel::kInfo, component, expr)
#define DAT_LOG_WARN(component, expr) DAT_LOG(::dat::LogLevel::kWarn, component, expr)
#define DAT_LOG_ERROR(component, expr) DAT_LOG(::dat::LogLevel::kError, component, expr)

}  // namespace dat
