#include "common/id_space.hpp"

#include <bit>
#include <limits>

namespace dat {

IdSpace::IdSpace(unsigned bits) : bits_(bits) {
  if (bits == 0 || bits > 64) {
    throw std::invalid_argument("IdSpace: bits must be in [1, 64], got " +
                                std::to_string(bits));
  }
  mask_ = bits == 64 ? std::numeric_limits<Id>::max()
                     : ((Id{1} << bits) - 1);
}

Id IdSpace::size() const noexcept {
  if (bits_ == 64) return std::numeric_limits<Id>::max();
  return Id{1} << bits_;
}

Id IdSpace::finger_target(Id base, unsigned j) const {
  if (j >= bits_) {
    throw std::out_of_range("IdSpace::finger_target: finger index " +
                            std::to_string(j) + " out of range for b=" +
                            std::to_string(bits_));
  }
  return add(base, Id{1} << j);
}

unsigned IdSpace::ceil_log2(Id v) {
  if (v == 0) throw std::invalid_argument("ceil_log2(0) is undefined");
  return v == 1 ? 0u : static_cast<unsigned>(std::bit_width(v - 1));
}

unsigned IdSpace::floor_log2(Id v) {
  if (v == 0) throw std::invalid_argument("floor_log2(0) is undefined");
  return static_cast<unsigned>(std::bit_width(v)) - 1u;
}

std::string IdSpace::to_string(Id id) const {
  return std::to_string(id) + "/" + std::to_string(bits_);
}

}  // namespace dat
