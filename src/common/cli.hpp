#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dat {

/// Minimal declarative command-line flag parser for the tools and benches:
/// `--name value` or `--name=value`; `--flag` alone sets a bool. Unknown
/// flags are errors; positional arguments are collected in order.
class CliFlags {
 public:
  /// Declares a flag with a default; returns *this for chaining.
  CliFlags& flag(std::string name, std::string default_value,
                 std::string help);
  CliFlags& flag(std::string name, std::int64_t default_value,
                 std::string help);
  CliFlags& flag(std::string name, double default_value, std::string help);
  CliFlags& flag(std::string name, bool default_value, std::string help);

  /// Parses argv (excluding argv[0] or any subcommand the caller consumed).
  /// Returns false and fills error() on malformed/unknown input.
  bool parse(int argc, const char* const* argv);
  bool parse(const std::vector<std::string>& args);

  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Usage text listing every declared flag with its default and help.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Entry {
    Kind kind;
    std::string value;  // canonical textual form
    std::string default_value;
    std::string help;
  };

  bool assign(const std::string& name, const std::string& value);
  [[nodiscard]] const Entry& require(const std::string& name,
                                     Kind kind) const;

  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace dat
