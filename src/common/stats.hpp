#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dat {

/// Single-pass running statistics (Welford). Used by the analysis layer and
/// benches to report means/variances without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile over a copied sample set (nearest-rank). `q` in [0, 1].
[[nodiscard]] double percentile(std::span<const double> samples, double q);

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series is constant or the series are empty.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Mean of |x - y| / max(|y|, eps) over the series: the relative-error
/// metric EXPERIMENTS.md reports for the Fig. 9 accuracy experiment.
[[nodiscard]] double mean_relative_error(std::span<const double> measured,
                                         std::span<const double> truth,
                                         double eps = 1e-9);

/// Fixed-width histogram over [lo, hi). Values outside are clamped into the
/// first/last bucket. Used for message-distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bucket_low(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dat
