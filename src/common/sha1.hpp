#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/id_space.hpp"

namespace dat {

/// Minimal, dependency-free SHA-1 (FIPS 180-1). Chord and MAAN hash node
/// addresses, attribute names and string attribute values onto the
/// identifier circle with SHA-1, exactly as the paper (and the original
/// Chord work) do. Not intended for any security purpose.
class Sha1 {
 public:
  static constexpr std::size_t kDigestBytes = 20;
  using Digest = std::array<std::uint8_t, kDigestBytes>;

  Sha1();

  /// Absorbs `data` into the running hash. May be called repeatedly.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);

  /// Finalizes and returns the 160-bit digest. The object must not be
  /// updated afterwards (construct a fresh Sha1 for a new message).
  [[nodiscard]] Digest finish();

  /// One-shot digest of `text`.
  [[nodiscard]] static Digest digest(std::string_view text);

  /// Lowercase hex string of a digest.
  [[nodiscard]] static std::string hex(const Digest& d);

  /// Folds the top bits of SHA1(text) into a b-bit Chord identifier.
  /// This is the consistent-hashing function H used for node ids and
  /// rendezvous keys (e.g. H("cpu-usage")).
  [[nodiscard]] static Id hash_to_id(std::string_view text, const IdSpace& space);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::uint64_t total_bytes_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_;
  bool finished_;
};

}  // namespace dat
