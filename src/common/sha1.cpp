#include "common/sha1.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace dat {

namespace {

constexpr std::uint32_t rotl(std::uint32_t v, unsigned n) {
  return std::rotl(v, static_cast<int>(n));
}

}  // namespace

Sha1::Sha1()
    : state_{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u},
      total_bytes_(0),
      buffer_{},
      buffered_(0),
      finished_(false) {}

void Sha1::update(std::span<const std::uint8_t> data) {
  if (finished_) throw std::logic_error("Sha1::update after finish");
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
}

void Sha1::update(std::string_view text) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Sha1::Digest Sha1::finish() {
  if (finished_) throw std::logic_error("Sha1::finish called twice");
  finished_ = true;

  const std::uint64_t bit_len = total_bytes_ * 8;
  // Append 0x80 then zero-pad so that length occupies the final 8 bytes.
  std::array<std::uint8_t, 72> pad{};
  pad[0] = 0x80;
  const std::size_t rem = buffered_;
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  std::array<std::uint8_t, 8> len_bytes{};
  for (int i = 0; i < 8; ++i) {
    len_bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  finished_ = false;  // allow the two updates below
  update(std::span<const std::uint8_t>(pad.data(), pad_len));
  update(std::span<const std::uint8_t>(len_bytes.data(), len_bytes.size()));
  finished_ = true;

  Digest out{};
  for (std::size_t i = 0; i < 5; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f;
    std::uint32_t k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

Sha1::Digest Sha1::digest(std::string_view text) {
  Sha1 h;
  h.update(text);
  return h.finish();
}

std::string Sha1::hex(const Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(kDigestBytes * 2);
  for (const std::uint8_t byte : d) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0F]);
  }
  return out;
}

Id Sha1::hash_to_id(std::string_view text, const IdSpace& space) {
  const Digest d = digest(text);
  // Big-endian fold of the first 8 digest bytes, then truncate to b bits.
  Id v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v = (v << 8) | d[i];
  }
  return v & space.mask();
}

}  // namespace dat
