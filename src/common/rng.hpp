#pragma once

#include <cstdint>
#include <random>
#include <string_view>

#include "common/id_space.hpp"

namespace dat {

/// Deterministic random source. Every stochastic component in the library
/// (identifier assignment, simulated latency, synthetic traces, churn) draws
/// from an explicitly seeded Rng so that experiments and tests are exactly
/// reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives an independent child stream, e.g. one per node, so that adding
  /// a consumer of randomness does not perturb unrelated streams.
  [[nodiscard]] Rng fork(std::uint64_t stream) {
    return Rng(engine_() ^ (stream * 0x9E3779B97F4A7C15ull));
  }

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64() { return engine_(); }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform identifier in the given space.
  Id next_id(const IdSpace& space) { return engine_() & space.mask(); }

  /// Uniform real in [0, 1).
  double next_double() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Normal(mean, stddev).
  double next_normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given rate (mean 1/rate).
  double next_exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Log-normal with the given parameters of the underlying normal.
  double next_lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// True with probability p.
  bool next_bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dat
