#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace dat::sim {

EventId EventQueue::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  if (!cb) {
    throw std::invalid_argument("EventQueue: null callback");
  }
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) {
  // Only events still pending can be cancelled; cancelling a fired or
  // unknown id is a harmless no-op.
  if (pending_.erase(id) == 0) return;
  cancelled_.insert(id);
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  // const_cast-free variant: scan is not possible on priority_queue, so we
  // require callers to have observed !empty(); cancelled tops are resolved
  // lazily in run_next. For next_time we conservatively walk a copy-free
  // path: the top may be cancelled, in which case its time is still a lower
  // bound; to keep this exact we purge in the mutable paths and here demand
  // the queue was purged by the last run_next/schedule cycle.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::next_time on empty queue");
  }
  return heap_.top().when;
}

void EventQueue::advance_to(SimTime when) {
  if (when <= now_) return;
  drop_cancelled_top();
  if (!heap_.empty() && heap_.top().when < when) {
    throw std::logic_error(
        "EventQueue::advance_to would skip over a pending event");
  }
  now_ = when;
}

void EventQueue::run_next() {
  drop_cancelled_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::run_next on empty queue");
  }
  // Move the callback out before popping so re-entrant schedules are safe.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_.erase(entry.id);
  now_ = entry.when;
  ++fired_;
  entry.cb();
}

}  // namespace dat::sim
