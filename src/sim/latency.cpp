#include "sim/latency.hpp"

#include <cmath>
#include <stdexcept>

namespace dat::sim {

UniformLatency::UniformLatency(SimDuration lo_us, SimDuration hi_us)
    : lo_us_(lo_us), hi_us_(hi_us) {
  if (hi_us < lo_us) {
    throw std::invalid_argument("UniformLatency: hi < lo");
  }
}

SimDuration UniformLatency::sample(std::uint64_t, std::uint64_t, Rng& rng) {
  return lo_us_ + rng.next_below(hi_us_ - lo_us_ + 1);
}

LogNormalLatency::LogNormalLatency(double median_us, double sigma,
                                   SimDuration floor_us)
    : mu_(std::log(median_us)), sigma_(sigma), floor_us_(floor_us) {
  if (median_us <= 0.0 || sigma < 0.0) {
    throw std::invalid_argument("LogNormalLatency: bad parameters");
  }
}

SimDuration LogNormalLatency::sample(std::uint64_t, std::uint64_t, Rng& rng) {
  const double v = rng.next_lognormal(mu_, sigma_);
  const auto us = static_cast<SimDuration>(v);
  return us < floor_us_ ? floor_us_ : us;
}

std::unique_ptr<LatencyModel> make_default_latency() {
  // ~100us one-way on a 1-GbE LAN with small jitter, matching the paper's
  // cluster testbed regime.
  return std::make_unique<UniformLatency>(80, 150);
}

}  // namespace dat::sim
