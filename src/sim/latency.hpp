#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace dat::sim {

/// Models one-way network delay between two endpoints, identified by opaque
/// endpoint indices. Implementations must be deterministic given the Rng.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay in microseconds for a message from `from` to `to`.
  [[nodiscard]] virtual SimDuration sample(std::uint64_t from, std::uint64_t to,
                                           Rng& rng) = 0;
};

/// Fixed delay for every message — the paper's cluster testbed (1-GbE LAN)
/// approximated; also the right model for topology-only experiments where
/// delay must not reorder messages.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(SimDuration delay_us) : delay_us_(delay_us) {}
  SimDuration sample(std::uint64_t, std::uint64_t, Rng&) override {
    return delay_us_;
  }

 private:
  SimDuration delay_us_;
};

/// Uniform delay in [lo, hi] microseconds.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimDuration lo_us, SimDuration hi_us);
  SimDuration sample(std::uint64_t from, std::uint64_t to, Rng& rng) override;

 private:
  SimDuration lo_us_;
  SimDuration hi_us_;
};

/// Heavy-tailed WAN-style delay: lognormal with a floor, the conventional
/// model for PlanetLab-like deployments the paper targets as future work.
class LogNormalLatency final : public LatencyModel {
 public:
  /// `median_us` is the median one-way delay; `sigma` the lognormal shape;
  /// `floor_us` a hard minimum (propagation delay).
  LogNormalLatency(double median_us, double sigma, SimDuration floor_us);
  SimDuration sample(std::uint64_t from, std::uint64_t to, Rng& rng) override;

 private:
  double mu_;
  double sigma_;
  SimDuration floor_us_;
};

/// Convenience factory for the default LAN model used in the experiments.
std::unique_ptr<LatencyModel> make_default_latency();

}  // namespace dat::sim
