#include "sim/engine.hpp"

#include <stdexcept>

namespace dat::sim {

Engine::Engine(std::uint64_t seed, std::unique_ptr<LatencyModel> latency)
    : rng_(seed),
      latency_(latency ? std::move(latency) : make_default_latency()) {}

std::uint64_t Engine::run() {
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    queue_.run_next();
    if (++fired > event_limit_) {
      throw std::runtime_error(
          "sim::Engine: event limit exceeded — runaway event loop?");
    }
  }
  return fired;
}

std::uint64_t Engine::run_until(SimTime until) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    queue_.run_next();
    if (++fired > event_limit_) {
      throw std::runtime_error(
          "sim::Engine: event limit exceeded — runaway event loop?");
    }
  }
  return fired;
}

std::uint64_t Engine::advance_until(SimTime until) {
  const std::uint64_t fired = run_until(until);
  queue_.advance_to(until);
  return fired;
}

std::uint64_t Engine::run_steps(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && fired < max_events) {
    queue_.run_next();
    ++fired;
  }
  return fired;
}

}  // namespace dat::sim
