#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace dat::sim {

/// Virtual time in microseconds since simulation start.
using SimTime = std::uint64_t;

/// Duration in microseconds.
using SimDuration = std::uint64_t;

/// Handle returned by EventQueue::schedule; lets callers cancel pending
/// events (e.g. RPC retransmission timers that were answered in time).
using EventId = std::uint64_t;

/// Heap-based chronological event queue — the core of the paper's
/// discrete-event simulation engine (Sec. 4: "A heap-based event queue is
/// used to insert and fire those events in a chronological order").
///
/// Events firing at the same instant are delivered in insertion order, which
/// keeps runs bit-for-bit deterministic given the same seed.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at absolute time `when`. `when` may equal the
  /// current time (fires on the next pop) but must not precede it.
  EventId schedule_at(SimTime when, Callback cb);

  /// Cancels a pending event; a no-op if it already fired or was cancelled.
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }

  /// Number of live pending events.
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pops and runs the earliest live event, advancing `now()` to its
  /// timestamp. Requires !empty().
  void run_next();

  /// Advances the clock to `when` without firing anything. Requires that no
  /// live event is scheduled before `when`; callers drain the queue up to
  /// `when` first (see Engine::advance_until).
  void advance_to(SimTime when);

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Total number of events that have fired (diagnostic).
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;  // also acts as the tiebreaker: lower id fires first
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.id > b.id;
    }
  };

  void drop_cancelled_top();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;    // scheduled, not yet fired/cancelled
  std::unordered_set<EventId> cancelled_;  // lazily purged from the heap
  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
};

}  // namespace dat::sim
