#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/latency.hpp"

namespace dat::sim {

/// Discrete-event simulation engine. Owns the virtual clock, the event
/// queue, the network latency model and the root random stream. The Chord
/// and DAT layers run on top of it unmodified through the net::Transport
/// interface (see net/sim_transport.hpp), mirroring the paper's design where
/// the simulator "provides the same interface to the Chord and DAT layers".
class Engine {
 public:
  /// `seed` drives every random draw in the simulation (latency samples,
  /// node identifiers, workload). Same seed => identical run.
  explicit Engine(std::uint64_t seed,
                  std::unique_ptr<LatencyModel> latency = nullptr);

  [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }

  /// Schedules `cb` after `delay` microseconds of virtual time.
  EventId schedule_after(SimDuration delay, EventQueue::Callback cb) {
    return queue_.schedule_at(queue_.now() + delay, std::move(cb));
  }

  EventId schedule_at(SimTime when, EventQueue::Callback cb) {
    return queue_.schedule_at(when, std::move(cb));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Runs events with timestamps <= `until` (the clock then rests at
  /// min(until, last event time)). Returns the number of events fired.
  std::uint64_t run_until(SimTime until);

  /// Like run_until, but then advances the clock to exactly `until` even if
  /// the queue held no event that late. Fixed-step pump loops need this: with
  /// run_until alone, a step smaller than the gap to the next event would
  /// never move `now()` and the loop could spin forever on a frozen clock.
  std::uint64_t advance_until(SimTime until);

  /// Runs at most `max_events` events. Returns the number fired.
  std::uint64_t run_steps(std::uint64_t max_events);

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] LatencyModel& latency() noexcept { return *latency_; }

  /// Hard cap on total events per run() call, guarding against runaway
  /// feedback loops in protocol code under test. Default: 500M.
  void set_event_limit(std::uint64_t limit) noexcept { event_limit_ = limit; }

 private:
  EventQueue queue_;
  Rng rng_;
  std::unique_ptr<LatencyModel> latency_;
  std::uint64_t event_limit_ = 500'000'000;
};

}  // namespace dat::sim
