#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chord/node.hpp"
#include "chord/ring_view.hpp"
#include "dat/dat_node.hpp"
#include "net/udp_transport.hpp"

namespace dat::harness {

struct UdpClusterOptions {
  unsigned bits = 32;
  std::uint64_t seed = 1;
  chord::NodeOptions node{};
  core::DatOptions dat{};
  bool with_dat = true;
  /// Wall-clock budget for each join to complete.
  std::uint64_t join_timeout_us = 5'000'000;
  /// Wall-clock budget for full finger-table convergence.
  std::uint64_t converge_timeout_us = 60'000'000;
};

/// Real-socket sibling of SimCluster: hosts n live Chord(+DAT) nodes on
/// loopback UDP in one process — the paper's testbed mode (64 instances per
/// machine over UDP RPC). All time is wall-clock; keep n modest in tests.
class UdpCluster {
 public:
  UdpCluster(std::size_t n, UdpClusterOptions options);
  ~UdpCluster();

  UdpCluster(const UdpCluster&) = delete;
  UdpCluster& operator=(const UdpCluster&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] net::UdpNetwork& network() noexcept { return network_; }
  [[nodiscard]] const IdSpace& space() const noexcept { return space_; }
  [[nodiscard]] chord::Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] core::DatNode& dat(std::size_t i) { return *dats_.at(i); }

  [[nodiscard]] chord::RingView ring_view() const;

  /// Pumps wall-clock I/O until all nodes' tables match the converged ring
  /// or the configured timeout passes. Returns true on convergence.
  bool wait_converged();

  /// Pumps for the given wall-clock duration.
  void run_for(std::uint64_t us) { network_.run_for(us); }

  /// Pumps until the predicate returns true (or `max_us`); true on success.
  bool run_until(const std::function<bool()>& condition, std::uint64_t max_us);

  /// Gives every node the exact d0 hint for balanced routing.
  void inject_d0_hints();

  /// Gracefully departs every node (also run by the destructor).
  void shutdown();

  /// Structural invariants over every live node; throws std::logic_error on
  /// violation. Runs automatically at step boundaries in
  /// DAT_CHECK_INVARIANTS builds.
  void assert_local_invariants() const;

  /// Ground-truth invariants against the converged ring view (called after
  /// wait_converged succeeds in DAT_CHECK_INVARIANTS builds).
  void assert_converged_invariants() const;

 private:
  UdpClusterOptions options_;
  IdSpace space_;
  net::UdpNetwork network_;
  std::vector<std::unique_ptr<chord::Node>> nodes_;
  std::vector<std::unique_ptr<core::DatNode>> dats_;
  bool shut_down_ = false;
};

}  // namespace dat::harness
