#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chord/node.hpp"
#include "chord/ring_view.hpp"
#include "dat/dat_node.hpp"
#include "net/node_host.hpp"
#include "net/udp_transport.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace dat::harness {

struct UdpClusterOptions {
  unsigned bits = 32;
  std::uint64_t seed = 1;
  chord::NodeOptions node{};
  core::DatOptions dat{};
  bool with_dat = true;
  /// Event-loop backend hosting the node sockets: the legacy poll(2) loop
  /// or the netio epoll reactor. Overridable at runtime via DAT_NET_BACKEND
  /// without touching call sites.
  net::NetBackend backend = net::net_backend_from_env(net::NetBackend::kPoll);
  /// Wall-clock budget for each join to complete.
  std::uint64_t join_timeout_us = 5'000'000;
  /// Wall-clock budget for full finger-table convergence.
  std::uint64_t converge_timeout_us = 60'000'000;
  /// Periodic telemetry dump: while the cluster pumps (run_for/run_until/
  /// wait_converged), the full cluster snapshot is written to this path
  /// (overwritten in place) every `metrics_dump_period_us`. Empty disables.
  std::string metrics_dump_path;
  std::uint64_t metrics_dump_period_us = 1'000'000;
  obs::ExportFormat metrics_dump_format = obs::ExportFormat::kJson;
};

/// Real-socket sibling of SimCluster: hosts n live Chord(+DAT) nodes on
/// loopback UDP in one process — the paper's testbed mode (64 instances per
/// machine over UDP RPC). All time is wall-clock; keep n modest in tests.
class UdpCluster {
 public:
  UdpCluster(std::size_t n, UdpClusterOptions options);
  ~UdpCluster();

  UdpCluster(const UdpCluster&) = delete;
  UdpCluster& operator=(const UdpCluster&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] net::NodeHostNetwork& network() noexcept { return *network_; }
  [[nodiscard]] net::NetBackend backend() const noexcept {
    return options_.backend;
  }
  [[nodiscard]] const IdSpace& space() const noexcept { return space_; }
  [[nodiscard]] chord::Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] core::DatNode& dat(std::size_t i) { return *dats_.at(i); }
  [[nodiscard]] bool is_live(std::size_t i) const {
    return i < nodes_.size() && nodes_[i] && nodes_[i]->alive();
  }

  /// Crashes node i: its socket is closed and the instance destroyed with
  /// no departure notice, like a killed process. The slot stays allocated
  /// for restart().
  void crash(std::size_t i);

  /// Restarts a crashed slot: binds a fresh socket, rejoins through any
  /// live node (identifier probing), re-attaches the DAT layer and
  /// re-registers every cluster-registered aggregate. Returns true once
  /// the rejoin completed within the configured join timeout.
  bool restart(std::size_t i);

  /// Identifier migration: node i departs gracefully, then a fresh instance
  /// rejoins on a new socket with `new_id` forced (no probing handshake —
  /// the id was computed from a measurement). The slot keeps its index and
  /// re-registers every cluster aggregate. Returns true once the rejoin
  /// completed; on failure the slot is left dead (restart() can revive it).
  bool migrate(std::size_t i, Id new_id);

  /// Per-slot local-value factory for cluster-wide aggregates.
  using LocalValueFactory =
      std::function<core::DatNode::LocalValueFn(std::size_t slot)>;

  /// Registers the named aggregate on every live node and remembers the
  /// spec so restarted nodes re-register it. `epoch_us` overrides the
  /// per-key push period (0 keeps DatOptions::epoch_us). Returns the
  /// rendezvous key.
  Id start_aggregate_everywhere(std::string_view name, core::AggregateKind kind,
                                chord::RoutingScheme scheme,
                                LocalValueFactory local_for,
                                std::uint64_t epoch_us = 0);

  [[nodiscard]] chord::RingView ring_view() const;

  /// Pumps wall-clock I/O until all nodes' tables match the converged ring
  /// or the configured timeout passes. Returns true on convergence.
  bool wait_converged();

  /// Pumps for the given wall-clock duration.
  void run_for(std::uint64_t us) {
    network_->run_for(us);
    maybe_dump_metrics();
  }

  /// Pumps until the predicate returns true (or `max_us`); true on success.
  bool run_until(const std::function<bool()>& condition, std::uint64_t max_us);

  /// Registry for infrastructure shared by all nodes (the netio reactor's
  /// shard counters land here when that backend is selected).
  [[nodiscard]] obs::MetricsRegistry& cluster_metrics() noexcept {
    return cluster_metrics_;
  }

  /// Cluster-wide roll-up: each live node's registry stamped node=<i>,
  /// merged with the shared infrastructure registry (node="cluster").
  [[nodiscard]] obs::MetricsSnapshot telemetry_snapshot() const;

  /// Writes the current telemetry snapshot to `path` in `format`.
  void dump_metrics(const std::string& path, obs::ExportFormat format) const;

  /// Gives every node the exact d0 hint for balanced routing.
  void inject_d0_hints();

  /// Gracefully departs every node (also run by the destructor).
  void shutdown();

  /// Structural invariants over every live node; throws std::logic_error on
  /// violation. Runs automatically at step boundaries in
  /// DAT_CHECK_INVARIANTS builds.
  void assert_local_invariants() const;

  /// Ground-truth invariants against the converged ring view (called after
  /// wait_converged succeeds in DAT_CHECK_INVARIANTS builds).
  void assert_converged_invariants() const;

 private:
  struct AggregateSpec {
    std::string name;
    core::AggregateKind kind;
    chord::RoutingScheme scheme;
    LocalValueFactory local_for;
    std::uint64_t epoch_us = 0;  ///< per-key push period; 0 = DatOptions
  };

  void register_cluster_aggregates(std::size_t i);
  /// Boots a fresh node into dead slot i (fresh socket, join via the lowest
  /// live slot, DAT re-attach + aggregate re-registration). `forced_id`
  /// skips identifier probing (migrations).
  bool boot_slot(std::size_t i, std::optional<Id> forced_id);
  [[nodiscard]] std::size_t lowest_live_slot() const;
  void maybe_dump_metrics();

  UdpClusterOptions options_;
  IdSpace space_;
  // Declared before network_: the netio reactor holds a collector in this
  // registry and unregisters it on destruction.
  obs::MetricsRegistry cluster_metrics_;
  std::unique_ptr<net::NodeHostNetwork> network_;
  std::vector<std::unique_ptr<chord::Node>> nodes_;
  std::vector<std::unique_ptr<core::DatNode>> dats_;
  std::vector<AggregateSpec> cluster_aggregates_;
  std::uint64_t next_seed_ = 0;
  bool shut_down_ = false;
  std::uint64_t last_dump_us_ = 0;
};

}  // namespace dat::harness
