#include "harness/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <unordered_set>

namespace dat::harness {

namespace {

std::string node_tag(const chord::Node& node) {
  return "node " + chord::to_string(node.self());
}

}  // namespace

std::string InvariantReport::to_string() const {
  if (ok()) return "all invariants hold";
  std::string out =
      std::to_string(violations.size()) + " invariant violation(s):";
  for (const std::string& v : violations) {
    out += "\n  - " + v;
  }
  return out;
}

void require_ok(const InvariantReport& report, const char* where) {
  if (report.ok()) return;
  throw std::logic_error(std::string(where) + ": " + report.to_string());
}

void check_node_structure(const chord::Node& node, InvariantReport& report) {
  if (!node.alive()) return;
  const IdSpace& space = node.space();
  const std::string tag = node_tag(node);

  if (!space.contains(node.id())) {
    report.add(tag + ": identifier outside the id space");
  }

  const std::vector<chord::NodeRef>& succs = node.successor_list();
  if (node.joined() && succs.empty()) {
    report.add(tag + ": joined node with empty successor list");
  }
  const bool singleton =
      succs.size() == 1 && succs.front().endpoint == node.self().endpoint;
  std::unordered_set<net::Endpoint> seen;
  Id prev_dist = 0;
  for (std::size_t i = 0; i < succs.size(); ++i) {
    const chord::NodeRef& s = succs[i];
    if (!s.valid()) {
      report.add(tag + ": successor_list[" + std::to_string(i) +
                 "] has a null endpoint");
      continue;
    }
    if (!space.contains(s.id)) {
      report.add(tag + ": successor_list[" + std::to_string(i) +
                 "] id outside the id space");
    }
    if (!seen.insert(s.endpoint).second) {
      report.add(tag + ": duplicate endpoint in successor list at index " +
                 std::to_string(i));
    }
    if (s.endpoint == node.self().endpoint && !singleton) {
      report.add(tag + ": successor list contains self in a non-singleton ring");
      continue;
    }
    const Id dist = space.clockwise(node.id(), s.id);
    if (!singleton && dist == 0 && s.id != node.id()) {
      // dist == 0 with a different id is impossible; with the same id it is
      // an identifier collision, caught by the duplicate-id check below.
      report.add(tag + ": successor at zero clockwise distance");
    }
    if (i > 0 && dist <= prev_dist) {
      report.add(tag + ": successor list not strictly clockwise-ordered at index " +
                 std::to_string(i));
    }
    prev_dist = dist;
  }
  const std::size_t max_len = std::max<std::size_t>(
      1, node.options().successor_list_size);
  if (succs.size() > max_len) {
    report.add(tag + ": successor list longer than configured maximum (" +
               std::to_string(succs.size()) + " > " + std::to_string(max_len) +
               ")");
  }

  // predecessor() returns the optional by value; keep it alive for the span
  // of the checks rather than binding a reference into a temporary.
  if (const std::optional<chord::NodeRef> pred_opt = node.predecessor()) {
    const chord::NodeRef& pred = *pred_opt;
    if (!pred.valid()) {
      report.add(tag + ": predecessor set but endpoint is null");
    }
    if (!space.contains(pred.id)) {
      report.add(tag + ": predecessor id outside the id space");
    }
  }

  for (unsigned j = 0; j < space.bits(); ++j) {
    const chord::NodeRef& f = node.finger(j);
    if (f.valid() && !space.contains(f.id)) {
      report.add(tag + ": finger " + std::to_string(j) +
                 " id outside the id space");
    }
  }
}

void check_ring_structure(const chord::RingView& ring,
                          InvariantReport& report) {
  const std::vector<Id>& ids = ring.ids();
  if (ids.empty()) {
    report.add("ring view: empty membership");
    return;
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!ring.space().contains(ids[i])) {
      report.add("ring view: id at index " + std::to_string(i) +
                 " outside the id space");
    }
    if (i > 0 && ids[i] <= ids[i - 1]) {
      report.add("ring view: ids not strictly ascending at index " +
                 std::to_string(i));
    }
  }
}

void check_converged_node(const chord::Node& node, const chord::RingView& ring,
                          InvariantReport& report) {
  if (!node.alive()) return;
  const std::string tag = node_tag(node);
  if (!ring.contains(node.id())) {
    report.add(tag + ": not a member of the converged ring view");
    return;
  }
  const std::size_t idx = ring.index_of(node.id());
  const Id true_succ = ring.id((idx + 1) % ring.size());
  const Id true_pred = ring.id((idx + ring.size() - 1) % ring.size());

  if (node.successor().id != true_succ) {
    report.add(tag + ": successor " + std::to_string(node.successor().id) +
               " != converged successor " + std::to_string(true_succ));
  }
  if (ring.size() > 1) {
    if (!node.predecessor()) {
      report.add(tag + ": no predecessor in a multi-node converged ring");
    } else if (node.predecessor()->id != true_pred) {
      report.add(tag + ": predecessor " +
                 std::to_string(node.predecessor()->id) +
                 " != converged predecessor " + std::to_string(true_pred));
    }
  }
  // Finger spans: entry j must be the first live node at or after
  // self + 2^j, exactly RingView::finger's definition.
  const std::vector<Id> have = node.finger_ids();
  for (unsigned j = 0; j < ring.space().bits(); ++j) {
    const Id expect = ring.finger(node.id(), j);
    if (have[j] != expect) {
      report.add(tag + ": finger " + std::to_string(j) + " = " +
                 std::to_string(have[j]) + " != converged finger " +
                 std::to_string(expect));
    }
  }
}

void check_dat_tree(const chord::RingView& ring, Id key,
                    chord::RoutingScheme scheme, InvariantReport& report) {
  const core::Tree tree(ring, key, scheme);
  const std::size_t n = ring.size();
  const std::string tag =
      "dat tree(key=" + std::to_string(key) + ", scheme=" +
      (scheme == chord::RoutingScheme::kBalanced ? "balanced" : "greedy") +
      ")";

  if (tree.size() != n) {
    report.add(tag + ": spans " + std::to_string(tree.size()) + " of " +
               std::to_string(n) + " nodes");
  }
  if (tree.root() != ring.successor(key)) {
    report.add(tag + ": root " + std::to_string(tree.root()) +
               " does not own the rendezvous key (owner is " +
               std::to_string(ring.successor(key)) + ")");
  }
  if (!tree.all_reach_root()) {
    report.add(tag + ": not every node reaches the root");
  }

  const unsigned height_bound = 2 * IdSpace::ceil_log2(n) + 2;
  if (tree.height() > height_bound) {
    report.add(tag + ": height " + std::to_string(tree.height()) +
               " exceeds bound " + std::to_string(height_bound));
  }
  // The paper's constant branching bound for the balanced scheme assumes
  // near-even identifier spacing; on arbitrary converged rings the hard
  // guarantee is only logarithmic (children arrive through the g(x)-limited
  // finger set). Greedy children can arrive through any finger.
  const std::size_t branching_bound =
      scheme == chord::RoutingScheme::kBalanced
          ? std::max<std::size_t>(4, 2 * IdSpace::ceil_log2(n) + 2)
          : static_cast<std::size_t>(ring.space().bits()) + 1;
  if (tree.max_branching() > branching_bound) {
    report.add(tag + ": max branching " + std::to_string(tree.max_branching()) +
               " exceeds bound " + std::to_string(branching_bound));
  }
  // Every tree over n nodes has exactly n-1 edges, so the all-node mean
  // branching factor must be (n-1)/n.
  const double expect_avg =
      n == 0 ? 0.0 : static_cast<double>(n - 1) / static_cast<double>(n);
  if (std::abs(tree.avg_branching_all() - expect_avg) > 1e-9) {
    report.add(tag + ": avg branching " +
               std::to_string(tree.avg_branching_all()) + " != (n-1)/n");
  }
}

}  // namespace dat::harness
