#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chord/node.hpp"
#include "chord/ring_view.hpp"
#include "dat/dat_node.hpp"
#include "maan/maan_node.hpp"
#include "net/sim_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/selfmon.hpp"
#include "sim/engine.hpp"

namespace dat::harness {

struct ClusterOptions {
  unsigned bits = 32;
  std::uint64_t seed = 42;
  chord::NodeOptions node{};
  core::DatOptions dat{};
  maan::MaanOptions maan{};
  bool with_dat = true;
  bool with_maan = false;
  /// Virtual time allowed for each sequential join to settle.
  std::uint64_t join_settle_us = 400'000;
  /// Give every node the exact d0 = 2^b / n hint (the deployments in the
  /// paper know n; set false to exercise the successor-list estimator).
  bool inject_d0_hint = true;
  /// Attach an obs::SelfMonitor to every node: the cluster monitors itself
  /// through selfmon meta-trees, and each node evaluates the SLO ruleset.
  bool with_selfmon = false;
  /// Selfmon knobs; fleet_size 0 is auto-filled with the bootstrap size n.
  obs::SelfMonitorOptions selfmon{};
  std::unique_ptr<sim::LatencyModel> latency;  ///< default LAN if null
};

/// Test/bench/example harness: a whole simulated DAT deployment in one
/// object — engine, network fabric, n Chord nodes bootstrapped with probing
/// joins, and optional DAT/MAAN layers per node. Provides churn operations
/// and convergence barriers. Mirrors the paper's simulator-based setup
/// (Sec. 5.1) at up to thousands of nodes.
class SimCluster {
 public:
  SimCluster(std::size_t n, ClusterOptions options);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] net::SimNetwork& network() noexcept { return *network_; }
  [[nodiscard]] const IdSpace& space() const noexcept { return space_; }
  [[nodiscard]] maan::Schema& schema() noexcept { return schema_; }

  /// Number of currently live nodes.
  [[nodiscard]] std::size_t live_count() const;
  /// Total slots ever created (dead ones keep their index).
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] bool is_live(std::size_t slot) const;

  [[nodiscard]] chord::Node& node(std::size_t slot);
  [[nodiscard]] core::DatNode& dat(std::size_t slot);
  [[nodiscard]] maan::MaanNode& maan(std::size_t slot);
  /// Null when with_selfmon is off or the slot is dead.
  [[nodiscard]] obs::SelfMonitor* selfmon(std::size_t slot);

  /// Converged global view of the live membership.
  [[nodiscard]] chord::RingView ring_view() const;

  /// Runs virtual time forward.
  /// Runs the simulation for `us` of virtual time. The clock always advances
  /// by exactly `us`, even across stretches with no scheduled events, so
  /// fixed-step pump loops make progress regardless of timer density.
  void run_for(std::uint64_t us) { engine_->advance_until(engine_->now() + us); }

  /// Runs until every live node's tables match the converged RingView, or
  /// until `max_us` virtual time passes. Returns true on convergence.
  bool wait_converged(std::uint64_t max_us);

  /// Joins one new node through slot 0 (or the lowest live slot). Returns
  /// the new slot index, or nullopt if the join failed.
  std::optional<std::size_t> add_node();

  /// Departs a node: graceful leave() or abrupt crash.
  void remove_node(std::size_t slot, bool graceful);

  /// Restarts a crashed/departed slot: a fresh transport and chord::Node
  /// rejoin the ring through identifier probing via the lowest live slot,
  /// the DAT/MAAN layers are re-attached, and every cluster-registered
  /// aggregate (see start_aggregate_everywhere) is re-registered so the
  /// node is absorbed back into the trees. Returns true once the rejoin
  /// completed; the slot keeps its index.
  bool restart_node(std::size_t slot);

  /// Identifier migration (the rebalancer's heavyweight action): the node
  /// leaves gracefully, then a fresh instance rejoins through the lowest
  /// live slot with `new_id` forced (skipping the probing handshake — the
  /// id was computed from a global measurement instead). The slot keeps its
  /// index and re-registers every cluster aggregate. Returns true once the
  /// rejoin completed; on failure the slot is left dead (restart_node can
  /// revive it).
  bool migrate_node(std::size_t slot, Id new_id);

  /// Per-slot local-value factory for cluster-wide aggregates; called with
  /// the slot index, may return nullptr for relay-only slots.
  using LocalValueFactory =
      std::function<core::DatNode::LocalValueFn(std::size_t slot)>;

  /// Registers the named aggregate on every live node and remembers the
  /// spec: nodes joining via add_node() or rejoining via restart_node()
  /// register it automatically, so churn never silently shrinks the
  /// contributor set. `epoch_us` overrides the per-key push period (0 keeps
  /// DatOptions::epoch_us) — the knob skewed workloads are built from.
  /// Returns the rendezvous key.
  Id start_aggregate_everywhere(std::string_view name, core::AggregateKind kind,
                                chord::RoutingScheme scheme,
                                LocalValueFactory local_for,
                                std::uint64_t epoch_us = 0);

  /// Refreshes the d0 hints after churn (call when inject_d0_hint is set
  /// and the live population changed).
  void refresh_d0_hints();

  /// Sum of chord-layer maintenance RPCs across live nodes.
  [[nodiscard]] std::uint64_t total_maintenance_rpcs() const;

  /// Cluster-wide metrics roll-up: every live node's registry snapshot
  /// stamped with its slot (node=<i>) and merged into one snapshot. Feed
  /// the result to obs::to_prometheus / obs::to_json, or call
  /// .rollup("node") to collapse per-node series into cluster totals.
  [[nodiscard]] obs::MetricsSnapshot telemetry_snapshot() const;

  /// Always-true structural invariants over every live node (valid even
  /// mid-churn); throws std::logic_error listing violations. Runs
  /// automatically at protocol step boundaries in DAT_CHECK_INVARIANTS
  /// builds (the asan-ubsan preset turns it on).
  void assert_local_invariants() const;

  /// Ground-truth invariants after convergence: per-node tables against the
  /// converged RingView plus DAT-tree structure for sampled rendezvous
  /// keys under both routing schemes. Throws std::logic_error on violation.
  void assert_converged_invariants() const;

 private:
  struct Slot {
    net::SimTransport* transport = nullptr;  // owned by the network
    std::unique_ptr<chord::Node> node;
    std::unique_ptr<core::DatNode> dat;
    std::unique_ptr<maan::MaanNode> maan;
    /// Declared after dat: destroyed first, so its leaf closures and
    /// in-flight query callbacks never outlive the DAT layer.
    std::unique_ptr<obs::SelfMonitor> selfmon;
    bool live = false;
  };

  struct AggregateSpec {
    std::string name;
    core::AggregateKind kind;
    chord::RoutingScheme scheme;
    LocalValueFactory local_for;
    std::uint64_t epoch_us = 0;  ///< per-key push period; 0 = DatOptions
  };

  void attach_layers(Slot& slot);
  void register_cluster_aggregates(Slot& slot, std::size_t slot_idx);
  /// Boots a node on a fresh transport and joins it via the lowest live
  /// slot; fills `slot` on success (live, layers attached, aggregates
  /// registered). With `forced_id` the join skips identifier probing and
  /// takes exactly that id (rebalancing migrations).
  bool boot_into_slot(Slot& slot, std::size_t slot_idx,
                      std::optional<Id> forced_id = std::nullopt);
  std::optional<std::size_t> try_add_node();
  [[nodiscard]] std::size_t lowest_live_slot() const;

  ClusterOptions options_;
  IdSpace space_;
  maan::Schema schema_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<net::SimNetwork> network_;
  std::vector<Slot> slots_;
  std::vector<AggregateSpec> cluster_aggregates_;
  std::uint64_t next_seed_;
};

/// Registers the default Grid attribute schema used across examples and
/// tests: cpu-usage [0,100] %, cpu-speed [0, 10e9] Hz, memory-size
/// [0, 64e9] B, plus string attrs os and arch.
void install_default_schema(maan::Schema& schema);

}  // namespace dat::harness
