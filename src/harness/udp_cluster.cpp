#include "harness/udp_cluster.hpp"

#include <fstream>
#include <stdexcept>

#include "harness/invariants.hpp"
#include "netio/netio_network.hpp"

#if DAT_CHECK_INVARIANTS
#define DAT_HARNESS_CHECK_LOCAL() assert_local_invariants()
#define DAT_HARNESS_CHECK_CONVERGED() assert_converged_invariants()
#else
#define DAT_HARNESS_CHECK_LOCAL() (void)0
#define DAT_HARNESS_CHECK_CONVERGED() (void)0
#endif

namespace dat::harness {

namespace {
std::unique_ptr<net::NodeHostNetwork> make_network(
    net::NetBackend backend, obs::MetricsRegistry& cluster_metrics) {
  if (backend == net::NetBackend::kNetio) {
    netio::ReactorOptions reactor_options;
    reactor_options.metrics = &cluster_metrics;
    return std::make_unique<netio::NetioNetwork>(reactor_options);
  }
  return std::make_unique<net::UdpNetwork>();
}
}  // namespace

UdpCluster::UdpCluster(std::size_t n, UdpClusterOptions options)
    : options_(options),
      space_(options.bits),
      network_(make_network(options.backend, cluster_metrics_)) {
  if (n == 0) throw std::invalid_argument("UdpCluster: n == 0");

  auto& first_transport = network_->add_node();
  nodes_.push_back(std::make_unique<chord::Node>(
      space_, first_transport, options_.node, options_.seed));
  nodes_.front()->create();

  for (std::size_t i = 1; i < n; ++i) {
    auto& transport = network_->add_node();
    nodes_.push_back(std::make_unique<chord::Node>(
        space_, transport, options_.node, options_.seed + 100 + i));
    bool joined = false;
    bool failed = false;
    nodes_.back()->join(first_transport.local(), [&](bool ok) {
      joined = ok;
      failed = !ok;
    });
    network_->run_while([&] { return !joined && !failed; },
                       options_.join_timeout_us);
    if (!joined) {
      throw std::runtime_error("UdpCluster: join failed for node " +
                               std::to_string(i));
    }
  }
  if (options_.with_dat) {
    for (auto& node : nodes_) {
      dats_.push_back(std::make_unique<core::DatNode>(*node, options_.dat));
    }
  }
  next_seed_ = options_.seed + 100 + n;
  DAT_HARNESS_CHECK_LOCAL();
}

UdpCluster::~UdpCluster() {
  try {
    shutdown();
  } catch (...) {
    // Destructors must not throw. A failed graceful departure only means
    // peers will learn about it through their failure detectors instead.
  }
}

void UdpCluster::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  dats_.clear();
  for (auto& node : nodes_) {
    if (node && node->alive()) node->leave();
  }
  network_->run_for(100'000);  // let the leaving notices drain
}

void UdpCluster::crash(std::size_t i) {
  if (!is_live(i)) {
    throw std::logic_error("UdpCluster::crash: slot not live");
  }
  nodes_[i]->fail();
  const net::Endpoint ep = nodes_[i]->self().endpoint;
  // Layered teardown before the socket goes away, like a killed process:
  // no departure notice is sent, peers must detect the failure.
  if (i < dats_.size()) dats_[i].reset();
  nodes_[i].reset();
  network_->remove_node(ep);
}

std::size_t UdpCluster::lowest_live_slot() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] && nodes_[i]->alive()) return i;
  }
  throw std::logic_error("UdpCluster: no live nodes");
}

bool UdpCluster::restart(std::size_t i) {
  if (i >= nodes_.size()) {
    throw std::out_of_range("UdpCluster::restart: unknown slot");
  }
  if (nodes_[i]) {
    throw std::logic_error("UdpCluster::restart: slot is live");
  }
  return boot_slot(i, std::nullopt);
}

bool UdpCluster::boot_slot(std::size_t i, std::optional<Id> forced_id) {
  const net::Endpoint bootstrap =
      nodes_[lowest_live_slot()]->self().endpoint;
  // A crash lost all state; the restarted instance is a brand-new node on a
  // fresh socket that happens to reuse the slot index.
  auto& transport = network_->add_node();
  nodes_[i] = std::make_unique<chord::Node>(space_, transport, options_.node,
                                            next_seed_++);
  bool joined = false;
  bool failed = false;
  nodes_[i]->join(
      bootstrap,
      [&](bool ok) {
        joined = ok;
        failed = !ok;
      },
      forced_id);
  network_->run_while([&] { return !joined && !failed; },
                     options_.join_timeout_us);
  if (!joined) {
    const net::Endpoint ep = transport.local();
    nodes_[i].reset();
    network_->remove_node(ep);
    return false;
  }
  if (options_.with_dat && i < dats_.size()) {
    dats_[i] = std::make_unique<core::DatNode>(*nodes_[i], options_.dat);
    register_cluster_aggregates(i);
  }
  DAT_HARNESS_CHECK_LOCAL();
  return true;
}

bool UdpCluster::migrate(std::size_t i, Id new_id) {
  if (!is_live(i)) {
    throw std::logic_error("UdpCluster::migrate: slot not live");
  }
  // Graceful departure and layered teardown, then rejoin at the forced id.
  nodes_[i]->leave();
  const net::Endpoint ep = nodes_[i]->self().endpoint;
  if (i < dats_.size()) dats_[i].reset();
  nodes_[i].reset();
  network_->remove_node(ep);
  network_->run_for(50'000);  // let the departure notices drain
  return boot_slot(i, new_id & space_.mask());
}

void UdpCluster::register_cluster_aggregates(std::size_t i) {
  if (i >= dats_.size() || !dats_[i]) return;
  for (const AggregateSpec& spec : cluster_aggregates_) {
    dats_[i]->start_aggregate(spec.name, spec.kind, spec.scheme,
                              spec.local_for
                                  ? spec.local_for(i)
                                  : core::DatNode::LocalValueFn{},
                              spec.epoch_us);
  }
}

Id UdpCluster::start_aggregate_everywhere(std::string_view name,
                                          core::AggregateKind kind,
                                          chord::RoutingScheme scheme,
                                          LocalValueFactory local_for,
                                          std::uint64_t epoch_us) {
  if (!options_.with_dat) {
    throw std::logic_error(
        "UdpCluster::start_aggregate_everywhere: DAT layer disabled");
  }
  cluster_aggregates_.push_back(
      {std::string(name), kind, scheme, std::move(local_for), epoch_us});
  const AggregateSpec& spec = cluster_aggregates_.back();
  Id key = 0;
  for (std::size_t i = 0; i < dats_.size(); ++i) {
    if (!dats_[i]) continue;
    key = dats_[i]->start_aggregate(
        spec.name, spec.kind, spec.scheme,
        spec.local_for ? spec.local_for(i) : core::DatNode::LocalValueFn{},
        spec.epoch_us);
  }
  return key;
}

chord::RingView UdpCluster::ring_view() const {
  std::vector<Id> ids;
  ids.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (node && node->alive()) ids.push_back(node->id());
  }
  return {space_, std::move(ids)};
}

bool UdpCluster::wait_converged() {
  const chord::RingView ring = ring_view();
  const bool converged = network_->run_while(
      [&] {
        for (const auto& node : nodes_) {
          if (node && node->alive() && !node->converged_against(ring)) {
            return true;
          }
        }
        return false;
      },
      options_.converge_timeout_us);
  maybe_dump_metrics();
  if (converged) DAT_HARNESS_CHECK_CONVERGED();
  return converged;
}

bool UdpCluster::run_until(const std::function<bool()>& condition,
                           std::uint64_t max_us) {
  const bool met = network_->run_while([&] { return !condition(); }, max_us);
  maybe_dump_metrics();
  return met;
}

obs::MetricsSnapshot UdpCluster::telemetry_snapshot() const {
  obs::MetricsSnapshot all;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i] || !nodes_[i]->alive()) continue;
    all.merge(nodes_[i]->telemetry().registry.snapshot().with_label(
        "node", std::to_string(i)));
  }
  all.merge(cluster_metrics_.snapshot().with_label("node", "cluster"));
  return all;
}

void UdpCluster::dump_metrics(const std::string& path,
                              obs::ExportFormat format) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("UdpCluster::dump_metrics: cannot open " + path);
  }
  out << obs::render(telemetry_snapshot(), format);
}

void UdpCluster::maybe_dump_metrics() {
  if (options_.metrics_dump_path.empty()) return;
  const std::uint64_t now = network_->now_us();
  if (last_dump_us_ != 0 &&
      now - last_dump_us_ < options_.metrics_dump_period_us) {
    return;
  }
  last_dump_us_ = now;
  dump_metrics(options_.metrics_dump_path, options_.metrics_dump_format);
}

void UdpCluster::assert_local_invariants() const {
  InvariantReport report;
  for (const auto& node : nodes_) {
    if (node && node->alive()) check_node_structure(*node, report);
  }
  require_ok(report, "UdpCluster local invariants");
}

void UdpCluster::assert_converged_invariants() const {
  InvariantReport report;
  const chord::RingView ring = ring_view();
  check_ring_structure(ring, report);
  for (const auto& node : nodes_) {
    if (!node || !node->alive()) continue;
    check_node_structure(*node, report);
    check_converged_node(*node, ring, report);
  }
  const Id step = space_.size() / 4 ? space_.size() / 4 : 1;
  for (Id key = 0; key < space_.mask(); key += step) {
    check_dat_tree(ring, key, chord::RoutingScheme::kBalanced, report);
    check_dat_tree(ring, key, chord::RoutingScheme::kGreedy, report);
  }
  require_ok(report, "UdpCluster converged invariants");
}

void UdpCluster::inject_d0_hints() {
  std::size_t live = 0;
  for (const auto& node : nodes_) {
    if (node && node->alive()) ++live;
  }
  for (auto& node : nodes_) {
    if (node && node->alive()) node->set_d0_hint(space_.size(), live);
  }
}

}  // namespace dat::harness
