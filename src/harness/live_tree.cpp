#include "harness/live_tree.hpp"

#include <algorithm>
#include <unordered_map>

#include "harness/sim_cluster.hpp"

namespace dat::harness {

LiveTreeStats live_tree_stats(
    const std::vector<std::pair<Id, std::optional<Id>>>& edges) {
  LiveTreeStats stats;
  stats.nodes = edges.size();

  std::unordered_map<Id, Id> parent;
  std::unordered_map<Id, std::size_t> branching;
  for (const auto& [node, p] : edges) {
    if (!p) {
      ++stats.roots;
    } else {
      parent[node] = *p;
      ++branching[*p];
    }
  }
  for (const auto& [node, b] : branching) {
    stats.max_branching = std::max(stats.max_branching, b);
  }
  if (!branching.empty()) {
    stats.avg_branching_internal =
        static_cast<double>(parent.size()) /
        static_cast<double>(branching.size());
  }
  for (const auto& [node, p] : edges) {
    Id cur = node;
    unsigned depth = 0;
    bool terminated = false;
    while (depth <= edges.size()) {
      const auto it = parent.find(cur);
      if (it == parent.end()) {
        terminated = true;
        break;
      }
      cur = it->second;
      ++depth;
    }
    if (terminated) {
      ++stats.reaching_root;
      stats.height = std::max(stats.height, depth);
    }
  }
  return stats;
}

LiveTreeStats live_tree_stats(SimCluster& cluster, Id key,
                              chord::RoutingScheme scheme) {
  std::vector<std::pair<Id, std::optional<Id>>> edges;
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    if (!cluster.is_live(i)) continue;
    chord::Node& node = cluster.node(i);
    const auto parent = node.dat_parent(key, scheme);
    edges.emplace_back(node.id(), parent ? std::optional<Id>(parent->id)
                                         : std::nullopt);
  }
  return live_tree_stats(edges);
}

}  // namespace dat::harness
