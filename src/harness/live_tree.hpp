#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "chord/routing.hpp"
#include "common/id_space.hpp"

namespace dat::harness {

class SimCluster;

/// Metrics of a DAT tree materialized from *live* node state (each node's
/// locally computed dat_parent), as opposed to the RingView ground truth.
struct LiveTreeStats {
  std::size_t nodes = 0;
  std::size_t roots = 0;           ///< nodes with no parent (should be 1)
  std::size_t reaching_root = 0;   ///< nodes whose parent chain ends at a root
  std::size_t max_branching = 0;
  double avg_branching_internal = 0.0;
  unsigned height = 0;
};

/// Computes tree statistics from explicit (node, parent) pairs; parent is
/// nullopt for roots. Chains that do not terminate count as not reaching.
[[nodiscard]] LiveTreeStats live_tree_stats(
    const std::vector<std::pair<Id, std::optional<Id>>>& edges);

/// Convenience: evaluates dat_parent on every live node of a cluster.
[[nodiscard]] LiveTreeStats live_tree_stats(SimCluster& cluster, Id key,
                                            chord::RoutingScheme scheme);

}  // namespace dat::harness
