#include "harness/sim_cluster.hpp"

#include <stdexcept>

#include "harness/invariants.hpp"

// Invariant checking at protocol step boundaries is compiled in only for
// DAT_CHECK_INVARIANTS builds (e.g. the asan-ubsan preset); release builds
// pay nothing. The assert_* methods themselves are always available.
#if DAT_CHECK_INVARIANTS
#define DAT_HARNESS_CHECK_LOCAL() assert_local_invariants()
#define DAT_HARNESS_CHECK_CONVERGED() assert_converged_invariants()
#else
#define DAT_HARNESS_CHECK_LOCAL() (void)0
#define DAT_HARNESS_CHECK_CONVERGED() (void)0
#endif

namespace dat::harness {

void install_default_schema(maan::Schema& schema) {
  schema.add({.name = "cpu-usage", .numeric = true, .lo = 0.0, .hi = 100.0});
  schema.add({.name = "cpu-speed", .numeric = true, .lo = 0.0, .hi = 10e9});
  schema.add({.name = "memory-size", .numeric = true, .lo = 0.0, .hi = 64e9});
  schema.add({.name = "disk-free", .numeric = true, .lo = 0.0, .hi = 100.0});
  schema.add({.name = "os", .numeric = false});
  schema.add({.name = "arch", .numeric = false});
}

SimCluster::SimCluster(std::size_t n, ClusterOptions options)
    : options_(std::move(options)),
      space_(options_.bits),
      next_seed_(options_.seed * 1000003 + 1) {
  if (n == 0) throw std::invalid_argument("SimCluster: n == 0");
  if (options_.with_selfmon && options_.selfmon.fleet_size == 0) {
    options_.selfmon.fleet_size = n;
  }
  install_default_schema(schema_);
  engine_ = std::make_unique<sim::Engine>(options_.seed,
                                          std::move(options_.latency));
  network_ = std::make_unique<net::SimNetwork>(*engine_);

  slots_.reserve(n);
  // First node creates the ring.
  {
    Slot slot;
    slot.transport = &network_->add_node();
    slot.node = std::make_unique<chord::Node>(space_, *slot.transport,
                                              options_.node, next_seed_++);
    slot.node->create();
    slot.live = true;
    attach_layers(slot);
    slots_.push_back(std::move(slot));
  }
  // The rest join sequentially with some settle time, as a real deployment
  // rolls out.
  for (std::size_t i = 1; i < n; ++i) {
    if (!add_node()) {
      throw std::runtime_error("SimCluster: bootstrap join failed at node " +
                               std::to_string(i));
    }
  }
  if (options_.inject_d0_hint) refresh_d0_hints();
  DAT_HARNESS_CHECK_LOCAL();
}

SimCluster::~SimCluster() {
  // Layered teardown: protocol objects before their transports.
  for (Slot& slot : slots_) {
    slot.selfmon.reset();
    slot.maan.reset();
    slot.dat.reset();
    slot.node.reset();
  }
}

void SimCluster::attach_layers(Slot& slot) {
  if (options_.with_dat) {
    slot.dat = std::make_unique<core::DatNode>(*slot.node, options_.dat);
  }
  if (options_.with_maan) {
    slot.maan =
        std::make_unique<maan::MaanNode>(*slot.node, schema_, options_.maan);
  }
  if (options_.with_selfmon && slot.dat) {
    slot.selfmon =
        std::make_unique<obs::SelfMonitor>(*slot.dat, options_.selfmon);
  }
}

void SimCluster::register_cluster_aggregates(Slot& slot, std::size_t slot_idx) {
  if (!slot.dat) return;
  for (const AggregateSpec& spec : cluster_aggregates_) {
    slot.dat->start_aggregate(
        spec.name, spec.kind, spec.scheme,
        spec.local_for ? spec.local_for(slot_idx)
                       : core::DatNode::LocalValueFn{},
        spec.epoch_us);
  }
}

Id SimCluster::start_aggregate_everywhere(std::string_view name,
                                          core::AggregateKind kind,
                                          chord::RoutingScheme scheme,
                                          LocalValueFactory local_for,
                                          std::uint64_t epoch_us) {
  if (!options_.with_dat) {
    throw std::logic_error(
        "SimCluster::start_aggregate_everywhere: DAT layer disabled");
  }
  cluster_aggregates_.push_back(
      {std::string(name), kind, scheme, std::move(local_for), epoch_us});
  const AggregateSpec& spec = cluster_aggregates_.back();
  Id key = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.live || !slot.dat) continue;
    key = slot.dat->start_aggregate(
        spec.name, spec.kind, spec.scheme,
        spec.local_for ? spec.local_for(i) : core::DatNode::LocalValueFn{},
        spec.epoch_us);
  }
  return key;
}

std::size_t SimCluster::live_count() const {
  std::size_t count = 0;
  for (const Slot& slot : slots_) {
    if (slot.live) ++count;
  }
  return count;
}

bool SimCluster::is_live(std::size_t slot) const {
  return slot < slots_.size() && slots_[slot].live;
}

chord::Node& SimCluster::node(std::size_t slot) {
  if (!is_live(slot)) throw std::out_of_range("SimCluster::node: dead slot");
  return *slots_[slot].node;
}

core::DatNode& SimCluster::dat(std::size_t slot) {
  if (!is_live(slot) || !slots_[slot].dat) {
    throw std::out_of_range("SimCluster::dat: dead slot or DAT disabled");
  }
  return *slots_[slot].dat;
}

maan::MaanNode& SimCluster::maan(std::size_t slot) {
  if (!is_live(slot) || !slots_[slot].maan) {
    throw std::out_of_range("SimCluster::maan: dead slot or MAAN disabled");
  }
  return *slots_[slot].maan;
}

obs::SelfMonitor* SimCluster::selfmon(std::size_t slot) {
  if (!is_live(slot)) return nullptr;
  return slots_[slot].selfmon.get();
}

chord::RingView SimCluster::ring_view() const {
  std::vector<Id> ids;
  ids.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    if (slot.live) ids.push_back(slot.node->id());
  }
  return {space_, std::move(ids)};
}

bool SimCluster::wait_converged(std::uint64_t max_us) {
  const std::uint64_t deadline = engine_->now() + max_us;
  while (engine_->now() < deadline) {
    const chord::RingView ring = ring_view();
    bool all = true;
    for (const Slot& slot : slots_) {
      if (slot.live && !slot.node->converged_against(ring)) {
        all = false;
        break;
      }
    }
    if (all) {
      DAT_HARNESS_CHECK_CONVERGED();
      return true;
    }
    engine_->advance_until(
        std::min<sim::SimTime>(deadline, engine_->now() + 500'000));
  }
  return false;
}

std::size_t SimCluster::lowest_live_slot() const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) return i;
  }
  throw std::logic_error("SimCluster: no live nodes");
}

std::optional<std::size_t> SimCluster::add_node() {
  // A join can fail transiently when routing crosses a just-crashed node;
  // retry with a fresh transport, as a real deployment script would.
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (const auto slot = try_add_node()) return slot;
  }
  return std::nullopt;
}

bool SimCluster::boot_into_slot(Slot& slot, std::size_t slot_idx,
                                std::optional<Id> forced_id) {
  const std::size_t bootstrap = lowest_live_slot();
  slot.transport = &network_->add_node();
  slot.node = std::make_unique<chord::Node>(space_, *slot.transport,
                                            options_.node, next_seed_++);
  bool joined = false;
  bool failed = false;
  slot.node->join(
      slots_[bootstrap].transport->local(),
      [&](bool ok) {
        joined = ok;
        failed = !ok;
      },
      forced_id);
  const std::uint64_t deadline = engine_->now() + 30'000'000;
  while (!joined && !failed && engine_->now() < deadline &&
         !engine_->idle()) {
    engine_->run_steps(256);
  }
  if (!joined) {
    // Destroy the node (which still references the transport) before the
    // transport itself.
    const net::Endpoint ep = slot.transport->local();
    slot.node.reset();
    slot.transport = nullptr;
    network_->remove_node(ep);
    return false;
  }
  engine_->run_until(engine_->now() + options_.join_settle_us);
  slot.live = true;
  attach_layers(slot);
  register_cluster_aggregates(slot, slot_idx);
  return true;
}

std::optional<std::size_t> SimCluster::try_add_node() {
  Slot slot;
  if (!boot_into_slot(slot, slots_.size())) return std::nullopt;
  slots_.push_back(std::move(slot));
  DAT_HARNESS_CHECK_LOCAL();
  return slots_.size() - 1;
}

bool SimCluster::restart_node(std::size_t slot_idx) {
  if (slot_idx >= slots_.size()) {
    throw std::out_of_range("SimCluster::restart_node: unknown slot");
  }
  if (slots_[slot_idx].live) {
    throw std::logic_error("SimCluster::restart_node: slot is live");
  }
  // A crash loses all protocol state; the restarted instance is a brand-new
  // node on a fresh transport that happens to reuse the slot index.
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (boot_into_slot(slots_[slot_idx], slot_idx)) {
      if (options_.inject_d0_hint) refresh_d0_hints();
      DAT_HARNESS_CHECK_LOCAL();
      return true;
    }
  }
  return false;
}

bool SimCluster::migrate_node(std::size_t slot_idx, Id new_id) {
  if (!is_live(slot_idx)) {
    throw std::logic_error("SimCluster::migrate_node: slot not live");
  }
  if (live_count() < 2) {
    throw std::logic_error("SimCluster::migrate_node: last live node");
  }
  remove_node(slot_idx, /*graceful=*/true);
  new_id &= space_.mask();
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (boot_into_slot(slots_[slot_idx], slot_idx, new_id)) {
      if (options_.inject_d0_hint) refresh_d0_hints();
      DAT_HARNESS_CHECK_LOCAL();
      return true;
    }
  }
  return false;
}

void SimCluster::remove_node(std::size_t slot_idx, bool graceful) {
  if (!is_live(slot_idx)) return;
  Slot& slot = slots_[slot_idx];
  if (graceful) {
    slot.node->leave();
  } else {
    slot.node->fail();
  }
  slot.live = false;
  const net::Endpoint ep = slot.transport->local();
  slot.selfmon.reset();
  slot.maan.reset();
  slot.dat.reset();
  slot.node.reset();
  network_->remove_node(ep);
  slot.transport = nullptr;
  DAT_HARNESS_CHECK_LOCAL();
}

void SimCluster::refresh_d0_hints() {
  const std::size_t n = live_count();
  for (Slot& slot : slots_) {
    if (slot.live) slot.node->set_d0_hint(space_.size(), n);
  }
}

void SimCluster::assert_local_invariants() const {
  InvariantReport report;
  for (const Slot& slot : slots_) {
    if (slot.live) check_node_structure(*slot.node, report);
  }
  require_ok(report, "SimCluster local invariants");
}

void SimCluster::assert_converged_invariants() const {
  InvariantReport report;
  const chord::RingView ring = ring_view();
  check_ring_structure(ring, report);
  for (const Slot& slot : slots_) {
    if (!slot.live) continue;
    check_node_structure(*slot.node, report);
    check_converged_node(*slot.node, ring, report);
  }
  // Sample rendezvous keys across the circle (including the wrap point)
  // under both routing schemes.
  const Id step = space_.size() / 4 ? space_.size() / 4 : 1;
  for (Id key = 0; key < space_.mask(); key += step) {
    check_dat_tree(ring, key, chord::RoutingScheme::kBalanced, report);
    check_dat_tree(ring, key, chord::RoutingScheme::kGreedy, report);
  }
  require_ok(report, "SimCluster converged invariants");
}

std::uint64_t SimCluster::total_maintenance_rpcs() const {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    if (slot.live) total += slot.node->maintenance_rpcs();
  }
  return total;
}

obs::MetricsSnapshot SimCluster::telemetry_snapshot() const {
  obs::MetricsSnapshot all;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live) continue;
    all.merge(slots_[i].node->telemetry().registry.snapshot().with_label(
        "node", std::to_string(i)));
  }
  return all;
}

}  // namespace dat::harness
