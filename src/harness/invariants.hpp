#pragma once

#include <string>
#include <vector>

#include "chord/node.hpp"
#include "chord/ring_view.hpp"
#include "chord/routing.hpp"
#include "common/id_space.hpp"
#include "dat/tree.hpp"

namespace dat::harness {

/// Collected invariant violations from one checking pass. Empty means every
/// checked invariant held.
struct InvariantReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  void add(std::string violation) {
    violations.push_back(std::move(violation));
  }
  [[nodiscard]] std::string to_string() const;
};

/// Throws std::logic_error naming `where` and listing every violation when
/// the report is not clean; no-op otherwise.
void require_ok(const InvariantReport& report, const char* where);

/// Structural invariants of a single live node that hold at *every* protocol
/// step boundary, even mid-churn: successor list is non-empty, deduplicated,
/// strictly ordered by clockwise distance from self, contains self only as a
/// singleton; predecessor and all table entries carry canonical identifiers.
void check_node_structure(const chord::Node& node, InvariantReport& report);

/// Well-formedness of a ground-truth RingView: ascending unique canonical
/// identifiers.
void check_ring_structure(const chord::RingView& ring, InvariantReport& report);

/// Ground-truth invariants of a node once stabilization has converged:
/// successor/predecessor match the ring, and every finger j equals
/// successor(self + 2^j) (the paper's finger-span property).
void check_converged_node(const chord::Node& node, const chord::RingView& ring,
                          InvariantReport& report);

/// Structural invariants of the DAT for rendezvous `key` over a converged
/// ring: the tree spans all n nodes, every node reaches the root, the root
/// owns the key, and height/branching respect hard structural bounds —
/// height <= 2*ceil(log2 n) + 2 for both schemes, max branching
/// <= max(4, 2*ceil(log2 n) + 2) for the balanced scheme (the paper's
/// constant bound holds only under near-even spacing; the logarithmic
/// bound from the g(x)-limited finger set always holds) and <= b + 1 for
/// greedy.
void check_dat_tree(const chord::RingView& ring, Id key,
                    chord::RoutingScheme scheme, InvariantReport& report);

}  // namespace dat::harness
