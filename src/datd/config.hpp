#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "dat/aggregate.hpp"
#include "chord/routing.hpp"
#include "net/endpoint.hpp"
#include "obs/export.hpp"

namespace dat::datd {

/// Everything a datd process needs to boot, collected from a line-based
/// config file ("key value", '#' comments) overridden by command-line
/// flags. The file supplies defaults; any flag given on the command line
/// wins, which is how the supervisor runs a whole fleet off one file plus
/// per-slot --port/--value overrides.
struct Config {
  // -- identity / ring -------------------------------------------------------
  unsigned bits = 16;           ///< identifier-space bits
  std::uint16_t port = 0;       ///< UDP port to bind (0 = OS-assigned)
  bool create = false;          ///< bootstrap a fresh ring instead of joining
  std::vector<std::string> seeds;  ///< "ip:port" join targets, tried in order
  std::string backend;          ///< "", "poll", "legacy", "netio", "epoll"
  std::uint64_t seed = 1;       ///< rng seed (identifier probing etc.)
  std::uint64_t incarnation = 0;  ///< restart generation, supervisor-managed

  // -- bootstrap retry (PR 2 backoff shape: capped decorrelated jitter) ------
  unsigned join_attempts = 10;
  std::uint64_t backoff_base_ms = 25;
  std::uint64_t backoff_cap_ms = 2000;

  // -- aggregation workload --------------------------------------------------
  std::string aggregate = "cpu-usage";
  unsigned replicas = 1;
  core::AggregateKind kind = core::AggregateKind::kSum;
  chord::RoutingScheme scheme = chord::RoutingScheme::kBalanced;
  double value = 1.0;           ///< this node's fixed local value x_i
  std::uint64_t epoch_ms = 200;  ///< continuous push period

  // -- lifecycle -------------------------------------------------------------
  std::uint64_t drain_deadline_ms = 5000;  ///< SIGTERM hard deadline
  std::uint64_t handoff_ttl_ms = 60'000;   ///< drain redirect freshness

  // -- telemetry -------------------------------------------------------------
  std::string metrics_out;             ///< path; empty disables the dump
  std::uint64_t metrics_period_ms = 1000;
  obs::ExportFormat metrics_format = obs::ExportFormat::kPrometheus;
  /// datd.metrics chunk size: pages larger than this travel as a seq/total
  /// continuation the admin client reassembles. Tunable mostly so tests can
  /// force multi-chunk pages with a small value.
  std::uint64_t metrics_chunk = 48'000;

  // -- self-monitoring -------------------------------------------------------
  bool selfmon = true;                   ///< feed dat_* telemetry into meta-trees
  std::uint64_t selfmon_epoch_ms = 1000;  ///< telemetry epoch
  std::uint64_t fleet_size = 0;  ///< configured fleet size for coverage SLOs
  std::string slo_rules;         ///< SLO ruleset file; empty = built-in defaults
  std::string postmortem_dir;    ///< crash-dump directory; empty = disabled

  /// Declares every config key as a CliFlags flag, seeded with this
  /// config's current values as defaults.
  [[nodiscard]] CliFlags make_flags() const;

  /// Reads every flag back. Throws std::invalid_argument on out-of-range or
  /// unparseable values (bad kind/scheme/format/endpoint, bits outside
  /// [4, 63], replicas == 0, neither --create nor --seeds).
  static Config from_flags(const CliFlags& flags);

  /// Parses a config file into `*this` (later keys override earlier ones).
  /// Keys are the flag names; unknown keys throw std::invalid_argument with
  /// the offending line.
  void load_file(const std::string& path);

  [[nodiscard]] std::string seeds_csv() const;
};

/// Parses "a.b.c.d:port" into a packed loopback/LAN endpoint. Throws
/// std::invalid_argument on malformed input or port 0.
[[nodiscard]] net::Endpoint parse_endpoint(const std::string& hostport);

[[nodiscard]] core::AggregateKind aggregate_kind_from_name(
    const std::string& name);
[[nodiscard]] chord::RoutingScheme routing_scheme_from_name(
    const std::string& name);
[[nodiscard]] obs::ExportFormat export_format_from_name(
    const std::string& name);

}  // namespace dat::datd
