#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chord/types.hpp"
#include "net/codec.hpp"

namespace dat::datd {

/// The daemon's liveness/health snapshot, answered synchronously by the
/// `datd.status` admin RPC and rendered by `datctl status --target`. Kept
/// deliberately small: everything here is local state the handler can read
/// without blocking the event loop.
struct StatusInfo {
  std::uint64_t pid = 0;
  std::uint64_t incarnation = 0;
  std::uint64_t uptime_us = 0;
  bool serving = true;  ///< false once a drain has begun
  bool joined = false;
  chord::NodeRef self{};
  std::optional<chord::NodeRef> predecessor;
  std::vector<chord::NodeRef> successors;
  std::vector<std::uint64_t> aggregate_keys;  ///< active DAT tree keys
  std::string build_sha;      ///< obs::build_sha() of the answering binary
  std::string build_version;  ///< obs::build_version() of the answering binary

  void encode(net::Writer& w) const;
  [[nodiscard]] static StatusInfo decode(net::Reader& r);

  /// One-line human rendering for datctl.
  [[nodiscard]] std::string describe() const;
  /// JSON object rendering ("dat.status.v1") for scripted admin.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace dat::datd
