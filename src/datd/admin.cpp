#include "datd/admin.hpp"

#include <memory>
#include <utility>

namespace dat::datd {

AdminClient::AdminClient(std::uint64_t timeout_us)
    : timeout_us_(timeout_us), transport_(network_.add_node()) {
  rpc_ = std::make_unique<net::RpcManager>(transport_);
}

AdminClient::~AdminClient() = default;

bool AdminClient::pump_until(const bool& done) {
  // Margin past the RPC budget so the manager can deliver its own kTimeout
  // instead of us abandoning a still-pending handler.
  return network_.run_while([&done] { return !done; }, timeout_us_ * 2);
}

namespace {

/// Completion latch shared with the RPC handler: if the pump gives up
/// before the manager resolves the call, the handler must not write into a
/// dead stack frame — it owns the state instead.
template <typename T>
struct CallState {
  bool done = false;
  std::optional<T> result;
};

net::RpcOptions admin_budget(std::uint64_t timeout_us) {
  return net::RpcOptions::adaptive(timeout_us / 4 + 1, 3);
}

}  // namespace

std::optional<StatusInfo> AdminClient::status(net::Endpoint target) {
  auto state = std::make_shared<CallState<StatusInfo>>();
  rpc_->call(
      target, "datd.status", net::Writer{},
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk) state->result = StatusInfo::decode(r);
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result;
}

std::optional<std::string> AdminClient::metrics(net::Endpoint target,
                                                obs::ExportFormat format) {
  net::Writer req;
  req.u8(format == obs::ExportFormat::kJson ? 0 : 1);
  auto state = std::make_shared<CallState<std::string>>();
  rpc_->call(
      target, "datd.metrics", req,
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk) state->result = r.str();
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result;
}

bool AdminClient::leave(net::Endpoint target) {
  auto state = std::make_shared<CallState<bool>>();
  rpc_->call(
      target, "datd.leave", net::Writer{},
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk) state->result = r.boolean();
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result.value_or(false);
}

std::optional<std::uint64_t> AdminClient::rebalance(net::Endpoint target) {
  auto state = std::make_shared<CallState<std::uint64_t>>();
  rpc_->call(
      target, "datd.rebalance", net::Writer{},
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk) state->result = r.u64();
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result;
}

std::optional<core::GlobalValue> AdminClient::global_at(net::Endpoint target,
                                                        Id key) {
  net::Writer req;
  req.u64(key);
  auto state = std::make_shared<CallState<core::GlobalValue>>();
  rpc_->call(
      target, "dat.get_global", req,
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk && r.boolean()) {
          core::GlobalValue g;
          g.state = core::read_agg_state(r);
          g.epoch = r.u64();
          g.updated_at_us = r.u64();
          state->result = g;
        }
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result;
}

}  // namespace dat::datd
