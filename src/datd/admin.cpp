#include "datd/admin.hpp"

#include <memory>
#include <utility>

namespace dat::datd {

AdminClient::AdminClient(std::uint64_t timeout_us)
    : timeout_us_(timeout_us), transport_(network_.add_node()) {
  rpc_ = std::make_unique<net::RpcManager>(transport_);
}

AdminClient::~AdminClient() = default;

bool AdminClient::pump_until(const bool& done) {
  // Margin past the RPC budget so the manager can deliver its own kTimeout
  // instead of us abandoning a still-pending handler.
  return network_.run_while([&done] { return !done; }, timeout_us_ * 2);
}

namespace {

/// Completion latch shared with the RPC handler: if the pump gives up
/// before the manager resolves the call, the handler must not write into a
/// dead stack frame — it owns the state instead.
template <typename T>
struct CallState {
  bool done = false;
  std::optional<T> result;
};

net::RpcOptions admin_budget(std::uint64_t timeout_us) {
  return net::RpcOptions::adaptive(timeout_us / 4 + 1, 3);
}

}  // namespace

std::optional<StatusInfo> AdminClient::status(net::Endpoint target) {
  auto state = std::make_shared<CallState<StatusInfo>>();
  rpc_->call(
      target, "datd.status", net::Writer{},
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk) state->result = StatusInfo::decode(r);
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result;
}

namespace {

/// One datd.metrics reply: a slice of the rendered page plus the headers
/// the reassembly loop steers by.
struct MetricsChunk {
  std::uint64_t gen = 0;
  std::uint32_t total = 0;
  std::uint32_t seq = 0;
  std::string data;
};

}  // namespace

std::optional<std::string> AdminClient::metrics(net::Endpoint target,
                                                obs::ExportFormat format) {
  const auto fetch = [&](std::uint32_t seq,
                         std::uint64_t gen) -> std::optional<MetricsChunk> {
    net::Writer req;
    req.u8(format == obs::ExportFormat::kJson ? 0 : 1);
    req.u32(seq);
    req.u64(gen);
    auto state = std::make_shared<CallState<MetricsChunk>>();
    rpc_->call(
        target, "datd.metrics", req,
        [state](net::RpcStatus st, net::Reader& r) {
          if (st == net::RpcStatus::kOk) {
            MetricsChunk chunk;
            chunk.gen = r.u64();
            chunk.total = r.u32();
            chunk.seq = r.u32();
            chunk.data = r.str();
            state->result = std::move(chunk);
          }
          state->done = true;
        },
        admin_budget(timeout_us_));
    pump_until(state->done);
    return state->result;
  };
  // total == 0 means our generation was evicted by a concurrent scraper;
  // restart from seq 0 a bounded number of times rather than loop forever
  // against a pathologically contended daemon.
  for (int restart = 0; restart < 3; ++restart) {
    std::optional<MetricsChunk> first = fetch(0, 0);
    if (!first) return std::nullopt;
    std::string page = std::move(first->data);
    const std::uint64_t gen = first->gen;
    const std::uint32_t total = first->total;
    bool stale = false;
    for (std::uint32_t seq = 1; seq < total && !stale; ++seq) {
      std::optional<MetricsChunk> chunk = fetch(seq, gen);
      if (!chunk) return std::nullopt;
      if (chunk->total == 0 || chunk->gen != gen) {
        stale = true;
        break;
      }
      page += chunk->data;
    }
    if (!stale) return page;
  }
  return std::nullopt;
}

std::optional<std::vector<obs::Alert>> AdminClient::alerts(
    net::Endpoint target) {
  auto state = std::make_shared<CallState<std::vector<obs::Alert>>>();
  rpc_->call(
      target, "datd.alerts", net::Writer{},
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk && r.boolean()) {
          state->result = obs::read_alerts(r);
        }
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result;
}

std::optional<obs::SelfMonitor::FleetView> AdminClient::fleet(
    net::Endpoint target) {
  auto state = std::make_shared<CallState<obs::SelfMonitor::FleetView>>();
  rpc_->call(
      target, "datd.fleet", net::Writer{},
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk && r.boolean()) {
          state->result = obs::read_fleet_view(r);
        }
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result;
}

bool AdminClient::leave(net::Endpoint target) {
  auto state = std::make_shared<CallState<bool>>();
  rpc_->call(
      target, "datd.leave", net::Writer{},
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk) state->result = r.boolean();
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result.value_or(false);
}

std::optional<std::uint64_t> AdminClient::rebalance(net::Endpoint target) {
  auto state = std::make_shared<CallState<std::uint64_t>>();
  rpc_->call(
      target, "datd.rebalance", net::Writer{},
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk) state->result = r.u64();
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result;
}

std::optional<core::GlobalValue> AdminClient::global_at(net::Endpoint target,
                                                        Id key) {
  net::Writer req;
  req.u64(key);
  auto state = std::make_shared<CallState<core::GlobalValue>>();
  rpc_->call(
      target, "dat.get_global", req,
      [state](net::RpcStatus st, net::Reader& r) {
        if (st == net::RpcStatus::kOk && r.boolean()) {
          core::GlobalValue g;
          g.state = core::read_agg_state(r);
          g.epoch = r.u64();
          g.updated_at_us = r.u64();
          state->result = g;
        }
        state->done = true;
      },
      admin_budget(timeout_us_));
  pump_until(state->done);
  return state->result;
}

}  // namespace dat::datd
