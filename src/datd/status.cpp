#include "datd/status.hpp"

#include <algorithm>
#include <sstream>

#include "net/endpoint.hpp"

namespace dat::datd {

void StatusInfo::encode(net::Writer& w) const {
  w.u64(pid);
  w.u64(incarnation);
  w.u64(uptime_us);
  w.boolean(serving);
  w.boolean(joined);
  chord::write_node_ref(w, self);
  w.boolean(predecessor.has_value());
  if (predecessor) chord::write_node_ref(w, *predecessor);
  w.u8(static_cast<std::uint8_t>(successors.size()));
  for (const chord::NodeRef& s : successors) chord::write_node_ref(w, s);
  w.u32(static_cast<std::uint32_t>(aggregate_keys.size()));
  for (const std::uint64_t key : aggregate_keys) w.u64(key);
  w.str(build_sha);
  w.str(build_version);
}

StatusInfo StatusInfo::decode(net::Reader& r) {
  StatusInfo info;
  info.pid = r.u64();
  info.incarnation = r.u64();
  info.uptime_us = r.u64();
  info.serving = r.boolean();
  info.joined = r.boolean();
  info.self = chord::read_node_ref(r);
  if (r.boolean()) info.predecessor = chord::read_node_ref(r);
  const std::uint8_t successor_count = r.u8();
  // datlint:allow(hot-path): admin-RPC decode, runs at operator cadence
  info.successors.reserve(successor_count);
  for (std::uint8_t i = 0; i < successor_count; ++i) {
    // datlint:allow(hot-path): admin-RPC decode, runs at operator cadence
    info.successors.push_back(chord::read_node_ref(r));
  }
  const std::uint32_t key_count = r.u32();
  // Wire-controlled count: bound the reserve like every other decode path.
  // datlint:allow(hot-path): admin-RPC decode, runs at operator cadence
  info.aggregate_keys.reserve(std::min<std::uint32_t>(key_count, 1024));
  for (std::uint32_t i = 0; i < key_count; ++i) {
    // datlint:allow(hot-path): admin-RPC decode, runs at operator cadence
    info.aggregate_keys.push_back(r.u64());
  }
  info.build_sha = r.str();
  info.build_version = r.str();
  return info;
}

std::string StatusInfo::describe() const {
  std::ostringstream oss;
  oss << "pid=" << pid << " inc=" << incarnation << " up="
      << uptime_us / 1000 << "ms state="
      << (serving ? "serving" : "draining") << " joined="
      << (joined ? "yes" : "no") << " self="
      << net::endpoint_to_string(self.endpoint) << " id=" << self.id
      << " succ=" << successors.size() << " keys=" << aggregate_keys.size()
      << " build=" << build_version << "/" << build_sha;
  return oss.str();
}

std::string StatusInfo::to_json() const {
  std::ostringstream oss;
  oss << "{\"schema\":\"dat.status.v1\",\"pid\":" << pid
      << ",\"incarnation\":" << incarnation << ",\"uptime_us\":" << uptime_us
      << ",\"state\":\"" << (serving ? "serving" : "draining")
      << "\",\"joined\":" << (joined ? "true" : "false") << ",\"self\":{\"id\":"
      << self.id << ",\"endpoint\":\""
      << net::endpoint_to_string(self.endpoint) << "\"}";
  if (predecessor) {
    oss << ",\"predecessor\":{\"id\":" << predecessor->id << ",\"endpoint\":\""
        << net::endpoint_to_string(predecessor->endpoint) << "\"}";
  }
  oss << ",\"successors\":[";
  for (std::size_t i = 0; i < successors.size(); ++i) {
    if (i != 0) oss << ",";
    oss << "{\"id\":" << successors[i].id << ",\"endpoint\":\""
        << net::endpoint_to_string(successors[i].endpoint) << "\"}";
  }
  oss << "],\"aggregate_keys\":[";
  for (std::size_t i = 0; i < aggregate_keys.size(); ++i) {
    if (i != 0) oss << ",";
    oss << aggregate_keys[i];
  }
  oss << "],\"build\":{\"sha\":\"" << build_sha << "\",\"version\":\""
      << build_version << "\"}}";
  return oss.str();
}

}  // namespace dat::datd
