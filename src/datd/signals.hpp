#pragma once

namespace dat::datd {

/// Async-signal-safe shutdown latch shared by datd, dat_supervisor, datctl
/// and dat_chaos: install() points SIGINT/SIGTERM (and optionally more) at
/// a handler that records the signal number in a sig_atomic_t flag, and the
/// event loop polls consume_signal() at its own pace. Handlers stay
/// installed for the life of the process; a second delivery of the same
/// signal before the first is consumed is coalesced, and the default
/// disposition is NOT restored — an operator who wants to kill a wedged
/// process escalates to SIGKILL, which is exactly the abrupt path the chaos
/// supervisor exercises.
void install_signal_guard();

/// Last signal delivered since the previous consume, or 0. Clears the latch.
int consume_signal();

/// Last signal delivered since the previous consume, or 0. Leaves the latch
/// set — for "are we shutting down?" checks inside nested loops.
int pending_signal();

}  // namespace dat::datd
