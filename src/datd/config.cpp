#include "datd/config.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dat::datd {

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream input(csv);
  while (std::getline(input, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

net::Endpoint parse_endpoint(const std::string& hostport) {
  const auto colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= hostport.size()) {
    throw std::invalid_argument("bad endpoint \"" + hostport +
                                "\" (want a.b.c.d:port)");
  }
  unsigned octets[4] = {0, 0, 0, 0};
  char dot1 = 0;
  char dot2 = 0;
  char dot3 = 0;
  std::istringstream host(hostport.substr(0, colon));
  host >> octets[0] >> dot1 >> octets[1] >> dot2 >> octets[2] >> dot3 >>
      octets[3];
  if (!host || !host.eof() || dot1 != '.' || dot2 != '.' || dot3 != '.' ||
      octets[0] > 255 || octets[1] > 255 || octets[2] > 255 ||
      octets[3] > 255) {
    throw std::invalid_argument("bad endpoint host in \"" + hostport + "\"");
  }
  unsigned long port = 0;
  try {
    port = std::stoul(hostport.substr(colon + 1));
  } catch (const std::exception&) {
    throw std::invalid_argument("bad endpoint port in \"" + hostport + "\"");
  }
  if (port == 0 || port > 65535) {
    throw std::invalid_argument("endpoint port out of range in \"" + hostport +
                                "\"");
  }
  const std::uint32_t ip = (octets[0] << 24) | (octets[1] << 16) |
                           (octets[2] << 8) | octets[3];
  return net::make_udp_endpoint(ip, static_cast<std::uint16_t>(port));
}

core::AggregateKind aggregate_kind_from_name(const std::string& name) {
  if (name == "sum") return core::AggregateKind::kSum;
  if (name == "count") return core::AggregateKind::kCount;
  if (name == "avg") return core::AggregateKind::kAvg;
  if (name == "min") return core::AggregateKind::kMin;
  if (name == "max") return core::AggregateKind::kMax;
  if (name == "variance") return core::AggregateKind::kVariance;
  if (name == "stddev") return core::AggregateKind::kStddev;
  if (name == "histogram") return core::AggregateKind::kHistogram;
  throw std::invalid_argument(
      "unknown aggregate kind \"" + name +
      "\" (valid: sum, count, avg, min, max, variance, stddev, histogram)");
}

chord::RoutingScheme routing_scheme_from_name(const std::string& name) {
  if (name == "balanced") return chord::RoutingScheme::kBalanced;
  if (name == "greedy") return chord::RoutingScheme::kGreedy;
  throw std::invalid_argument("unknown routing scheme \"" + name +
                              "\" (valid: balanced, greedy)");
}

obs::ExportFormat export_format_from_name(const std::string& name) {
  if (name == "prom" || name == "prometheus") {
    return obs::ExportFormat::kPrometheus;
  }
  if (name == "json") return obs::ExportFormat::kJson;
  throw std::invalid_argument("unknown metrics format \"" + name +
                              "\" (valid: prom, json)");
}

std::string Config::seeds_csv() const {
  std::string csv;
  for (const std::string& s : seeds) {
    if (!csv.empty()) csv += ',';
    csv += s;
  }
  return csv;
}

CliFlags Config::make_flags() const {
  const char* kind_name = core::to_string(kind);
  const char* scheme_name = chord::to_string(scheme);
  CliFlags flags;
  flags.flag("config", std::string(), "config file (key value lines)")
      .flag("bits", static_cast<std::int64_t>(bits), "identifier-space bits")
      .flag("port", static_cast<std::int64_t>(port),
            "UDP port to bind (0 = OS-assigned)")
      .flag("create", create, "bootstrap a fresh ring instead of joining")
      .flag("seeds", seeds_csv(), "comma-separated ip:port join targets")
      .flag("backend", backend,
            "net backend: poll|netio (empty = DAT_NET_BACKEND or poll)")
      .flag("seed", static_cast<std::int64_t>(seed), "rng seed")
      .flag("incarnation", static_cast<std::int64_t>(incarnation),
            "restart generation (supervisor-managed)")
      .flag("join-attempts", static_cast<std::int64_t>(join_attempts),
            "bootstrap attempts across the seed list before giving up")
      .flag("backoff-base-ms", static_cast<std::int64_t>(backoff_base_ms),
            "decorrelated-jitter backoff base")
      .flag("backoff-cap-ms", static_cast<std::int64_t>(backoff_cap_ms),
            "decorrelated-jitter backoff cap")
      .flag("aggregate", aggregate, "aggregate attribute name")
      .flag("replicas", static_cast<std::int64_t>(replicas),
            "replica trees per aggregate")
      .flag("kind", std::string(kind_name),
            "aggregate kind: sum|count|avg|min|max|variance|stddev|histogram")
      .flag("scheme", std::string(scheme_name),
            "parent-selection scheme: balanced|greedy")
      .flag("value", value, "this node's local value x_i")
      .flag("epoch-ms", static_cast<std::int64_t>(epoch_ms),
            "continuous push period")
      .flag("drain-deadline-ms",
            static_cast<std::int64_t>(drain_deadline_ms),
            "SIGTERM graceful-drain hard deadline")
      .flag("handoff-ttl-ms", static_cast<std::int64_t>(handoff_ttl_ms),
            "drain handoff redirect freshness")
      .flag("metrics-out", metrics_out,
            "periodic metrics dump path (empty = disabled)")
      .flag("metrics-period-ms",
            static_cast<std::int64_t>(metrics_period_ms),
            "metrics dump period")
      .flag("metrics-format",
            std::string(metrics_format == obs::ExportFormat::kJson ? "json"
                                                                   : "prom"),
            "metrics dump format: prom|json")
      .flag("metrics-chunk", static_cast<std::int64_t>(metrics_chunk),
            "datd.metrics reply chunk size (bytes)")
      .flag("selfmon", selfmon,
            "publish own telemetry into selfmon meta-trees")
      .flag("selfmon-epoch-ms", static_cast<std::int64_t>(selfmon_epoch_ms),
            "self-monitoring telemetry epoch")
      .flag("fleet-size", static_cast<std::int64_t>(fleet_size),
            "configured fleet size for coverage SLO rules (0 = unknown)")
      .flag("slo-rules", slo_rules,
            "SLO ruleset file (empty = built-in defaults)")
      .flag("postmortem-dir", postmortem_dir,
            "crash-dump directory (empty = disabled)");
  return flags;
}

Config Config::from_flags(const CliFlags& flags) {
  Config config;
  const auto uint_flag = [&flags](const char* name, std::int64_t max_value) {
    const std::int64_t v = flags.get_int(name);
    if (v < 0 || v > max_value) {
      throw std::invalid_argument(std::string("--") + name +
                                  " out of range: " + std::to_string(v));
    }
    return static_cast<std::uint64_t>(v);
  };
  config.bits = static_cast<unsigned>(uint_flag("bits", 63));
  if (config.bits < 4) {
    throw std::invalid_argument("--bits must be in [4, 63]");
  }
  config.port = static_cast<std::uint16_t>(uint_flag("port", 65535));
  config.create = flags.get_bool("create");
  config.seeds = split_csv(flags.get_string("seeds"));
  config.backend = flags.get_string("backend");
  if (!config.backend.empty() && config.backend != "poll" &&
      config.backend != "legacy" && config.backend != "netio" &&
      config.backend != "epoll") {
    throw std::invalid_argument(
        "--backend \"" + config.backend +
        "\": unknown backend (valid: poll, legacy, netio, epoll)");
  }
  config.seed = uint_flag("seed", std::numeric_limits<std::int64_t>::max());
  config.incarnation =
      uint_flag("incarnation", std::numeric_limits<std::int64_t>::max());
  config.join_attempts =
      static_cast<unsigned>(uint_flag("join-attempts", 1'000'000));
  if (config.join_attempts == 0) {
    throw std::invalid_argument("--join-attempts must be positive");
  }
  config.backoff_base_ms = uint_flag("backoff-base-ms", 3'600'000);
  config.backoff_cap_ms = uint_flag("backoff-cap-ms", 3'600'000);
  if (config.backoff_base_ms == 0 ||
      config.backoff_cap_ms < config.backoff_base_ms) {
    throw std::invalid_argument(
        "--backoff-cap-ms must be >= --backoff-base-ms >= 1");
  }
  config.aggregate = flags.get_string("aggregate");
  if (config.aggregate.empty()) {
    throw std::invalid_argument("--aggregate must be non-empty");
  }
  config.replicas = static_cast<unsigned>(uint_flag("replicas", 64));
  if (config.replicas == 0) {
    throw std::invalid_argument("--replicas must be positive");
  }
  config.kind = aggregate_kind_from_name(flags.get_string("kind"));
  config.scheme = routing_scheme_from_name(flags.get_string("scheme"));
  config.value = flags.get_double("value");
  config.epoch_ms = uint_flag("epoch-ms", 3'600'000);
  if (config.epoch_ms == 0) {
    throw std::invalid_argument("--epoch-ms must be positive");
  }
  config.drain_deadline_ms = uint_flag("drain-deadline-ms", 3'600'000);
  config.handoff_ttl_ms = uint_flag("handoff-ttl-ms", 86'400'000);
  config.metrics_out = flags.get_string("metrics-out");
  config.metrics_period_ms = uint_flag("metrics-period-ms", 3'600'000);
  if (config.metrics_period_ms == 0) {
    throw std::invalid_argument("--metrics-period-ms must be positive");
  }
  config.metrics_format =
      export_format_from_name(flags.get_string("metrics-format"));
  config.metrics_chunk = uint_flag("metrics-chunk", 60'000);
  if (config.metrics_chunk < 256) {
    throw std::invalid_argument("--metrics-chunk must be in [256, 60000]");
  }
  config.selfmon = flags.get_bool("selfmon");
  config.selfmon_epoch_ms = uint_flag("selfmon-epoch-ms", 3'600'000);
  if (config.selfmon_epoch_ms == 0) {
    throw std::invalid_argument("--selfmon-epoch-ms must be positive");
  }
  config.fleet_size = uint_flag("fleet-size", 1'000'000);
  config.slo_rules = flags.get_string("slo-rules");
  config.postmortem_dir = flags.get_string("postmortem-dir");
  if (!config.create && config.seeds.empty()) {
    throw std::invalid_argument(
        "need --create (bootstrap a ring) or --seeds (join one)");
  }
  // Every seed must parse now: a daemon that would only discover a typo
  // after its backoff budget is a deployment error, not a retry case.
  for (const std::string& s : config.seeds) (void)parse_endpoint(s);
  return config;
}

void Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open config file: " + path);
  }
  // The file reuses the flag machinery: each "key value" line becomes
  // --key=value, so the two surfaces can never drift apart.
  std::vector<std::string> args;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    std::string rest;
    fields >> key;
    std::getline(fields, rest);
    const auto value_start = rest.find_first_not_of(" \t");
    rest = value_start == std::string::npos ? "" : rest.substr(value_start);
    const auto value_end = rest.find_last_not_of(" \t\r");
    if (value_end != std::string::npos) rest = rest.substr(0, value_end + 1);
    if (key == "config") {
      throw std::invalid_argument("config files cannot nest: " + line);
    }
    args.push_back("--" + key + (rest.empty() ? "" : "=" + rest));
  }
  CliFlags flags = make_flags();
  if (!flags.parse(args)) {
    throw std::invalid_argument("config file " + path + ": " + flags.error());
  }
  *this = from_flags(flags);
}

}  // namespace dat::datd
