#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "chord/node.hpp"
#include "common/id_space.hpp"
#include "dat/dat_node.hpp"
#include "dat/replicated.hpp"
#include "datd/config.hpp"
#include "datd/status.hpp"
#include "net/node_host.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/selfmon.hpp"

namespace dat::datd {

/// One deployable DAT/Chord node: the object behind the `datd` binary. Owns
/// a socket-backed network (poll or netio, runtime-selected), one chord
/// node with its DAT layer and a ReplicatedAggregate workload, the admin
/// RPC surface (`datd.status` / `datd.metrics` / `datd.leave` /
/// `datd.rebalance` / `datd.alerts` / `datd.fleet`), the periodic metrics
/// dump, the self-monitoring meta-trees and the crash postmortem hook.
///
/// Lifecycle: construct → bootstrap() (create a ring or join one with
/// capped decorrelated-jitter retry across the seed list) → run() until a
/// signal or a remote leave request, then graceful degradation: drain the
/// DAT trees (handoffs + retracts), leave the ring cleanly, and exit 0 —
/// or exit 1 if the drain deadline expires first.
class Daemon {
 public:
  explicit Daemon(Config config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket, creates/joins the ring, starts the workload. False
  /// when every join attempt failed (the process should exit non-zero).
  [[nodiscard]] bool bootstrap();

  /// Pumps the event loop until SIGTERM/SIGINT or a `datd.leave` request,
  /// then drains. Returns the process exit code: 0 for a drain that beat
  /// the deadline, 1 when the hard deadline forced an abrupt exit.
  int run();

  /// The SIGTERM path, callable directly (tests): drain trees, retract,
  /// leave the ring, flush metrics — all under the configured hard
  /// deadline. Returns true if everything completed in time.
  bool drain();

  [[nodiscard]] StatusInfo status() const;
  [[nodiscard]] obs::MetricsSnapshot telemetry_snapshot() const;
  void dump_metrics() const;

  [[nodiscard]] chord::Node& node() { return *node_; }
  [[nodiscard]] core::DatNode& dat() { return *dat_; }
  /// Null when --selfmon=false or before bootstrap().
  [[nodiscard]] obs::SelfMonitor* selfmon() { return selfmon_.get(); }
  [[nodiscard]] net::NodeHostNetwork& network() { return *network_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] net::Endpoint local() const { return transport_->local(); }

 private:
  void register_admin_handlers();
  [[nodiscard]] bool join_with_retry();

  Config config_;
  IdSpace space_;
  /// Daemon-scope instruments (reactor shards, process runtime); merged
  /// with the node registry in telemetry_snapshot().
  obs::MetricsRegistry metrics_;
  std::unique_ptr<net::NodeHostNetwork> network_;
  net::Transport* transport_ = nullptr;
  std::unique_ptr<chord::Node> node_;
  std::unique_ptr<core::DatNode> dat_;
  std::unique_ptr<core::ReplicatedAggregate> aggregate_;
  /// Declared after dat_ so in-flight meta-tree callbacks die first.
  std::unique_ptr<obs::SelfMonitor> selfmon_;
  std::unique_ptr<obs::ProcessRuntime> runtime_;
  bool serving_ = true;
  bool leave_requested_ = false;
  bool postmortem_installed_ = false;
  mutable std::uint64_t last_dump_us_ = 0;
  /// datd.metrics page cache: one rendered snapshot served across the
  /// chunked continuation requests of a single scrape generation.
  std::uint64_t metrics_gen_ = 0;
  std::string metrics_page_;
};

}  // namespace dat::datd
