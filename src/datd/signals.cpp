#include "datd/signals.hpp"

#include <csignal>

namespace dat::datd {

namespace {
// The only kind of object a signal handler may touch. One latch per
// process: the daemons are single-threaded event loops, and the tools only
// ever want "stop soon".
volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }
}  // namespace

void install_signal_guard() {
  struct sigaction action {};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a blocking poll/epoll wait must come back with EINTR so
  // the loop notices the latch promptly. Every recv path already treats
  // EINTR as a retry.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // A closed datctl pipe must not kill a daemon mid-reply.
  signal(SIGPIPE, SIG_IGN);
}

int consume_signal() {
  const int sig = g_signal;
  g_signal = 0;
  return sig;
}

int pending_signal() { return g_signal; }

}  // namespace dat::datd
