#include "datd/daemon.hpp"

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "datd/signals.hpp"
#include "lb/drain.hpp"
#include "net/udp_transport.hpp"
#include "netio/netio_network.hpp"
#include "obs/export.hpp"
#include "obs/postmortem.hpp"

namespace dat::datd {

namespace {

constexpr std::uint64_t kPumpSliceUs = 50'000;
constexpr std::uint64_t kJoinTimeoutUs = 3'000'000;
std::unique_ptr<net::NodeHostNetwork> make_network(
    const Config& config, obs::MetricsRegistry& metrics) {
  net::NetBackend backend = net::NetBackend::kPoll;
  if (config.backend.empty()) {
    backend = net::net_backend_from_env(net::NetBackend::kPoll);
  } else if (config.backend == "netio" || config.backend == "epoll") {
    backend = net::NetBackend::kNetio;
  }
  if (backend == net::NetBackend::kNetio) {
    netio::ReactorOptions reactor_options;
    reactor_options.metrics = &metrics;
    return std::make_unique<netio::NetioNetwork>(reactor_options);
  }
  return std::make_unique<net::UdpNetwork>();
}

/// The backend actually selected by make_network, as a dat_build_info label.
std::string resolved_backend(const Config& config) {
  net::NetBackend backend = net::NetBackend::kPoll;
  if (config.backend.empty()) {
    backend = net::net_backend_from_env(net::NetBackend::kPoll);
  } else if (config.backend == "netio" || config.backend == "epoll") {
    backend = net::NetBackend::kNetio;
  }
  return backend == net::NetBackend::kNetio ? "netio" : "poll";
}

}  // namespace

Daemon::Daemon(Config config)
    : config_(std::move(config)),
      space_(config_.bits),
      network_(make_network(config_, metrics_)) {
  transport_ = &network_->add_node(config_.port);
  chord::NodeOptions node_options;
  node_ = std::make_unique<chord::Node>(space_, *transport_, node_options,
                                        config_.seed);
  core::DatOptions dat_options;
  dat_options.epoch_us = config_.epoch_ms * 1000;
  dat_ = std::make_unique<core::DatNode>(*node_, dat_options);
  runtime_ = std::make_unique<obs::ProcessRuntime>(metrics_, config_.incarnation,
                                                   resolved_backend(config_));
  register_admin_handlers();
}

Daemon::~Daemon() {
  // Admin handlers capture `this`; the transport outlives the daemon object
  // only inside network_, which we own, but unregister anyway so a future
  // refactor that detaches the network cannot dispatch into freed memory.
  if (node_) {
    node_->rpc().unregister_method("datd.status");
    node_->rpc().unregister_method("datd.metrics");
    node_->rpc().unregister_method("datd.leave");
    node_->rpc().unregister_method("datd.rebalance");
    node_->rpc().unregister_method("datd.alerts");
    node_->rpc().unregister_method("datd.fleet");
  }
  if (postmortem_installed_) obs::Postmortem::uninstall();
}

bool Daemon::bootstrap() {
  if (config_.create) {
    node_->create();
  } else if (!join_with_retry()) {
    return false;
  }
  aggregate_ = std::make_unique<core::ReplicatedAggregate>(
      *dat_, config_.aggregate, config_.replicas, config_.kind,
      config_.scheme);
  const double value = config_.value;
  aggregate_->start([value] { return value; });
  if (config_.selfmon) {
    obs::SelfMonitorOptions options;
    options.epoch_us = config_.selfmon_epoch_ms * 1000;
    options.fleet_size = config_.fleet_size;
    options.scheme = config_.scheme;
    if (!config_.slo_rules.empty()) {
      std::ifstream rules_in(config_.slo_rules);
      if (!rules_in) {
        std::fprintf(stderr, "datd: cannot open --slo-rules %s\n",
                     config_.slo_rules.c_str());
        return false;
      }
      std::ostringstream text;
      text << rules_in.rdbuf();
      options.rules = obs::SloRuleset::parse(text.str());
    }
    selfmon_ = std::make_unique<obs::SelfMonitor>(*dat_, std::move(options));
  }
  if (!config_.postmortem_dir.empty()) {
    obs::Postmortem::Config pm;
    pm.directory = config_.postmortem_dir;
    pm.recorder = &node_->telemetry().recorder;
    pm.registry = &node_->telemetry().registry;
    postmortem_installed_ = obs::Postmortem::install(std::move(pm));
    if (!postmortem_installed_) {
      std::fprintf(stderr, "datd: postmortem install failed for %s\n",
                   config_.postmortem_dir.c_str());
    }
  }
  return true;
}

bool Daemon::join_with_retry() {
  // Capped decorrelated jitter (the PR-2 backoff shape): each delay is
  // uniform in [base, 3 * previous], clamped to the cap. A cold fleet of 64
  // daemons hammering one seed node decorrelates within a few rounds.
  Rng rng(config_.seed * 7919 + 17);
  std::uint64_t delay_ms = config_.backoff_base_ms;
  for (unsigned attempt = 0; attempt < config_.join_attempts; ++attempt) {
    const std::string& seed_name =
        config_.seeds[attempt % config_.seeds.size()];
    const net::Endpoint bootstrap_ep = parse_endpoint(seed_name);
    bool done = false;
    bool ok = false;
    node_->join(bootstrap_ep, [&](bool joined) {
      done = true;
      ok = joined;
    });
    network_->run_while([&] { return !done; }, kJoinTimeoutUs);
    if (ok) return true;
    // A timed-out join may still be in flight; fail() cancels it (pending
    // callbacks guard on alive_) so the next attempt starts clean.
    node_->fail();
    if (pending_signal() != 0) return false;
    if (attempt + 1 == config_.join_attempts) break;
    const std::uint64_t ceiling =
        std::max<std::uint64_t>(delay_ms * 3, config_.backoff_base_ms + 1);
    delay_ms = std::min(config_.backoff_cap_ms,
                        config_.backoff_base_ms +
                            rng.next_below(ceiling - config_.backoff_base_ms));
    network_->run_for(delay_ms * 1000);
  }
  return false;
}

int Daemon::run() {
  const std::uint64_t dump_period_us = config_.metrics_period_ms * 1000;
  last_dump_us_ = network_->now_us();
  for (;;) {
    network_->run_for(kPumpSliceUs);
    const int sig = consume_signal();
    if (sig == SIGINT || sig == SIGTERM || leave_requested_) {
      const bool clean = drain();
      dump_metrics();
      return clean ? 0 : 1;
    }
    if (network_->now_us() - last_dump_us_ >= dump_period_us) {
      dump_metrics();
      // Keep the crash dump's pre-rendered body current: the handler can
      // only splice in what was rendered before the signal hit.
      if (postmortem_installed_) obs::Postmortem::refresh();
      last_dump_us_ = network_->now_us();
    }
  }
}

bool Daemon::drain() {
  serving_ = false;
  const std::uint64_t deadline =
      network_->now_us() + config_.drain_deadline_ms * 1000;
  const auto remaining = [&]() -> std::uint64_t {
    const std::uint64_t now = network_->now_us();
    return now >= deadline ? 0 : deadline - now;
  };

  // Re-parent every subtree upstream and retract our soft-state records;
  // the entries stay in the table (draining) so stragglers get redirects.
  // ReplicatedAggregate::stop() is deliberately NOT called first — it would
  // erase the entries before they could hand their children off.
  lb::PolicyOptions policy;
  policy.handoff_ttl_us = config_.handoff_ttl_ms * 1000;
  (void)lb::drain_node(*dat_, policy);

  // Let the handoffs, retracts and the children's first re-parented pushes
  // flush — bounded by the hard deadline.
  const std::uint64_t settle_us = std::min<std::uint64_t>(
      remaining(), 2 * config_.epoch_ms * 1000 + 100'000);
  if (settle_us == 0) return false;
  network_->run_for(settle_us);

  if (remaining() == 0) return false;
  node_->leave();
  network_->run_for(std::min<std::uint64_t>(remaining(), 100'000));
  return remaining() > 0;
}

StatusInfo Daemon::status() const {
  StatusInfo info;
  info.pid = static_cast<std::uint64_t>(::getpid());
  info.incarnation = runtime_->incarnation();
  info.uptime_us = runtime_->uptime_us();
  info.serving = serving_ && !dat_->draining();
  info.joined = node_->joined();
  info.self = node_->self();
  info.predecessor = node_->predecessor();
  info.successors = node_->successor_list();
  // Only the payload replica trees: the supervisor's conservation SLO
  // (count == fleet, sum == Σ slot values) holds for these, not for the
  // self-monitoring meta-trees that also live in the DAT table.
  info.aggregate_keys = aggregate_ ? aggregate_->keys()
                                   : std::vector<Id>(dat_->active_keys());
  info.build_sha = obs::build_sha();
  info.build_version = obs::build_version();
  return info;
}

obs::MetricsSnapshot Daemon::telemetry_snapshot() const {
  obs::MetricsSnapshot snapshot = node_->telemetry().registry.snapshot();
  snapshot.merge(metrics_.snapshot());
  return snapshot;
}

void Daemon::dump_metrics() const {
  if (config_.metrics_out.empty()) return;
  const std::string rendered =
      obs::render(telemetry_snapshot(), config_.metrics_format);
  // Write-then-rename so a concurrent scraper never reads a torn file.
  const std::string tmp = config_.metrics_out + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << rendered;
  }
  (void)std::rename(tmp.c_str(), config_.metrics_out.c_str());
}

void Daemon::register_admin_handlers() {
  net::RpcManager& rpc = node_->rpc();
  rpc.register_method("datd.status", [this](net::Endpoint, net::Reader&,
                                            net::Writer& reply) {
    status().encode(reply);
  });
  // Chunked scrape: `(format, seq, gen)` in, `(gen, total, seq, chunk)` out.
  // seq 0 renders a fresh page and starts a new generation; continuation
  // requests replay slices of that cached page. A stale `gen` (the page was
  // re-rendered for another scraper meanwhile) answers total=0 and the
  // client restarts from seq 0.
  rpc.register_method("datd.metrics", [this](net::Endpoint, net::Reader& req,
                                             net::Writer& reply) {
    const obs::ExportFormat format = req.u8() == 0
                                         ? obs::ExportFormat::kJson
                                         : obs::ExportFormat::kPrometheus;
    const std::uint32_t seq = req.u32();
    const std::uint64_t gen = req.u64();
    if (seq == 0) {
      metrics_page_ = obs::render(telemetry_snapshot(), format);
      ++metrics_gen_;
    } else if (gen != metrics_gen_) {
      reply.u64(metrics_gen_);
      reply.u32(0);
      reply.u32(seq);
      reply.str(std::string());
      return;
    }
    const std::size_t chunk = config_.metrics_chunk;
    const std::uint32_t total = static_cast<std::uint32_t>(
        metrics_page_.empty() ? 1
                              : (metrics_page_.size() + chunk - 1) / chunk);
    reply.u64(metrics_gen_);
    reply.u32(total);
    reply.u32(seq);
    const std::size_t offset = static_cast<std::size_t>(seq) * chunk;
    reply.str(offset >= metrics_page_.size()
                  ? std::string()
                  : metrics_page_.substr(offset, chunk));
  });
  rpc.register_method("datd.alerts", [this](net::Endpoint, net::Reader&,
                                            net::Writer& reply) {
    reply.boolean(selfmon_ != nullptr);
    obs::write_alerts(reply, selfmon_ ? selfmon_->alerts()
                                      : std::vector<obs::Alert>{});
  });
  rpc.register_method("datd.fleet", [this](net::Endpoint, net::Reader&,
                                           net::Writer& reply) {
    reply.boolean(selfmon_ != nullptr);
    if (selfmon_) obs::write_fleet_view(reply, selfmon_->view());
  });
  rpc.register_method("datd.leave", [this](net::Endpoint, net::Reader&,
                                           net::Writer& reply) {
    // Ack first; run() notices the flag on its next pump slice, after the
    // reply has left the socket.
    leave_requested_ = true;
    reply.boolean(true);
  });
  rpc.register_method("datd.rebalance", [this](net::Endpoint, net::Reader&,
                                               net::Writer& reply) {
    lb::PolicyOptions policy;
    policy.handoff_ttl_us = config_.handoff_ttl_ms * 1000;
    std::uint64_t moved = 0;
    for (const Id key : dat_->active_keys()) {
      moved += dat_->shed_children(key, policy.max_branching,
                                   policy.handoff_ttl_us);
    }
    reply.u64(moved);
  });
}

}  // namespace dat::datd
