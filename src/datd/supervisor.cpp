#include "datd/supervisor.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include <cstdio>

#include "datd/signals.hpp"
#include "net/endpoint.hpp"
#include "obs/postmortem.hpp"

namespace dat::datd {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ms_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
}

/// Sleeps in small slices so a latched SIGINT interrupts a long gap between
/// plan events within ~100ms instead of at the next event.
void sleep_ms_interruptible(std::uint64_t ms) {
  while (ms > 0 && pending_signal() == 0) {
    const std::uint64_t slice = std::min<std::uint64_t>(ms, 100);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    ms -= slice;
  }
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {}

Supervisor::~Supervisor() { kill_all(); }

void Supervisor::note(const std::string& line) {
  report_.push_back(line);
  if (options_.verbose) std::cout << line << "\n" << std::flush;
}

void Supervisor::violation(const std::string& line) {
  ++violations_;
  note("VIOLATION: " + line);
}

bool Supervisor::interrupted() {
  if (!interrupted_ && pending_signal() != 0) {
    interrupted_ = true;
    note("interrupted: tearing the fleet down");
  }
  return interrupted_;
}

net::Endpoint Supervisor::slot_endpoint(std::size_t slot) const {
  return net::make_udp_endpoint(
      0x7F000001u, static_cast<std::uint16_t>(options_.base_port + slot));
}

std::vector<std::size_t> Supervisor::live_slots() const {
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive) live.push_back(i);
  }
  return live;
}

double Supervisor::expected_sum() const {
  double sum = 0.0;
  for (const Slot& slot : slots_) {
    if (slot.alive) sum += slot.value;
  }
  return sum;
}

bool Supervisor::spawn(std::size_t slot) {
  Slot& s = slots_[slot];
  std::vector<std::string> args;
  args.push_back(options_.datd_path);
  args.push_back("--port=" +
                 std::to_string(options_.base_port + slot));
  args.push_back("--seed=" +
                 std::to_string(options_.seed * 1000 + slot + 1));
  args.push_back("--incarnation=" + std::to_string(s.incarnation));
  args.push_back("--value=" + std::to_string(s.value));
  args.push_back("--aggregate=" + options_.aggregate);
  args.push_back("--replicas=" + std::to_string(options_.replicas));
  args.push_back("--epoch-ms=" + std::to_string(options_.epoch_ms));
  args.push_back("--drain-deadline-ms=" +
                 std::to_string(options_.drain_deadline_ms));
  args.push_back(std::string("--selfmon=") +
                 (options_.selfmon ? "true" : "false"));
  if (options_.selfmon) {
    args.push_back("--selfmon-epoch-ms=" +
                   std::to_string(options_.selfmon_epoch_ms));
    args.push_back("--fleet-size=" + std::to_string(slots_.size()));
  }
  if (!options_.postmortem_dir.empty()) {
    args.push_back("--postmortem-dir=" + options_.postmortem_dir);
  }
  if (slot == 0) {
    args.push_back("--create=true");
  } else {
    args.push_back("--seeds=127.0.0.1:" +
                   std::to_string(options_.base_port));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    violation("fork failed for slot " + std::to_string(slot));
    return false;
  }
  if (pid == 0) {
    ::execv(options_.datd_path.c_str(), argv.data());
    // Only reached when exec failed; the parent sees exit 127 on reap.
    std::_Exit(127);
  }
  s.pid = pid;
  s.alive = true;
  return true;
}

bool Supervisor::boot_fleet() {
  const Clock::time_point start = Clock::now();
  note("boot: spawning " + std::to_string(slots_.size()) +
       " daemons on 127.0.0.1:" + std::to_string(options_.base_port) + "-" +
       std::to_string(options_.base_port + slots_.size() - 1));
  if (!spawn(0)) return false;
  // Wait for the seed node before unleashing the joiners: every other slot
  // retries with backoff anyway, but a live seed keeps boot time flat.
  const Clock::time_point seed_deadline =
      start + std::chrono::milliseconds(options_.boot_timeout_ms);
  while (Clock::now() < seed_deadline && !interrupted()) {
    const auto status = admin_.status(slot_endpoint(0));
    if (status && status->joined) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.verify_poll_ms));
  }
  for (std::size_t i = 1; i < slots_.size() && !interrupted(); ++i) {
    if (!spawn(i)) return false;
  }
  // Fleet-up SLO: every daemon answers its health endpoint and reports a
  // joined ring within the boot window.
  while (!interrupted()) {
    std::size_t joined = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const auto status = admin_.status(slot_endpoint(i));
      if (status && status->joined) ++joined;
    }
    if (joined == slots_.size()) {
      note("boot: fleet up in " + std::to_string(ms_since(start)) + "ms");
      return true;
    }
    if (ms_since(start) > options_.boot_timeout_ms) {
      violation("boot: only " + std::to_string(joined) + "/" +
                std::to_string(slots_.size()) + " daemons joined within " +
                std::to_string(options_.boot_timeout_ms) + "ms");
      return false;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.verify_poll_ms));
  }
  return false;
}

void Supervisor::kill_abrupt(std::size_t slot) {
  Slot& s = slots_[slot];
  if (!s.alive) return;
  ::kill(static_cast<pid_t>(s.pid), SIGKILL);
  int status = 0;
  ::waitpid(static_cast<pid_t>(s.pid), &status, 0);
  s.alive = false;
  note("sigkill: slot " + std::to_string(slot) + " (pid " +
       std::to_string(s.pid) + ")");
}

void Supervisor::abort_crash(std::size_t slot) {
  Slot& s = slots_[slot];
  if (!s.alive) return;
  ::kill(static_cast<pid_t>(s.pid), SIGABRT);
  int status = 0;
  ::waitpid(static_cast<pid_t>(s.pid), &status, 0);
  s.alive = false;
  if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGABRT) {
    violation("sigabrt: slot " + std::to_string(slot) +
              " did not die by SIGABRT (raw status " +
              std::to_string(status) + ")");
  } else {
    note("sigabrt: slot " + std::to_string(slot) + " (pid " +
         std::to_string(s.pid) + ")");
  }
  archive_postmortem(slot, /*expected=*/true);
}

void Supervisor::archive_postmortem(std::size_t slot, bool expected) {
  if (options_.postmortem_dir.empty()) return;
  const Slot& s = slots_[slot];
  const std::string src = options_.postmortem_dir + "/" +
                          obs::postmortem_file_name(s.pid);
  const std::string dst = options_.postmortem_dir +
                          "/archived-postmortem-slot" + std::to_string(slot) +
                          "-" + std::to_string(s.pid) + ".json";
  if (std::rename(src.c_str(), dst.c_str()) == 0) {
    note("postmortem: slot " + std::to_string(slot) + " dump archived as " +
         dst);
  } else if (expected) {
    violation("postmortem: slot " + std::to_string(slot) +
              " left no dump at " + src);
  }
}

void Supervisor::term_graceful(std::size_t slot) {
  Slot& s = slots_[slot];
  if (!s.alive) return;
  const double parting_value = s.value;
  const Clock::time_point start = Clock::now();
  ::kill(static_cast<pid_t>(s.pid), SIGTERM);
  // Exit-code SLO: a drained daemon must exit 0 within its hard deadline
  // (plus scheduling margin) — exit 1 means the drain blew the deadline.
  const std::uint64_t wait_ms = options_.drain_deadline_ms + 3000;
  int status = 0;
  bool reaped = false;
  while (ms_since(start) <= wait_ms) {
    const pid_t r =
        ::waitpid(static_cast<pid_t>(s.pid), &status, WNOHANG);
    if (r == static_cast<pid_t>(s.pid)) {
      reaped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!reaped) {
    ::kill(static_cast<pid_t>(s.pid), SIGKILL);
    ::waitpid(static_cast<pid_t>(s.pid), &status, 0);
    violation("sigterm: slot " + std::to_string(slot) +
              " did not exit within " + std::to_string(wait_ms) + "ms");
  } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    violation("sigterm: slot " + std::to_string(slot) + " exited " +
              (WIFEXITED(status)
                   ? std::to_string(WEXITSTATUS(status))
                   : std::string("by signal ") +
                         std::to_string(WTERMSIG(status))) +
              " instead of 0");
  } else {
    note("sigterm: slot " + std::to_string(slot) + " drained (value " +
         std::to_string(parting_value) + " retired) and exited 0 in " +
         std::to_string(ms_since(start)) + "ms");
  }
  s.alive = false;
}

void Supervisor::restart_slot(std::size_t slot) {
  Slot& s = slots_[slot];
  if (s.alive) kill_abrupt(slot);
  ++s.incarnation;
  if (spawn(slot)) {
    note("restart: slot " + std::to_string(slot) + " respawned (pid " +
         std::to_string(s.pid) + ", incarnation " +
         std::to_string(s.incarnation) + ")");
  }
}

void Supervisor::rebalance_fleet() {
  std::uint64_t moved = 0;
  for (const std::size_t slot : live_slots()) {
    moved += admin_.rebalance(slot_endpoint(slot)).value_or(0);
  }
  note("rebalance: " + std::to_string(moved) + " children moved");
}

bool Supervisor::verify_phase(std::size_t phase) {
  const Clock::time_point start = Clock::now();
  const std::vector<std::size_t> live = live_slots();
  std::string failing = "no poll completed";
  while (!interrupted()) {
    failing.clear();
    // 1. Health: every live daemon answers, is joined, and reports the
    //    incarnation the supervisor expects (restart identity).
    std::vector<StatusInfo> statuses;
    statuses.reserve(live.size());
    for (const std::size_t slot : live) {
      auto status = admin_.status(slot_endpoint(slot));
      if (!status || !status->joined) {
        failing = "health: slot " + std::to_string(slot) +
                  (status ? " not joined" : " not answering");
        break;
      }
      if (status->incarnation != slots_[slot].incarnation) {
        failing = "identity: slot " + std::to_string(slot) +
                  " reports incarnation " +
                  std::to_string(status->incarnation) + ", expected " +
                  std::to_string(slots_[slot].incarnation);
        break;
      }
      statuses.push_back(std::move(*status));
    }
    // 2. Ring: successor pointers of the live set form one cycle.
    if (failing.empty()) {
      std::vector<const StatusInfo*> ring;
      ring.reserve(statuses.size());
      for (const StatusInfo& s : statuses) ring.push_back(&s);
      std::sort(ring.begin(), ring.end(),
                [](const StatusInfo* a, const StatusInfo* b) {
                  return a->self.id < b->self.id;
                });
      for (std::size_t i = 0; i < ring.size(); ++i) {
        const StatusInfo* node = ring[i];
        const StatusInfo* next = ring[(i + 1) % ring.size()];
        if (node->successors.empty() ||
            node->successors.front().endpoint != next->self.endpoint) {
          failing = "ring: successor of id " + std::to_string(node->self.id) +
                    " is not the next live id";
          break;
        }
      }
    }
    // 3. Coverage + conservation: every replica tree has a root whose
    //    global counts exactly the live fleet and sums exactly the live
    //    slots' values (slot i contributes i+1 — an exact-sum invariant).
    if (failing.empty() && !statuses.empty()) {
      const double want_sum = expected_sum();
      for (const std::uint64_t key : statuses.front().aggregate_keys) {
        bool key_ok = false;
        std::string key_state = "no root answered";
        for (const std::size_t slot : live) {
          const auto global = admin_.global_at(slot_endpoint(slot), key);
          if (!global) continue;
          if (global->state.count != live.size()) {
            key_state = "count " + std::to_string(global->state.count) +
                        " != live " + std::to_string(live.size());
            continue;
          }
          if (std::abs(global->state.sum - want_sum) > 1e-6) {
            key_state = "sum " + std::to_string(global->state.sum) +
                        " != expected " + std::to_string(want_sum);
            continue;
          }
          key_ok = true;
          break;
        }
        if (!key_ok) {
          failing = "aggregate key " + std::to_string(key) + ": " + key_state;
          break;
        }
      }
    }
    // 4. Scrape: the telemetry endpoint itself serves a metrics page.
    if (failing.empty()) {
      const auto page =
          admin_.metrics(slot_endpoint(live.front()),
                         obs::ExportFormat::kPrometheus);
      if (!page || page->find("dat_daemon_uptime_us") == std::string::npos) {
        failing = "scrape: slot " + std::to_string(live.front()) +
                  " metrics page missing dat_daemon_uptime_us";
      }
    }
    // 5. Alerts: the probe node's self-monitor must report the coverage
    //    alert firing iff part of the fleet is down (fleet size is the slot
    //    count every child was launched with).
    if (failing.empty() && options_.check_alerts) {
      const bool expect_firing = live.size() < slots_.size();
      const auto alerts = admin_.alerts(slot_endpoint(live.front()));
      if (!alerts) {
        failing = "alerts: slot " + std::to_string(live.front()) +
                  " has no self-monitor to probe";
      } else {
        bool firing = false;
        for (const obs::Alert& alert : *alerts) {
          if (alert.rule == "coverage" && alert.firing) firing = true;
        }
        if (firing != expect_firing) {
          failing = std::string("alerts: coverage alert ") +
                    (firing ? "firing" : "clear") + ", expected " +
                    (expect_firing ? "firing" : "clear");
        }
      }
    }
    if (failing.empty()) {
      note("verify " + std::to_string(phase) + ": SLOs met in " +
           std::to_string(ms_since(start)) + "ms (" +
           std::to_string(live.size()) + " live)");
      return true;
    }
    if (ms_since(start) > options_.verify_window_ms) {
      violation("verify " + std::to_string(phase) + ": SLO window (" +
                std::to_string(options_.verify_window_ms) +
                "ms) expired; last failure: " + failing);
      return false;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.verify_poll_ms));
  }
  return false;
}

void Supervisor::kill_all() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.alive) continue;
    ::kill(static_cast<pid_t>(s.pid), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<pid_t>(s.pid), &status, 0);
    s.alive = false;
  }
}

int Supervisor::run(const chaos::ChaosPlan& plan) {
  install_signal_guard();
  if (plan.nodes != options_.nodes) {
    note("plan targets " + std::to_string(plan.nodes) +
         " nodes; overriding --nodes=" + std::to_string(options_.nodes));
  }
  slots_.assign(plan.nodes, Slot{});
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].value = static_cast<double>(i + 1);
  }
  chaos::ChaosPlan ordered = plan;
  ordered.sort_events();
  note("plan: seed " + std::to_string(ordered.seed) + ", " +
       std::to_string(ordered.events.size()) + " events, " +
       std::to_string(ordered.phases()) + " verify phases");

  if (!boot_fleet()) {
    kill_all();
    return interrupted_ ? 130 : 1;
  }

  const Clock::time_point t0 = Clock::now();
  std::size_t phase = 0;
  for (const chaos::FaultEvent& event : ordered.events) {
    const std::uint64_t due_ms = event.at_us / 1000;
    const std::uint64_t now_ms = ms_since(t0);
    if (due_ms > now_ms) sleep_ms_interruptible(due_ms - now_ms);
    if (interrupted()) break;
    switch (event.kind) {
      case chaos::FaultKind::kSigkill:
      case chaos::FaultKind::kCrash:
        kill_abrupt(event.slot);
        break;
      case chaos::FaultKind::kSigabrt:
        abort_crash(event.slot);
        break;
      case chaos::FaultKind::kSigterm:
      case chaos::FaultKind::kLeave:
        term_graceful(event.slot);
        break;
      case chaos::FaultKind::kRestart:
        restart_slot(event.slot);
        break;
      case chaos::FaultKind::kVerify:
        (void)verify_phase(++phase);
        break;
      case chaos::FaultKind::kRebalance:
        rebalance_fleet();
        break;
      default:
        note("skipping " + event.describe() +
             " (not supported against real processes)");
        break;
    }
  }

  kill_all();
  const std::string verdict =
      interrupted_
          ? "interrupted"
          : (violations_ == 0 ? "all SLOs met"
                              : std::to_string(violations_) + " violations");
  note("done: " + verdict);
  if (!options_.report_path.empty()) {
    std::ofstream out(options_.report_path, std::ios::trunc);
    for (const std::string& line : report_) out << line << "\n";
  }
  if (interrupted_) return 130;
  return violations_ == 0 ? 0 : 1;
}

}  // namespace dat::datd
