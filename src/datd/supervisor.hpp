#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/plan.hpp"
#include "datd/admin.hpp"

namespace dat::datd {

/// Knobs of one supervised datd fleet run.
struct SupervisorOptions {
  std::size_t nodes = 64;          ///< fleet size (>= 8 for process plans)
  std::uint16_t base_port = 9400;  ///< slot i binds 127.0.0.1:base_port+i
  std::string datd_path;           ///< path to the datd binary (required)
  std::uint64_t seed = 1;          ///< forwarded into per-slot rng seeds
  std::string aggregate = "cpu-usage";
  unsigned replicas = 2;
  std::uint64_t epoch_ms = 150;           ///< child push period
  std::uint64_t drain_deadline_ms = 5000; ///< child SIGTERM hard deadline
  std::uint64_t boot_timeout_ms = 60'000; ///< fleet-up SLO
  std::uint64_t verify_window_ms = 15'000;  ///< per-verify recovery SLO
  std::uint64_t verify_poll_ms = 250;
  std::string report_path;  ///< optional: write the report here too
  bool verbose = true;      ///< stream report lines to stdout as they happen
  /// Self-monitoring knobs forwarded to every child (--fleet-size is always
  /// the fleet's slot count).
  bool selfmon = true;
  std::uint64_t selfmon_epoch_ms = 500;
  /// Alert SLO gate: at every verify, the probe node's coverage alert must
  /// be firing iff slots are down. Needs selfmon.
  bool check_alerts = false;
  /// Children install crash postmortems here (empty = disabled); after a
  /// child dies by signal the supervisor archives its dump as
  /// postmortem-<pid>.json -> archived-postmortem-slot<i>-<pid>.json.
  std::string postmortem_dir;
};

/// The process-level chaos harness: forks a fleet of real datd daemons on
/// loopback, executes a seeded ChaosPlan against their PIDs (SIGKILL =
/// crash, SIGTERM = graceful drain, restart = respawn with a bumped
/// incarnation), and at every verify point scrapes the fleet's telemetry
/// until the recovery SLOs hold:
///
///   ring       every live daemon joined, successor pointers form one cycle
///   coverage   some replica root's global counts exactly the live fleet
///   conserve   that global's sum equals the sum of live slots' values
///              (slot i contributes i+1) — a drained daemon's value left
///              the aggregate exactly once, a killed one's aged out
///   exit code  a SIGTERM'd daemon exits 0 within its drain deadline
///   identity   a restarted slot reports its new incarnation
///
/// Slot i's local value is i+1, so conservation is an exact-sum check, not
/// a tolerance band. run() returns 0 iff every phase met its SLOs.
class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();  ///< SIGKILLs any child still running

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Boots the fleet, executes `plan` by wall clock, tears the fleet down.
  /// Returns the process exit code: 0 all SLOs met, 1 violations, 130 when
  /// interrupted (SIGINT/SIGTERM latched mid-run).
  int run(const chaos::ChaosPlan& plan);

  [[nodiscard]] const std::vector<std::string>& report() const noexcept {
    return report_;
  }
  [[nodiscard]] std::size_t violations() const noexcept { return violations_; }

 private:
  struct Slot {
    long pid = -1;
    std::uint64_t incarnation = 0;
    bool alive = false;
    double value = 0.0;
  };

  [[nodiscard]] bool spawn(std::size_t slot);
  [[nodiscard]] bool boot_fleet();
  void kill_abrupt(std::size_t slot);          ///< SIGKILL + reap
  void abort_crash(std::size_t slot);          ///< SIGABRT + reap + archive
  void term_graceful(std::size_t slot);        ///< SIGTERM, assert exit 0
  /// Moves a reaped child's postmortem-<pid>.json into the archive name;
  /// counts a violation when a SIGABRT victim left none behind.
  void archive_postmortem(std::size_t slot, bool expected);
  void restart_slot(std::size_t slot);
  void rebalance_fleet();
  [[nodiscard]] bool verify_phase(std::size_t phase);
  void kill_all();
  [[nodiscard]] bool interrupted();

  void note(const std::string& line);
  void violation(const std::string& line);

  [[nodiscard]] net::Endpoint slot_endpoint(std::size_t slot) const;
  [[nodiscard]] std::vector<std::size_t> live_slots() const;
  [[nodiscard]] double expected_sum() const;

  SupervisorOptions options_;
  AdminClient admin_;
  std::vector<Slot> slots_;
  std::vector<std::string> report_;
  std::size_t violations_ = 0;
  bool interrupted_ = false;
};

}  // namespace dat::datd
