#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "dat/aggregate.hpp"
#include "dat/dat_node.hpp"
#include "datd/status.hpp"
#include "net/rpc.hpp"
#include "net/udp_transport.hpp"
#include "obs/export.hpp"
#include "obs/selfmon.hpp"

namespace dat::datd {

/// Synchronous RPC client for the datd admin surface, used by datctl's
/// remote subcommands and the chaos supervisor's SLO scraper. Owns a small
/// poll-backed network with one OS-assigned socket; every call pumps that
/// loop until the reply arrives or the deadline passes, so callers get
/// plain optionals instead of callbacks.
class AdminClient {
 public:
  /// `timeout_us` bounds each individual call (RPC retries included).
  explicit AdminClient(std::uint64_t timeout_us = 2'000'000);
  ~AdminClient();

  AdminClient(const AdminClient&) = delete;
  AdminClient& operator=(const AdminClient&) = delete;

  /// `datd.status`: the daemon's health snapshot.
  [[nodiscard]] std::optional<StatusInfo> status(net::Endpoint target);

  /// `datd.metrics`: the daemon's rendered telemetry page, reassembled from
  /// however many continuation datagrams the page spans.
  [[nodiscard]] std::optional<std::string> metrics(net::Endpoint target,
                                                   obs::ExportFormat format);

  /// `datd.alerts`: current SLO alert states. nullopt when the call failed
  /// or self-monitoring is disabled on the target.
  [[nodiscard]] std::optional<std::vector<obs::Alert>> alerts(
      net::Endpoint target);

  /// `datd.fleet`: the target's cached fleet view (meta-tree roots plus
  /// alerts). nullopt when the call failed or self-monitoring is disabled.
  [[nodiscard]] std::optional<obs::SelfMonitor::FleetView> fleet(
      net::Endpoint target);

  /// `datd.leave`: asks the daemon to drain and exit. True on ack.
  [[nodiscard]] bool leave(net::Endpoint target);

  /// `datd.rebalance`: one local shed round; children moved, if it answered.
  [[nodiscard]] std::optional<std::uint64_t> rebalance(net::Endpoint target);

  /// `dat.get_global` on `target` directly (no routing): the root's latest
  /// global for `key`. nullopt when the call failed or the target is not
  /// the root / has no global yet.
  [[nodiscard]] std::optional<core::GlobalValue> global_at(net::Endpoint target,
                                                           Id key);

 private:
  /// Pumps until `done`; true if the call completed (any status) in time.
  bool pump_until(const bool& done);

  std::uint64_t timeout_us_;
  net::UdpNetwork network_;
  net::Transport& transport_;
  std::unique_ptr<net::RpcManager> rpc_;
};

}  // namespace dat::datd
