#include "chaos/plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"

namespace dat::chaos {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kLeave:
      return "leave";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kLossBurst:
      return "loss";
    case FaultKind::kLatencyBurst:
      return "latency";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kVerify:
      return "verify";
    case FaultKind::kRebalance:
      return "rebalance";
    case FaultKind::kSigkill:
      return "sigkill";
    case FaultKind::kSigterm:
      return "sigterm";
    case FaultKind::kSigabrt:
      return "sigabrt";
  }
  return "?";
}

std::string FaultEvent::describe() const {
  std::ostringstream oss;
  oss << "t=" << at_us / 1000 << "ms " << to_string(kind);
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kLeave:
    case FaultKind::kRestart:
    case FaultKind::kPartition:
    case FaultKind::kHeal:
    case FaultKind::kSigkill:
    case FaultKind::kSigterm:
    case FaultKind::kSigabrt:
      oss << " slot=" << slot;
      break;
    case FaultKind::kLossBurst:
    case FaultKind::kLatencyBurst:
      oss << " x=" << magnitude << " for=" << duration_us / 1000 << "ms";
      break;
    case FaultKind::kVerify:
    case FaultKind::kRebalance:
      break;
  }
  return oss.str();
}

ChaosPlan& ChaosPlan::crash(std::uint64_t at_us, std::size_t slot) {
  events.push_back({at_us, FaultKind::kCrash, slot, 0.0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::leave(std::uint64_t at_us, std::size_t slot) {
  events.push_back({at_us, FaultKind::kLeave, slot, 0.0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::restart(std::uint64_t at_us, std::size_t slot) {
  events.push_back({at_us, FaultKind::kRestart, slot, 0.0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::loss_burst(std::uint64_t at_us, double rate,
                                 std::uint64_t duration_us) {
  events.push_back({at_us, FaultKind::kLossBurst, 0, rate, duration_us});
  return *this;
}

ChaosPlan& ChaosPlan::latency_burst(std::uint64_t at_us, double multiplier,
                                    std::uint64_t duration_us) {
  events.push_back(
      {at_us, FaultKind::kLatencyBurst, 0, multiplier, duration_us});
  return *this;
}

ChaosPlan& ChaosPlan::partition(std::uint64_t at_us, std::size_t slot) {
  events.push_back({at_us, FaultKind::kPartition, slot, 0.0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::heal(std::uint64_t at_us, std::size_t slot) {
  events.push_back({at_us, FaultKind::kHeal, slot, 0.0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::verify(std::uint64_t at_us) {
  events.push_back({at_us, FaultKind::kVerify, 0, 0.0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::rebalance(std::uint64_t at_us) {
  events.push_back({at_us, FaultKind::kRebalance, 0, 0.0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::sigkill(std::uint64_t at_us, std::size_t slot) {
  events.push_back({at_us, FaultKind::kSigkill, slot, 0.0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::sigterm(std::uint64_t at_us, std::size_t slot) {
  events.push_back({at_us, FaultKind::kSigterm, slot, 0.0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::sigabrt(std::uint64_t at_us, std::size_t slot) {
  events.push_back({at_us, FaultKind::kSigabrt, slot, 0.0, 0});
  return *this;
}

void ChaosPlan::sort_events() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_us < b.at_us;
                   });
}

std::size_t ChaosPlan::phases() const {
  std::size_t n = 0;
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kVerify) ++n;
  }
  return n;
}

std::string ChaosPlan::to_spec() const {
  std::ostringstream oss;
  oss << "seed " << seed << "\n";
  oss << "nodes " << nodes << "\n";
  // Only non-default assignment/mode lines are spelled out, keeping legacy
  // plans' parse -> to_spec round trips byte-identical.
  if (random_ids) oss << "assign random\n";
  if (process_mode) oss << "mode process\n";
  for (const FaultEvent& e : events) {
    oss << e.at_us / 1000 << " " << to_string(e.kind);
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kLeave:
      case FaultKind::kRestart:
      case FaultKind::kPartition:
      case FaultKind::kHeal:
      case FaultKind::kSigkill:
      case FaultKind::kSigterm:
      case FaultKind::kSigabrt:
        oss << " " << e.slot;
        break;
      case FaultKind::kLossBurst:
      case FaultKind::kLatencyBurst:
        oss << " " << e.magnitude << " " << e.duration_us / 1000;
        break;
      case FaultKind::kVerify:
      case FaultKind::kRebalance:
        break;
    }
    oss << "\n";
  }
  return oss.str();
}

namespace {

[[noreturn]] void bad_line(const std::string& line, const char* why) {
  throw std::invalid_argument(std::string("ChaosPlan::parse: ") + why +
                              " in line: \"" + line + "\"");
}

}  // namespace

ChaosPlan ChaosPlan::parse(std::string_view spec) {
  ChaosPlan plan;
  plan.events.clear();
  std::istringstream input{std::string(spec)};
  std::string line;
  bool seen_seed = false;
  bool seen_nodes = false;
  bool seen_assign = false;
  bool seen_mode = false;
  while (std::getline(input, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);

    std::string head;
    fields >> head;
    if (head == "seed") {
      if (seen_seed) bad_line(line, "duplicate seed");
      seen_seed = true;
      if (!(fields >> plan.seed)) bad_line(line, "bad seed");
      continue;
    }
    if (head == "nodes") {
      if (seen_nodes) bad_line(line, "duplicate nodes");
      seen_nodes = true;
      if (!(fields >> plan.nodes)) bad_line(line, "bad node count");
      if (plan.nodes == 0) bad_line(line, "node count must be positive");
      continue;
    }
    if (head == "assign") {
      if (seen_assign) bad_line(line, "duplicate assign");
      seen_assign = true;
      std::string mode;
      if (!(fields >> mode)) bad_line(line, "missing assignment mode");
      if (mode == "random") plan.random_ids = true;
      else if (mode == "probed") plan.random_ids = false;
      else bad_line(line, "unknown assignment mode");
      continue;
    }
    if (head == "mode") {
      if (seen_mode) bad_line(line, "duplicate mode");
      seen_mode = true;
      std::string mode;
      if (!(fields >> mode)) bad_line(line, "missing mode");
      if (mode == "process") plan.process_mode = true;
      else if (mode == "sim") plan.process_mode = false;
      else bad_line(line, "unknown mode");
      continue;
    }

    std::uint64_t at_ms = 0;
    try {
      at_ms = std::stoull(head);
    } catch (const std::exception&) {
      bad_line(line, "expected a millisecond timestamp");
    }
    const std::uint64_t at_us = at_ms * 1000;

    std::string verb;
    if (!(fields >> verb)) bad_line(line, "missing event verb");
    if (verb == "crash" || verb == "leave" || verb == "restart" ||
        verb == "partition" || verb == "heal" || verb == "sigkill" ||
        verb == "sigterm" || verb == "sigabrt") {
      std::size_t slot = 0;
      if (!(fields >> slot)) bad_line(line, "missing slot");
      if (verb == "crash") plan.crash(at_us, slot);
      else if (verb == "leave") plan.leave(at_us, slot);
      else if (verb == "restart") plan.restart(at_us, slot);
      else if (verb == "partition") plan.partition(at_us, slot);
      else if (verb == "sigkill") plan.sigkill(at_us, slot);
      else if (verb == "sigterm") plan.sigterm(at_us, slot);
      else if (verb == "sigabrt") plan.sigabrt(at_us, slot);
      else plan.heal(at_us, slot);
    } else if (verb == "loss" || verb == "latency") {
      double magnitude = 0.0;
      std::uint64_t duration_ms = 0;
      if (!(fields >> magnitude >> duration_ms)) {
        bad_line(line, "expected <magnitude> <duration_ms>");
      }
      if (verb == "loss") plan.loss_burst(at_us, magnitude, duration_ms * 1000);
      else plan.latency_burst(at_us, magnitude, duration_ms * 1000);
    } else if (verb == "verify") {
      plan.verify(at_us);
    } else if (verb == "rebalance") {
      plan.rebalance(at_us);
    } else {
      bad_line(line, "unknown event verb");
    }
  }
  // Victim slots can only be range-checked once the node count is final
  // (the `nodes` line may legally follow the events it governs).
  for (const FaultEvent& e : plan.events) {
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kLeave:
      case FaultKind::kRestart:
      case FaultKind::kPartition:
      case FaultKind::kHeal:
      case FaultKind::kSigkill:
      case FaultKind::kSigterm:
      case FaultKind::kSigabrt:
        if (e.slot >= plan.nodes) {
          throw std::invalid_argument(
              "ChaosPlan::parse: slot " + std::to_string(e.slot) +
              " out of range for " + std::to_string(plan.nodes) +
              " nodes in event: \"" + e.describe() + "\"");
        }
        break;
      case FaultKind::kLossBurst:
      case FaultKind::kLatencyBurst:
      case FaultKind::kVerify:
      case FaultKind::kRebalance:
        break;
    }
  }
  plan.sort_events();
  return plan;
}

ChaosPlan ChaosPlan::canonical(std::uint64_t seed, std::size_t nodes) {
  if (nodes < 4) {
    throw std::invalid_argument("ChaosPlan::canonical: need >= 4 nodes");
  }
  Rng rng(seed * 7919 + 17);
  // Distinct victim slots, excluding slot 0 so the verifier always has a
  // stable probe node (any slot may still crash in hand-written plans).
  const auto pick = [&](std::size_t avoid) {
    for (;;) {
      const auto slot = 1 + static_cast<std::size_t>(
                                rng.next_below(static_cast<std::uint64_t>(
                                    nodes - 1)));
      if (slot != avoid) return slot;
    }
  };
  const std::size_t crash_victim = pick(0);
  const std::size_t leave_victim = pick(crash_victim);
  // The leaver stays gone, so the partition must target someone else; the
  // crash victim has restarted by then and is fair game again.
  const std::size_t part_victim = pick(leave_victim);

  ChaosPlan plan;
  plan.seed = seed;
  plan.nodes = nodes;
  // Phase 1: abrupt crash, then the same slot restarts and rejoins.
  plan.crash(1'000'000, crash_victim);
  plan.verify(3'000'000);
  plan.restart(4'000'000, crash_victim);
  plan.verify(6'000'000);
  // Phase 2: graceful leave (stays gone).
  plan.leave(7'000'000, leave_victim);
  plan.verify(9'000'000);
  // Phase 3: 20% loss burst across the fabric.
  plan.loss_burst(10'000'000, 0.20, 2'000'000);
  plan.verify(13'000'000);
  // Phase 4: partition one node, then heal it.
  plan.partition(14'000'000, part_victim);
  plan.verify(16'000'000);
  plan.heal(17'000'000, part_victim);
  plan.verify(19'000'000);
  // Phase 5: 8x latency spike.
  plan.latency_burst(20'000'000, 8.0, 2'000'000);
  plan.verify(23'000'000);
  return plan;
}

ChaosPlan ChaosPlan::process_canonical(std::uint64_t seed, std::size_t nodes) {
  if (nodes < 8) {
    throw std::invalid_argument("ChaosPlan::process_canonical: need >= 8 nodes");
  }
  Rng rng(seed * 104729 + 31);
  // Fisher-Yates over [1, nodes): slot 0 is the bootstrap seed every
  // restarted daemon rejoins through, so it is never a victim.
  std::vector<std::size_t> victims(nodes - 1);
  for (std::size_t i = 0; i < victims.size(); ++i) victims[i] = i + 1;
  for (std::size_t i = victims.size(); i > 1; --i) {
    std::swap(victims[i - 1],
              victims[static_cast<std::size_t>(
                  rng.next_below(static_cast<std::uint64_t>(i)))]);
  }
  const std::size_t kills = std::max<std::size_t>(1, nodes / 4);   // 25%
  const std::size_t terms = std::max<std::size_t>(1, nodes / 10);  // 10%
  const std::size_t restarts = std::max<std::size_t>(1, kills / 2);

  ChaosPlan plan;
  plan.seed = seed;
  plan.nodes = nodes;
  plan.process_mode = true;
  // Phase 1: baseline — the freshly booted fleet must converge and cover.
  plan.verify(3'000'000);
  // Phase 2: SIGKILL wave over 25% of the fleet, spread across ~2s.
  for (std::size_t i = 0; i < kills; ++i) {
    plan.sigkill(4'000'000 + i * (2'000'000 / kills), victims[i]);
  }
  plan.verify(15'000'000);
  // Phase 3: half the killed slots come back with bumped incarnations.
  for (std::size_t i = 0; i < restarts; ++i) {
    plan.restart(16'000'000 + i * (2'000'000 / restarts), victims[i]);
  }
  plan.verify(28'000'000);
  // Phase 4: SIGTERM wave over 10% — graceful drains whose aggregate
  // conservation the supervisor checks per victim.
  for (std::size_t i = 0; i < terms; ++i) {
    plan.sigterm(29'000'000 + i * (2'000'000 / terms), victims[kills + i]);
  }
  plan.verify(40'000'000);
  return plan;
}

namespace {

/// Shared victim draw for the selfmon campaigns: a Fisher-Yates shuffle of
/// [1, nodes) (slot 0 is the probe/bootstrap node), pure in (seed, nodes).
std::vector<std::size_t> selfmon_victims(std::uint64_t seed,
                                         std::size_t nodes) {
  Rng rng(seed * 52361 + 7);
  std::vector<std::size_t> victims(nodes - 1);
  for (std::size_t i = 0; i < victims.size(); ++i) victims[i] = i + 1;
  for (std::size_t i = victims.size(); i > 1; --i) {
    std::swap(victims[i - 1],
              victims[static_cast<std::size_t>(
                  rng.next_below(static_cast<std::uint64_t>(i)))]);
  }
  return victims;
}

}  // namespace

ChaosPlan ChaosPlan::selfmon(std::uint64_t seed, std::size_t nodes) {
  if (nodes < 4) {
    throw std::invalid_argument("ChaosPlan::selfmon: need >= 4 nodes");
  }
  const std::vector<std::size_t> victims = selfmon_victims(seed, nodes);
  const std::size_t kills = std::max<std::size_t>(1, nodes / 4);  // 25%

  ChaosPlan plan;
  plan.seed = seed;
  plan.nodes = nodes;
  // Phase 1: baseline — the fleet monitors itself, every alert clear.
  plan.verify(3'000'000);
  // Phase 2: crash wave; the coverage alert must FIRE at the verify.
  for (std::size_t i = 0; i < kills; ++i) {
    plan.crash(4'000'000 + i * (1'000'000 / kills), victims[i]);
  }
  plan.verify(6'000'000);
  // Phase 3: every victim returns; the alert must CLEAR within the SLO.
  for (std::size_t i = 0; i < kills; ++i) {
    plan.restart(8'000'000 + i * (1'000'000 / kills), victims[i]);
  }
  plan.verify(11'000'000);
  return plan;
}

ChaosPlan ChaosPlan::process_selfmon(std::uint64_t seed, std::size_t nodes) {
  if (nodes < 8) {
    throw std::invalid_argument("ChaosPlan::process_selfmon: need >= 8 nodes");
  }
  const std::vector<std::size_t> victims = selfmon_victims(seed, nodes);
  const std::size_t kills = std::max<std::size_t>(1, nodes / 4);  // 25%

  ChaosPlan plan;
  plan.seed = seed;
  plan.nodes = nodes;
  plan.process_mode = true;
  // Phase 1: baseline.
  plan.verify(4'000'000);
  // Phase 2: kill wave. The first victim aborts — its crash handler writes
  // a postmortem dump the supervisor archives — and the rest are SIGKILLed.
  plan.sigabrt(5'000'000, victims[0]);
  for (std::size_t i = 1; i < kills; ++i) {
    plan.sigkill(5'000'000 + i * (2'000'000 / kills), victims[i]);
  }
  plan.verify(16'000'000);
  // Phase 3: all victims restart; the coverage alert must clear.
  for (std::size_t i = 0; i < kills; ++i) {
    plan.restart(17'000'000 + i * (2'000'000 / kills), victims[i]);
  }
  plan.verify(30'000'000);
  return plan;
}

ChaosPlan ChaosPlan::rebalance_skew(std::uint64_t seed, std::size_t nodes) {
  if (nodes < 8) {
    throw std::invalid_argument("ChaosPlan::rebalance_skew: need >= 8 nodes");
  }
  ChaosPlan plan;
  plan.seed = seed;
  plan.nodes = nodes;
  plan.random_ids = true;  // deploy unbalanced on purpose
  // Phase 1: baseline. The skewed deployment must still aggregate correctly
  // — and this is where the campaign measures the unbalanced branching the
  // rebalancer is about to repair.
  plan.verify(2'000'000);
  // Phase 2: activate the rebalancer (it consumes virtual time itself, one
  // measured round per epoch, up to the SLO budget), then verify that the
  // repaired deployment still meets every recovery check plus the SLO.
  plan.rebalance(4'000'000);
  plan.verify(4'100'000);
  return plan;
}

}  // namespace dat::chaos
