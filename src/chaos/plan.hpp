#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dat::chaos {

/// One kind of injected fault (or control point) in a chaos timeline.
enum class FaultKind : std::uint8_t {
  kCrash = 0,        ///< abrupt failure of a slot, no departure notice
  kLeave = 1,        ///< graceful departure of a slot
  kRestart = 2,      ///< rejoin a previously crashed/departed slot
  kLossBurst = 3,    ///< uniform datagram loss `magnitude` for `duration_us`
  kLatencyBurst = 4, ///< latency multiplier `magnitude` for `duration_us`
  kPartition = 5,    ///< slot becomes unreachable (stays alive)
  kHeal = 6,         ///< partition on slot is lifted
  kVerify = 7,       ///< quiesce, then run the recovery verifier
  kRebalance = 8,    ///< run the measurement-driven rebalancer to its SLO
  kSigkill = 9,      ///< SIGKILL a daemon process (abrupt, like kCrash)
  kSigterm = 10,     ///< SIGTERM a daemon: graceful drain, then clean leave
  kSigabrt = 11,     ///< SIGABRT a daemon: crash that leaves a postmortem
                     ///< dump for the supervisor to archive (sim: crash)
};

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

/// One scheduled event of a ChaosPlan. Which fields matter depends on the
/// kind: slot for crash/leave/restart/partition/heal, magnitude+duration
/// for the bursts, nothing extra for verify.
struct FaultEvent {
  std::uint64_t at_us = 0;
  FaultKind kind = FaultKind::kVerify;
  std::size_t slot = 0;
  double magnitude = 0.0;
  std::uint64_t duration_us = 0;

  /// Stable one-line rendering, e.g. "t=1200ms crash slot=3"; used for the
  /// deterministic event log that same-seed runs must reproduce bit-exact.
  [[nodiscard]] std::string describe() const;
};

/// A seeded, scripted timeline of fault events executed against a cluster
/// by chaos::Campaign. Events run in at_us order (ties keep insertion
/// order); every kVerify event closes a phase and triggers the verifier.
struct ChaosPlan {
  std::uint64_t seed = 1;
  std::size_t nodes = 16;
  /// Deployment directive for the campaign runner: build the cluster with
  /// random identifier assignment instead of probing joins. Random ids give
  /// the unbalanced trees (max branching 7+ at n >= 16, Fig. 7a) that the
  /// rebalance event is then expected to repair.
  bool random_ids = false;
  /// Deployment directive: the plan targets real OS processes (one datd per
  /// slot, driven by the process supervisor) instead of an in-process sim
  /// cluster. Spelled `mode process` in the spec; sim campaigns still
  /// accept sigkill/sigterm events by mapping them to crash/drain+leave.
  bool process_mode = false;
  std::vector<FaultEvent> events;

  // Builder-style helpers; times are virtual microseconds from campaign
  // start. Each returns *this for chaining.
  ChaosPlan& crash(std::uint64_t at_us, std::size_t slot);
  ChaosPlan& leave(std::uint64_t at_us, std::size_t slot);
  ChaosPlan& restart(std::uint64_t at_us, std::size_t slot);
  ChaosPlan& loss_burst(std::uint64_t at_us, double rate,
                        std::uint64_t duration_us);
  ChaosPlan& latency_burst(std::uint64_t at_us, double multiplier,
                           std::uint64_t duration_us);
  ChaosPlan& partition(std::uint64_t at_us, std::size_t slot);
  ChaosPlan& heal(std::uint64_t at_us, std::size_t slot);
  ChaosPlan& verify(std::uint64_t at_us);
  ChaosPlan& rebalance(std::uint64_t at_us);
  ChaosPlan& sigkill(std::uint64_t at_us, std::size_t slot);
  ChaosPlan& sigterm(std::uint64_t at_us, std::size_t slot);
  ChaosPlan& sigabrt(std::uint64_t at_us, std::size_t slot);

  /// Orders events by at_us (stable: simultaneous events keep the order
  /// they were added in). Campaign calls this before executing.
  void sort_events();

  /// Number of kVerify events, i.e. phases the campaign reports on.
  [[nodiscard]] std::size_t phases() const;

  /// Renders the plan back to the text-spec format parse() accepts.
  [[nodiscard]] std::string to_spec() const;

  /// Parses the line-based spec format (times in milliseconds):
  ///
  ///   # comment / blank lines ignored
  ///   seed <n>
  ///   nodes <n>
  ///   assign random|probed
  ///   mode process|sim
  ///   <at_ms> crash <slot>
  ///   <at_ms> leave <slot>
  ///   <at_ms> restart <slot>
  ///   <at_ms> loss <rate> <duration_ms>
  ///   <at_ms> latency <multiplier> <duration_ms>
  ///   <at_ms> partition <slot>
  ///   <at_ms> heal <slot>
  ///   <at_ms> verify
  ///   <at_ms> rebalance
  ///   <at_ms> sigkill <slot>
  ///   <at_ms> sigterm <slot>
  ///   <at_ms> sigabrt <slot>
  ///
  /// Throws std::invalid_argument with the offending line on bad input:
  /// malformed fields, unknown verbs, duplicate seed/nodes/assign lines, a
  /// zero node count, or a slot-bearing event whose victim is outside
  /// [0, nodes).
  [[nodiscard]] static ChaosPlan parse(std::string_view spec);

  /// The canonical seeded campaign used by tests and the CI soak: a mix of
  /// crash+rejoin, graceful leave, a 20% loss burst, a partition+heal and a
  /// latency spike, with a verify point after each disturbance. Slot
  /// choices are drawn from Rng(seed), so the timeline is a pure function
  /// of (seed, nodes).
  [[nodiscard]] static ChaosPlan canonical(std::uint64_t seed,
                                           std::size_t nodes);

  /// The rebalancing SLO campaign: the cluster deploys with random ids
  /// (unbalanced trees), a verify phase measures the skewed baseline, then
  /// a rebalance event activates the measurement-driven rebalancer, and a
  /// closing verify phase asserts both the usual recovery checks and the
  /// branching SLO (see CampaignOptions::rebalance). Timeline is a pure
  /// function of (seed, nodes).
  [[nodiscard]] static ChaosPlan rebalance_skew(std::uint64_t seed,
                                                std::size_t nodes);

  /// The canonical process-level kill plan the daemon-soak CI job runs: a
  /// fleet of `nodes` real datd processes gets a baseline verify, a SIGKILL
  /// wave hitting 25% of the fleet, a verify, restarts of half the killed
  /// slots (bumped incarnations), a verify, a SIGTERM wave draining 10%
  /// gracefully, and a closing verify. Slot 0 (the bootstrap seed every
  /// restarted daemon rejoins through) is never a victim. Victim choices
  /// are drawn from Rng(seed), so the timeline is a pure function of
  /// (seed, nodes).
  [[nodiscard]] static ChaosPlan process_canonical(std::uint64_t seed,
                                                   std::size_t nodes);

  /// The self-monitoring SLO campaign (sim variant): a baseline verify with
  /// every alert clear, a crash wave over 25% of the fleet whose closing
  /// verify must observe the coverage alert FIRING, restarts of every
  /// victim, and a final verify that must observe it CLEAR again. Slot 0 is
  /// never a victim (it is the campaign's probe node). Timeline is a pure
  /// function of (seed, nodes).
  [[nodiscard]] static ChaosPlan selfmon(std::uint64_t seed,
                                         std::size_t nodes);

  /// The self-monitoring SLO campaign against real datd processes: same
  /// fire-then-clear shape as selfmon(), except the first victim dies by
  /// SIGABRT — exercising the crash-postmortem path the supervisor
  /// archives — and the rest by SIGKILL.
  [[nodiscard]] static ChaosPlan process_selfmon(std::uint64_t seed,
                                                 std::size_t nodes);
};

}  // namespace dat::chaos
