#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "chaos/plan.hpp"
#include "harness/sim_cluster.hpp"
#include "net/rpc.hpp"
#include "obs/metrics.hpp"

namespace dat::chaos {

struct CampaignOptions {
  /// Base name of the campaign aggregate; replica tree i uses the key
  /// H(name "#" i) — the same layout as core::ReplicatedAggregate, so a
  /// reader keeps the widest-coverage answer across the replica roots.
  std::string aggregate = "cpu-usage";
  unsigned replicas = 3;
  core::AggregateKind kind = core::AggregateKind::kCount;
  chord::RoutingScheme scheme = chord::RoutingScheme::kBalanced;
  /// Per-slot local values; null uses the slot index as the sample.
  harness::SimCluster::LocalValueFactory local_values;

  /// Settle window run before each verification.
  std::uint64_t quiesce_us = 2'000'000;
  /// Recovery SLO: coverage must re-converge to the reachable live
  /// population within this many continuous-push epochs after quiesce.
  unsigned max_recovery_epochs = 10;
  /// Budget per root query while probing coverage.
  std::uint64_t probe_timeout_us = 2'000'000;
  /// Budget for ring convergence (only awaited when no partition is up).
  std::uint64_t converge_timeout_us = 30'000'000;
  /// Refresh d0 hints after membership changes (matches clusters built
  /// with inject_d0_hint; set false when exercising the estimator).
  bool refresh_hints = true;
};

/// Outcome of one verification phase (one kVerify event).
struct PhaseReport {
  std::size_t phase = 0;
  std::uint64_t at_us = 0;
  std::size_t live = 0;
  /// Reachable population: live minus partitioned slots.
  std::size_t expected_coverage = 0;
  /// Widest fresh coverage any replica root reported.
  std::size_t observed_coverage = 0;
  /// Epochs waited after quiesce until the coverage SLO was met (or
  /// max_recovery_epochs when it never was).
  unsigned epochs_to_recover = 0;
  unsigned roots_answered = 0;
  bool coverage_ok = false;
  bool query_ok = false;       ///< at least one replica root answered
  bool invariants_ok = false;  ///< structural checks passed
  bool ring_checked = false;   ///< convergence awaited (no partition active)
  bool ring_converged = false;
  /// Cumulative RPC counters summed over live nodes at phase end.
  net::RpcStats rpc;

  [[nodiscard]] bool ok() const {
    return coverage_ok && query_ok && invariants_ok &&
           (!ring_checked || ring_converged);
  }
};

struct CampaignReport {
  std::vector<PhaseReport> phases;
  /// Deterministic event log: one line per applied event and per phase
  /// outcome. Two same-seed runs must produce identical logs.
  std::vector<std::string> event_log;
  /// Invariant-violation texts, if any phase tripped a check.
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const {
    if (!violations.empty()) return false;
    for (const PhaseReport& p : phases) {
      if (!p.ok()) return false;
    }
    return true;
  }
};

/// Executes a ChaosPlan deterministically against a SimCluster: applies
/// each fault at its virtual timestamp and, at every kVerify event, runs a
/// quiescent window and then checks the structural invariants, the
/// coverage-recovery SLO and replica-query availability. All randomness is
/// the cluster's own seeded Rng streams, so the produced event log is a
/// pure function of (cluster seed, plan).
class Campaign {
 public:
  /// The cluster must have its DAT layer enabled; the campaign registers
  /// its replica aggregates cluster-wide in the constructor so restarted
  /// slots rejoin the trees automatically.
  Campaign(harness::SimCluster& cluster, ChaosPlan plan,
           CampaignOptions options);

  /// Runs the whole plan; may be called once.
  CampaignReport run();

  [[nodiscard]] const std::vector<Id>& keys() const noexcept { return keys_; }

  /// Campaign-level telemetry: fault counts by kind, phases run/failed,
  /// and per-phase recovery timing histograms (epochs to meet the
  /// coverage SLO, virtual-time duration of quiesce + recovery). Populated
  /// by run(); snapshot it afterwards (or merge into a cluster roll-up).
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  struct Probe {
    std::size_t coverage = 0;
    unsigned roots_answered = 0;
  };

  void apply(const FaultEvent& event);
  PhaseReport run_verify(const FaultEvent& event);
  [[nodiscard]] Probe probe_coverage();
  [[nodiscard]] std::size_t probe_slot() const;
  [[nodiscard]] net::RpcStats live_rpc_stats() const;
  void note(const std::string& line);

  harness::SimCluster& cluster_;
  ChaosPlan plan_;
  CampaignOptions options_;
  std::vector<Id> keys_;
  /// Slot -> endpoint for currently partitioned slots (the endpoint is
  /// needed to heal after the chord::Node object is unreachable).
  std::unordered_map<std::size_t, net::Endpoint> partitioned_;
  CampaignReport report_;
  std::size_t phase_ = 0;
  bool ran_ = false;

  obs::MetricsRegistry metrics_;
  obs::Counter* m_phases_ = nullptr;
  obs::Counter* m_phase_failures_ = nullptr;
  obs::Histogram* m_recovery_epochs_ = nullptr;
  obs::Histogram* m_phase_duration_us_ = nullptr;
};

}  // namespace dat::chaos
