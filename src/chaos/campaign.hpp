#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chaos/plan.hpp"
#include "harness/sim_cluster.hpp"
#include "lb/ports.hpp"
#include "lb/rebalancer.hpp"
#include "net/rpc.hpp"
#include "obs/metrics.hpp"

namespace dat::chaos {

/// Knobs of the kRebalance event: the SLO it drives towards and the skewed
/// workload it is exercised under.
struct RebalanceOptions {
  /// Branching SLO: max fresh children of any tracked tree on any node.
  std::size_t slo_max_branching = 4;
  /// Epoch budget to reach the SLO after the rebalancer activates.
  unsigned slo_max_epochs = 20;
  /// Extra hot replica trees registered alongside the base replicas, pushed
  /// at hot_epoch_us. With 2 hot trees at a 10x faster period next to 2
  /// base trees, ~91% of update volume lands on the hot keys — the 90/10
  /// skew of the headline campaign. 0 keeps the base replicas only.
  unsigned hot_aggregates = 0;
  /// Push period of the hot trees; 0 derives base epoch / 10.
  std::uint64_t hot_epoch_us = 0;
  /// Decision-policy knobs forwarded to lb::plan_rebalance.
  lb::PolicyOptions policy{};
};

struct CampaignOptions {
  /// Base name of the campaign aggregate; replica tree i uses the key
  /// H(name "#" i) — the same layout as core::ReplicatedAggregate, so a
  /// reader keeps the widest-coverage answer across the replica roots.
  std::string aggregate = "cpu-usage";
  unsigned replicas = 3;
  core::AggregateKind kind = core::AggregateKind::kCount;
  chord::RoutingScheme scheme = chord::RoutingScheme::kBalanced;
  /// Per-slot local values; null uses the slot index as the sample.
  harness::SimCluster::LocalValueFactory local_values;

  /// Settle window run before each verification.
  std::uint64_t quiesce_us = 2'000'000;
  /// Recovery SLO: coverage must re-converge to the reachable live
  /// population within this many continuous-push epochs after quiesce.
  unsigned max_recovery_epochs = 10;
  /// Budget per root query while probing coverage.
  std::uint64_t probe_timeout_us = 2'000'000;
  /// Budget for ring convergence (only awaited when no partition is up).
  std::uint64_t converge_timeout_us = 30'000'000;
  /// Refresh d0 hints after membership changes (matches clusters built
  /// with inject_d0_hint; set false when exercising the estimator).
  bool refresh_hints = true;
  /// Rebalancer SLO and workload skew, used by kRebalance events.
  RebalanceOptions rebalance{};
  /// Assert the self-monitoring SLO at every verify: the probe node's
  /// coverage alert must be FIRING while the reachable population is below
  /// the configured fleet size and CLEAR once it is back, each within
  /// selfmon_max_epochs telemetry epochs. Requires a cluster built with
  /// ClusterOptions::with_selfmon.
  bool check_selfmon = false;
  unsigned selfmon_max_epochs = 12;
  /// Polled between events; returning true abandons the rest of the
  /// timeline (completed phases keep their reports and the event log notes
  /// the cut). The CLI wires its SIGINT latch in here, so ^C still flushes
  /// metrics and tears the cluster down through the normal destructors.
  std::function<bool()> interrupted;
};

/// Outcome of one verification phase (one kVerify event).
struct PhaseReport {
  std::size_t phase = 0;
  std::uint64_t at_us = 0;
  std::size_t live = 0;
  /// Reachable population: live minus partitioned slots.
  std::size_t expected_coverage = 0;
  /// Widest fresh coverage any replica root reported.
  std::size_t observed_coverage = 0;
  /// Epochs waited after quiesce until the coverage SLO was met (or
  /// max_recovery_epochs when it never was).
  unsigned epochs_to_recover = 0;
  unsigned roots_answered = 0;
  bool coverage_ok = false;
  bool query_ok = false;       ///< at least one replica root answered
  bool invariants_ok = false;  ///< structural checks passed
  bool ring_checked = false;   ///< convergence awaited (no partition active)
  bool ring_converged = false;
  /// This phase closes a rebalance event; the SLO outcome gates ok().
  bool rebalance_checked = false;
  bool rebalance_ok = false;
  /// Self-monitoring gate (CampaignOptions::check_selfmon): whether the
  /// probe node's coverage alert matched the expected state in time, and
  /// the state it ended in.
  bool selfmon_checked = false;
  bool selfmon_ok = false;
  bool selfmon_firing = false;
  unsigned selfmon_epochs = 0;  ///< epochs waited for the alert to settle
  /// Epochs the rebalancer ran before meeting the SLO (or the full budget
  /// when it never did), and the branching it ended at.
  unsigned lb_epochs = 0;
  std::size_t lb_max_branching = 0;
  /// Cumulative RPC counters summed over live nodes at phase end.
  net::RpcStats rpc;

  [[nodiscard]] bool ok() const {
    return coverage_ok && query_ok && invariants_ok &&
           (!ring_checked || ring_converged) &&
           (!rebalance_checked || rebalance_ok) &&
           (!selfmon_checked || selfmon_ok);
  }
};

struct CampaignReport {
  std::vector<PhaseReport> phases;
  /// Deterministic event log: one line per applied event and per phase
  /// outcome. Two same-seed runs must produce identical logs.
  std::vector<std::string> event_log;
  /// Invariant-violation texts, if any phase tripped a check.
  std::vector<std::string> violations;
  /// True when CampaignOptions::interrupted cut the timeline short.
  bool interrupted = false;

  [[nodiscard]] bool ok() const {
    if (!violations.empty()) return false;
    for (const PhaseReport& p : phases) {
      if (!p.ok()) return false;
    }
    return true;
  }
};

/// Executes a ChaosPlan deterministically against a SimCluster: applies
/// each fault at its virtual timestamp and, at every kVerify event, runs a
/// quiescent window and then checks the structural invariants, the
/// coverage-recovery SLO and replica-query availability. All randomness is
/// the cluster's own seeded Rng streams, so the produced event log is a
/// pure function of (cluster seed, plan).
class Campaign {
 public:
  /// The cluster must have its DAT layer enabled; the campaign registers
  /// its replica aggregates cluster-wide in the constructor so restarted
  /// slots rejoin the trees automatically.
  Campaign(harness::SimCluster& cluster, ChaosPlan plan,
           CampaignOptions options);

  /// Runs the whole plan; may be called once.
  CampaignReport run();

  [[nodiscard]] const std::vector<Id>& keys() const noexcept { return keys_; }

  /// What the rebalancer did, if the plan had a kRebalance event.
  struct LbSummary {
    bool ran = false;
    bool converged = false;  ///< branching SLO met within the epoch budget
    unsigned epochs = 0;
    std::size_t initial_max_branching = 0;
    std::size_t final_max_branching = 0;
    std::size_t migrations = 0;
    std::size_t sheds = 0;
  };
  [[nodiscard]] const LbSummary& lb_summary() const noexcept { return lb_; }

  /// Campaign-level telemetry: fault counts by kind, phases run/failed,
  /// and per-phase recovery timing histograms (epochs to meet the
  /// coverage SLO, virtual-time duration of quiesce + recovery). Populated
  /// by run(); snapshot it afterwards (or merge into a cluster roll-up).
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  struct Probe {
    std::size_t coverage = 0;
    unsigned roots_answered = 0;
  };

  void apply(const FaultEvent& event);
  PhaseReport run_verify(const FaultEvent& event);
  void run_rebalance(const FaultEvent& event);
  /// Max fresh child count over live slots x tracked keys (the branching
  /// the SLO bounds).
  [[nodiscard]] std::size_t measured_max_branching();
  [[nodiscard]] Probe probe_coverage();
  [[nodiscard]] std::size_t probe_slot() const;
  [[nodiscard]] net::RpcStats live_rpc_stats() const;
  void note(const std::string& line);

  harness::SimCluster& cluster_;
  ChaosPlan plan_;
  CampaignOptions options_;
  std::vector<Id> keys_;
  /// keys_ plus the hot skewed trees — the set the rebalancer tracks.
  std::vector<Id> all_keys_;
  std::unique_ptr<lb::SimClusterPort> lb_port_;
  std::unique_ptr<lb::Rebalancer> rebalancer_;
  LbSummary lb_;
  /// A rebalance event ran and its outcome awaits the closing verify.
  bool lb_pending_report_ = false;
  /// Slot -> endpoint for currently partitioned slots (the endpoint is
  /// needed to heal after the chord::Node object is unreachable).
  std::unordered_map<std::size_t, net::Endpoint> partitioned_;
  CampaignReport report_;
  std::size_t phase_ = 0;
  bool ran_ = false;

  obs::MetricsRegistry metrics_;
  obs::Counter* m_phases_ = nullptr;
  obs::Counter* m_phase_failures_ = nullptr;
  obs::Histogram* m_recovery_epochs_ = nullptr;
  obs::Histogram* m_phase_duration_us_ = nullptr;
};

}  // namespace dat::chaos
