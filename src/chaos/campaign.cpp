#include "chaos/campaign.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "lb/drain.hpp"

namespace dat::chaos {

namespace {
const char* fault_kind_label(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kLeave: return "leave";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kLossBurst: return "loss_burst";
    case FaultKind::kLatencyBurst: return "latency_burst";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kVerify: return "verify";
    case FaultKind::kRebalance: return "rebalance";
    case FaultKind::kSigkill: return "sigkill";
    case FaultKind::kSigterm: return "sigterm";
    case FaultKind::kSigabrt: return "sigabrt";
  }
  return "unknown";
}
}  // namespace

Campaign::Campaign(harness::SimCluster& cluster, ChaosPlan plan,
                   CampaignOptions options)
    : cluster_(cluster), plan_(std::move(plan)), options_(std::move(options)) {
  if (options_.replicas == 0) {
    throw std::invalid_argument("Campaign: replicas == 0");
  }
  m_phases_ = &metrics_.counter("dat_chaos_phases_total");
  m_phase_failures_ = &metrics_.counter("dat_chaos_phase_failures_total");
  m_recovery_epochs_ = &metrics_.histogram("dat_chaos_recovery_epochs");
  m_phase_duration_us_ = &metrics_.histogram("dat_chaos_phase_duration_us");
  plan_.sort_events();
  // Same key layout as core::ReplicatedAggregate: replica i rendezvouses at
  // H(name "#" i). Registering through the cluster keeps restarted slots
  // contributing without campaign-side bookkeeping.
  harness::SimCluster::LocalValueFactory local =
      options_.local_values
          ? options_.local_values
          : [](std::size_t slot) -> core::DatNode::LocalValueFn {
              return [slot] { return static_cast<double>(slot); };
            };
  keys_.reserve(options_.replicas);
  for (unsigned i = 0; i < options_.replicas; ++i) {
    keys_.push_back(cluster_.start_aggregate_everywhere(
        options_.aggregate + "#" + std::to_string(i), options_.kind,
        options_.scheme, local));
  }
  all_keys_ = keys_;
  // The skewed workload: hot trees push at a fraction of the base period,
  // concentrating update volume on a few keys (90/10 with the defaults of
  // the rebalance-skew campaign). Registered cluster-wide like the
  // replicas, so churned slots keep contributing to the skew.
  if (options_.rebalance.hot_aggregates > 0) {
    const std::uint64_t base_epoch_us =
        cluster_.dat(probe_slot()).options().epoch_us;
    const std::uint64_t hot_epoch_us = options_.rebalance.hot_epoch_us != 0
                                           ? options_.rebalance.hot_epoch_us
                                           : base_epoch_us / 10;
    for (unsigned i = 0; i < options_.rebalance.hot_aggregates; ++i) {
      all_keys_.push_back(cluster_.start_aggregate_everywhere(
          options_.aggregate + "-hot#" + std::to_string(i), options_.kind,
          options_.scheme, local, hot_epoch_us));
    }
  }
}

void Campaign::note(const std::string& line) {
  report_.event_log.push_back(line);
  DAT_LOG_INFO("chaos", line);
}

std::size_t Campaign::probe_slot() const {
  for (std::size_t i = 0; i < cluster_.slot_count(); ++i) {
    if (cluster_.is_live(i) && !partitioned_.contains(i)) return i;
  }
  throw std::logic_error("Campaign: no reachable live slot to probe from");
}

net::RpcStats Campaign::live_rpc_stats() const {
  net::RpcStats total;
  for (std::size_t i = 0; i < cluster_.slot_count(); ++i) {
    if (!cluster_.is_live(i)) continue;
    total += cluster_.node(i).rpc().stats();
  }
  return total;
}

void Campaign::apply(const FaultEvent& event) {
  note(event.describe());
  // Find-or-create per fault kind: apply() runs a handful of times per
  // campaign, so the registry lookup is not a hot path.
  metrics_.counter("dat_chaos_faults_total",
                   {{"kind", fault_kind_label(event.kind)}})
      .inc();
  switch (event.kind) {
    case FaultKind::kCrash:
    case FaultKind::kLeave:
    case FaultKind::kSigkill:
    case FaultKind::kSigterm:
    case FaultKind::kSigabrt: {
      if (!cluster_.is_live(event.slot)) {
        throw std::logic_error("Campaign: " + event.describe() +
                               " targets a dead slot");
      }
      // A destroyed endpoint must not linger in the fabric's partition set.
      if (const auto it = partitioned_.find(event.slot);
          it != partitioned_.end()) {
        cluster_.network().set_partitioned(it->second, false);
        partitioned_.erase(it);
      }
      // In the sim, a SIGKILL is an abrupt crash; a SIGTERM is what datd
      // does on one: re-parent every subtree upstream and retract its
      // records, then leave the ring cleanly.
      const bool graceful = event.kind == FaultKind::kLeave ||
                            event.kind == FaultKind::kSigterm;
      if (event.kind == FaultKind::kSigterm) {
        const auto drained =
            lb::drain_node(cluster_.dat(event.slot), options_.rebalance.policy);
        note("t=" + std::to_string(event.at_us / 1000) + "ms drain slot=" +
             std::to_string(event.slot) + " keys=" +
             std::to_string(drained.keys) + " moved=" +
             std::to_string(drained.children_moved) + " retracts=" +
             std::to_string(drained.retracts_sent));
      }
      cluster_.remove_node(event.slot, graceful);
      if (options_.refresh_hints) cluster_.refresh_d0_hints();
      break;
    }
    case FaultKind::kRestart: {
      if (!cluster_.restart_node(event.slot)) {
        note("t=" + std::to_string(event.at_us / 1000) + "ms restart slot=" +
             std::to_string(event.slot) + " FAILED");
        report_.violations.push_back("restart failed for slot " +
                                     std::to_string(event.slot));
      }
      break;
    }
    case FaultKind::kLossBurst:
      cluster_.network().loss_burst(event.magnitude, event.duration_us);
      break;
    case FaultKind::kLatencyBurst:
      cluster_.network().latency_burst(event.magnitude, event.duration_us);
      break;
    case FaultKind::kPartition: {
      const net::Endpoint ep = cluster_.node(event.slot).self().endpoint;
      cluster_.network().set_partitioned(ep, true);
      partitioned_[event.slot] = ep;
      break;
    }
    case FaultKind::kHeal: {
      const auto it = partitioned_.find(event.slot);
      if (it == partitioned_.end()) {
        throw std::logic_error("Campaign: " + event.describe() +
                               " targets a slot that is not partitioned");
      }
      cluster_.network().set_partitioned(it->second, false);
      partitioned_.erase(it);
      break;
    }
    case FaultKind::kVerify:
      report_.phases.push_back(run_verify(event));
      break;
    case FaultKind::kRebalance:
      run_rebalance(event);
      break;
  }
}

std::size_t Campaign::measured_max_branching() {
  std::size_t max_children = 0;
  for (std::size_t i = 0; i < cluster_.slot_count(); ++i) {
    if (!cluster_.is_live(i)) continue;
    for (const Id key : all_keys_) {
      max_children = std::max(max_children, cluster_.dat(i).child_count(key));
    }
  }
  return max_children;
}

void Campaign::run_rebalance(const FaultEvent& event) {
  const std::uint64_t epoch_us =
      cluster_.dat(probe_slot()).options().epoch_us;
  if (!rebalancer_) {
    lb_port_ = std::make_unique<lb::SimClusterPort>(cluster_);
    lb::RebalancerOptions lb_options;
    lb_options.policy = options_.rebalance.policy;
    lb_options.epoch_us = epoch_us;
    rebalancer_ = std::make_unique<lb::Rebalancer>(*lb_port_, all_keys_,
                                                   lb_options, &metrics_);
  }
  lb_.ran = true;
  lb_.epochs = 0;
  lb_.initial_max_branching = measured_max_branching();
  lb_.final_max_branching = lb_.initial_max_branching;
  lb_.converged =
      lb_.initial_max_branching <= options_.rebalance.slo_max_branching;
  note("t=" + std::to_string(event.at_us / 1000) +
       "ms rebalance start branching=" +
       std::to_string(lb_.initial_max_branching) +
       " slo=" + std::to_string(options_.rebalance.slo_max_branching));
  // One measured round per epoch: measure -> decide -> apply, then run the
  // cluster one push period so handoffs re-home and soft state expires
  // before the next measurement.
  while (!lb_.converged && lb_.epochs < options_.rebalance.slo_max_epochs) {
    const lb::RoundReport round = rebalancer_->run_round();
    lb_.migrations += round.migrations;
    lb_.sheds += round.sheds;
    cluster_.run_for(epoch_us);
    ++lb_.epochs;
    lb_.final_max_branching = measured_max_branching();
    lb_.converged =
        lb_.final_max_branching <= options_.rebalance.slo_max_branching;
    note("t=" + std::to_string(event.at_us / 1000) + "ms rebalance epoch=" +
         std::to_string(lb_.epochs) + " " + round.to_string() +
         " -> branching=" + std::to_string(lb_.final_max_branching));
  }
  note("t=" + std::to_string(event.at_us / 1000) + "ms rebalance " +
       (lb_.converged ? "converged" : "FAILED to converge") + " epochs=" +
       std::to_string(lb_.epochs) +
       " branching=" + std::to_string(lb_.final_max_branching));
  lb_pending_report_ = true;
}

Campaign::Probe Campaign::probe_coverage() {
  Probe best;
  core::DatNode& probe = cluster_.dat(probe_slot());
  // A healed or re-parented ex-root can hold a stale global with an
  // inflated count; only values pushed within the last two epochs count.
  const std::uint64_t freshness = 2 * probe.options().epoch_us + 100'000;
  for (const Id key : keys_) {
    // The callback must own its landing pad: a query towards a partitioned
    // root can outlive this probe's patience (retries keep the RPC pending),
    // and the late response would otherwise write to a dead stack frame.
    struct Pending {
      bool done = false;
      net::RpcStatus status = net::RpcStatus::kTimeout;
      std::optional<core::GlobalValue> value;
    };
    auto pending = std::make_shared<Pending>();
    probe.query_global(key, [pending](net::RpcStatus s,
                                      std::optional<core::GlobalValue> v) {
      pending->done = true;
      pending->status = s;
      pending->value = std::move(v);
    });
    const std::uint64_t deadline =
        cluster_.engine().now() + options_.probe_timeout_us;
    while (!pending->done && cluster_.engine().now() < deadline) {
      cluster_.run_for(10'000);
    }
    if (pending->done && pending->status == net::RpcStatus::kOk &&
        pending->value.has_value()) {
      ++best.roots_answered;
      const bool fresh =
          pending->value->updated_at_us + freshness >= cluster_.engine().now();
      if (fresh) {
        best.coverage =
            std::max(best.coverage,
                     static_cast<std::size_t>(pending->value->state.count));
      }
    }
  }
  return best;
}

PhaseReport Campaign::run_verify(const FaultEvent& event) {
  PhaseReport phase;
  phase.phase = ++phase_;
  phase.at_us = event.at_us;
  const std::uint64_t phase_start_us = cluster_.engine().now();

  cluster_.run_for(options_.quiesce_us);

  phase.live = cluster_.live_count();
  phase.expected_coverage = phase.live - partitioned_.size();

  // Structural invariants hold at any instant, partitions included.
  try {
    cluster_.assert_local_invariants();
    phase.invariants_ok = true;
  } catch (const std::logic_error& err) {
    report_.violations.push_back(err.what());
  }

  // Ring convergence (and the converged-tree checks inside wait_converged)
  // is only a meaningful target when every live node is reachable.
  if (partitioned_.empty()) {
    phase.ring_checked = true;
    try {
      phase.ring_converged =
          cluster_.wait_converged(options_.converge_timeout_us);
      if (!phase.ring_converged) {
        report_.violations.push_back(
            "phase " + std::to_string(phase.phase) +
            ": ring did not re-converge within budget");
      }
    } catch (const std::logic_error& err) {
      report_.violations.push_back(err.what());
    }
  }

  // Recovery SLO: the widest fresh replica coverage must reach the
  // reachable population within max_recovery_epochs continuous epochs.
  const std::uint64_t epoch_us =
      cluster_.dat(probe_slot()).options().epoch_us;
  Probe probe = probe_coverage();
  unsigned epochs = 0;
  while (probe.coverage < phase.expected_coverage &&
         epochs < options_.max_recovery_epochs) {
    cluster_.run_for(epoch_us);
    ++epochs;
    probe = probe_coverage();
  }
  phase.observed_coverage = probe.coverage;
  phase.epochs_to_recover = epochs;
  phase.roots_answered = probe.roots_answered;
  phase.coverage_ok = probe.coverage >= phase.expected_coverage;
  phase.query_ok = probe.roots_answered >= 1;
  phase.rpc = live_rpc_stats();

  // A rebalance event ran since the previous verify: this phase carries its
  // SLO verdict.
  if (lb_pending_report_) {
    lb_pending_report_ = false;
    phase.rebalance_checked = true;
    phase.rebalance_ok = lb_.converged;
    phase.lb_epochs = lb_.epochs;
    phase.lb_max_branching = lb_.final_max_branching;
    if (!lb_.converged) {
      report_.violations.push_back(
          "phase " + std::to_string(phase.phase) +
          ": rebalancer missed the branching SLO (" +
          std::to_string(lb_.final_max_branching) + " > " +
          std::to_string(options_.rebalance.slo_max_branching) + " after " +
          std::to_string(lb_.epochs) + " epochs)");
    }
  }

  // Self-monitoring gate: the probe node's own coverage alert must agree
  // with ground truth — firing while the reachable population is short of
  // the configured fleet, clear once it is whole again. Alert transitions
  // need fire/clear hysteresis epochs, so poll up to the epoch budget.
  if (options_.check_selfmon) {
    phase.selfmon_checked = true;
    obs::SelfMonitor* monitor = cluster_.selfmon(probe_slot());
    if (monitor == nullptr) {
      report_.violations.push_back(
          "phase " + std::to_string(phase.phase) +
          ": check_selfmon set but the probe slot has no SelfMonitor");
    } else {
      const std::uint64_t selfmon_epoch_us = monitor->options().epoch_us;
      const bool expect_firing =
          phase.expected_coverage < monitor->options().fleet_size;
      while (monitor->alert_firing("coverage") != expect_firing &&
             phase.selfmon_epochs < options_.selfmon_max_epochs) {
        cluster_.run_for(selfmon_epoch_us);
        ++phase.selfmon_epochs;
      }
      phase.selfmon_firing = monitor->alert_firing("coverage");
      phase.selfmon_ok = phase.selfmon_firing == expect_firing;
      if (!phase.selfmon_ok) {
        report_.violations.push_back(
            "phase " + std::to_string(phase.phase) + ": coverage alert " +
            (phase.selfmon_firing ? "firing" : "clear") + ", expected " +
            (expect_firing ? "firing" : "clear") + " after " +
            std::to_string(phase.selfmon_epochs) + " epochs");
      }
    }
  }

  m_phases_->inc();
  if (!phase.ok()) m_phase_failures_->inc();
  m_recovery_epochs_->observe(phase.epochs_to_recover);
  m_phase_duration_us_->observe(cluster_.engine().now() - phase_start_us);

  std::ostringstream oss;
  oss << "t=" << event.at_us / 1000 << "ms phase=" << phase.phase
      << " live=" << phase.live << " expected=" << phase.expected_coverage
      << " coverage=" << phase.observed_coverage
      << " epochs=" << phase.epochs_to_recover
      << " roots=" << phase.roots_answered;
  if (phase.rebalance_checked) {
    oss << " lb_epochs=" << phase.lb_epochs
        << " lb_branching=" << phase.lb_max_branching;
  }
  if (phase.selfmon_checked) {
    oss << " alert=" << (phase.selfmon_firing ? "firing" : "clear");
  }
  oss << (phase.ok() ? " OK" : " FAIL");
  note(oss.str());
  return phase;
}

CampaignReport Campaign::run() {
  if (ran_) throw std::logic_error("Campaign::run: already ran");
  ran_ = true;
  const std::uint64_t start = cluster_.engine().now();
  for (const FaultEvent& event : plan_.events) {
    if (options_.interrupted && options_.interrupted()) {
      report_.interrupted = true;
      note("campaign interrupted before " + event.describe());
      break;
    }
    const std::uint64_t at = start + event.at_us;
    if (cluster_.engine().now() < at) {
      cluster_.run_for(at - cluster_.engine().now());
    }
    apply(event);
  }
  return std::move(report_);
}

}  // namespace dat::chaos
