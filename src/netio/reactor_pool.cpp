#include "netio/reactor_pool.hpp"

#include <chrono>
#include <stdexcept>

namespace dat::netio {

namespace {
std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ReactorPool::ReactorPool(const ReactorPoolOptions& options) {
  if (options.shards == 0) {
    throw std::invalid_argument("ReactorPool: shards must be > 0");
  }
  const std::uint64_t t0 = steady_now_us();
  shards_.reserve(options.shards);
  for (std::size_t i = 0; i < options.shards; ++i) {
    ReactorOptions shard_options = options.reactor;
    // Give each shard its own metric series (shard=0, shard=1, ...) when a
    // registry is attached; a single-shard pool keeps the caller's label.
    if (shard_options.metrics != nullptr && options.shards > 1) {
      shard_options.metrics_shard = std::to_string(i);
    }
    shards_.push_back(std::make_unique<Reactor>(shard_options, t0));
  }
}

ReactorPool::~ReactorPool() { stop(); }

NetioTransport& ReactorPool::add_node() {
  std::size_t index = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    index = next_shard_;
    next_shard_ = (next_shard_ + 1) % shards_.size();
  }
  // add_socket marshals onto the shard thread itself, so the pool mutex is
  // not held across the (potentially blocking) call.
  NetioTransport& transport = shards_[index]->add_socket();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shard_index_[transport.local()] = index;
  }
  return transport;
}

void ReactorPool::remove_node(net::Endpoint ep) {
  std::size_t index = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = shard_index_.find(ep);
    if (it == shard_index_.end()) return;
    index = it->second;
    shard_index_.erase(it);
  }
  shards_[index]->remove_socket(ep);
}

Reactor* ReactorPool::shard_of(net::Endpoint ep) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shard_index_.find(ep);
  return it == shard_index_.end() ? nullptr : shards_[it->second].get();
}

void ReactorPool::start() {
  for (auto& shard : shards_) shard->start();
}

void ReactorPool::stop() {
  for (auto& shard : shards_) shard->stop();
}

std::uint64_t ReactorPool::now_us() const { return shards_.front()->now_us(); }

ReactorCounters ReactorPool::counters() const {
  ReactorCounters total;
  for (const auto& shard : shards_) total += shard->counters();
  return total;
}

}  // namespace dat::netio
