#include "netio/timer_wheel.hpp"

#include <algorithm>
#include <stdexcept>

namespace dat::netio {

TimerWheel::TimerWheel(std::uint64_t tick_us, std::size_t slot_count)
    : slots_(slot_count), tick_us_(tick_us) {
  if (tick_us == 0 || slot_count == 0) {
    throw std::invalid_argument("TimerWheel: tick and slot count must be > 0");
  }
}

net::TimerId TimerWheel::schedule(std::uint64_t deadline_us,
                                  std::function<void()> cb) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const net::TimerId id = next_id_++;
  // Placement is clamped past the wheel's current tick: a deadline in the
  // present (or past) otherwise lands in a slot the cursor has already
  // passed and would wait out a full revolution.
  const std::uint64_t placement_tick =
      std::max(deadline_us / tick_us_, last_tick_ + 1);
  slots_[placement_tick % slots_.size()].push_back(
      Entry{deadline_us, id, std::move(cb)});
  ++count_;
  return id;
}

void TimerWheel::cancel(net::TimerId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id >= next_id_) return;
  cancelled_.insert(id);
}

void TimerWheel::advance(std::uint64_t now_us) {
  std::vector<Entry> due;
  {
    // The wheel accepts schedule()/cancel() from any thread, so advance must
    // take the mutex; the critical section is short and uncontended in the
    // common single-shard case, and runs at tick rate, not line rate.
    // datlint:allow(hot-path): cross-thread wheel; tick-rate, short section
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t tick_now = now_us / tick_us_;
    if (tick_now <= last_tick_) return;
    if (count_ > 0) {
      // Visit each slot the cursor passes; a jump beyond one revolution
      // degenerates to a single full sweep.
      std::vector<Entry> repark;
      const std::uint64_t first = last_tick_ + 1;
      const std::uint64_t visit = std::min<std::uint64_t>(
          tick_now - last_tick_, slots_.size());
      for (std::uint64_t t = 0; t < visit; ++t) {
        std::vector<Entry>& slot = slots_[(first + t) % slots_.size()];
        for (std::size_t i = 0; i < slot.size();) {
          if (slot[i].deadline_us <= now_us) {
            // datlint:allow(hot-path): expiry batch, sized by due timers
            due.push_back(std::move(slot[i]));
            slot[i] = std::move(slot.back());
            slot.pop_back();
          } else if (slot[i].deadline_us / tick_us_ <= tick_now) {
            // The cursor reached this entry's tick before the deadline
            // elapsed within it (advance runs at tick granularity). Left
            // here it would wait out a whole revolution; re-park it one
            // tick ahead instead.
            // datlint:allow(hot-path): re-park batch, sized by due timers
            repark.push_back(std::move(slot[i]));
            slot[i] = std::move(slot.back());
            slot.pop_back();
          } else {
            // Future revolution: stays parked until its deadline passes.
            ++i;
          }
        }
      }
      for (Entry& entry : repark) {
        // datlint:allow(hot-path): slot vectors retain capacity across ticks
        slots_[(tick_now + 1) % slots_.size()].push_back(std::move(entry));
      }
      count_ -= due.size();
      if (count_ == 0 && due.empty()) cancelled_.clear();
    }
    last_tick_ = tick_now;
  }
  std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
    return a.deadline_us != b.deadline_us ? a.deadline_us < b.deadline_us
                                          : a.id < b.id;
  });
  for (Entry& entry : due) {
    {
      // Re-checked per callback: an earlier callback in this batch may have
      // cancelled a later entry.
      // datlint:allow(hot-path): cross-thread wheel; tick-rate, short section
      const std::lock_guard<std::mutex> lock(mutex_);
      if (cancelled_.erase(entry.id) > 0) continue;
    }
    entry.cb();
  }
}

bool TimerWheel::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0;
}

std::size_t TimerWheel::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

}  // namespace dat::netio
