#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "net/transport.hpp"

namespace dat::netio {

/// Hashed timer wheel shared by every socket on one reactor shard.
///
/// Entries land in slot (deadline / tick) % slot_count and carry their
/// absolute deadline, so arbitrarily long delays are correct across wheel
/// revolutions (an entry in a visited slot fires only once its deadline has
/// passed). advance() fires due callbacks on the calling (reactor) thread,
/// outside the wheel lock; schedule() and cancel() are safe from any thread
/// — the cross-shard requirement of ReactorPool, where a node hosted on one
/// shard may arm or cancel timers while another thread drives the wheel.
///
/// Resolution is one tick (default 1024 us): a timer never fires early, and
/// fires at most ~one tick late once advance() observes the deadline — the
/// same order of slack the legacy poll loop had from its millisecond poll
/// timeout.
class TimerWheel {
 public:
  TimerWheel(std::uint64_t tick_us, std::size_t slot_count);

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arms a timer for the absolute wheel-clock deadline. Thread-safe.
  net::TimerId schedule(std::uint64_t deadline_us, std::function<void()> cb);

  /// Cancels a pending timer; ids of already-fired timers are ignored.
  /// Thread-safe, including from inside a timer callback of the same wheel
  /// (a timer in the same due batch that has not run yet is suppressed).
  void cancel(net::TimerId id);

  /// Fires every entry whose deadline is <= now_us, in deadline order, on
  /// the calling thread. Callbacks run outside the lock and may freely
  /// schedule() or cancel().
  void advance(std::uint64_t now_us);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t tick_us() const noexcept { return tick_us_; }

 private:
  struct Entry {
    std::uint64_t deadline_us;
    net::TimerId id;
    std::function<void()> cb;
  };

  mutable std::mutex mutex_;
  std::vector<std::vector<Entry>> slots_;
  /// Cancelled ids whose entries are still parked in a slot; reaped when
  /// the entry comes due (and wholesale once the wheel drains).
  std::unordered_set<net::TimerId> cancelled_;
  std::uint64_t tick_us_;
  std::uint64_t last_tick_ = 0;
  std::size_t count_ = 0;
  net::TimerId next_id_ = 1;
};

}  // namespace dat::netio
