#pragma once

#include <cstdint>
#include <vector>

namespace dat::netio {

/// Recycling pool of datagram-sized byte buffers, one arena per reactor
/// shard (thread-confined, so no locking). The receive slots and the write
/// coalescer's in-flight datagrams draw from here, making the steady-state
/// hot path allocation-free: a buffer is acquired, filled, handed to the
/// kernel, and released back for reuse.
class BufferArena {
 public:
  explicit BufferArena(std::size_t buffer_bytes);

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// Returns an empty buffer with at least buffer_bytes() of capacity.
  [[nodiscard]] std::vector<std::uint8_t> acquire();

  /// Returns a buffer to the pool. Buffers that grew beyond buffer_bytes()
  /// are kept as-is (capacity is never shrunk, only recycled).
  void release(std::vector<std::uint8_t>&& buf);

  [[nodiscard]] std::size_t buffer_bytes() const noexcept {
    return buffer_bytes_;
  }
  /// Buffers created over the arena's lifetime (diagnostic: steady-state
  /// traffic should stop growing this).
  [[nodiscard]] std::uint64_t allocated() const noexcept { return allocated_; }
  [[nodiscard]] std::size_t pooled() const noexcept { return pool_.size(); }

 private:
  std::size_t buffer_bytes_;
  std::vector<std::vector<std::uint8_t>> pool_;
  std::uint64_t allocated_ = 0;
};

}  // namespace dat::netio
