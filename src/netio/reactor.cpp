#include "netio/reactor.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <future>
#include <stdexcept>
#include <system_error>

#include "common/logging.hpp"
#include "net/frame.hpp"

namespace dat::netio {

namespace {

/// epoll user-data tag of the wakeup eventfd (socket registrations start
/// at 1).
constexpr std::uint64_t kEventFdTag = 0;
constexpr int kMaxEpollEvents = 64;
/// Datagrams per sendmmsg call.
constexpr unsigned kSendBatch = 64;

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

// Thread-safe strerror replacement (::strerror is concurrency-mt-unsafe).
std::string errno_message(int err) {
  return std::error_code(err, std::generic_category()).message();
}

}  // namespace

bool mmsg_compiled() noexcept {
#if DAT_NETIO_HAVE_MMSG
  return true;
#else
  return false;
#endif
}

ReactorCounters& ReactorCounters::operator+=(
    const ReactorCounters& other) noexcept {
  epoll_waits += other.epoll_waits;
  recv_syscalls += other.recv_syscalls;
  send_syscalls += other.send_syscalls;
  datagrams_in += other.datagrams_in;
  datagrams_out += other.datagrams_out;
  frames_in += other.frames_in;
  frames_out += other.frames_out;
  coalesced_datagrams_out += other.coalesced_datagrams_out;
  batch_datagrams_in += other.batch_datagrams_in;
  truncated_in += other.truncated_in;
  send_errors += other.send_errors;
  tasks_run += other.tasks_run;
  return *this;
}

/// Counters are relaxed atomics: each is written by the shard thread only,
/// but counters() may snapshot them from the driver thread mid-run.
struct Reactor::Scratch {
  struct Stats {
    std::atomic<std::uint64_t> epoll_waits{0};
    std::atomic<std::uint64_t> recv_syscalls{0};
    std::atomic<std::uint64_t> send_syscalls{0};
    std::atomic<std::uint64_t> datagrams_in{0};
    std::atomic<std::uint64_t> datagrams_out{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> coalesced_datagrams_out{0};
    std::atomic<std::uint64_t> batch_datagrams_in{0};
    std::atomic<std::uint64_t> truncated_in{0};
    std::atomic<std::uint64_t> send_errors{0};
    std::atomic<std::uint64_t> tasks_run{0};
  } stats;

  /// Log-level gates cached once per loop iteration (the PR 3 pattern from
  /// the legacy UDP drain loop): the drop/error paths can fire at line rate
  /// under an adversarial flood, so they must not pay even the macro's
  /// atomic level load per datagram. Loop-thread confined.
  bool log_debug = false;
  bool log_warn = true;

  /// Wire encoding of the message being sent (enqueue_send). Loop-thread
  /// confined; capacity sticks at the largest frame seen, so steady-state
  /// sends never allocate.
  std::vector<std::uint8_t> encode_buf;

  /// Drained tasks_ batch (run_tasks), swapped under the mutex and run
  /// outside it; reused so the control path stops allocating per loop
  /// iteration.
  std::vector<std::function<void()>> task_batch;

  /// Receive slots, one datagram each; slot 0 doubles as the buffer of the
  /// portable single-datagram path.
  std::vector<std::vector<std::uint8_t>> bufs;
  std::vector<sockaddr_in> addrs;
#if DAT_NETIO_HAVE_MMSG
  std::vector<iovec> iovecs;
  std::vector<mmsghdr> hdrs;
  std::vector<sockaddr_in> send_addrs;
  std::vector<iovec> send_iovecs;
  std::vector<mmsghdr> send_hdrs;
#endif
};

// ---------------------------------------------------------------- transport

NetioTransport::NetioTransport(Reactor& reactor, int fd, net::Endpoint self,
                               std::uint64_t reg_id)
    : reactor_(reactor), fd_(fd), self_(self), reg_id_(reg_id) {}

NetioTransport::~NetioTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void NetioTransport::send(net::Endpoint to, const net::Message& msg) {
  reactor_.enqueue_send(*this, to, msg);
}

net::TimerId NetioTransport::set_timer(std::uint64_t delay_us,
                                       std::function<void()> cb) {
  return reactor_.set_timer(delay_us, std::move(cb));
}

void NetioTransport::cancel_timer(net::TimerId id) {
  reactor_.cancel_timer(id);
}

std::uint64_t NetioTransport::now_us() const { return reactor_.now_us(); }

// ------------------------------------------------------------------ reactor

Reactor::Reactor(const ReactorOptions& options, std::uint64_t t0_steady_us)
    : options_(options),
      t0_us_(t0_steady_us != 0 ? t0_steady_us : steady_now_us()),
      wheel_(options.timer_tick_us, options.timer_slots),
      arena_(options.max_datagram),
      scratch_(std::make_unique<Scratch>()) {
  if (options_.recv_batch == 0) {
    throw std::invalid_argument("Reactor: recv_batch must be > 0");
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kEventFdTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(eventfd)");
  }

  Scratch& s = *scratch_;
  s.log_debug = Logger::instance().enabled(LogLevel::kDebug);
  s.log_warn = Logger::instance().enabled(LogLevel::kWarn);
  s.bufs.resize(options_.recv_batch);
  for (auto& buf : s.bufs) buf.resize(options_.max_datagram);
  s.addrs.resize(options_.recv_batch);
#if DAT_NETIO_HAVE_MMSG
  s.iovecs.resize(options_.recv_batch);
  s.hdrs.resize(options_.recv_batch);
  s.send_addrs.resize(kSendBatch);
  s.send_iovecs.resize(kSendBatch);
  s.send_hdrs.resize(kSendBatch);
#endif

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& registry = *options_.metrics;
    const obs::Labels shard_labels{{"shard", options_.metrics_shard}};
    frames_per_datagram_ =
        &registry.histogram("dat_netio_frames_per_datagram", shard_labels);
    metrics_collector_ = registry.add_collector(
        [this, shard_labels](obs::MetricsSnapshot& out) {
          const ReactorCounters c = counters();
          const auto add = [&](const char* name, std::uint64_t value) {
            obs::Sample sample;
            sample.name = name;
            sample.type = obs::MetricType::kCounter;
            sample.labels = shard_labels;
            sample.value = static_cast<double>(value);
            out.samples.push_back(std::move(sample));
          };
          add("dat_netio_epoll_waits_total", c.epoll_waits);
          add("dat_netio_recv_syscalls_total", c.recv_syscalls);
          add("dat_netio_send_syscalls_total", c.send_syscalls);
          add("dat_netio_datagrams_in_total", c.datagrams_in);
          add("dat_netio_datagrams_out_total", c.datagrams_out);
          add("dat_netio_frames_in_total", c.frames_in);
          add("dat_netio_frames_out_total", c.frames_out);
          add("dat_netio_coalesced_datagrams_out_total",
              c.coalesced_datagrams_out);
          add("dat_netio_batch_datagrams_in_total", c.batch_datagrams_in);
          add("dat_netio_truncated_in_total", c.truncated_in);
          add("dat_netio_send_errors_total", c.send_errors);
          add("dat_netio_tasks_run_total", c.tasks_run);
        });
  }
}

Reactor::~Reactor() {
  try {
    stop();
  } catch (...) {
    // Joining the shard thread must not throw out of a destructor.
  }
  if (options_.metrics != nullptr && metrics_collector_ != 0) {
    options_.metrics->remove_collector(metrics_collector_);
  }
  sockets_.clear();
  graveyard_.clear();
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool Reactor::on_loop_thread() const {
  return loop_thread_id_.load(std::memory_order_acquire) ==
         std::this_thread::get_id();
}

std::uint64_t Reactor::now_us() const { return steady_now_us() - t0_us_; }

NetioTransport& Reactor::add_socket(std::uint16_t port) {
  if (!running() || on_loop_thread()) return do_add_socket(port);
  std::promise<NetioTransport*> done;
  post([this, port, &done] {
    try {
      done.set_value(&do_add_socket(port));
    } catch (...) {
      done.set_exception(std::current_exception());
    }
  });
  return *done.get_future().get();
}

NetioTransport& Reactor::do_add_socket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) throw_errno("socket");
  if (options_.so_rcvbuf > 0) {
    // Best-effort: the kernel silently caps at net.core.rmem_max.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options_.so_rcvbuf,
                 sizeof options_.so_rcvbuf);
  }
  if (port != 0) {
    // A pinned port belongs to a daemon restarting in place: let the new
    // socket rebind even while the dead incarnation's socket lingers.
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0) {
      ::close(fd);
      throw_errno("setsockopt(SO_REUSEADDR)");
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);  // 0 → OS-assigned
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno("bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  const net::Endpoint ep = net::make_udp_endpoint(ntohl(addr.sin_addr.s_addr),
                                                  ntohs(addr.sin_port));
  const std::uint64_t reg_id = next_reg_id_++;
  std::unique_ptr<NetioTransport> transport(
      new NetioTransport(*this, fd, ep, reg_id));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = reg_id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(add socket)");
  }
  NetioTransport* raw = transport.get();
  sockets_.emplace(reg_id, std::move(transport));
  reg_of_.emplace(ep, reg_id);
  return *raw;
}

void Reactor::remove_socket(net::Endpoint ep) {
  if (!running() || on_loop_thread()) {
    do_remove_socket(ep);
    return;
  }
  std::promise<void> done;
  post([this, ep, &done] {
    do_remove_socket(ep);
    done.set_value();
  });
  done.get_future().wait();
}

void Reactor::do_remove_socket(net::Endpoint ep) {
  const auto rit = reg_of_.find(ep);
  if (rit == reg_of_.end()) return;
  const std::uint64_t reg_id = rit->second;
  reg_of_.erase(rit);
  const auto sit = sockets_.find(reg_id);
  if (sit == sockets_.end()) return;
  NetioTransport* t = sit->second.get();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, t->fd_, nullptr);
  std::erase(flush_list_, t);
  // Unsent coalesced datagrams of a removed node are dropped, like the
  // in-kernel queue of a closed socket. Destruction is deferred so the
  // caller may be this very transport's handler.
  graveyard_.push_back(std::move(sit->second));
  sockets_.erase(sit);
}

void Reactor::reap_graveyard() { graveyard_.clear(); }

void Reactor::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(event_fd_, &one, sizeof one);
}

void Reactor::run_tasks() {
  std::vector<std::function<void()>>& tasks = scratch_->task_batch;
  tasks.clear();
  {
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks.swap(tasks_);
  }
  for (auto& fn : tasks) {
    fn();
    scratch_->stats.tasks_run.fetch_add(1, std::memory_order_relaxed);
  }
  // Destroy the drained closures now (they may pin captured resources)
  // while keeping the vector's capacity for the next batch.
  tasks.clear();
}

net::TimerId Reactor::set_timer(std::uint64_t delay_us,
                                std::function<void()> cb) {
  const net::TimerId id = wheel_.schedule(now_us() + delay_us, std::move(cb));
  if (running() && !on_loop_thread()) {
    // The loop may be parked in a long epoll_wait that predates this timer.
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd_, &one, sizeof one);
  }
  return id;
}

void Reactor::cancel_timer(net::TimerId id) { wheel_.cancel(id); }

// -------------------------------------------------------------- send path

void Reactor::enqueue_send(NetioTransport& t, net::Endpoint to,
                           const net::Message& msg) {
  std::vector<std::uint8_t>& frame = scratch_->encode_buf;
  msg.encode_into(frame);
  ++t.counters_.messages_sent;
  t.counters_.bytes_sent += frame.size();

  if (!options_.coalesce && !options_.batch_syscalls) {
    // Fully immediate path: one sendto per frame, the legacy loop's cost
    // model (the bench baseline inside netio).
    Scratch::Stats& stats = scratch_->stats;
    if (send_datagram(t.fd_, to, frame)) {
      stats.datagrams_out.fetch_add(1, std::memory_order_relaxed);
      stats.frames_out.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  if (!options_.coalesce) {
    NetioTransport::PendingDatagram pd;
    pd.to = to;
    pd.bytes = arena_.acquire();
    pd.bytes.assign(frame.begin(), frame.end());
    pd.frames = 1;
    t.outq_.push_back(std::move(pd));
  } else {
    auto [it, inserted] = t.open_.try_emplace(to);
    NetioTransport::PendingDatagram& pd = it->second;
    if (pd.frames > 0) {
      // Seal the open datagram if this frame would overflow it.
      const std::size_t projected =
          pd.frames == 1
              ? net::kBatchHeaderBytes + 2 * net::kBatchFrameOverheadBytes +
                    pd.bytes.size() + frame.size()
              : pd.bytes.size() + net::kBatchFrameOverheadBytes + frame.size();
      if (projected > options_.max_datagram) {
        t.outq_.push_back(std::move(pd));
        pd = NetioTransport::PendingDatagram{};
      }
    }
    if (pd.frames == 0) {
      // A lone frame travels raw — zero container overhead until a second
      // frame for the same destination shows up.
      pd.to = to;
      pd.bytes = arena_.acquire();
      pd.bytes.assign(frame.begin(), frame.end());
      pd.frames = 1;
    } else if (pd.frames == 1) {
      std::vector<std::uint8_t> packed = arena_.acquire();
      net::begin_batch(packed);
      net::append_batch_frame(packed, pd.bytes);
      net::append_batch_frame(packed, frame);
      arena_.release(std::move(pd.bytes));
      pd.bytes = std::move(packed);
      pd.frames = 2;
    } else {
      net::append_batch_frame(pd.bytes, frame);
      ++pd.frames;
    }
  }

  if (!t.flush_queued_) {
    t.flush_queued_ = true;
    flush_list_.push_back(&t);
  }
}

void Reactor::seal_open_datagrams(NetioTransport& t) {
  for (auto& [to, pd] : t.open_) {
    if (pd.frames > 0) t.outq_.push_back(std::move(pd));
  }
  t.open_.clear();
}

bool Reactor::send_datagram(int fd, net::Endpoint to,
                            std::span<const std::uint8_t> bytes) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(net::endpoint_ipv4(to));
  addr.sin_port = htons(net::endpoint_port(to));
  Scratch::Stats& stats = scratch_->stats;
  ssize_t n = 0;
  do {
    n = ::sendto(fd, bytes.data(), bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    stats.send_syscalls.fetch_add(1, std::memory_order_relaxed);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    // UDP is fire-and-forget; log and move on (RpcManager retries).
    const int err = errno;
    stats.send_errors.fetch_add(1, std::memory_order_relaxed);
    if (scratch_->log_debug) {
      DAT_LOG_DEBUG("netio", "sendto " << net::endpoint_to_string(to)
                                       << " failed: " << errno_message(err));
    }
    return false;
  }
  return true;
}

void Reactor::flush_transport(NetioTransport& t) {
  seal_open_datagrams(t);
  t.flush_queued_ = false;
  if (t.outq_.empty()) return;
  Scratch& s = *scratch_;
  Scratch::Stats& stats = s.stats;

  const auto account_sent = [&](const NetioTransport::PendingDatagram& dg) {
    stats.datagrams_out.fetch_add(1, std::memory_order_relaxed);
    stats.frames_out.fetch_add(dg.frames, std::memory_order_relaxed);
    if (dg.frames > 1) {
      stats.coalesced_datagrams_out.fetch_add(1, std::memory_order_relaxed);
    }
    if (frames_per_datagram_ != nullptr) {
      frames_per_datagram_->observe(dg.frames);
    }
  };

#if DAT_NETIO_HAVE_MMSG
  if (options_.batch_syscalls) {
    std::size_t next = 0;
    while (next < t.outq_.size()) {
      const unsigned n = static_cast<unsigned>(
          std::min<std::size_t>(kSendBatch, t.outq_.size() - next));
      for (unsigned i = 0; i < n; ++i) {
        const NetioTransport::PendingDatagram& dg = t.outq_[next + i];
        sockaddr_in& addr = s.send_addrs[i];
        addr = sockaddr_in{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(net::endpoint_ipv4(dg.to));
        addr.sin_port = htons(net::endpoint_port(dg.to));
        s.send_iovecs[i] = iovec{
            const_cast<std::uint8_t*>(dg.bytes.data()), dg.bytes.size()};
        s.send_hdrs[i] = mmsghdr{};
        s.send_hdrs[i].msg_hdr.msg_name = &addr;
        s.send_hdrs[i].msg_hdr.msg_namelen = sizeof addr;
        s.send_hdrs[i].msg_hdr.msg_iov = &s.send_iovecs[i];
        s.send_hdrs[i].msg_hdr.msg_iovlen = 1;
      }
      int sent = 0;
      do {
        sent = ::sendmmsg(t.fd_, s.send_hdrs.data(), n, 0);
        stats.send_syscalls.fetch_add(1, std::memory_order_relaxed);
      } while (sent < 0 && errno == EINTR);
      if (sent <= 0) {
        // The head datagram was refused; drop it and keep the rest moving.
        const int err = errno;
        stats.send_errors.fetch_add(1, std::memory_order_relaxed);
        if (s.log_debug) {
          DAT_LOG_DEBUG("netio",
                        "sendmmsg to "
                            << net::endpoint_to_string(t.outq_[next].to)
                            << " failed: " << errno_message(err));
        }
        next += 1;
        continue;
      }
      for (unsigned i = 0; i < static_cast<unsigned>(sent); ++i) {
        account_sent(t.outq_[next + i]);
      }
      next += static_cast<std::size_t>(sent);
    }
    for (auto& dg : t.outq_) arena_.release(std::move(dg.bytes));
    t.outq_.clear();
    return;
  }
#endif
  // Portable fallback: one sendto per datagram (coalescing still collapses
  // frames, so this path alone already divides packet count).
  for (auto& dg : t.outq_) {
    if (send_datagram(t.fd_, dg.to, dg.bytes)) account_sent(dg);
    arena_.release(std::move(dg.bytes));
  }
  t.outq_.clear();
}

void Reactor::flush_all() {
  // flush_transport clears flush_queued_; swap first so sends enqueued by
  // error paths during the flush re-queue cleanly for the next round.
  std::vector<NetioTransport*> list;
  list.swap(flush_list_);
  for (NetioTransport* t : list) flush_transport(*t);
}

// ------------------------------------------------------------ receive path

void Reactor::handle_inbound(std::uint64_t reg_id, const sockaddr_in& from,
                             std::size_t name_len, std::size_t msg_len,
                             bool kernel_truncated, const std::uint8_t* data) {
  const auto it = sockets_.find(reg_id);
  if (it == sockets_.end()) return;
  NetioTransport& t = *it->second;
  if (name_len < sizeof(sockaddr_in) || from.sin_family != AF_INET) {
    if (scratch_->log_warn) {
      DAT_LOG_WARN("netio", "dropping datagram with non-IPv4 source address");
    }
    return;
  }
  const net::Endpoint src = net::make_udp_endpoint(
      ntohl(from.sin_addr.s_addr), ntohs(from.sin_port));
  Scratch::Stats& stats = scratch_->stats;
  stats.datagrams_in.fetch_add(1, std::memory_order_relaxed);
  t.counters_.bytes_received += msg_len;
  if (kernel_truncated || msg_len > options_.max_datagram) {
    ++t.counters_.truncated_datagrams;
    stats.truncated_in.fetch_add(1, std::memory_order_relaxed);
    if (scratch_->log_warn) {
      DAT_LOG_WARN("netio", "dropping truncated "
                                << msg_len << "-byte datagram from "
                                << net::endpoint_to_string(src)
                                << " (buffer is " << options_.max_datagram
                                << " bytes)");
    }
    return;
  }
  dispatch_datagram(reg_id, src, std::span<const std::uint8_t>(data, msg_len));
}

void Reactor::dispatch_datagram(std::uint64_t reg_id, net::Endpoint src,
                                std::span<const std::uint8_t> dgram) {
  Scratch::Stats& stats = scratch_->stats;
  // Between frames the registration is re-resolved: a handler may remove
  // this node (the object stays alive in the graveyard until the end of the
  // iteration, but its remaining frames must be dropped).
  const auto dispatch_frame = [&](std::span<const std::uint8_t> frame) {
    const auto it = sockets_.find(reg_id);
    if (it == sockets_.end()) return;
    NetioTransport& t = *it->second;
    net::Message::DecodeResult decoded = net::Message::try_decode(frame);
    if (!decoded.ok()) {
      ++t.counters_.decode_errors;
      if (scratch_->log_warn) {
        DAT_LOG_WARN("netio", "dropping malformed frame from "
                                  << net::endpoint_to_string(src) << ": "
                                  << decoded.error.to_string());
      }
      return;
    }
    ++t.counters_.messages_received;
    stats.frames_in.fetch_add(1, std::memory_order_relaxed);
    if (t.handler_) t.handler_(src, decoded.value());
  };

  if (net::is_batch_datagram(dgram)) {
    stats.batch_datagrams_in.fetch_add(1, std::memory_order_relaxed);
    const auto container_error = net::split_batch(dgram, dispatch_frame);
    if (container_error) {
      const auto it = sockets_.find(reg_id);
      if (it != sockets_.end()) ++it->second->counters_.decode_errors;
      if (scratch_->log_warn) {
        DAT_LOG_WARN("netio", "dropping malformed batch tail from "
                                  << net::endpoint_to_string(src) << ": "
                                  << container_error->to_string());
      }
    }
    return;
  }
  dispatch_frame(dgram);
}

void Reactor::drain_fd(std::uint64_t reg_id) {
  Scratch& s = *scratch_;
  Scratch::Stats& stats = s.stats;
  for (;;) {
    const auto it = sockets_.find(reg_id);
    if (it == sockets_.end()) return;  // removed by a handler mid-drain
    const int fd = it->second->fd_;

#if DAT_NETIO_HAVE_MMSG
    if (options_.batch_syscalls) {
      const unsigned batch = options_.recv_batch;
      for (unsigned i = 0; i < batch; ++i) {
        s.iovecs[i] = iovec{s.bufs[i].data(), s.bufs[i].size()};
        s.hdrs[i] = mmsghdr{};
        s.hdrs[i].msg_hdr.msg_name = &s.addrs[i];
        s.hdrs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
        s.hdrs[i].msg_hdr.msg_iov = &s.iovecs[i];
        s.hdrs[i].msg_hdr.msg_iovlen = 1;
      }
      const int n = ::recvmmsg(fd, s.hdrs.data(), batch,
                               MSG_DONTWAIT | MSG_TRUNC, nullptr);
      stats.recv_syscalls.fetch_add(1, std::memory_order_relaxed);
      if (n < 0) {
        const int err = errno;
        if (err == EAGAIN || err == EWOULDBLOCK) return;
        if (err == EINTR) continue;
        if (err == ECONNREFUSED) {
          // Deferred ICMP port-unreachable from an earlier send to a dead
          // peer; it does not affect this socket's ability to receive.
          continue;
        }
        if (scratch_->log_warn) {
          DAT_LOG_WARN("netio", "recvmmsg failed: " << errno_message(err));
        }
        return;
      }
      for (int i = 0; i < n; ++i) {
        handle_inbound(reg_id, s.addrs[i], s.hdrs[i].msg_hdr.msg_namelen,
                       s.hdrs[i].msg_len,
                       (s.hdrs[i].msg_hdr.msg_flags & MSG_TRUNC) != 0,
                       s.bufs[i].data());
      }
      if (n < static_cast<int>(batch)) return;  // socket drained
      continue;
    }
#endif
    // Portable fallback: one recvfrom per datagram.
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    const ssize_t n =
        ::recvfrom(fd, s.bufs[0].data(), s.bufs[0].size(),
                   MSG_DONTWAIT | MSG_TRUNC,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    stats.recv_syscalls.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;
      if (err == EINTR || err == ECONNREFUSED) continue;
      if (scratch_->log_warn) {
        DAT_LOG_WARN("netio", "recvfrom failed: " << errno_message(err));
      }
      return;
    }
    handle_inbound(reg_id, from, from_len, static_cast<std::size_t>(n),
                   static_cast<std::size_t>(n) > s.bufs[0].size(),
                   s.bufs[0].data());
  }
}

// -------------------------------------------------------------- event loop

void Reactor::iterate(std::uint64_t max_wait_us) {
  // Refresh the cached log gates once per iteration instead of per datagram.
  scratch_->log_debug = Logger::instance().enabled(LogLevel::kDebug);
  scratch_->log_warn = Logger::instance().enabled(LogLevel::kWarn);
  run_tasks();
  wheel_.advance(now_us());
  flush_all();
  reap_graveyard();

  std::uint64_t wait_us = max_wait_us;
  if (!wheel_.empty()) {
    // Bound the sleep to one wheel tick so due timers are observed with at
    // most a tick of slack.
    wait_us = std::min(wait_us, options_.timer_tick_us);
  }
  const int timeout_ms =
      static_cast<int>(std::min<std::uint64_t>(wait_us / 1000 + 1, 100));

  epoll_event events[kMaxEpollEvents];
  const int ready =
      ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout_ms);
  scratch_->stats.epoll_waits.fetch_add(1, std::memory_order_relaxed);
  if (ready < 0) {
    if (errno == EINTR) return;
    throw_errno("epoll_wait");
  }
  for (int i = 0; i < ready; ++i) {
    if (events[i].data.u64 == kEventFdTag) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const ssize_t n =
          ::read(event_fd_, &drained, sizeof drained);
      continue;
    }
    drain_fd(events[i].data.u64);
  }
  run_tasks();
  wheel_.advance(now_us());
  flush_all();
  reap_graveyard();
}

void Reactor::poll_once(std::uint64_t max_wait_us) {
  if (running()) {
    throw std::logic_error("Reactor::poll_once: shard thread is running");
  }
  iterate(max_wait_us);
}

void Reactor::run_loop() {
  loop_thread_id_.store(std::this_thread::get_id(),
                        std::memory_order_release);
  while (running_.load(std::memory_order_acquire)) {
    iterate(100'000);
  }
  loop_thread_id_.store(std::thread::id{}, std::memory_order_release);
}

void Reactor::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  thread_ = std::thread([this] { run_loop(); });
}

void Reactor::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  post([] {});  // wake the loop so it observes running_ == false
  if (thread_.joinable()) thread_.join();
  // Drain stragglers on the caller: posted promises must still resolve and
  // pending coalesced datagrams must still hit the wire.
  run_tasks();
  flush_all();
  reap_graveyard();
}

ReactorCounters Reactor::counters() const {
  const Scratch::Stats& s = scratch_->stats;
  ReactorCounters c;
  c.epoll_waits = s.epoll_waits.load(std::memory_order_relaxed);
  c.recv_syscalls = s.recv_syscalls.load(std::memory_order_relaxed);
  c.send_syscalls = s.send_syscalls.load(std::memory_order_relaxed);
  c.datagrams_in = s.datagrams_in.load(std::memory_order_relaxed);
  c.datagrams_out = s.datagrams_out.load(std::memory_order_relaxed);
  c.frames_in = s.frames_in.load(std::memory_order_relaxed);
  c.frames_out = s.frames_out.load(std::memory_order_relaxed);
  c.coalesced_datagrams_out =
      s.coalesced_datagrams_out.load(std::memory_order_relaxed);
  c.batch_datagrams_in = s.batch_datagrams_in.load(std::memory_order_relaxed);
  c.truncated_in = s.truncated_in.load(std::memory_order_relaxed);
  c.send_errors = s.send_errors.load(std::memory_order_relaxed);
  c.tasks_run = s.tasks_run.load(std::memory_order_relaxed);
  return c;
}

std::size_t Reactor::socket_count() const { return sockets_.size(); }

}  // namespace dat::netio
