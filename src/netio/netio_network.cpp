#include "netio/netio_network.hpp"

namespace dat::netio {

NetioNetwork::NetioNetwork(const ReactorOptions& options)
    : reactor_(options) {}

NetioTransport& NetioNetwork::add_node(std::uint16_t port) {
  return reactor_.add_socket(port);
}

void NetioNetwork::remove_node(net::Endpoint ep) {
  reactor_.remove_socket(ep);
}

std::uint64_t NetioNetwork::now_us() const { return reactor_.now_us(); }

void NetioNetwork::run_for(std::uint64_t duration_us) {
  const std::uint64_t deadline = now_us() + duration_us;
  while (now_us() < deadline) {
    reactor_.poll_once(deadline - now_us());
  }
}

bool NetioNetwork::run_while(const std::function<bool()>& keep_going,
                             std::uint64_t max_us) {
  const std::uint64_t deadline = now_us() + max_us;
  bool met = true;
  while (keep_going()) {
    if (now_us() >= deadline) {
      met = false;
      break;
    }
    reactor_.poll_once(deadline - now_us());
  }
  return met;
}

}  // namespace dat::netio
