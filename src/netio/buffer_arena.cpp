#include "netio/buffer_arena.hpp"

namespace dat::netio {

BufferArena::BufferArena(std::size_t buffer_bytes)
    : buffer_bytes_(buffer_bytes) {}

std::vector<std::uint8_t> BufferArena::acquire() {
  if (!pool_.empty()) {
    std::vector<std::uint8_t> buf = std::move(pool_.back());
    pool_.pop_back();
    buf.clear();
    return buf;
  }
  ++allocated_;
  std::vector<std::uint8_t> buf;
  buf.reserve(buffer_bytes_);
  return buf;
}

void BufferArena::release(std::vector<std::uint8_t>&& buf) {
  buf.clear();
  pool_.push_back(std::move(buf));
}

}  // namespace dat::netio
