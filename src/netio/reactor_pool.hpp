#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "netio/reactor.hpp"

namespace dat::netio {

struct ReactorPoolOptions {
  /// Number of event-loop shards (threads). Sockets are spread round-robin.
  std::size_t shards = 1;
  /// Per-shard tuning, applied to every shard.
  ReactorOptions reactor;
};

/// Fixed set of threaded Reactor shards sharing one time epoch. Nodes are
/// assigned to shards round-robin at add_node() time and stay pinned: all of
/// a node's receive/timer callbacks run on its shard's thread, which is what
/// keeps the per-node protocol stacks (RpcManager, DatNode) lock-free.
class ReactorPool {
 public:
  explicit ReactorPool(const ReactorPoolOptions& options);
  ~ReactorPool();

  ReactorPool(const ReactorPool&) = delete;
  ReactorPool& operator=(const ReactorPool&) = delete;

  /// Binds a new socket on the next shard (round-robin). Thread-safe.
  NetioTransport& add_node();
  /// Removes a node from whichever shard hosts it. Thread-safe; no-op for
  /// unknown endpoints.
  void remove_node(net::Endpoint ep);

  /// Starts/stops every shard thread.
  void start();
  void stop();

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] Reactor& shard(std::size_t index) { return *shards_[index]; }
  /// Shard hosting `ep`; returns nullptr for unknown endpoints.
  [[nodiscard]] Reactor* shard_of(net::Endpoint ep);

  /// Microseconds since the pool's shared epoch.
  [[nodiscard]] std::uint64_t now_us() const;

  /// Sum of all shards' counters.
  [[nodiscard]] ReactorCounters counters() const;

 private:
  std::vector<std::unique_ptr<Reactor>> shards_;
  mutable std::mutex mutex_;
  std::unordered_map<net::Endpoint, std::size_t> shard_index_;
  std::size_t next_shard_ = 0;
};

}  // namespace dat::netio
