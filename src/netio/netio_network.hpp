#pragma once

#include <cstdint>
#include <functional>

#include "net/node_host.hpp"
#include "netio/reactor.hpp"

namespace dat::netio {

/// NodeHostNetwork facade over a single Reactor driven inline on the
/// caller's thread — the drop-in netio replacement for the legacy
/// UdpNetwork poll loop. UdpCluster (and anything else written against the
/// run_for/run_while surface) gets epoll, syscall batching and write
/// coalescing without any threading change; the multi-shard threaded mode
/// is ReactorPool's job.
class NetioNetwork final : public net::NodeHostNetwork {
 public:
  explicit NetioNetwork(const ReactorOptions& options = {});

  NetioTransport& add_node(std::uint16_t port) override;
  using NodeHostNetwork::add_node;
  void remove_node(net::Endpoint ep) override;
  [[nodiscard]] std::uint64_t now_us() const override;
  void run_for(std::uint64_t duration_us) override;
  bool run_while(const std::function<bool()>& keep_going,
                 std::uint64_t max_us) override;

  [[nodiscard]] Reactor& reactor() noexcept { return reactor_; }
  [[nodiscard]] const Reactor& reactor() const noexcept { return reactor_; }

 private:
  Reactor reactor_;
};

}  // namespace dat::netio
