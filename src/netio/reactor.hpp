#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/endpoint.hpp"
#include "net/transport.hpp"
#include "netio/buffer_arena.hpp"
#include "netio/timer_wheel.hpp"
#include "obs/metrics.hpp"

struct sockaddr_in;  // <netinet/in.h>, included by reactor.cpp only

namespace dat::netio {

class Reactor;

/// Tuning knobs of one reactor shard. The defaults are the fast path:
/// write coalescing on, batched syscalls on (recvmmsg/sendmmsg when the
/// platform has them — detected at configure time — with a portable
/// recvfrom/sendto fallback otherwise).
struct ReactorOptions {
  /// Pack multiple frames bound for the same destination into one batch
  /// datagram (net/frame.hpp). Receivers on either backend split them.
  bool coalesce = true;
  /// Drain and flush sockets with recvmmsg/sendmmsg where compiled in;
  /// false forces the portable one-datagram-per-syscall path everywhere
  /// (also the measurement baseline for the throughput bench).
  bool batch_syscalls = true;
  /// Datagrams drained per recvmmsg call.
  unsigned recv_batch = 32;
  /// Receive buffer size and coalescing limit per datagram. The default
  /// covers the largest possible UDP payload; tests shrink it to exercise
  /// kernel truncation (MSG_TRUNC) handling.
  std::size_t max_datagram = 64 * 1024;
  /// Requested SO_RCVBUF per socket (the kernel caps it at rmem_max);
  /// 0 keeps the system default.
  int so_rcvbuf = 1 << 22;
  /// Timer wheel granularity and size.
  std::uint64_t timer_tick_us = 1024;
  std::size_t timer_slots = 256;
  /// Optional shared metrics registry (one per cluster/pool). When set, the
  /// reactor publishes its I/O counters as a snapshot-time collector and
  /// feeds a per-shard coalescer batch-size histogram — all series labeled
  /// {shard=metrics_shard}. The registry must outlive the reactor.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_shard = "0";
};

/// Whether this build selected the recvmmsg/sendmmsg batched-syscall paths
/// at configure time (DAT_NETIO_HAVE_MMSG).
[[nodiscard]] bool mmsg_compiled() noexcept;

/// Plain-value snapshot of a shard's I/O counters.
struct ReactorCounters {
  std::uint64_t epoll_waits = 0;
  std::uint64_t recv_syscalls = 0;
  std::uint64_t send_syscalls = 0;
  std::uint64_t datagrams_in = 0;
  std::uint64_t datagrams_out = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  /// Outbound datagrams that carried more than one coalesced frame.
  std::uint64_t coalesced_datagrams_out = 0;
  /// Inbound datagrams that were batch containers.
  std::uint64_t batch_datagrams_in = 0;
  std::uint64_t truncated_in = 0;
  std::uint64_t send_errors = 0;
  std::uint64_t tasks_run = 0;

  ReactorCounters& operator+=(const ReactorCounters& other) noexcept;
};

/// Transport bound to one UDP socket hosted on a Reactor shard; created via
/// Reactor::add_socket() or ReactorPool::add_node().
///
/// Threading contract: send(), set_receive_handler() and the inherited
/// counters are confined to the shard — call them from this socket's
/// receive/timer callbacks (which the shard thread runs), from tasks
/// post()ed to the shard, or while the reactor is driven inline.
/// set_timer/cancel_timer/now_us are safe from any thread.
class NetioTransport final : public net::Transport {
 public:
  ~NetioTransport() override;

  NetioTransport(const NetioTransport&) = delete;
  NetioTransport& operator=(const NetioTransport&) = delete;

  [[nodiscard]] net::Endpoint local() const override { return self_; }
  void send(net::Endpoint to, const net::Message& msg) override;
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }
  net::TimerId set_timer(std::uint64_t delay_us,
                         std::function<void()> cb) override;
  void cancel_timer(net::TimerId id) override;
  [[nodiscard]] std::uint64_t now_us() const override;

 private:
  friend class Reactor;

  /// One outbound datagram being assembled (or queued) for `to`. With
  /// coalescing a single frame stays raw; from the second frame on, the
  /// bytes are a batch container (net/frame.hpp).
  struct PendingDatagram {
    net::Endpoint to = net::kNullEndpoint;
    std::vector<std::uint8_t> bytes;
    unsigned frames = 0;
  };

  NetioTransport(Reactor& reactor, int fd, net::Endpoint self,
                 std::uint64_t reg_id);

  Reactor& reactor_;
  int fd_;
  net::Endpoint self_;
  std::uint64_t reg_id_;
  ReceiveHandler handler_;
  /// Write coalescer state: per-destination open datagrams plus the queue
  /// of datagrams ready for the next flush.
  std::unordered_map<net::Endpoint, PendingDatagram> open_;
  std::vector<PendingDatagram> outq_;
  bool flush_queued_ = false;
};

/// One epoll event-loop shard: hosts a set of UDP sockets, a buffer arena,
/// a timer wheel and a cross-thread task queue. Two driving modes:
///
///  - inline: the owner calls poll_once() from its own thread (NetioNetwork
///    wraps this into the legacy run_for/run_while surface);
///  - threaded: start() spawns the shard thread, stop() joins it
///    (ReactorPool runs N of these for the multi-shard configuration).
///
/// Receive path: epoll_wait -> recvmmsg bursts into arena buffers -> batch
/// split -> hardened Message::try_decode -> handler upcall. Send path:
/// frames coalesce per destination and every pending datagram of a socket
/// is flushed with one sendmmsg at the end of the loop iteration, so an
/// aggregation wave of k same-parent updates costs one syscall and one
/// packet instead of k of each.
class Reactor {
 public:
  explicit Reactor(const ReactorOptions& options,
                   std::uint64_t t0_steady_us = 0);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Binds a new loopback UDP socket and registers it with this shard.
  /// Port 0 asks the OS for one; a nonzero port is bound with SO_REUSEADDR
  /// so a restarted daemon can reclaim its address immediately.
  /// Thread-safe: marshalled onto the shard thread when it is running.
  NetioTransport& add_socket(std::uint16_t port = 0);

  /// Unregisters and destroys the socket. Destruction is deferred to the
  /// end of the current loop iteration, so a handler may remove its own
  /// node. Thread-safe like add_socket().
  void remove_socket(net::Endpoint ep);

  /// Spawns the shard thread. No-op if already running.
  void start();
  /// Stops and joins the shard thread, then drains any posted tasks on the
  /// calling thread. No-op if not running.
  void stop();
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Runs one loop iteration on the calling thread, blocking in epoll for
  /// at most max_wait_us. Must not be mixed with start().
  void poll_once(std::uint64_t max_wait_us);

  /// Enqueues `fn` to run on the shard thread (or the next poll_once) and
  /// wakes the loop. Thread-safe.
  void post(std::function<void()> fn);

  /// Timer surface shared by every socket on the shard; safe from any
  /// thread. Callbacks fire on the shard thread.
  net::TimerId set_timer(std::uint64_t delay_us, std::function<void()> cb);
  void cancel_timer(net::TimerId id);

  /// Microseconds since the reactor epoch (shared across a pool's shards).
  [[nodiscard]] std::uint64_t now_us() const;

  [[nodiscard]] ReactorCounters counters() const;
  [[nodiscard]] const ReactorOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::size_t socket_count() const;

 private:
  friend class NetioTransport;

  /// Opaque bag holding the atomic counters plus the preallocated
  /// recvmmsg/sendmmsg scratch arrays (mmsghdr/iovec/sockaddr vectors),
  /// kept out of the header so <sys/socket.h> internals stay in the .cpp.
  struct Scratch;

  void run_loop();
  void iterate(std::uint64_t max_wait_us);
  void run_tasks();
  void reap_graveyard();
  [[nodiscard]] bool on_loop_thread() const;

  NetioTransport& do_add_socket(std::uint16_t port);
  void do_remove_socket(net::Endpoint ep);

  void enqueue_send(NetioTransport& t, net::Endpoint to,
                    const net::Message& msg);
  void seal_open_datagrams(NetioTransport& t);
  void flush_transport(NetioTransport& t);
  void flush_all();
  bool send_datagram(int fd, net::Endpoint to,
                     std::span<const std::uint8_t> bytes);
  void drain_fd(std::uint64_t reg_id);
  void dispatch_datagram(std::uint64_t reg_id, net::Endpoint src,
                         std::span<const std::uint8_t> dgram);
  void handle_inbound(std::uint64_t reg_id, const ::sockaddr_in& from,
                      std::size_t name_len, std::size_t msg_len,
                      bool kernel_truncated, const std::uint8_t* data);

  ReactorOptions options_;
  std::uint64_t t0_us_;
  /// Coalescer batch-size histogram (frames per outbound datagram) when a
  /// metrics registry is attached; observed on the flush path.
  obs::Histogram* frames_per_datagram_ = nullptr;
  std::uint64_t metrics_collector_ = 0;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  TimerWheel wheel_;
  BufferArena arena_;

  std::unordered_map<std::uint64_t, std::unique_ptr<NetioTransport>> sockets_;
  std::unordered_map<net::Endpoint, std::uint64_t> reg_of_;
  std::vector<std::unique_ptr<NetioTransport>> graveyard_;
  std::vector<NetioTransport*> flush_list_;
  std::uint64_t next_reg_id_ = 1;

  std::mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_;

  std::atomic<bool> running_{false};
  std::thread thread_;
  std::atomic<std::thread::id> loop_thread_id_{};

  std::unique_ptr<Scratch> scratch_;
};

}  // namespace dat::netio
