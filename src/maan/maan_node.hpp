#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "chord/node.hpp"
#include "maan/attribute.hpp"

namespace dat::maan {

struct MaanOptions {
  /// Budget of query RPCs (point lookups): adaptive backoff under loss.
  /// Stores derive a tight fixed budget from it — registrations are soft
  /// state that producers refresh periodically, so the refresh is the retry.
  net::RpcManager::Options rpc = net::RpcOptions::adaptive();
  /// Query abandonment timeout while a range sweep is circulating.
  std::uint64_t query_timeout_us = 5'000'000;
  /// Safety cap on successor-sweep length (k in O(log n + k)).
  std::uint32_t max_sweep_hops = 100'000;
  /// Registrations are soft state: entries older than this are dropped
  /// unless re-registered (producers refresh periodically). 0 disables
  /// expiry.
  std::uint64_t registration_ttl_us = 0;
};

/// Result of a resolved query, with the hop accounting the paper analyzes:
/// `routing_hops` to reach successor(H(l)) (O(log n)) plus `sweep_hops`
/// along the successor chain (k).
struct QueryResult {
  std::vector<Resource> resources;
  unsigned routing_hops = 0;
  unsigned sweep_hops = 0;
  bool complete = false;  ///< false if the sweep timed out midway
};

/// The MAAN indexing layer of one node (paper Sec. 2.2): resources are
/// stored on successor(H_a(v)) for every attribute value, numeric values
/// use a locality-preserving hash, and range queries sweep the successor
/// chain between successor(H(l)) and successor(H(u)). Multi-attribute
/// queries are resolved with the single-attribute-dominated approach: only
/// the sub-query with minimal selectivity is iterated, every other
/// predicate is filtered locally against the stored full descriptors.
class MaanNode {
 public:
  MaanNode(chord::Node& chord, const Schema& schema, MaanOptions options);
  ~MaanNode();

  MaanNode(const MaanNode&) = delete;
  MaanNode& operator=(const MaanNode&) = delete;

  /// Registers (or refreshes) `resource` under every attribute it carries.
  /// `done(ok, total_routing_hops)` fires after all per-attribute stores
  /// complete; hops is the sum over attributes (the paper's O(m log n)).
  void register_resource(const Resource& resource,
                         std::function<void(bool, unsigned)> done);

  /// Removes a resource previously registered by id.
  void unregister_resource(const std::string& resource_id,
                           std::function<void(bool)> done);

  /// Single-attribute numeric range query: attr in [lo, hi].
  using QueryHandler = std::function<void(QueryResult)>;
  void range_query(const std::string& attr, double lo, double hi,
                   QueryHandler handler);

  /// Multi-attribute range query (all predicates must hold). Numeric
  /// predicates must reference schema attributes; the minimum-selectivity
  /// numeric predicate is chosen as the dominated iteration axis.
  void multi_query(const std::vector<RangePredicate>& predicates,
                   QueryHandler handler);

  /// String equality query: attr == value (single successor lookup).
  void exact_query(const std::string& attr, const std::string& value,
                   QueryHandler handler);

  /// Local store introspection (tests / diagnostics). Counts live
  /// (non-expired) entries only.
  [[nodiscard]] std::size_t local_entries() const;

  /// Drops every expired local registration now (expiry is otherwise lazy,
  /// applied when an entry is touched by a query).
  std::size_t prune_expired();

  [[nodiscard]] chord::Node& chord() noexcept { return chord_; }
  [[nodiscard]] const Schema& schema() const noexcept { return schema_; }

 private:
  struct PendingQuery {
    QueryHandler handler;
    unsigned routing_hops = 0;
    net::TimerId timer = 0;
  };

  void register_handlers();
  void handle_store(net::Endpoint from, net::Reader& req, net::Writer& reply);
  void handle_remove(net::Endpoint from, net::Reader& req, net::Writer& reply);
  void handle_sweep(net::Endpoint from, net::Reader& msg);
  void handle_sweep_result(net::Endpoint from, net::Reader& msg);

  /// Collects local matches for the dominated predicate + filters, then
  /// forwards the sweep or replies to the originator. `start_key` is the
  /// hashed lower bound, `start_ep` the first node of the sweep (null on
  /// the first hop) — together they make the degenerate full-circle sweep
  /// terminate exactly once around.
  void process_sweep(const std::string& attr, Id start_key, Id end_key,
                     const std::vector<RangePredicate>& predicates,
                     std::uint64_t qid, net::Endpoint origin,
                     net::Endpoint start_ep, std::vector<Resource> acc,
                     std::uint32_t hops);

  void start_sweep(const std::string& attr, double lo, double hi,
                   std::vector<RangePredicate> predicates,
                   QueryHandler handler);

  chord::Node& chord_;
  const Schema& schema_;
  MaanOptions options_;

  struct StoredResource {
    Resource resource;
    std::uint64_t registered_at_us = 0;
  };
  [[nodiscard]] bool expired(const StoredResource& entry) const;

  /// Local index: attribute -> (value-id on the circle -> resources).
  /// Ordered by hashed value so the locality-preserving layout is explicit.
  std::map<std::string, std::multimap<Id, StoredResource>> store_;

  std::unordered_map<std::uint64_t, PendingQuery> pending_;
  std::uint64_t next_qid_ = 1;
  bool alive_ = true;
};

}  // namespace dat::maan
