#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "common/id_space.hpp"
#include "net/codec.hpp"

namespace dat::maan {

/// An attribute value: numeric (CPU speed, memory size, usage %) or string
/// (OS name, architecture).
using AttrValue = std::variant<double, std::string>;

/// Per-attribute configuration. Numeric attributes declare their expected
/// [lo, hi] range so the locality-preserving hash can spread them over the
/// identifier circle; string attributes are hashed uniformly (SHA-1).
struct AttributeSchema {
  std::string name;
  bool numeric = true;
  double lo = 0.0;   ///< numeric only
  double hi = 1.0;   ///< numeric only
};

/// The registry of attribute schemas shared by every MAAN node (deployment
/// configuration, agreed out of band as in the paper's MAAN).
class Schema {
 public:
  void add(AttributeSchema schema);

  [[nodiscard]] const AttributeSchema& get(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const {
    return attrs_.contains(name);
  }

  /// MAAN's locality-preserving hash H_a(v): monotone in v for numeric
  /// attributes, so numerically close values land on nearby identifiers
  /// (paper Sec. 2.2). Values outside [lo, hi] clamp to the ends. String
  /// values use SHA-1 (uniform, no locality).
  [[nodiscard]] Id hash(const std::string& attr, const AttrValue& value,
                        const IdSpace& space) const;

  /// Fraction of the identifier circle a numeric range query [lo, hi]
  /// covers — the query's selectivity s (paper Sec. 2.2, s_min).
  [[nodiscard]] double selectivity(const std::string& attr, double lo,
                                   double hi) const;

 private:
  std::map<std::string, AttributeSchema> attrs_;
};

/// A Grid resource as MAAN sees it: a unique name plus attribute-value
/// pairs, e.g. ("node42.usc.edu", {<cpu-speed, 2.8e9>, <memory-size, 1e9>,
/// <cpu-usage, 0.95>}).
struct Resource {
  std::string id;
  std::vector<std::pair<std::string, AttrValue>> attributes;

  [[nodiscard]] std::optional<AttrValue> attribute(
      const std::string& name) const;

  friend bool operator==(const Resource& a, const Resource& b) {
    return a.id == b.id && a.attributes == b.attributes;
  }
};

void write_attr_value(net::Writer& w, const AttrValue& v);
[[nodiscard]] AttrValue read_attr_value(net::Reader& r);

void write_resource(net::Writer& w, const Resource& resource);
[[nodiscard]] Resource read_resource(net::Reader& r);

/// One sub-query of a multi-attribute range query: attr in [lo, hi] for
/// numerics, attr == exact for strings.
struct RangePredicate {
  std::string attr;
  double lo = 0.0;
  double hi = 0.0;
  std::optional<std::string> exact;  ///< set for string equality predicates

  [[nodiscard]] bool matches(const Resource& resource) const;
};

void write_predicate(net::Writer& w, const RangePredicate& p);
[[nodiscard]] RangePredicate read_predicate(net::Reader& r);

}  // namespace dat::maan
