#include "maan/attribute.hpp"

#include <algorithm>
#include <cmath>

#include "common/sha1.hpp"

namespace dat::maan {

void Schema::add(AttributeSchema schema) {
  if (schema.name.empty()) {
    throw std::invalid_argument("Schema::add: empty attribute name");
  }
  if (schema.numeric && !(schema.hi > schema.lo)) {
    throw std::invalid_argument("Schema::add: numeric range must be nonempty");
  }
  attrs_[schema.name] = std::move(schema);
}

const AttributeSchema& Schema::get(const std::string& name) const {
  const auto it = attrs_.find(name);
  if (it == attrs_.end()) {
    throw std::out_of_range("Schema: unknown attribute " + name);
  }
  return it->second;
}

Id Schema::hash(const std::string& attr, const AttrValue& value,
                const IdSpace& space) const {
  const AttributeSchema& schema = get(attr);
  if (schema.numeric) {
    if (!std::holds_alternative<double>(value)) {
      throw std::invalid_argument("Schema::hash: numeric attribute " + attr +
                                  " got a string value");
    }
    const double v =
        std::clamp(std::get<double>(value), schema.lo, schema.hi);
    const double frac = (v - schema.lo) / (schema.hi - schema.lo);
    // Monotone map onto [0, mask]: the locality-preserving hash.
    const auto scaled = static_cast<long double>(frac) *
                        static_cast<long double>(space.mask());
    return static_cast<Id>(scaled) & space.mask();
  }
  if (!std::holds_alternative<std::string>(value)) {
    throw std::invalid_argument("Schema::hash: string attribute " + attr +
                                " got a numeric value");
  }
  return Sha1::hash_to_id("attr:" + attr + ":" + std::get<std::string>(value),
                          space);
}

double Schema::selectivity(const std::string& attr, double lo,
                           double hi) const {
  const AttributeSchema& schema = get(attr);
  if (!schema.numeric) {
    throw std::invalid_argument("Schema::selectivity: " + attr +
                                " is not numeric");
  }
  if (hi < lo) return 0.0;
  const double clamped_lo = std::clamp(lo, schema.lo, schema.hi);
  const double clamped_hi = std::clamp(hi, schema.lo, schema.hi);
  return (clamped_hi - clamped_lo) / (schema.hi - schema.lo);
}

std::optional<AttrValue> Resource::attribute(const std::string& name) const {
  for (const auto& [attr, value] : attributes) {
    if (attr == name) return value;
  }
  return std::nullopt;
}

void write_attr_value(net::Writer& w, const AttrValue& v) {
  if (std::holds_alternative<double>(v)) {
    w.u8(0);
    w.f64(std::get<double>(v));
  } else {
    w.u8(1);
    w.str(std::get<std::string>(v));
  }
}

AttrValue read_attr_value(net::Reader& r) {
  const std::uint8_t tag = r.u8();
  if (tag == 0) return AttrValue{r.f64()};
  if (tag == 1) return AttrValue{r.str()};
  throw net::CodecError({net::DecodeErrorCode::kBadKind, r.position() - 1},
                        "read_attr_value");
}

void write_resource(net::Writer& w, const Resource& resource) {
  w.str(resource.id);
  w.u32(static_cast<std::uint32_t>(resource.attributes.size()));
  for (const auto& [attr, value] : resource.attributes) {
    w.str(attr);
    write_attr_value(w, value);
  }
}

Resource read_resource(net::Reader& r) {
  Resource out;
  out.id = r.str();
  const auto count = r.u32();
  out.attributes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string attr = r.str();
    out.attributes.emplace_back(std::move(attr), read_attr_value(r));
  }
  return out;
}

bool RangePredicate::matches(const Resource& resource) const {
  const auto value = resource.attribute(attr);
  if (!value) return false;
  if (exact) {
    return std::holds_alternative<std::string>(*value) &&
           std::get<std::string>(*value) == *exact;
  }
  if (!std::holds_alternative<double>(*value)) return false;
  const double v = std::get<double>(*value);
  return v >= lo && v <= hi;
}

void write_predicate(net::Writer& w, const RangePredicate& p) {
  w.str(p.attr);
  w.f64(p.lo);
  w.f64(p.hi);
  w.boolean(p.exact.has_value());
  if (p.exact) w.str(*p.exact);
}

RangePredicate read_predicate(net::Reader& r) {
  RangePredicate p;
  p.attr = r.str();
  p.lo = r.f64();
  p.hi = r.f64();
  if (r.boolean()) p.exact = r.str();
  return p;
}

}  // namespace dat::maan
