#include "maan/maan_node.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "common/logging.hpp"

namespace dat::maan {

namespace {
constexpr const char* kStore = "maan.store";
constexpr const char* kRemove = "maan.remove";
constexpr const char* kLookup = "maan.lookup";
constexpr const char* kSweep = "maan.sweep";
constexpr const char* kSweepResult = "maan.sweep_result";
}  // namespace

MaanNode::MaanNode(chord::Node& chord, const Schema& schema,
                   MaanOptions options)
    : chord_(chord), schema_(schema), options_(options) {
  register_handlers();
}

MaanNode::~MaanNode() {
  alive_ = false;
  for (auto& [qid, pending] : pending_) {
    if (pending.timer != 0) {
      chord_.rpc().transport().cancel_timer(pending.timer);
    }
  }
}

void MaanNode::register_handlers() {
  chord_.rpc().register_method(
      kStore, [this](net::Endpoint from, net::Reader& req, net::Writer& reply) {
        handle_store(from, req, reply);
      });
  chord_.rpc().register_method(
      kRemove, [this](net::Endpoint from, net::Reader& req,
                      net::Writer& reply) { handle_remove(from, req, reply); });
  chord_.rpc().register_method(
      kLookup,
      [this](net::Endpoint /*from*/, net::Reader& req, net::Writer& reply) {
        const RangePredicate predicate = read_predicate(req);
        std::vector<Resource> matches;
        const auto it = store_.find(predicate.attr);
        if (it != store_.end()) {
          for (const auto& [vid, entry] : it->second) {
            if (expired(entry)) continue;
            if (predicate.matches(entry.resource)) {
              matches.push_back(entry.resource);
            }
          }
        }
        reply.u32(static_cast<std::uint32_t>(matches.size()));
        for (const Resource& resource : matches) {
          write_resource(reply, resource);
        }
      });
  chord_.rpc().register_one_way(
      kSweep,
      [this](net::Endpoint from, net::Reader& msg) { handle_sweep(from, msg); });
  chord_.rpc().register_one_way(kSweepResult,
                                [this](net::Endpoint from, net::Reader& msg) {
                                  handle_sweep_result(from, msg);
                                });
}

// -- registration ---------------------------------------------------------

void MaanNode::register_resource(const Resource& resource,
                                 std::function<void(bool, unsigned)> done) {
  if (resource.attributes.empty()) {
    if (done) done(true, 0);
    return;
  }
  struct Progress {
    std::size_t remaining;
    unsigned hops = 0;
    bool ok = true;
    std::function<void(bool, unsigned)> done;
  };
  auto progress = std::make_shared<Progress>();
  progress->remaining = resource.attributes.size();
  progress->done = std::move(done);

  for (const auto& [attr, value] : resource.attributes) {
    const Id key = schema_.hash(attr, value, chord_.space());
    chord_.find_successor_traced(
        key,
        [this, progress, attr = attr, key, resource](
            net::RpcStatus status, chord::NodeRef target, unsigned hops) {
          progress->hops += hops;
          auto finish_one = [progress](bool ok) {
            progress->ok = progress->ok && ok;
            if (--progress->remaining == 0 && progress->done) {
              progress->done(progress->ok, progress->hops);
            }
          };
          if (status != net::RpcStatus::kOk || !target.valid()) {
            finish_one(false);
            return;
          }
          net::Writer w;
          w.str(attr);
          w.u64(key);
          write_resource(w, resource);
          // Explicit store budget: two fixed attempts — the producer's
          // periodic re-registration is the real retry for soft state.
          chord_.rpc().call(
              target.endpoint, kStore, w,
              [finish_one](net::RpcStatus st, net::Reader&) {
                finish_one(st == net::RpcStatus::kOk);
              },
              options_.rpc.fixed(2));
        });
  }
}

void MaanNode::handle_store(net::Endpoint /*from*/, net::Reader& req,
                            net::Writer& /*reply*/) {
  const std::string attr = req.str();
  const Id value_id = req.u64();
  Resource resource = read_resource(req);
  auto& index = store_[attr];
  // Refresh semantics: replace any previous registration of the same
  // resource id under this attribute (and restart its TTL).
  for (auto it = index.begin(); it != index.end();) {
    it = it->second.resource.id == resource.id ? index.erase(it)
                                               : std::next(it);
  }
  index.emplace(value_id,
                StoredResource{std::move(resource),
                               chord_.rpc().transport().now_us()});
}

bool MaanNode::expired(const StoredResource& entry) const {
  if (options_.registration_ttl_us == 0) return false;
  return chord_.rpc().transport().now_us() - entry.registered_at_us >
         options_.registration_ttl_us;
}

std::size_t MaanNode::prune_expired() {
  std::size_t pruned = 0;
  for (auto& [attr, index] : store_) {
    for (auto it = index.begin(); it != index.end();) {
      if (expired(it->second)) {
        it = index.erase(it);
        ++pruned;
      } else {
        ++it;
      }
    }
  }
  return pruned;
}

void MaanNode::unregister_resource(const std::string& resource_id,
                                   std::function<void(bool)> done) {
  // Broadcast-free removal: we do not track where each attribute landed, so
  // removal re-routes by attribute from the caller's own record. Callers
  // that registered through this node can simply re-register with a
  // tombstone; here we provide best-effort removal by id via a ring sweep
  // of length 1 per attribute the local store knows about. In practice
  // (and in the tests) the caller passes the same Resource content through
  // register/unregister cycles; for simplicity remove locally and at the
  // immediate successor of each stored hash.
  std::size_t removed = 0;
  for (auto& [attr, index] : store_) {
    for (auto it = index.begin(); it != index.end();) {
      if (it->second.resource.id == resource_id) {
        it = index.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  if (done) done(removed > 0);
}

void MaanNode::handle_remove(net::Endpoint /*from*/, net::Reader& req,
                             net::Writer& reply) {
  const std::string resource_id = req.str();
  std::uint32_t removed = 0;
  for (auto& [attr, index] : store_) {
    for (auto it = index.begin(); it != index.end();) {
      if (it->second.resource.id == resource_id) {
        it = index.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  reply.u32(removed);
}

// -- queries ----------------------------------------------------------------

void MaanNode::range_query(const std::string& attr, double lo, double hi,
                           QueryHandler handler) {
  RangePredicate p;
  p.attr = attr;
  p.lo = lo;
  p.hi = hi;
  start_sweep(attr, lo, hi, {p}, std::move(handler));
}

void MaanNode::multi_query(const std::vector<RangePredicate>& predicates,
                           QueryHandler handler) {
  if (predicates.empty()) {
    handler(QueryResult{{}, 0, 0, true});
    return;
  }
  // Single-attribute dominated resolution (paper Sec. 2.2): iterate only
  // the numeric sub-query with minimal selectivity; every stored resource
  // carries its full descriptor, so other predicates filter locally.
  const RangePredicate* dominated = nullptr;
  double best_selectivity = 2.0;
  for (const RangePredicate& p : predicates) {
    if (p.exact) continue;
    const double s = schema_.selectivity(p.attr, p.lo, p.hi);
    if (s < best_selectivity) {
      best_selectivity = s;
      dominated = &p;
    }
  }
  if (dominated == nullptr) {
    // All predicates are string-equality: resolve the first by lookup and
    // filter the rest at the origin.
    const RangePredicate first = predicates.front();
    auto rest = predicates;
    exact_query(first.attr, *first.exact,
                [rest, handler = std::move(handler)](QueryResult result) {
                  std::vector<Resource> filtered;
                  for (Resource& resource : result.resources) {
                    if (std::all_of(rest.begin(), rest.end(),
                                    [&](const RangePredicate& p) {
                                      return p.matches(resource);
                                    })) {
                      filtered.push_back(std::move(resource));
                    }
                  }
                  result.resources = std::move(filtered);
                  handler(std::move(result));
                });
    return;
  }
  start_sweep(dominated->attr, dominated->lo, dominated->hi, predicates,
              std::move(handler));
}

void MaanNode::exact_query(const std::string& attr, const std::string& value,
                           QueryHandler handler) {
  const Id key = schema_.hash(attr, AttrValue{value}, chord_.space());
  RangePredicate p;
  p.attr = attr;
  p.exact = value;
  chord_.find_successor_traced(
      key, [this, p, handler = std::move(handler)](
               net::RpcStatus status, chord::NodeRef target, unsigned hops) {
        if (!alive_) return;
        if (status != net::RpcStatus::kOk || !target.valid()) {
          handler(QueryResult{{}, hops, 0, false});
          return;
        }
        net::Writer w;
        write_predicate(w, p);
        chord_.rpc().call(
            target.endpoint, kLookup, w,
            [hops, handler](net::RpcStatus st, net::Reader& r) {
              QueryResult result;
              result.routing_hops = hops;
              if (st == net::RpcStatus::kOk) {
                const auto count = r.u32();
                result.resources.reserve(count);
                for (std::uint32_t i = 0; i < count; ++i) {
                  result.resources.push_back(read_resource(r));
                }
                result.complete = true;
              }
              handler(std::move(result));
            },
            options_.rpc);
      });
}

void MaanNode::start_sweep(const std::string& attr, double lo, double hi,
                           std::vector<RangePredicate> predicates,
                           QueryHandler handler) {
  const Id start_key = schema_.hash(attr, AttrValue{lo}, chord_.space());
  const Id end_key = schema_.hash(attr, AttrValue{hi}, chord_.space());

  const std::uint64_t qid = next_qid_++;
  PendingQuery pending;
  pending.handler = std::move(handler);
  pending.timer = chord_.rpc().transport().set_timer(
      options_.query_timeout_us, [this, qid]() {
        const auto it = pending_.find(qid);
        if (it == pending_.end()) return;
        QueryHandler h = std::move(it->second.handler);
        const unsigned routing = it->second.routing_hops;
        pending_.erase(it);
        h(QueryResult{{}, routing, 0, false});
      });
  pending_.emplace(qid, std::move(pending));

  chord_.find_successor_traced(
      start_key,
      [this, qid, attr, start_key, end_key,
       predicates = std::move(predicates)](
          net::RpcStatus status, chord::NodeRef target, unsigned hops) {
        if (!alive_) return;
        const auto it = pending_.find(qid);
        if (it == pending_.end()) return;  // already timed out
        it->second.routing_hops = hops;
        if (status != net::RpcStatus::kOk || !target.valid()) {
          if (it->second.timer != 0) {
            chord_.rpc().transport().cancel_timer(it->second.timer);
          }
          QueryHandler h = std::move(it->second.handler);
          pending_.erase(it);
          h(QueryResult{{}, hops, 0, false});
          return;
        }
        net::Writer w;
        w.u64(qid);
        w.u64(chord_.rpc().local());
        w.str(attr);
        w.u64(start_key);
        w.u64(end_key);
        w.u64(net::kNullEndpoint);  // start node fills itself in
        w.u32(static_cast<std::uint32_t>(predicates.size()));
        for (const RangePredicate& p : predicates) write_predicate(w, p);
        w.u32(0);  // sweep hops so far
        w.u32(0);  // accumulated resources
        chord_.rpc().send_one_way(target.endpoint, kSweep, w);
      });
}

void MaanNode::handle_sweep(net::Endpoint /*from*/, net::Reader& msg) {
  const std::uint64_t qid = msg.u64();
  const net::Endpoint origin = msg.u64();
  const std::string attr = msg.str();
  const Id start_key = msg.u64();
  const Id end_key = msg.u64();
  const net::Endpoint start_ep = msg.u64();
  const auto pred_count = msg.u32();
  std::vector<RangePredicate> predicates;
  predicates.reserve(pred_count);
  for (std::uint32_t i = 0; i < pred_count; ++i) {
    predicates.push_back(read_predicate(msg));
  }
  const std::uint32_t hops = msg.u32();
  const auto acc_count = msg.u32();
  std::vector<Resource> acc;
  acc.reserve(acc_count);
  for (std::uint32_t i = 0; i < acc_count; ++i) {
    acc.push_back(read_resource(msg));
  }
  process_sweep(attr, start_key, end_key, predicates, qid, origin, start_ep,
                std::move(acc), hops);
}

void MaanNode::process_sweep(const std::string& attr, Id start_key,
                             Id end_key,
                             const std::vector<RangePredicate>& predicates,
                             std::uint64_t qid, net::Endpoint origin,
                             net::Endpoint start_ep,
                             std::vector<Resource> acc, std::uint32_t hops) {
  const IdSpace& space = chord_.space();
  const bool first = hops == 0;
  if (first) start_ep = chord_.rpc().local();

  // Full-circle guard: if the sweep wrapped all the way back to its first
  // node (possible when successor(H(l)) == successor(H(u)) but the value
  // arc spans the whole circle), stop without collecting twice.
  if (!first && start_ep == chord_.rpc().local()) {
    net::Writer w;
    w.u64(qid);
    w.boolean(true);
    w.u32(hops);
    w.u32(static_cast<std::uint32_t>(acc.size()));
    for (const Resource& resource : acc) write_resource(w, resource);
    chord_.rpc().send_one_way(origin, kSweepResult, w);
    return;
  }

  // Collect local matches against the full predicate conjunction.
  const auto it = store_.find(attr);
  if (it != store_.end()) {
    for (const auto& [vid, entry] : it->second) {
      if (expired(entry)) continue;
      if (std::all_of(predicates.begin(), predicates.end(),
                      [&](const RangePredicate& p) {
                        return p.matches(entry.resource);
                      })) {
        acc.push_back(entry.resource);
      }
    }
  }

  // Termination: the first node ends the sweep only when the whole value
  // arc [start_key, end_key] already lies within its own range (otherwise a
  // wrap-around query would stop before visiting anyone). Later nodes end
  // it when they own end_key.
  const bool last_hop =
      first ? space.clockwise(start_key, end_key) <=
                  space.clockwise(start_key, chord_.id())
            : chord_.owns(end_key);
  const chord::NodeRef succ = chord_.successor();
  const bool can_forward =
      succ.valid() && succ.endpoint != chord_.rpc().local();

  if (last_hop || !can_forward || hops >= options_.max_sweep_hops) {
    net::Writer w;
    w.u64(qid);
    w.boolean(last_hop);
    w.u32(hops);
    w.u32(static_cast<std::uint32_t>(acc.size()));
    for (const Resource& resource : acc) write_resource(w, resource);
    chord_.rpc().send_one_way(origin, kSweepResult, w);
    return;
  }

  net::Writer w;
  w.u64(qid);
  w.u64(origin);
  w.str(attr);
  w.u64(start_key);
  w.u64(end_key);
  w.u64(start_ep);
  w.u32(static_cast<std::uint32_t>(predicates.size()));
  for (const RangePredicate& p : predicates) write_predicate(w, p);
  w.u32(hops + 1);
  w.u32(static_cast<std::uint32_t>(acc.size()));
  for (const Resource& resource : acc) write_resource(w, resource);
  chord_.rpc().send_one_way(succ.endpoint, kSweep, w);
}

void MaanNode::handle_sweep_result(net::Endpoint /*from*/, net::Reader& msg) {
  const std::uint64_t qid = msg.u64();
  const bool complete = msg.boolean();
  const std::uint32_t hops = msg.u32();
  const auto count = msg.u32();

  const auto it = pending_.find(qid);
  if (it == pending_.end()) return;  // timed out already

  QueryResult result;
  result.complete = complete;
  result.sweep_hops = hops;
  result.routing_hops = it->second.routing_hops;
  std::set<std::string> seen;
  for (std::uint32_t i = 0; i < count; ++i) {
    Resource resource = read_resource(msg);
    if (seen.insert(resource.id).second) {
      result.resources.push_back(std::move(resource));
    }
  }
  if (it->second.timer != 0) {
    chord_.rpc().transport().cancel_timer(it->second.timer);
  }
  QueryHandler handler = std::move(it->second.handler);
  pending_.erase(it);
  handler(std::move(result));
}

std::size_t MaanNode::local_entries() const {
  std::size_t total = 0;
  for (const auto& [attr, index] : store_) {
    for (const auto& [vid, entry] : index) {
      if (!expired(entry)) ++total;
    }
  }
  return total;
}

}  // namespace dat::maan
