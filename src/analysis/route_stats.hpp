#pragma once

#include <cstdint>
#include <vector>

#include "chord/ring_view.hpp"
#include "chord/routing.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace dat::analysis {

/// Distribution of route lengths from every node to a set of rendezvous
/// keys — the quantitative form of the O(log n) routing-hops claims of
/// paper Secs. 2.2 and 3.3.
struct RouteLengthStats {
  RunningStats hops;                  ///< per-route hop counts
  std::vector<std::uint64_t> histogram;  ///< histogram[h] = #routes of h hops

  [[nodiscard]] unsigned max_hops() const {
    return histogram.empty() ? 0u
                             : static_cast<unsigned>(histogram.size() - 1);
  }
};

/// Measures route lengths from all n nodes to `keys` rendezvous keys drawn
/// from `rng`, under the given scheme.
[[nodiscard]] RouteLengthStats route_lengths(const chord::RingView& ring,
                                             chord::RoutingScheme scheme,
                                             unsigned keys, Rng& rng);

}  // namespace dat::analysis
