#include "analysis/message_load.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "dat/tree.hpp"

namespace dat::analysis {

const char* to_string(AggregationScheme s) noexcept {
  switch (s) {
    case AggregationScheme::kCentralizedRouted: return "centralized";
    case AggregationScheme::kCentralizedDirect: return "centralized-direct";
    case AggregationScheme::kBasicDat: return "basic-dat";
    case AggregationScheme::kBalancedDat: return "balanced-dat";
  }
  return "?";
}

std::uint64_t LoadProfile::max() const {
  return counts.empty() ? 0 : *std::max_element(counts.begin(), counts.end());
}

double LoadProfile::average() const {
  if (counts.empty()) return 0.0;
  return static_cast<double>(total()) / static_cast<double>(counts.size());
}

double LoadProfile::imbalance() const {
  const double avg = average();
  return avg > 0.0 ? static_cast<double>(max()) / avg : 0.0;
}

std::vector<std::uint64_t> LoadProfile::by_rank() const {
  std::vector<std::uint64_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return sorted;
}

std::uint64_t LoadProfile::total() const {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

LoadProfile message_load(const chord::RingView& ring, Id key,
                         AggregationScheme scheme) {
  LoadProfile profile;
  profile.counts.assign(ring.size(), 0);
  const Id root = ring.successor(key);
  const std::size_t root_idx = ring.index_of(root);

  // A node's load counts every aggregation message it handles: one per
  // message sent (or forwarded) plus one per message received. This is the
  // accounting that reproduces the paper's numbers — e.g. a basic-DAT node
  // with B children handles B receives + 1 send, and with the average load
  // ~2 the imbalance (B_max+1)/2 matches Fig. 8(b)'s 4.2 @ n=100.
  switch (scheme) {
    case AggregationScheme::kCentralizedDirect: {
      // Every non-root node sends one message straight to the root.
      for (std::size_t i = 0; i < ring.size(); ++i) {
        profile.counts[i] = i == root_idx ? ring.size() - 1 : 1;
      }
      break;
    }
    case AggregationScheme::kCentralizedRouted: {
      // Every non-root node's value travels its greedy finger route; each
      // hop w -> x costs one send at w and one receive at x, so transit
      // nodes pay twice per message they relay.
      for (const Id v : ring.ids()) {
        if (v == root) continue;
        const std::vector<Id> path =
            ring.route(v, key, chord::RoutingScheme::kGreedy);
        for (std::size_t h = 0; h + 1 < path.size(); ++h) {
          ++profile.counts[ring.index_of(path[h])];      // send
          ++profile.counts[ring.index_of(path[h + 1])];  // receive
        }
      }
      break;
    }
    case AggregationScheme::kBasicDat:
    case AggregationScheme::kBalancedDat: {
      // Distributed aggregation: each node receives one (already
      // aggregated) message per child and sends exactly one to its parent.
      const auto routing = scheme == AggregationScheme::kBasicDat
                               ? chord::RoutingScheme::kGreedy
                               : chord::RoutingScheme::kBalanced;
      const core::Tree tree(ring, key, routing);
      for (const Id v : ring.ids()) {
        profile.counts[ring.index_of(v)] =
            tree.branching(v) + (v == root ? 0 : 1);
      }
      break;
    }
  }
  return profile;
}

}  // namespace dat::analysis
