#pragma once

#include <cstdint>
#include <vector>

#include "chord/ring_view.hpp"
#include "chord/routing.hpp"

namespace dat::analysis {

/// Which aggregation architecture a load profile models — the three curves
/// of Fig. 8.
enum class AggregationScheme : std::uint8_t {
  /// No DAT: every node unicasts its value to the root monitor over Chord
  /// finger routing; intermediate nodes forward (paper Sec. 5.3: "the
  /// closer a node precedes the root ... the more aggregation messages it
  /// has to forward").
  kCentralizedRouted = 0,
  /// No DAT, idealized direct IP unicast to the root (no forwarding) —
  /// an ablation; the root still receives n-1 messages.
  kCentralizedDirect = 1,
  /// Basic DAT: one message per node to its greedy-routing parent.
  kBasicDat = 2,
  /// Balanced DAT: one message per node to its balanced-routing parent.
  kBalancedDat = 3,
};

[[nodiscard]] const char* to_string(AggregationScheme s) noexcept;

/// Per-node load profile for one global aggregation round.
struct LoadProfile {
  /// counts[i] = aggregation messages node ring.id(i) processes (receives
  /// or forwards) in one round, index-aligned with RingView::ids().
  std::vector<std::uint64_t> counts;

  [[nodiscard]] std::uint64_t max() const;
  [[nodiscard]] double average() const;
  /// Imbalance factor = max / average (paper Sec. 5.3).
  [[nodiscard]] double imbalance() const;
  /// Counts sorted descending — the node-rank curve of Fig. 8(a).
  [[nodiscard]] std::vector<std::uint64_t> by_rank() const;
  [[nodiscard]] std::uint64_t total() const;
};

/// Computes the per-node message load of one aggregation round toward
/// rendezvous key `key` under `scheme`.
[[nodiscard]] LoadProfile message_load(const chord::RingView& ring, Id key,
                                       AggregationScheme scheme);

}  // namespace dat::analysis
