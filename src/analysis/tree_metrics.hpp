#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chord/id_assignment.hpp"
#include "chord/ring_view.hpp"
#include "chord/routing.hpp"
#include "common/rng.hpp"

namespace dat::analysis {

/// One measured configuration of the Fig. 7 sweeps.
struct TreeProperties {
  std::size_t n = 0;
  chord::RoutingScheme scheme = chord::RoutingScheme::kGreedy;
  chord::IdAssignment assignment = chord::IdAssignment::kRandom;
  std::size_t max_branching = 0;
  double avg_branching_internal = 0.0;
  unsigned height = 0;
  double gap_ratio = 0.0;

  [[nodiscard]] std::string label() const;
};

/// Measures DAT tree properties for one (n, scheme, assignment) cell,
/// averaged over `trials` independent rings and `keys_per_trial` rendezvous
/// keys per ring (max_branching reports the max over all trials, matching
/// the paper's "maximal branching factor" metric; averages are means).
[[nodiscard]] TreeProperties measure_tree_properties(
    unsigned bits, std::size_t n, chord::RoutingScheme scheme,
    chord::IdAssignment assignment, unsigned trials, unsigned keys_per_trial,
    Rng& rng);

}  // namespace dat::analysis
