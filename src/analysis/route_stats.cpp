#include "analysis/route_stats.hpp"

namespace dat::analysis {

RouteLengthStats route_lengths(const chord::RingView& ring,
                               chord::RoutingScheme scheme, unsigned keys,
                               Rng& rng) {
  RouteLengthStats stats;
  for (unsigned k = 0; k < keys; ++k) {
    const Id key = rng.next_id(ring.space());
    for (const Id v : ring.ids()) {
      const auto path = ring.route(v, key, scheme);
      const auto hops = path.size() - 1;  // edges, not nodes
      stats.hops.add(static_cast<double>(hops));
      if (stats.histogram.size() <= hops) {
        stats.histogram.resize(hops + 1, 0);
      }
      ++stats.histogram[hops];
    }
  }
  return stats;
}

}  // namespace dat::analysis
