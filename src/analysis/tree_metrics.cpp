#include "analysis/tree_metrics.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "dat/tree.hpp"

namespace dat::analysis {

std::string TreeProperties::label() const {
  return std::string(chord::to_string(scheme)) + "/" +
         chord::to_string(assignment);
}

TreeProperties measure_tree_properties(unsigned bits, std::size_t n,
                                       chord::RoutingScheme scheme,
                                       chord::IdAssignment assignment,
                                       unsigned trials,
                                       unsigned keys_per_trial, Rng& rng) {
  const IdSpace space(bits);
  TreeProperties out;
  out.n = n;
  out.scheme = scheme;
  out.assignment = assignment;

  RunningStats avg_branching;
  RunningStats heights;
  RunningStats gap_ratios;
  std::size_t max_branching = 0;

  for (unsigned t = 0; t < trials; ++t) {
    const std::vector<Id> ids = chord::make_ids(assignment, space, n, rng);
    const chord::RingView ring(space, ids);
    gap_ratios.add(ring.gap_ratio());
    for (unsigned k = 0; k < keys_per_trial; ++k) {
      const Id key = rng.next_id(space);
      const core::Tree tree(ring, key, scheme);
      max_branching = std::max(max_branching, tree.max_branching());
      avg_branching.add(tree.avg_branching_internal());
      heights.add(tree.height());
    }
  }

  out.max_branching = max_branching;
  out.avg_branching_internal = avg_branching.mean();
  out.height = static_cast<unsigned>(heights.max());
  out.gap_ratio = gap_ratios.mean();
  return out;
}

}  // namespace dat::analysis
