#pragma once

#include "dat/dat_node.hpp"
#include "lb/policy.hpp"

namespace dat::lb {

/// Graceful-exit policy: re-parents every subtree upstream and retracts the
/// node's own records before a clean Chord leave, reusing the rebalancer's
/// handoff freshness (PolicyOptions::handoff_ttl_us) so drain redirects age
/// out on the same cadence as shed redirects. This is what a SIGTERM'd datd
/// runs inside its drain deadline.
core::DatNode::DrainReport drain_node(core::DatNode& dat,
                                      const PolicyOptions& options = {});

}  // namespace dat::lb
