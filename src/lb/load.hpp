#pragma once

#include <cstdint>
#include <vector>

#include "chord/node.hpp"
#include "dat/dat_node.hpp"

namespace dat::lb {

/// Measured load of one aggregation tree on one node, extracted from the
/// node's dat_tree_* per-key gauges.
struct KeyLoad {
  Id key = 0;
  /// Fresh soft-state child count (dat_tree_children) — the branching the
  /// SLO bounds.
  std::size_t children = 0;
  /// Cumulative child updates received (dat_tree_updates_in).
  std::uint64_t updates_in = 0;
  /// Effective push period of this key on this node (dat_tree_period_us).
  std::uint64_t period_us = 0;
  /// Updates received since the previous measurement round. Zero straight
  /// out of collect_load(); the Rebalancer fills it from counter deltas.
  double update_rate = 0.0;
};

/// One node's row in the load database (the Charm++ CentralLB analogue of a
/// per-PE load record).
struct NodeLoad {
  std::size_t slot = 0;
  Id id = 0;
  std::vector<KeyLoad> keys;  ///< same order as the tracked key list
  std::size_t max_children = 0;
  double total_rate = 0.0;
  /// Node currently roots at least one tracked tree; the policy never
  /// migrates such a node (the root region should stay stable).
  bool root_of_tracked = false;
};

/// Whole-cluster measurement: the input of the pure decision step.
struct ClusterLoad {
  std::vector<NodeLoad> nodes;  ///< live slots, ascending slot order
  std::vector<Id> ids;          ///< live identifiers, sorted
  double gap_ratio = 1.0;       ///< max/min adjacent-gap ratio of `ids`
  std::size_t max_children = 0; ///< max over nodes x tracked keys
};

/// Narrow view of a cluster the rebalancer can measure and act on. Adapters
/// for SimCluster and UdpCluster live in lb/ports.hpp; tests can stub it.
class ClusterPort {
 public:
  virtual ~ClusterPort() = default;

  [[nodiscard]] virtual const IdSpace& space() const = 0;
  [[nodiscard]] virtual std::size_t slot_count() const = 0;
  [[nodiscard]] virtual bool is_live(std::size_t slot) const = 0;
  [[nodiscard]] virtual chord::Node& chord_node(std::size_t slot) = 0;
  [[nodiscard]] virtual core::DatNode& dat_node(std::size_t slot) = 0;

  /// Graceful leave + rejoin at `new_id` (identifier migration). Pumps the
  /// cluster until the rejoin completed or failed.
  virtual bool migrate(std::size_t slot, Id new_id) = 0;

  /// Advances the cluster (virtual or wall clock) by `us`.
  virtual void settle(std::uint64_t us) = 0;
};

/// One measurement round: reads every live node's metrics-registry snapshot
/// and extracts the per-key dat_tree_* gauges for the tracked `keys`. Pure
/// observation — no cluster state is touched beyond taking snapshots.
[[nodiscard]] ClusterLoad collect_load(ClusterPort& port,
                                       const std::vector<Id>& keys);

}  // namespace dat::lb
