#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lb/load.hpp"
#include "lb/policy.hpp"
#include "obs/metrics.hpp"

namespace dat::lb {

struct RebalancerOptions {
  PolicyOptions policy{};
  /// Base push period of the tracked aggregates; update_rate is normalized
  /// to updates per this interval.
  std::uint64_t epoch_us = 500'000;
  /// Extra cluster time pumped after applying a plan, before the round
  /// returns (lets the moved children re-home). 0 skips the settle.
  std::uint64_t settle_us = 0;
};

/// What one measurement + decision + apply cycle did.
struct RoundReport {
  std::size_t round = 0;
  double gap_ratio = 1.0;        ///< measured before acting
  std::size_t max_children = 0;  ///< measured before acting
  std::size_t migrations = 0;
  std::size_t migration_failures = 0;
  std::size_t sheds = 0;
  std::size_t children_moved = 0;
  /// No action was needed (the plan came back empty).
  bool balanced = false;

  [[nodiscard]] std::string to_string() const;
};

/// The periodic measurement-driven load balancer (Sec. 4 of the paper made
/// concrete through the Charm++ CentralLB shape): each round snapshots every
/// node's dat_tree_* gauges into a ClusterLoad, runs the pure
/// plan_rebalance() policy, then applies the plan through the ClusterPort —
/// identifier migrations as graceful leave + forced-id rejoin, branching
/// overflow as child handoffs to a relay node.
class Rebalancer {
 public:
  /// `registry` receives the dat_lb_* counters/gauges; pass the campaign or
  /// cluster registry to surface them in dumps, or nullptr to keep them in
  /// an internal registry (still readable via metrics()).
  Rebalancer(ClusterPort& port, std::vector<Id> keys,
             RebalancerOptions options,
             obs::MetricsRegistry* registry = nullptr);

  /// Runs one measure -> decide -> apply cycle.
  RoundReport run_round();

  [[nodiscard]] const std::vector<RoundReport>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] const RebalancerOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *registry_; }

 private:
  ClusterPort& port_;
  std::vector<Id> keys_;
  RebalancerOptions options_;
  obs::MetricsRegistry own_registry_;
  obs::MetricsRegistry* registry_;
  /// Last observed dat_tree_updates_in per (slot, key), for rate deltas.
  std::map<std::pair<std::size_t, Id>, std::uint64_t> last_updates_;
  std::vector<RoundReport> history_;

  obs::Counter* m_rounds_;
  obs::Counter* m_migrations_;
  obs::Counter* m_migration_failures_;
  obs::Counter* m_sheds_;
  obs::Counter* m_children_moved_;
  obs::Gauge* m_gap_ratio_x1000_;
  obs::Gauge* m_max_branching_;
};

}  // namespace dat::lb
