#include "lb/drain.hpp"

namespace dat::lb {

core::DatNode::DrainReport drain_node(core::DatNode& dat,
                                      const PolicyOptions& options) {
  return dat.drain(options.handoff_ttl_us);
}

}  // namespace dat::lb
