#include "lb/load.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "chord/id_assignment.hpp"

namespace dat::lb {

namespace {

/// Splits a node snapshot's per-key gauge series (labelled with the DAT
/// layer's "0x%016llx" key rendering) into an Id-keyed map.
std::map<Id, double> by_key(const obs::MetricsSnapshot& snap,
                            const char* name) {
  std::map<Id, double> out;
  for (const auto& [label, value] : snap.values_by_label(name, "key")) {
    out[std::strtoull(label.c_str(), nullptr, 16)] += value;
  }
  return out;
}

}  // namespace

ClusterLoad collect_load(ClusterPort& port, const std::vector<Id>& keys) {
  ClusterLoad load;
  for (std::size_t slot = 0; slot < port.slot_count(); ++slot) {
    if (!port.is_live(slot)) continue;
    chord::Node& node = port.chord_node(slot);
    const obs::MetricsSnapshot snap = node.telemetry().registry.snapshot();
    const auto children = by_key(snap, "dat_tree_children");
    const auto updates = by_key(snap, "dat_tree_updates_in");
    const auto periods = by_key(snap, "dat_tree_period_us");
    const auto roots = by_key(snap, "dat_tree_is_root");

    NodeLoad row;
    row.slot = slot;
    row.id = node.id();
    row.keys.reserve(keys.size());
    for (const Id raw : keys) {
      KeyLoad k;
      k.key = raw & port.space().mask();
      const auto get = [&k](const std::map<Id, double>& m) {
        const auto it = m.find(k.key);
        return it == m.end() ? 0.0 : it->second;
      };
      k.children = static_cast<std::size_t>(get(children));
      k.updates_in = static_cast<std::uint64_t>(get(updates));
      k.period_us = static_cast<std::uint64_t>(get(periods));
      if (get(roots) > 0.0) row.root_of_tracked = true;
      row.max_children = std::max(row.max_children, k.children);
      row.keys.push_back(k);
    }
    load.max_children = std::max(load.max_children, row.max_children);
    load.ids.push_back(row.id);
    load.nodes.push_back(std::move(row));
  }
  std::sort(load.ids.begin(), load.ids.end());
  load.gap_ratio = chord::gap_ratio(port.space(), load.ids);
  return load;
}

}  // namespace dat::lb
