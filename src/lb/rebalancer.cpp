#include "lb/rebalancer.hpp"

#include <cstdio>

namespace dat::lb {

std::string RoundReport::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "round %zu: gap_ratio=%.2f max_children=%zu migrations=%zu"
                "%s sheds=%zu moved=%zu%s",
                round, gap_ratio, max_children, migrations,
                migration_failures != 0 ? "(!)" : "", sheds, children_moved,
                balanced ? " [balanced]" : "");
  return buf;
}

Rebalancer::Rebalancer(ClusterPort& port, std::vector<Id> keys,
                       RebalancerOptions options,
                       obs::MetricsRegistry* registry)
    : port_(port),
      keys_(std::move(keys)),
      options_(options),
      registry_(registry != nullptr ? registry : &own_registry_),
      m_rounds_(&registry_->counter("dat_lb_rounds_total")),
      m_migrations_(&registry_->counter("dat_lb_migrations_total")),
      m_migration_failures_(
          &registry_->counter("dat_lb_migration_failures_total")),
      m_sheds_(&registry_->counter("dat_lb_sheds_total")),
      m_children_moved_(&registry_->counter("dat_lb_children_moved_total")),
      m_gap_ratio_x1000_(&registry_->gauge("dat_lb_gap_ratio_x1000")),
      m_max_branching_(&registry_->gauge("dat_lb_max_branching")) {}

RoundReport Rebalancer::run_round() {
  RoundReport report;
  report.round = history_.size();

  // Measure.
  ClusterLoad load = collect_load(port_, keys_);
  for (NodeLoad& n : load.nodes) {
    for (KeyLoad& k : n.keys) {
      const auto handle = std::make_pair(n.slot, k.key);
      const auto it = last_updates_.find(handle);
      // A fresh or restarted node's counter starts over; clamp the delta to
      // zero instead of reading a huge negative rate.
      if (it != last_updates_.end() && k.updates_in >= it->second) {
        k.update_rate = static_cast<double>(k.updates_in - it->second);
      }
      last_updates_[handle] = k.updates_in;
      n.total_rate += k.update_rate;
    }
  }
  report.gap_ratio = load.gap_ratio;
  report.max_children = load.max_children;

  // Decide.
  const RebalancePlan plan =
      plan_rebalance(load, port_.space(), options_.policy);
  report.balanced = plan.empty();

  // Apply.
  for (const Migration& m : plan.migrations) {
    if (!port_.is_live(m.slot)) continue;
    if (port_.migrate(m.slot, m.to_id)) {
      ++report.migrations;
      // The new incarnation restarts its counters from zero.
      for (const Id key : keys_) {
        last_updates_.erase({m.slot, key & port_.space().mask()});
      }
    } else {
      ++report.migration_failures;
    }
  }
  for (const Shed& s : plan.sheds) {
    if (!port_.is_live(s.slot)) continue;
    const std::size_t moved = port_.dat_node(s.slot).shed_children(
        s.key, s.keep, options_.policy.handoff_ttl_us);
    if (moved != 0) {
      ++report.sheds;
      report.children_moved += moved;
    }
  }
  if (options_.settle_us != 0 && !plan.empty()) {
    port_.settle(options_.settle_us);
  }

  m_rounds_->inc();
  m_migrations_->inc(report.migrations);
  m_migration_failures_->inc(report.migration_failures);
  m_sheds_->inc(report.sheds);
  m_children_moved_->inc(report.children_moved);
  m_gap_ratio_x1000_->set(static_cast<std::int64_t>(report.gap_ratio * 1000));
  m_max_branching_->set(static_cast<std::int64_t>(report.max_children));

  history_.push_back(report);
  return report;
}

}  // namespace dat::lb
