#pragma once

#include "harness/sim_cluster.hpp"
#include "harness/udp_cluster.hpp"
#include "lb/load.hpp"

namespace dat::lb {

/// ClusterPort over the virtual-time SimCluster harness.
class SimClusterPort final : public ClusterPort {
 public:
  explicit SimClusterPort(harness::SimCluster& cluster) noexcept
      : cluster_(cluster) {}

  [[nodiscard]] const IdSpace& space() const override {
    return cluster_.space();
  }
  [[nodiscard]] std::size_t slot_count() const override {
    return cluster_.slot_count();
  }
  [[nodiscard]] bool is_live(std::size_t slot) const override {
    return cluster_.is_live(slot);
  }
  [[nodiscard]] chord::Node& chord_node(std::size_t slot) override {
    return cluster_.node(slot);
  }
  [[nodiscard]] core::DatNode& dat_node(std::size_t slot) override {
    return cluster_.dat(slot);
  }
  bool migrate(std::size_t slot, Id new_id) override {
    return cluster_.migrate_node(slot, new_id);
  }
  void settle(std::uint64_t us) override { cluster_.run_for(us); }

 private:
  harness::SimCluster& cluster_;
};

/// ClusterPort over the wall-clock UdpCluster harness.
class UdpClusterPort final : public ClusterPort {
 public:
  explicit UdpClusterPort(harness::UdpCluster& cluster) noexcept
      : cluster_(cluster) {}

  [[nodiscard]] const IdSpace& space() const override {
    return cluster_.space();
  }
  [[nodiscard]] std::size_t slot_count() const override {
    return cluster_.size();
  }
  [[nodiscard]] bool is_live(std::size_t slot) const override {
    return cluster_.is_live(slot);
  }
  [[nodiscard]] chord::Node& chord_node(std::size_t slot) override {
    return cluster_.node(slot);
  }
  [[nodiscard]] core::DatNode& dat_node(std::size_t slot) override {
    return cluster_.dat(slot);
  }
  bool migrate(std::size_t slot, Id new_id) override {
    return cluster_.migrate(slot, new_id);
  }
  void settle(std::uint64_t us) override { cluster_.run_for(us); }

 private:
  harness::UdpCluster& cluster_;
};

}  // namespace dat::lb
