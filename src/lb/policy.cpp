#include "lb/policy.hpp"

#include <algorithm>
#include <map>

namespace dat::lb {

namespace {

struct GapView {
  Id max_gap = 0;
  Id min_gap = 0;
  std::size_t max_index = 0;  ///< largest gap starts at ids[max_index]
};

GapView scan_gaps(const IdSpace& space, const std::vector<Id>& ids) {
  GapView view;
  view.min_gap = space.size() != 0 ? space.size() - 1 : ~Id{0};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Id gap = space.clockwise(ids[i], ids[(i + 1) % ids.size()]);
    if (gap > view.max_gap) {
      view.max_gap = gap;
      view.max_index = i;
    }
    view.min_gap = std::min(view.min_gap, gap);
  }
  return view;
}

double ratio_of(const GapView& view) {
  if (view.min_gap == 0) return static_cast<double>(view.max_gap);
  return static_cast<double>(view.max_gap) /
         static_cast<double>(view.min_gap);
}

}  // namespace

RebalancePlan plan_rebalance(const ClusterLoad& load, const IdSpace& space,
                             const PolicyOptions& options) {
  RebalancePlan plan;
  plan.gap_ratio = load.gap_ratio;
  plan.max_children = load.max_children;

  std::map<Id, const NodeLoad*> by_id;
  for (const NodeLoad& n : load.nodes) by_id[n.id] = &n;
  std::vector<std::size_t> migrated_slots;

  // Identifier migrations: simulate each pick on a scratch id list so one
  // round can plan several consistent moves when max_migrations allows.
  std::vector<Id> ids = load.ids;  // sorted
  while (plan.migrations.size() < options.max_migrations && ids.size() >= 3) {
    const GapView gaps = scan_gaps(space, ids);
    if (ratio_of(gaps) <= options.gap_ratio_threshold) break;
    if (gaps.max_gap < options.min_gap_to_split || gaps.max_gap < 4) break;
    const Id gap_start = ids[gaps.max_index];
    const Id gap_end = ids[(gaps.max_index + 1) % ids.size()];

    const NodeLoad* donor = nullptr;
    Id donor_cost = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const Id id = ids[i];
      // The gap's own endpoints stay put: moving either would re-carve the
      // very gap being repaired.
      if (id == gap_start || id == gap_end) continue;
      const auto it = by_id.find(id);
      // Ids synthesized by an earlier pick this round have no load row.
      if (it == by_id.end()) continue;
      const NodeLoad& n = *it->second;
      if (n.root_of_tracked) continue;
      if (std::find(migrated_slots.begin(), migrated_slots.end(), n.slot) !=
          migrated_slots.end()) {
        continue;
      }
      const Id pred = ids[(i + ids.size() - 1) % ids.size()];
      const Id succ = ids[(i + 1) % ids.size()];
      const Id merged = space.clockwise(pred, succ);
      // Departure merges pred->succ into one gap; only accept donors whose
      // merged span stays within the halves the split creates, so the max
      // gap strictly shrinks.
      if (merged > gaps.max_gap / 2) continue;
      if (donor == nullptr || merged < donor_cost ||
          (merged == donor_cost && n.slot < donor->slot)) {
        donor = &n;
        donor_cost = merged;
      }
    }
    if (donor == nullptr) break;  // nothing movable without regressing

    const Id target = space.add(gap_start, gaps.max_gap / 2);
    plan.migrations.push_back({donor->slot, target});
    migrated_slots.push_back(donor->slot);
    ids.erase(std::find(ids.begin(), ids.end(), donor->id));
    ids.insert(std::upper_bound(ids.begin(), ids.end(), target), target);
  }

  // Child handoffs: hottest over-branched (node, key) pairs first. Nodes
  // picked for migration are skipped — they are about to re-join with an
  // empty table anyway.
  struct Over {
    std::size_t slot;
    Id key;
    std::size_t children;
    double rate;
  };
  std::vector<Over> overs;
  for (const NodeLoad& n : load.nodes) {
    if (std::find(migrated_slots.begin(), migrated_slots.end(), n.slot) !=
        migrated_slots.end()) {
      continue;
    }
    for (const KeyLoad& k : n.keys) {
      if (k.children > options.max_branching) {
        overs.push_back({n.slot, k.key, k.children, k.update_rate});
      }
    }
  }
  std::sort(overs.begin(), overs.end(), [](const Over& a, const Over& b) {
    if (a.children != b.children) return a.children > b.children;
    if (a.rate != b.rate) return a.rate > b.rate;
    if (a.slot != b.slot) return a.slot < b.slot;
    return a.key < b.key;
  });
  for (const Over& o : overs) {
    if (plan.sheds.size() >= options.max_sheds) break;
    plan.sheds.push_back({o.slot, o.key, options.max_branching});
  }
  return plan;
}

}  // namespace dat::lb
