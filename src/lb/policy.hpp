#pragma once

#include <cstdint>
#include <vector>

#include "common/id_space.hpp"
#include "lb/load.hpp"

namespace dat::lb {

struct PolicyOptions {
  /// Branching SLO sheds enforce: a (node, key) with more fresh children
  /// than this gets the excess handed off to a relay child. The paper's
  /// balanced+probed trees sit at 4-5 (Fig. 7a), so 4 is the tight target.
  std::size_t max_branching = 4;
  /// Identifier migrations run while the measured max/min adjacent-gap
  /// ratio exceeds this (probing keeps joined rings well under it).
  double gap_ratio_threshold = 4.0;
  /// Migrations per round. Each one is a leave + rejoin — disruptive, so
  /// rounds move one node at a time by default.
  std::size_t max_migrations = 1;
  /// Child handoffs per round.
  std::size_t max_sheds = 4;
  /// Gaps narrower than this are never split (microscopic id spaces).
  Id min_gap_to_split = 64;
  /// Freshness of issued parent overrides. Handoffs are soft state: the
  /// rebalancer re-issues them every round it still measures the overflow,
  /// so the TTL only needs to outlive the measurement cadence.
  std::uint64_t handoff_ttl_us = 60'000'000;
};

/// Leave + rejoin of `slot` at identifier `to_id`.
struct Migration {
  std::size_t slot = 0;
  Id to_id = 0;
};

/// shed_children(key, keep) on `slot`.
struct Shed {
  std::size_t slot = 0;
  Id key = 0;
  std::size_t keep = 0;
};

struct RebalancePlan {
  std::vector<Migration> migrations;
  std::vector<Shed> sheds;
  double gap_ratio = 1.0;        ///< measured, before any action
  std::size_t max_children = 0;  ///< measured, before any action

  [[nodiscard]] bool empty() const noexcept {
    return migrations.empty() && sheds.empty();
  }
};

/// The pure decision step: a deterministic function of (load, options) with
/// no side effects — the Charm++ CentralLB "strategy" seam, unit-testable
/// on synthetic load databases.
///
/// Migrations split the largest adjacent gap at its midpoint (the probed
/// join's rule, applied from a global measurement) using the donor whose
/// departure merges the smallest span; tracked-tree roots never move, and a
/// donor is only accepted when its merged span stays within half the gap
/// being split, so each migration strictly reduces the maximum gap. Sheds
/// target the most over-branched (node, key) pairs, hottest first.
[[nodiscard]] RebalancePlan plan_rebalance(const ClusterLoad& load,
                                           const IdSpace& space,
                                           const PolicyOptions& options);

}  // namespace dat::lb
