#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chord/ring_view.hpp"
#include "chord/routing.hpp"
#include "common/id_space.hpp"

namespace dat::core {

/// A fully materialized DAT tree over a converged ring — the object the
/// paper's tree-property experiments (Fig. 7) and closed-form analyses
/// (Secs. 3.3/3.5) are about. Built implicitly from routing next hops: the
/// parent of every non-root node is its next hop toward the rendezvous key.
class Tree {
 public:
  /// Builds the DAT for rendezvous key `key` under `scheme`. O(n log n).
  Tree(const chord::RingView& ring, Id key, chord::RoutingScheme scheme);

  [[nodiscard]] Id root() const noexcept { return root_; }
  [[nodiscard]] Id key() const noexcept { return key_; }
  [[nodiscard]] chord::RoutingScheme scheme() const noexcept { return scheme_; }
  [[nodiscard]] std::size_t size() const noexcept { return parent_.size() + 1; }

  /// Parent of a non-root node; throws for the root or unknown nodes.
  [[nodiscard]] Id parent(Id node) const;
  [[nodiscard]] bool is_root(Id node) const noexcept { return node == root_; }

  /// Children of `node` (empty for leaves).
  [[nodiscard]] const std::vector<Id>& children(Id node) const;

  /// Depth of `node` (root = 0).
  [[nodiscard]] unsigned depth(Id node) const;

  /// Branching factor B(node) = number of children.
  [[nodiscard]] std::size_t branching(Id node) const {
    return children(node).size();
  }

  /// Tree height: max depth over all nodes.
  [[nodiscard]] unsigned height() const noexcept { return height_; }

  /// Maximum branching factor over all nodes.
  [[nodiscard]] std::size_t max_branching() const noexcept {
    return max_branching_;
  }

  /// Mean branching factor over *internal* (non-leaf) nodes — the figure the
  /// paper plots in Fig. 7(b).
  [[nodiscard]] double avg_branching_internal() const noexcept;

  /// Mean branching over all nodes ( = (n-1)/n, a sanity invariant).
  [[nodiscard]] double avg_branching_all() const noexcept;

  /// Every node reaches the root (always true by construction; exposed for
  /// property tests).
  [[nodiscard]] bool all_reach_root() const;

  /// All node ids in the tree, ascending.
  [[nodiscard]] const std::vector<Id>& nodes() const noexcept { return nodes_; }

 private:
  Id key_;
  Id root_;
  chord::RoutingScheme scheme_;
  std::vector<Id> nodes_;
  std::unordered_map<Id, Id> parent_;                 // non-root nodes only
  std::unordered_map<Id, std::vector<Id>> children_;  // node -> children
  std::unordered_map<Id, unsigned> depth_;
  unsigned height_ = 0;
  std::size_t max_branching_ = 0;
  std::size_t internal_nodes_ = 0;
};

/// Max branching factor over the DATs of several rendezvous keys on one
/// ring — the quantity the runtime rebalancer's SLO ("re-converges to max
/// branching <= B") is stated over. O(k * n log n).
[[nodiscard]] std::size_t max_branching_over(const chord::RingView& ring,
                                             const std::vector<Id>& keys,
                                             chord::RoutingScheme scheme);

/// Closed-form branching factor of the basic DAT under perfectly even node
/// spacing (paper Sec. 3.3): B(i,n) = log2(n) - ceil(log2(d/d0 + 1)), where
/// d is the clockwise distance from node i to the root and d0 the adjacent
/// gap. Returns the predicted child count of node i.
[[nodiscard]] unsigned basic_branching_closed_form(std::size_t n, Id d, Id d0);

}  // namespace dat::core
