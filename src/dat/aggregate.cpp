#include "dat/aggregate.hpp"

#include <cmath>

namespace dat::core {

const char* to_string(AggregateKind k) noexcept {
  switch (k) {
    case AggregateKind::kSum: return "sum";
    case AggregateKind::kCount: return "count";
    case AggregateKind::kAvg: return "avg";
    case AggregateKind::kMin: return "min";
    case AggregateKind::kMax: return "max";
    case AggregateKind::kVariance: return "variance";
    case AggregateKind::kStddev: return "stddev";
    case AggregateKind::kHistogram: return "histogram";
  }
  return "?";
}

AggregateKind aggregate_kind_from(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(AggregateKind::kHistogram)) {
    throw std::invalid_argument("bad AggregateKind: " + std::to_string(raw));
  }
  return static_cast<AggregateKind>(raw);
}

double AggState::result(AggregateKind kind) const {
  switch (kind) {
    case AggregateKind::kSum:
      return sum;
    case AggregateKind::kCount:
      return static_cast<double>(count);
    case AggregateKind::kAvg:
      if (count == 0) throw std::domain_error("AVG of empty aggregate");
      return sum / static_cast<double>(count);
    case AggregateKind::kMin:
      if (count == 0) throw std::domain_error("MIN of empty aggregate");
      return min;
    case AggregateKind::kMax:
      if (count == 0) throw std::domain_error("MAX of empty aggregate");
      return max;
    case AggregateKind::kVariance:
    case AggregateKind::kStddev: {
      if (count == 0) throw std::domain_error("VAR of empty aggregate");
      const double mean = sum / static_cast<double>(count);
      // Clamp tiny negative values from floating-point cancellation.
      const double variance =
          std::max(sum_sq / static_cast<double>(count) - mean * mean, 0.0);
      return kind == AggregateKind::kVariance ? variance
                                              : std::sqrt(variance);
    }
    case AggregateKind::kHistogram:
      // The scalar face of a histogram tree is its observation count; the
      // distribution itself is read through quantile().
      return static_cast<double>(count);
  }
  throw std::invalid_argument("bad AggregateKind");
}

}  // namespace dat::core
