#include "dat/tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace dat::core {

Tree::Tree(const chord::RingView& ring, Id key, chord::RoutingScheme scheme)
    : key_(key & ring.space().mask()),
      root_(ring.successor(key_)),
      scheme_(scheme),
      nodes_(ring.ids()) {
  parent_.reserve(nodes_.size());
  children_.reserve(nodes_.size());
  for (const Id v : nodes_) {
    if (v == root_) continue;
    const auto p = ring.parent(v, key_, scheme);
    if (!p) {
      throw std::logic_error("Tree: non-root node has no parent");
    }
    parent_.emplace(v, *p);
    children_[*p].push_back(v);
  }
  for (auto& [node, kids] : children_) {
    std::sort(kids.begin(), kids.end());
  }

  // Depths via memoized walk to the root; also validates acyclicity.
  depth_.reserve(nodes_.size());
  depth_[root_] = 0;
  for (const Id v : nodes_) {
    std::vector<Id> stack;
    Id cur = v;
    while (!depth_.contains(cur)) {
      stack.push_back(cur);
      const auto it = parent_.find(cur);
      if (it == parent_.end()) {
        throw std::logic_error("Tree: walk escaped the tree");
      }
      cur = it->second;
      if (stack.size() > nodes_.size()) {
        throw std::logic_error("Tree: cycle detected in parent relation");
      }
    }
    unsigned d = depth_[cur];
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      depth_[*it] = ++d;
    }
  }

  for (const Id v : nodes_) {
    height_ = std::max(height_, depth_[v]);
    const auto it = children_.find(v);
    const std::size_t b = it == children_.end() ? 0 : it->second.size();
    max_branching_ = std::max(max_branching_, b);
    if (b > 0) ++internal_nodes_;
  }
}

Id Tree::parent(Id node) const {
  const auto it = parent_.find(node);
  if (it == parent_.end()) {
    throw std::out_of_range("Tree::parent: root or unknown node");
  }
  return it->second;
}

const std::vector<Id>& Tree::children(Id node) const {
  static const std::vector<Id> kEmpty;
  const auto it = children_.find(node);
  return it == children_.end() ? kEmpty : it->second;
}

unsigned Tree::depth(Id node) const {
  const auto it = depth_.find(node);
  if (it == depth_.end()) {
    throw std::out_of_range("Tree::depth: unknown node");
  }
  return it->second;
}

double Tree::avg_branching_internal() const noexcept {
  if (internal_nodes_ == 0) return 0.0;
  // Every non-root node contributes exactly one edge.
  return static_cast<double>(nodes_.size() - 1) /
         static_cast<double>(internal_nodes_);
}

double Tree::avg_branching_all() const noexcept {
  if (nodes_.empty()) return 0.0;
  return static_cast<double>(nodes_.size() - 1) /
         static_cast<double>(nodes_.size());
}

bool Tree::all_reach_root() const {
  // depth_ was fully populated during construction (it throws otherwise),
  // so reachability holds if every node has a depth entry.
  return depth_.size() == nodes_.size();
}

std::size_t max_branching_over(const chord::RingView& ring,
                               const std::vector<Id>& keys,
                               chord::RoutingScheme scheme) {
  std::size_t worst = 0;
  for (const Id key : keys) {
    worst = std::max(worst, Tree(ring, key, scheme).max_branching());
  }
  return worst;
}

unsigned basic_branching_closed_form(std::size_t n, Id d, Id d0) {
  if (n == 0 || d0 == 0) {
    throw std::invalid_argument("basic_branching_closed_form: bad arguments");
  }
  const unsigned log_n = IdSpace::ceil_log2(n);
  const Id m = d / d0;  // d = m * d0 under even spacing
  const unsigned j = IdSpace::ceil_log2(m + 1);
  return j >= log_n ? 0 : log_n - j;
}

}  // namespace dat::core
