#include "dat/replicated.hpp"

#include <memory>
#include <stdexcept>

namespace dat::core {

ReplicatedAggregate::ReplicatedAggregate(DatNode& dat, std::string name,
                                         unsigned replicas,
                                         AggregateKind kind,
                                         chord::RoutingScheme scheme)
    : dat_(dat), name_(std::move(name)), kind_(kind), scheme_(scheme) {
  if (replicas == 0) {
    throw std::invalid_argument("ReplicatedAggregate: zero replicas");
  }
  if (name_.empty()) {
    throw std::invalid_argument("ReplicatedAggregate: empty name");
  }
  keys_.reserve(replicas);
  for (unsigned i = 0; i < replicas; ++i) {
    keys_.push_back(rendezvous_key(name_ + "#" + std::to_string(i),
                                   dat_.chord().space()));
  }
}

ReplicatedAggregate::~ReplicatedAggregate() { stop(); }

void ReplicatedAggregate::start(DatNode::LocalValueFn local) {
  if (started_) return;
  started_ = true;
  for (const Id key : keys_) {
    dat_.start_aggregate(key, kind_, scheme_, local);
  }
}

void ReplicatedAggregate::stop() {
  if (!started_) return;
  started_ = false;
  for (const Id key : keys_) {
    dat_.stop_aggregate(key);
  }
}

void ReplicatedAggregate::query(Handler handler) {
  struct Collect {
    Result result;
    std::size_t outstanding;
    Handler handler;
  };
  auto collect = std::make_shared<Collect>();
  collect->outstanding = keys_.size();
  collect->handler = std::move(handler);

  for (const Id key : keys_) {
    dat_.query_global(key, [collect](net::RpcStatus status,
                                     std::optional<GlobalValue> g) {
      if (status == net::RpcStatus::kOk && g) {
        ++collect->result.roots_answered;
        const auto& best = collect->result.best;
        if (!best || g->state.count > best->state.count ||
            (g->state.count == best->state.count && g->epoch > best->epoch)) {
          collect->result.best = g;
        }
      }
      if (--collect->outstanding == 0) {
        collect->handler(std::move(collect->result));
      }
    });
  }
}

}  // namespace dat::core
