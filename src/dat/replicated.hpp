#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dat/dat_node.hpp"

namespace dat::core {

/// k independent DAT trees for one aggregate — the multiple-tree
/// fault-tolerance idea of Li, Sollins & Lim (SIGCOMM CCR '05), which the
/// paper discusses in its related work (Sec. 6). Tree i uses rendezvous
/// key H(name "#" i), so the k roots (and with high probability the k
/// interior node sets) land on different nodes; a reader queries all roots
/// and keeps the answer with the widest coverage. A root or interior crash
/// in one tree is masked by the others with zero repair traffic.
class ReplicatedAggregate {
 public:
  /// `replicas` >= 1 trees. Nothing starts until start().
  ReplicatedAggregate(DatNode& dat, std::string name, unsigned replicas,
                      AggregateKind kind, chord::RoutingScheme scheme);
  ~ReplicatedAggregate();

  ReplicatedAggregate(const ReplicatedAggregate&) = delete;
  ReplicatedAggregate& operator=(const ReplicatedAggregate&) = delete;

  /// Starts contributing this node's value to every replica tree.
  void start(DatNode::LocalValueFn local);
  void stop();

  [[nodiscard]] const std::vector<Id>& keys() const noexcept { return keys_; }
  [[nodiscard]] unsigned replicas() const noexcept {
    return static_cast<unsigned>(keys_.size());
  }

  /// Queries every replica root and delivers the best answer: the global
  /// value with the highest node coverage (ties: freshest epoch). Fails
  /// only if no root answered at all.
  struct Result {
    std::optional<GlobalValue> best;
    unsigned roots_answered = 0;
  };
  using Handler = std::function<void(Result)>;
  void query(Handler handler);

 private:
  DatNode& dat_;
  std::string name_;
  AggregateKind kind_;
  chord::RoutingScheme scheme_;
  std::vector<Id> keys_;
  bool started_ = false;
};

}  // namespace dat::core
