#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "net/codec.hpp"

namespace dat::core {

/// Built-in aggregate functions f : X+ -> X (paper Sec. 2.3). AVG is
/// computed from the (sum, count) pair so that it composes associatively
/// across the tree.
enum class AggregateKind : std::uint8_t {
  kSum = 0,
  kCount = 1,
  kAvg = 2,
  kMin = 3,
  kMax = 4,
  kVariance = 5,  ///< population variance, from the (sum, sum_sq, count) triple
  kStddev = 6,
};

[[nodiscard]] const char* to_string(AggregateKind k) noexcept;
[[nodiscard]] AggregateKind aggregate_kind_from(std::uint8_t raw);

/// Composable partial-aggregate state. One fixed carrier supports all five
/// built-in functions, so a single update-message format serves any tree.
/// merge() is associative and commutative; identity() is the neutral
/// element — exactly the algebraic requirements for bottom-up aggregation.
struct AggState {
  double sum = 0.0;
  double sum_sq = 0.0;  ///< sum of squares, for variance/stddev
  std::uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  [[nodiscard]] static AggState identity() noexcept { return AggState{}; }

  [[nodiscard]] static AggState of(double value) noexcept {
    return AggState{value, value * value, 1, value, value};
  }

  void merge(const AggState& other) noexcept {
    sum += other.sum;
    sum_sq += other.sum_sq;
    count += other.count;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  [[nodiscard]] bool empty() const noexcept { return count == 0; }

  /// Final value under the given aggregate function. Throws on an empty
  /// state for AVG/MIN/MAX (undefined over zero inputs).
  [[nodiscard]] double result(AggregateKind kind) const;

  friend bool operator==(const AggState& a, const AggState& b) noexcept {
    return a.sum == b.sum && a.sum_sq == b.sum_sq && a.count == b.count &&
           a.min == b.min && a.max == b.max;
  }
};

inline void write_agg_state(net::Writer& w, const AggState& s) {
  w.f64(s.sum);
  w.f64(s.sum_sq);
  w.u64(s.count);
  w.f64(s.min);
  w.f64(s.max);
}

inline AggState read_agg_state(net::Reader& r) {
  AggState s;
  s.sum = r.f64();
  s.sum_sq = r.f64();
  s.count = r.u64();
  s.min = r.f64();
  s.max = r.f64();
  return s;
}

}  // namespace dat::core
