#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/codec.hpp"
#include "obs/metrics.hpp"

namespace dat::core {

/// Built-in aggregate functions f : X+ -> X (paper Sec. 2.3). AVG is
/// computed from the (sum, count) pair so that it composes associatively
/// across the tree.
enum class AggregateKind : std::uint8_t {
  kSum = 0,
  kCount = 1,
  kAvg = 2,
  kMin = 3,
  kMax = 4,
  kVariance = 5,  ///< population variance, from the (sum, sum_sq, count) triple
  kStddev = 6,
  kHistogram = 7,  ///< log2-bucket histogram merged bucket-wise (obs layout)
};

[[nodiscard]] const char* to_string(AggregateKind k) noexcept;
[[nodiscard]] AggregateKind aggregate_kind_from(std::uint8_t raw);

/// Composable partial-aggregate state. One fixed carrier supports all five
/// built-in functions, so a single update-message format serves any tree.
/// merge() is associative and commutative; identity() is the neutral
/// element — exactly the algebraic requirements for bottom-up aggregation.
struct AggState {
  double sum = 0.0;
  double sum_sq = 0.0;  ///< sum of squares, for variance/stddev
  std::uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  /// Optional log2-bucket payload (obs::Histogram layout), carried only by
  /// kHistogram trees. Empty for scalar aggregates, so the scalar wire cost
  /// is one zero length prefix.
  std::vector<std::uint64_t> hist;

  [[nodiscard]] static AggState identity() noexcept { return AggState{}; }

  [[nodiscard]] static AggState of(double value) noexcept {
    return AggState{value, value * value, 1, value, value, {}};
  }

  /// Leaf state for a histogram tree: per-bucket counts plus the observed
  /// sum. count is the total number of observations, and min/max stay at
  /// identity (a bucketed distribution has no exact extrema).
  [[nodiscard]] static AggState of_histogram(std::vector<std::uint64_t> buckets,
                                             double value_sum) {
    AggState s;
    for (const std::uint64_t c : buckets) s.count += c;
    s.sum = value_sum;
    s.hist = std::move(buckets);
    return s;
  }

  void merge(const AggState& other) {
    sum += other.sum;
    sum_sq += other.sum_sq;
    count += other.count;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    if (hist.size() < other.hist.size()) hist.resize(other.hist.size(), 0);
    for (std::size_t i = 0; i < other.hist.size(); ++i) {
      hist[i] += other.hist[i];
    }
  }

  [[nodiscard]] bool empty() const noexcept { return count == 0; }

  /// Estimated q-quantile of the histogram payload (0 when absent/empty).
  [[nodiscard]] double quantile(double q) const noexcept {
    return obs::quantile_from_buckets(hist, q);
  }

  /// Final value under the given aggregate function. Throws on an empty
  /// state for AVG/MIN/MAX (undefined over zero inputs). kHistogram yields
  /// the observation count; quantiles come from quantile().
  [[nodiscard]] double result(AggregateKind kind) const;

  friend bool operator==(const AggState& a, const AggState& b) noexcept {
    return a.sum == b.sum && a.sum_sq == b.sum_sq && a.count == b.count &&
           a.min == b.min && a.max == b.max && a.hist == b.hist;
  }
};

inline void write_agg_state(net::Writer& w, const AggState& s) {
  w.f64(s.sum);
  w.f64(s.sum_sq);
  w.u64(s.count);
  w.f64(s.min);
  w.f64(s.max);
  if (s.hist.size() > obs::Histogram::kBuckets) {
    throw net::CodecError({net::DecodeErrorCode::kLengthOverflow, w.size()},
                          "write_agg_state: hist");
  }
  w.u32(static_cast<std::uint32_t>(s.hist.size()));
  for (const std::uint64_t c : s.hist) w.u64(c);
}

inline AggState read_agg_state(net::Reader& r) {
  AggState s;
  s.sum = r.f64();
  s.sum_sq = r.f64();
  s.count = r.u64();
  s.min = r.f64();
  s.max = r.f64();
  const std::uint32_t buckets = r.u32();
  // Bound the bucket count before reserving: the obs::Histogram layout never
  // exceeds kBuckets, so anything larger is a malformed datagram, not a
  // request to allocate.
  if (buckets > obs::Histogram::kBuckets) {
    throw net::CodecError(
        {net::DecodeErrorCode::kLengthOverflow, r.position()},
        "read_agg_state: hist");
  }
  s.hist.resize(buckets);
  for (std::uint32_t i = 0; i < buckets; ++i) s.hist[i] = r.u64();
  return s;
}

}  // namespace dat::core
