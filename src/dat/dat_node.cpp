#include "dat/dat_node.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/logging.hpp"
#include "common/sha1.hpp"

namespace dat::core {

namespace {
constexpr const char* kUpdate = "dat.update";
constexpr const char* kGetGlobal = "dat.get_global";
constexpr const char* kGetHistory = "dat.get_history";
constexpr const char* kSnapReq = "dat.snap_req";
constexpr const char* kSnapResp = "dat.snap_resp";
constexpr const char* kCollectStart = "dat.collect_start";
constexpr const char* kCollectReq = "dat.collect_req";
constexpr const char* kHandoff = "dat.handoff";
constexpr const char* kRetract = "dat.retract";

std::string key_label(Id key) {
  char buf[19];  // "0x" + 16 hex digits + NUL
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}
}  // namespace

Id rendezvous_key(std::string_view aggregate_name, const IdSpace& space) {
  return Sha1::hash_to_id(std::string("agg:") + std::string(aggregate_name),
                          space);
}

DatNode::DatNode(chord::Node& chord, DatOptions options)
    : chord_(chord), options_(options) {
  obs::MetricsRegistry& reg = chord_.telemetry().registry;
  m_epochs_ = &reg.counter("dat_tree_epochs_total");
  m_updates_in_ = &reg.counter("dat_tree_updates_received_total");
  m_updates_out_ = &reg.counter("dat_tree_updates_sent_total");
  m_parent_switches_ = &reg.counter("dat_tree_parent_switches_total");
  m_relay_entries_ = &reg.counter("dat_tree_relay_entries_total");
  m_handoffs_out_ = &reg.counter("dat_tree_handoff_children_total");
  m_handoffs_in_ = &reg.counter("dat_tree_handoffs_accepted_total");
  m_retracts_out_ = &reg.counter("dat_tree_retracts_sent_total");
  m_retracts_in_ = &reg.counter("dat_tree_retracts_received_total");
  m_child_staleness_ = &reg.histogram("dat_tree_child_staleness_us");
  // Per-key aggregation-table state as a registry view: sampled at snapshot
  // time, zero cost on the push path. Runs on the node's thread like every
  // other access to table_.
  collector_id_ = reg.add_collector([this](obs::MetricsSnapshot& out) {
    for (const auto& [key, entry] : table_) {
      const obs::Labels labels{{"key", key_label(key)}};
      const auto add = [&out, &labels](const char* name, double value) {
        obs::Sample s;
        s.name = name;
        s.type = obs::MetricType::kGauge;
        s.labels = labels;
        s.value = value;
        out.samples.push_back(std::move(s));
      };
      add("dat_tree_children", static_cast<double>(entry.children.size()));
      add("dat_tree_epoch", static_cast<double>(entry.epoch));
      add("dat_tree_is_root", entry.global.has_value() ? 1.0 : 0.0);
      add("dat_tree_history_len", static_cast<double>(entry.history.size()));
      // Per-key cumulative update counts and the effective push period: the
      // lb load collector turns these into update rates per tree.
      add("dat_tree_updates_in", static_cast<double>(entry.updates_received));
      add("dat_tree_updates_out", static_cast<double>(entry.updates_sent));
      add("dat_tree_period_us", static_cast<double>(period_of(entry)));
      add("dat_tree_override_active",
          entry.parent_override.valid() ? 1.0 : 0.0);
    }
  });
  register_handlers();
}

DatNode::~DatNode() {
  alive_ = false;
  // The chord node (and its transport) can outlive this layer — e.g. a
  // harness tearing down DAT state before the graceful leaves drain. Every
  // handler captured `this`, so they must go before the memory does.
  net::RpcManager& rpc = chord_.rpc();
  rpc.unregister_one_way(kUpdate);
  rpc.unregister_method(kGetGlobal);
  rpc.unregister_method(kGetHistory);
  rpc.unregister_one_way(kSnapReq);
  rpc.unregister_one_way(kSnapResp);
  rpc.unregister_one_way(kCollectStart);
  rpc.unregister_one_way(kCollectReq);
  rpc.unregister_one_way(kHandoff);
  rpc.unregister_one_way(kRetract);
  chord_.telemetry().registry.remove_collector(collector_id_);
  for (auto& [key, entry] : table_) {
    if (entry.timer != 0) chord_.rpc().transport().cancel_timer(entry.timer);
  }
  for (auto& [seq, snap] : snapshots_) {
    if (snap.timer != 0) chord_.rpc().transport().cancel_timer(snap.timer);
  }
}

void DatNode::register_handlers() {
  chord_.rpc().register_one_way(
      kUpdate,
      [this](net::Endpoint from, net::Reader& msg) { handle_update(from, msg); });
  chord_.rpc().register_method(
      kGetGlobal, [this](net::Endpoint from, net::Reader& req,
                         net::Writer& reply) {
        handle_get_global(from, req, reply);
      });
  chord_.rpc().register_method(
      kGetHistory, [this](net::Endpoint from, net::Reader& req,
                          net::Writer& reply) {
        handle_get_history(from, req, reply);
      });
  chord_.rpc().register_one_way(
      kSnapReq, [this](net::Endpoint from, net::Reader& msg) {
        handle_snap_req(from, msg);
      });
  chord_.rpc().register_one_way(
      kSnapResp, [this](net::Endpoint from, net::Reader& msg) {
        handle_snap_resp(from, msg);
      });
  chord_.rpc().register_one_way(
      kCollectStart, [this](net::Endpoint from, net::Reader& msg) {
        handle_collect_start(from, msg);
      });
  chord_.rpc().register_one_way(
      kCollectReq, [this](net::Endpoint from, net::Reader& msg) {
        handle_collect_req(from, msg);
      });
  chord_.rpc().register_one_way(
      kHandoff, [this](net::Endpoint from, net::Reader& msg) {
        handle_handoff(from, msg);
      });
  chord_.rpc().register_one_way(
      kRetract, [this](net::Endpoint from, net::Reader& msg) {
        handle_retract(from, msg);
      });
}

// -- on-demand tree collection ----------------------------------------------

void DatNode::collect_tree(Id key, SnapshotHandler handler) {
  key &= chord_.space().mask();
  if (chord_.owns(key)) {
    run_collect(key, net::kNullEndpoint, 0, 2 * chord_.space().bits(),
                std::move(handler));
    return;
  }
  // Route the request to the root; the root collects and answers us on the
  // snapshot-response channel.
  const std::uint64_t seq = next_seq_++;
  PendingSnapshot pending;
  pending.handler = std::move(handler);
  pending.outstanding = 1;
  snapshots_.emplace(seq, std::move(pending));
  snapshots_.at(seq).timer = chord_.rpc().transport().set_timer(
      2 * options_.snapshot_timeout_us, [this, seq]() {
        if (!alive_) return;
        finish_snapshot(seq);
      });
  chord_.find_successor(key, [this, key, seq](net::RpcStatus status,
                                              chord::NodeRef root) {
    if (!alive_) return;
    if (status != net::RpcStatus::kOk || !root.valid()) {
      finish_snapshot(seq);
      return;
    }
    net::Writer w;
    w.u64(seq);
    w.u64(key);
    w.u8(static_cast<std::uint8_t>(2 * chord_.space().bits()));
    chord_.rpc().send_one_way(root.endpoint, kCollectStart, w);
  });
}

void DatNode::handle_collect_start(net::Endpoint from, net::Reader& msg) {
  const std::uint64_t reply_seq = msg.u64();
  const Id key = msg.u64();
  const std::uint8_t depth = msg.u8();
  run_collect(key, from, reply_seq, depth, nullptr);
}

void DatNode::handle_collect_req(net::Endpoint from, net::Reader& msg) {
  const std::uint64_t reply_seq = msg.u64();
  const Id key = msg.u64();
  const std::uint8_t depth = msg.u8();
  run_collect(key, from, reply_seq, depth, nullptr);
}

void DatNode::run_collect(Id key, net::Endpoint reply_to,
                          std::uint64_t reply_seq, unsigned depth,
                          SnapshotHandler handler) {
  const std::uint64_t seq = next_seq_++;
  PendingSnapshot pending;
  const auto it = table_.find(key);
  pending.acc = it != table_.end() ? local_contribution(it->second)
                                   : AggState::identity();
  pending.handler = std::move(handler);
  pending.reply_to = reply_to;
  pending.reply_seq = reply_seq;

  // Pull from every fresh soft-state child (unless the depth budget is
  // spent, which indicates a transient cycle in stale child records).
  unsigned issued = 0;
  if (it != table_.end() && depth > 0) {
    const std::uint64_t now = chord_.rpc().transport().now_us();
    const std::uint64_t ttl =
        static_cast<std::uint64_t>(options_.child_ttl_epochs) *
        period_of(it->second);
    for (const auto& [child_ep, record] : it->second.children) {
      if (now - record.received_at_us > ttl) continue;
      net::Writer w;
      w.u64(seq);
      w.u64(key);
      w.u8(static_cast<std::uint8_t>(depth - 1));
      chord_.rpc().send_one_way(child_ep, kCollectReq, w);
      ++issued;
    }
  }
  snapshots_.emplace(seq, std::move(pending));
  auto& slot = snapshots_.at(seq);
  slot.outstanding = issued;
  if (issued == 0) {
    finish_snapshot(seq);
    return;
  }
  // Scale the timeout with the remaining depth budget so that deeper
  // levels give up strictly before their parents do — otherwise a dead
  // branch at the bottom would exhaust every ancestor's identical timeout
  // simultaneously and the root would return only its own value.
  const unsigned max_depth = 2 * chord_.space().bits();
  const std::uint64_t level_timeout = std::max<std::uint64_t>(
      options_.snapshot_timeout_us * std::min(depth, max_depth) / max_depth,
      options_.snapshot_timeout_us / 8);
  slot.timer = chord_.rpc().transport().set_timer(
      level_timeout, [this, seq]() {
        if (!alive_) return;
        finish_snapshot(seq);
      });
}

void DatNode::start_aggregate(Id key, AggregateKind kind,
                              chord::RoutingScheme scheme, LocalValueFn local,
                              std::uint64_t epoch_us) {
  key &= chord_.space().mask();
  auto [it, inserted] = table_.try_emplace(key);
  Entry& entry = it->second;
  entry.key = key;
  entry.kind = kind;
  entry.scheme = scheme;
  entry.local = std::move(local);
  if (epoch_us != 0) entry.epoch_us = epoch_us;
  if (inserted) {
    arm_epoch(key);
  }
}

Id DatNode::start_aggregate(std::string_view name, AggregateKind kind,
                            chord::RoutingScheme scheme, LocalValueFn local,
                            std::uint64_t epoch_us) {
  const Id key = rendezvous_key(name, chord_.space());
  start_aggregate(key, kind, scheme, std::move(local), epoch_us);
  return key;
}

void DatNode::start_aggregate_state(Id key, AggregateKind kind,
                                    chord::RoutingScheme scheme,
                                    LocalStateFn local,
                                    std::uint64_t epoch_us) {
  start_aggregate(key, kind, scheme, nullptr, epoch_us);
  table_.at(key & chord_.space().mask()).local_state = std::move(local);
}

Id DatNode::start_aggregate_state(std::string_view name, AggregateKind kind,
                                  chord::RoutingScheme scheme,
                                  LocalStateFn local, std::uint64_t epoch_us) {
  const Id key = rendezvous_key(name, chord_.space());
  start_aggregate_state(key, kind, scheme, std::move(local), epoch_us);
  return key;
}

void DatNode::stop_aggregate(Id key) {
  const auto it = table_.find(key & chord_.space().mask());
  if (it == table_.end()) return;
  if (it->second.timer != 0) {
    chord_.rpc().transport().cancel_timer(it->second.timer);
  }
  table_.erase(it);
}

std::optional<GlobalValue> DatNode::latest(Id key) const {
  const auto it = table_.find(key & chord_.space().mask());
  if (it == table_.end()) return std::nullopt;
  return it->second.global;
}

void DatNode::arm_epoch(Id key) {
  auto it = table_.find(key);
  if (it == table_.end()) return;
  it->second.timer = chord_.rpc().transport().set_timer(
      period_of(it->second), [this, key]() {
        if (!alive_) return;
        run_epoch(key);
        arm_epoch(key);
      });
}

AggState DatNode::collect(Entry& entry) {
  AggState state = local_contribution(entry);
  const std::uint64_t now = chord_.rpc().transport().now_us();
  const std::uint64_t ttl =
      static_cast<std::uint64_t>(options_.child_ttl_epochs) * period_of(entry);
  for (auto it = entry.children.begin(); it != entry.children.end();) {
    if (now - it->second.received_at_us > ttl) {
      it = entry.children.erase(it);  // soft-state expiry: departed child
    } else {
      m_child_staleness_->observe(now - it->second.received_at_us);
      state.merge(it->second.state);
      ++it;
    }
  }
  return state;
}

void DatNode::run_epoch(Id key) {
  auto it = table_.find(key);
  if (it == table_.end() || !chord_.alive()) return;
  Entry& entry = it->second;
  // A drained entry must not push again: its record upstream was retracted,
  // and a fresh update would resurrect it — double-counting the subtree it
  // just handed off.
  if (entry.draining) return;
  ++entry.epoch;
  m_epochs_->inc();
  const AggState state = collect(entry);

  obs::NodeTelemetry& tel = chord_.telemetry();
  const std::uint64_t now = chord_.rpc().transport().now_us();
  const auto parent = chord_.dat_parent(key, entry.scheme);
  if (!parent) {
    // This node is the root: the collected state is the global aggregate.
    entry.global = GlobalValue{state, entry.epoch, now};
    entry.history.push_back(*entry.global);
    while (entry.history.size() > options_.history_size) {
      entry.history.pop_front();
    }
    // Close the causal wave: the aggregate span is the chain's last link,
    // parented on the most recent traced child update folded in.
    if (entry.wave_trace_id != 0) {
      obs::Span span;
      span.trace_id = entry.wave_trace_id;
      span.span_id = tel.recorder.new_span_id();
      span.parent_span_id = entry.wave_parent_span;
      span.name = "dat.aggregate";
      span.start_us = now;
      span.end_us = now;
      span.key = key;
      span.epoch = entry.epoch;
      tel.recorder.record(span);
      entry.wave_trace_id = 0;
      entry.wave_parent_span = 0;
    }
    return;
  }
  entry.global.reset();  // no longer (or not) the root
  // Load-balancing handoff: while a fresh parent override is installed the
  // push goes to the designated relay instead of the geometric parent. An
  // expired (or self-pointing) override falls back silently — soft state.
  chord::NodeRef push_to = *parent;
  if (entry.parent_override.valid()) {
    if (now >= entry.override_until_us ||
        entry.parent_override.endpoint == chord_.rpc().local()) {
      entry.parent_override = {};
      entry.override_until_us = 0;
    } else {
      push_to = entry.parent_override;
    }
  }
  if (entry.last_parent != net::kNullEndpoint &&
      entry.last_parent != push_to.endpoint) {
    m_parent_switches_->inc();
  }
  entry.last_parent = push_to.endpoint;

  // Causal wave: a leaf (no traced child update seen this epoch) starts a
  // fresh trace; an interior node continues the wave stored by
  // handle_update, chaining its send span onto the child's.
  std::uint64_t trace_id = entry.wave_trace_id;
  std::uint64_t parent_span = entry.wave_parent_span;
  if (trace_id == 0) {
    trace_id = tel.recorder.new_trace_id();
    parent_span = 0;
  }
  entry.wave_trace_id = 0;
  entry.wave_parent_span = 0;
  obs::Span span;
  span.trace_id = trace_id;
  span.span_id = tel.recorder.new_span_id();
  span.parent_span_id = parent_span;
  span.name = "dat.update.send";
  span.start_us = now;
  span.end_us = now;
  span.key = key;
  span.epoch = entry.epoch;
  span.peer = push_to.endpoint;
  tel.recorder.record(span);

  net::Writer w;
  w.u64(key);
  w.u8(static_cast<std::uint8_t>(entry.kind));
  w.u8(static_cast<std::uint8_t>(entry.scheme));
  chord::write_node_ref(w, chord_.self());
  write_agg_state(w, state);
  {
    // Scoped so RpcManager stamps {trace, send span} onto the wire frame.
    const obs::TraceContext::Scope scope(tel.trace, trace_id, span.span_id);
    chord_.rpc().send_one_way(push_to.endpoint, kUpdate, w);
  }
  ++entry.updates_sent;
  m_updates_out_->inc();
}

void DatNode::handle_update(net::Endpoint from, net::Reader& msg) {
  const Id key = msg.u64();
  const AggregateKind kind = aggregate_kind_from(msg.u8());
  const std::uint8_t raw_scheme = msg.u8();
  const chord::NodeRef sender = chord::read_node_ref(msg);
  const AggState state = read_agg_state(msg);

  auto it = table_.find(key);
  if (it == table_.end()) {
    // A draining node must not adopt new trees on the way out: it would
    // never forward them. The sender re-parents via Chord stabilization
    // once this node leaves the ring.
    if (draining_) return;
    // First sighting of this tree: create a passive (relay-only) entry so
    // the aggregate flows through us — the paper's "adds a new entry in the
    // aggregation table" on first contact with an aggregate.
    const auto scheme = raw_scheme <= 1
                            ? static_cast<chord::RoutingScheme>(raw_scheme)
                            : chord::RoutingScheme::kBalanced;
    start_aggregate(key, kind, scheme, nullptr);
    it = table_.find(key);
    m_relay_entries_->inc();
  }
  Entry& entry = it->second;
  ++entry.updates_received;
  m_updates_in_->inc();
  if (entry.draining) {
    // Straggler that missed the drain handoff (in flight, or a child whose
    // dat_parent still points here): repeat the redirect instead of
    // re-adopting a record we already retracted upstream. Never redirect
    // the relay at itself.
    if (entry.drain_relay.valid() && from != entry.drain_relay.endpoint) {
      net::Writer w;
      w.u64(key);
      chord::write_node_ref(w, entry.drain_relay);
      w.u64(entry.drain_ttl_us);
      chord_.rpc().send_one_way(from, kHandoff, w);
    }
    return;
  }
  ChildRecord& rec = entry.children[from];
  rec.ref = sender;
  rec.state = state;
  rec.received_at_us = chord_.rpc().transport().now_us();

  // Cycle breaker for load-balancing handoffs: if our designated relay is
  // pushing TO us, following the override would close a two-node loop and
  // orphan both subtrees from the root. Drop the override; the geometric
  // dat_parent takes over again next epoch.
  if (entry.parent_override.valid() &&
      entry.parent_override.endpoint == from) {
    entry.parent_override = {};
    entry.override_until_us = 0;
  }

  // Causal wave: RpcManager scoped the dispatch to the sender's wire trace,
  // so the ambient context carries the child's send span. Record the
  // receive link and adopt the wave — the next run_epoch's own send (or the
  // root's aggregate span) continues this chain.
  obs::NodeTelemetry& tel = chord_.telemetry();
  if (tel.trace.active()) {
    obs::Span span;
    span.trace_id = tel.trace.trace_id();
    span.span_id = tel.recorder.new_span_id();
    span.parent_span_id = tel.trace.span_id();
    span.name = "dat.update.recv";
    span.start_us = rec.received_at_us;
    span.end_us = rec.received_at_us;
    span.key = key;
    span.epoch = entry.epoch;
    span.peer = from;
    tel.recorder.record(span);
    entry.wave_trace_id = span.trace_id;
    entry.wave_parent_span = span.span_id;
  }
}

void DatNode::handle_get_global(net::Endpoint /*from*/, net::Reader& req,
                                net::Writer& reply) {
  const Id key = req.u64();
  const auto it = table_.find(key);
  const bool found = it != table_.end() && it->second.global.has_value();
  reply.boolean(found);
  if (found) {
    const GlobalValue& g = *it->second.global;
    write_agg_state(reply, g.state);
    reply.u64(g.epoch);
    reply.u64(g.updated_at_us);
  }
}

void DatNode::query_global(Id key, QueryHandler handler) {
  key &= chord_.space().mask();
  chord_.find_successor(
      key, [this, key, handler = std::move(handler)](net::RpcStatus status,
                                                     chord::NodeRef root) {
        if (!alive_) return;
        if (status != net::RpcStatus::kOk || !root.valid()) {
          handler(status, std::nullopt);
          return;
        }
        net::Writer w;
        w.u64(key);
        chord_.rpc().call(
            root.endpoint, kGetGlobal, w,
            [this, handler](net::RpcStatus st, net::Reader& r) {
              if (!alive_) return;
              if (st != net::RpcStatus::kOk) {
                handler(st, std::nullopt);
                return;
              }
              if (!r.boolean()) {
                handler(net::RpcStatus::kOk, std::nullopt);
                return;
              }
              GlobalValue g;
              g.state = read_agg_state(r);
              g.epoch = r.u64();
              g.updated_at_us = r.u64();
              handler(net::RpcStatus::kOk, g);
            },
            options_.rpc);
      });
}

std::vector<GlobalValue> DatNode::history(Id key) const {
  const auto it = table_.find(key & chord_.space().mask());
  if (it == table_.end()) return {};
  return {it->second.history.begin(), it->second.history.end()};
}

void DatNode::handle_get_history(net::Endpoint /*from*/, net::Reader& req,
                                 net::Writer& reply) {
  const Id key = req.u64();
  const auto max_points = static_cast<std::size_t>(req.u32());
  const auto it = table_.find(key);
  if (it == table_.end() || it->second.history.empty()) {
    reply.u32(0);
    return;
  }
  const auto& hist = it->second.history;
  const std::size_t count = std::min(max_points, hist.size());
  reply.u32(static_cast<std::uint32_t>(count));
  for (std::size_t i = hist.size() - count; i < hist.size(); ++i) {
    write_agg_state(reply, hist[i].state);
    reply.u64(hist[i].epoch);
    reply.u64(hist[i].updated_at_us);
  }
}

void DatNode::query_history(Id key, std::size_t max_points,
                            HistoryHandler handler) {
  key &= chord_.space().mask();
  chord_.find_successor(
      key, [this, key, max_points, handler = std::move(handler)](
               net::RpcStatus status, chord::NodeRef root) {
        if (!alive_) return;
        if (status != net::RpcStatus::kOk || !root.valid()) {
          handler(status, {});
          return;
        }
        net::Writer w;
        w.u64(key);
        w.u32(static_cast<std::uint32_t>(max_points));
        chord_.rpc().call(
            root.endpoint, kGetHistory, w,
            [this, handler](net::RpcStatus st, net::Reader& r) {
              if (!alive_) return;
              std::vector<GlobalValue> points;
              if (st == net::RpcStatus::kOk) {
                const auto count = r.u32();
                points.reserve(count);
                for (std::uint32_t i = 0; i < count; ++i) {
                  GlobalValue g;
                  g.state = read_agg_state(r);
                  g.epoch = r.u64();
                  g.updated_at_us = r.u64();
                  points.push_back(g);
                }
              }
              handler(st, std::move(points));
            },
            options_.rpc);
      });
}

// -- on-demand snapshots ------------------------------------------------------

void DatNode::snapshot(Id key, SnapshotHandler handler) {
  key &= chord_.space().mask();
  const std::uint64_t seq = next_seq_++;
  PendingSnapshot snap;
  const auto it = table_.find(key);
  snap.acc = it != table_.end() ? local_contribution(it->second)
                                : AggState::identity();
  snap.handler = std::move(handler);
  snapshots_.emplace(seq, std::move(snap));

  // Cover the whole circle (self, self] via the fingers.
  const unsigned issued = snapshot_fan_out(key, chord_.id(), seq);
  auto& pending = snapshots_.at(seq);
  pending.outstanding = issued;
  if (issued == 0) {
    finish_snapshot(seq);
    return;
  }
  pending.timer = chord_.rpc().transport().set_timer(
      options_.snapshot_timeout_us, [this, seq]() {
        if (!alive_) return;
        finish_snapshot(seq);  // return what we have; stragglers are dropped
      });
}

unsigned DatNode::snapshot_fan_out(Id key, Id limit, std::uint64_t seq) {
  // Segmented DHT broadcast (the Chord `broadcast` routine of Fig. 6):
  // delegate (f_j, boundary) to finger f_j, where boundary is the next
  // higher finger already delegated (or `limit` for the highest). Every
  // node in (self, limit) is reached exactly once.
  const IdSpace& space = chord_.space();

  // Membership test for the delegated segment (self, limit), where
  // limit == self means the full circle minus self (the initiator's case).
  const auto in_segment = [&](Id x) {
    if (x == chord_.id()) return false;
    if (limit == chord_.id()) return true;  // full circle minus self
    return space.in_open_open(chord_.id(), x, limit);
  };

  // Collect distinct fingers inside the segment.
  std::vector<std::pair<Id, net::Endpoint>> targets;
  for (unsigned j = space.bits(); j-- > 0;) {
    const chord::NodeRef& f =
        j == 0 ? chord_.successor() : chord_.finger(j);
    if (!f.valid() || f.endpoint == chord_.rpc().local()) continue;
    if (!in_segment(f.id)) continue;
    if (std::any_of(targets.begin(), targets.end(),
                    [&](const auto& t) { return t.first == f.id; })) {
      continue;
    }
    targets.emplace_back(f.id, f.endpoint);
  }
  // Highest-id target first: delegate (f, previous boundary).
  std::sort(targets.begin(), targets.end(), [&](const auto& a, const auto& b) {
    return space.clockwise(chord_.id(), a.first) >
           space.clockwise(chord_.id(), b.first);
  });

  unsigned issued = 0;
  Id boundary = limit;
  for (const auto& [fid, fep] : targets) {
    net::Writer w;
    w.u64(seq);
    w.u64(key);
    w.u64(boundary);
    chord_.rpc().send_one_way(fep, kSnapReq, w);
    ++issued;
    boundary = fid;
  }
  return issued;
}

void DatNode::handle_snap_req(net::Endpoint from, net::Reader& msg) {
  const std::uint64_t origin_seq = msg.u64();
  const Id key = msg.u64();
  const Id limit = msg.u64();

  const std::uint64_t seq = next_seq_++;
  PendingSnapshot snap;
  const auto it = table_.find(key);
  snap.acc = it != table_.end() ? local_contribution(it->second)
                                : AggState::identity();
  snap.reply_to = from;
  snap.reply_seq = origin_seq;
  snapshots_.emplace(seq, std::move(snap));

  const unsigned issued = snapshot_fan_out(key, limit, seq);
  auto& pending = snapshots_.at(seq);
  pending.outstanding = issued;
  if (issued == 0) {
    finish_snapshot(seq);
    return;
  }
  pending.timer = chord_.rpc().transport().set_timer(
      options_.snapshot_timeout_us,
      [this, seq]() {
        if (!alive_) return;
        finish_snapshot(seq);
      });
}

void DatNode::handle_snap_resp(net::Endpoint /*from*/, net::Reader& msg) {
  const std::uint64_t seq = msg.u64();
  const AggState state = read_agg_state(msg);
  const auto it = snapshots_.find(seq);
  if (it == snapshots_.end() || it->second.done) return;
  it->second.acc.merge(state);
  if (it->second.outstanding > 0) --it->second.outstanding;
  if (it->second.outstanding == 0) {
    finish_snapshot(seq);
  }
}

void DatNode::finish_snapshot(std::uint64_t seq) {
  const auto it = snapshots_.find(seq);
  if (it == snapshots_.end() || it->second.done) return;
  PendingSnapshot& snap = it->second;
  snap.done = true;
  if (snap.timer != 0) chord_.rpc().transport().cancel_timer(snap.timer);

  if (snap.handler) {
    SnapshotHandler handler = std::move(snap.handler);
    const AggState acc = snap.acc;
    snapshots_.erase(it);
    handler(acc);
    return;
  }
  net::Writer w;
  w.u64(snap.reply_seq);
  write_agg_state(w, snap.acc);
  chord_.rpc().send_one_way(snap.reply_to, kSnapResp, w);
  snapshots_.erase(it);
}

// -- load balancing -----------------------------------------------------------

std::size_t DatNode::shed_children(Id key, std::size_t keep,
                                   std::uint64_t ttl_us) {
  const auto it = table_.find(key & chord_.space().mask());
  if (it == table_.end() || keep == 0) return 0;
  Entry& entry = it->second;

  // Work from fresh children only (same expiry rule as collect()).
  const std::uint64_t now = chord_.rpc().transport().now_us();
  const std::uint64_t ttl =
      static_cast<std::uint64_t>(options_.child_ttl_epochs) * period_of(entry);
  for (auto c = entry.children.begin(); c != entry.children.end();) {
    if (now - c->second.received_at_us > ttl) {
      c = entry.children.erase(c);
    } else {
      ++c;
    }
  }
  if (entry.children.size() <= keep) return 0;

  // The relay is the kept child with the lowest endpoint — deterministic
  // for a given child set, so same-seed runs shed identically.
  const chord::NodeRef relay = entry.children.begin()->second.ref;
  std::size_t moved = 0;
  auto c = std::next(entry.children.begin(),
                     static_cast<std::ptrdiff_t>(keep));
  while (c != entry.children.end()) {
    net::Writer w;
    w.u64(key);
    chord::write_node_ref(w, relay);
    w.u64(ttl_us);
    chord_.rpc().send_one_way(c->first, kHandoff, w);
    // Drop the record now: the child's next push lands at the relay, and a
    // lingering record here would double-count the subtree once the relay
    // starts reporting it.
    c = entry.children.erase(c);
    ++moved;
  }
  m_handoffs_out_->inc(moved);
  return moved;
}

void DatNode::set_parent_override(Id key, chord::NodeRef relay,
                                  std::uint64_t ttl_us) {
  const auto it = table_.find(key & chord_.space().mask());
  if (it == table_.end()) return;
  if (!relay.valid() || relay.endpoint == chord_.rpc().local()) return;
  it->second.parent_override = relay;
  it->second.override_until_us = chord_.rpc().transport().now_us() + ttl_us;
  m_handoffs_in_->inc();
}

bool DatNode::has_parent_override(Id key) const {
  const auto it = table_.find(key & chord_.space().mask());
  if (it == table_.end()) return false;
  const Entry& entry = it->second;
  return entry.parent_override.valid() &&
         chord_.rpc().transport().now_us() < entry.override_until_us;
}

void DatNode::handle_handoff(net::Endpoint /*from*/, net::Reader& msg) {
  const Id key = msg.u64();
  const chord::NodeRef relay = chord::read_node_ref(msg);
  const std::uint64_t ttl_us = msg.u64();
  set_parent_override(key, relay, ttl_us);
}

// -- graceful drain -----------------------------------------------------------

std::vector<Id> DatNode::active_keys() const {
  std::vector<Id> keys;
  keys.reserve(table_.size());
  for (const auto& [key, entry] : table_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

chord::NodeRef DatNode::drain_relay_for(const Entry& entry) const {
  const std::uint64_t now = chord_.rpc().transport().now_us();
  if (entry.parent_override.valid() && now < entry.override_until_us &&
      entry.parent_override.endpoint != chord_.rpc().local()) {
    return entry.parent_override;
  }
  if (const auto parent = chord_.dat_parent(entry.key, entry.scheme)) {
    return *parent;
  }
  // This node is the root: its successor inherits the key range once the
  // clean leave completes, so that is where the orphaned children belong.
  const chord::NodeRef succ = chord_.successor();
  if (succ.valid() && succ.endpoint != chord_.rpc().local()) return succ;
  return {};
}

std::size_t DatNode::drain_children(Id key, std::uint64_t ttl_us) {
  const auto it = table_.find(key & chord_.space().mask());
  if (it == table_.end()) return 0;
  Entry& entry = it->second;

  // Prune stale records first (same expiry rule as collect()) so departed
  // children are not counted as "moved".
  const std::uint64_t now = chord_.rpc().transport().now_us();
  const std::uint64_t ttl =
      static_cast<std::uint64_t>(options_.child_ttl_epochs) * period_of(entry);
  for (auto c = entry.children.begin(); c != entry.children.end();) {
    if (now - c->second.received_at_us > ttl) {
      c = entry.children.erase(c);
    } else {
      ++c;
    }
  }

  const chord::NodeRef relay = drain_relay_for(entry);
  entry.draining = true;
  entry.drain_relay = relay;
  entry.drain_ttl_us = ttl_us;
  if (!relay.valid()) {
    // Singleton ring: nobody to hand the subtree to, and nobody left to
    // count it either.
    entry.children.clear();
    return 0;
  }
  std::size_t moved = 0;
  for (const auto& [child_ep, record] : entry.children) {
    // The relay itself may be one of our children (root drain: the
    // successor often is). set_parent_override ignores self-relays, so a
    // redirect would be a no-op; it re-parents via stabilization instead.
    if (child_ep == relay.endpoint) continue;
    net::Writer w;
    w.u64(key);
    chord::write_node_ref(w, relay);
    w.u64(ttl_us);
    chord_.rpc().send_one_way(child_ep, kHandoff, w);
    ++moved;
  }
  // Drop every record now: the subtree reports through the relay from its
  // next push, and we will never push (or be counted) again.
  entry.children.clear();
  m_handoffs_out_->inc(moved);
  return moved;
}

DatNode::DrainReport DatNode::drain(std::uint64_t ttl_us) {
  DrainReport report;
  draining_ = true;
  for (auto& [key, entry] : table_) {
    if (entry.draining) continue;  // idempotent: drained on an earlier call
    ++report.keys;
    report.children_moved += drain_children(key, ttl_us);
    if (entry.timer != 0) {
      chord_.rpc().transport().cancel_timer(entry.timer);
      entry.timer = 0;
    }
    // Erase our soft-state record at the parent immediately. Without this
    // the handed-off children double-count against the stale record until
    // TTL expiry — drain would briefly inflate the aggregate instead of
    // conserving it.
    if (entry.last_parent != net::kNullEndpoint &&
        entry.last_parent != chord_.rpc().local()) {
      net::Writer w;
      w.u64(key);
      chord_.rpc().send_one_way(entry.last_parent, kRetract, w);
      ++report.retracts_sent;
      m_retracts_out_->inc();
    }
  }
  return report;
}

void DatNode::handle_retract(net::Endpoint from, net::Reader& msg) {
  const Id key = msg.u64();
  const auto it = table_.find(key);
  if (it == table_.end()) return;
  if (it->second.children.erase(from) > 0) {
    m_retracts_in_->inc();
  }
}

// -- instrumentation ----------------------------------------------------------

std::uint64_t DatNode::updates_received(Id key) const {
  const auto it = table_.find(key & chord_.space().mask());
  return it == table_.end() ? 0 : it->second.updates_received;
}

std::uint64_t DatNode::updates_sent(Id key) const {
  const auto it = table_.find(key & chord_.space().mask());
  return it == table_.end() ? 0 : it->second.updates_sent;
}

std::size_t DatNode::child_count(Id key) const {
  const auto it = table_.find(key & chord_.space().mask());
  return it == table_.end() ? 0 : it->second.children.size();
}

std::uint64_t DatNode::epoch_period(Id key) const {
  const auto it = table_.find(key & chord_.space().mask());
  return it == table_.end() ? options_.epoch_us : period_of(it->second);
}

}  // namespace dat::core
