#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "chord/node.hpp"
#include "dat/aggregate.hpp"
#include "obs/trace.hpp"

namespace dat::core {

/// Derives the rendezvous key of a named aggregate: the SHA-1 hash of the
/// attribute name on the identifier circle (paper Sec. 2.3 — "the
/// rendezvous key is the SHA1 hash value of the attribute name").
[[nodiscard]] Id rendezvous_key(std::string_view aggregate_name,
                                const IdSpace& space);

struct DatOptions {
  /// Continuous-mode push period (the paper's "time slot").
  std::uint64_t epoch_us = 500'000;
  /// Number of recent global values the root retains per aggregate — the
  /// time series consumers chart (Fig. 9(a)-style monitoring).
  std::size_t history_size = 256;
  /// A child whose last update is older than this many epochs is presumed
  /// departed and dropped from the aggregation (soft-state membership).
  unsigned child_ttl_epochs = 3;
  /// Timeout for collecting one level of snapshot (on-demand) responses.
  std::uint64_t snapshot_timeout_us = 2'000'000;
  /// Budget of root-query RPCs (get_global / get_history): adaptive so
  /// retries back off under loss. Snapshot/collect fan-out uses one-way
  /// messages bounded by snapshot_timeout_us instead of this budget.
  net::RpcManager::Options rpc = net::RpcOptions::adaptive();
};

/// Latest global value as held by a tree's root.
struct GlobalValue {
  AggState state;
  std::uint64_t epoch = 0;
  std::uint64_t updated_at_us = 0;
};

/// The DAT layer of one node (paper Sec. 4, Fig. 6): an aggregation table
/// of active trees, the continuous bottom-up push protocol along
/// implicitly-constructed tree edges, an on-demand snapshot mode via
/// segmented broadcast with echo aggregation, and a routed query for the
/// root's latest global value.
///
/// Parent selection is purely local (chord::Node::dat_parent — Algorithm 1
/// evaluated against the live finger table), so the tree needs no
/// membership maintenance: churn is absorbed by Chord stabilization, and a
/// node's children are known only as soft state refreshed by their updates.
class DatNode {
 public:
  using LocalValueFn = std::function<double()>;
  /// Full partial-aggregate leaf contribution — the hook histogram trees
  /// use: the leaf supplies a pre-built AggState (bucket counts and all)
  /// instead of one scalar sample.
  using LocalStateFn = std::function<AggState()>;

  DatNode(chord::Node& chord, DatOptions options);
  ~DatNode();

  DatNode(const DatNode&) = delete;
  DatNode& operator=(const DatNode&) = delete;

  /// Registers an aggregate in the local aggregation table and starts the
  /// continuous push loop. `local` supplies this node's x_i(t) each epoch;
  /// pass nullptr for a node that only relays (contributes no value).
  /// `epoch_us` overrides DatOptions::epoch_us for this key alone (0 keeps
  /// the default) — hot aggregates can push faster than the base period,
  /// which is how skewed per-key workloads are produced. The soft-state
  /// child TTL scales with the per-key period.
  void start_aggregate(Id key, AggregateKind kind,
                       chord::RoutingScheme scheme, LocalValueFn local,
                       std::uint64_t epoch_us = 0);

  /// Convenience: aggregate named by attribute (e.g. "cpu-usage").
  Id start_aggregate(std::string_view name, AggregateKind kind,
                     chord::RoutingScheme scheme, LocalValueFn local,
                     std::uint64_t epoch_us = 0);

  /// Like start_aggregate, but the leaf contributes a full AggState each
  /// epoch (mergeable histogram payloads, pre-merged sub-aggregates)
  /// instead of a single scalar. Replaces any LocalValueFn for the key.
  void start_aggregate_state(Id key, AggregateKind kind,
                             chord::RoutingScheme scheme, LocalStateFn local,
                             std::uint64_t epoch_us = 0);
  Id start_aggregate_state(std::string_view name, AggregateKind kind,
                           chord::RoutingScheme scheme, LocalStateFn local,
                           std::uint64_t epoch_us = 0);

  void stop_aggregate(Id key);
  [[nodiscard]] bool has_aggregate(Id key) const {
    return table_.contains(key);
  }

  /// Root-side: the latest global value for `key`, if this node is the
  /// root and has completed at least one epoch.
  [[nodiscard]] std::optional<GlobalValue> latest(Id key) const;

  /// Root-side: recent global values, oldest first (bounded by
  /// DatOptions::history_size). Empty unless this node is the root.
  [[nodiscard]] std::vector<GlobalValue> history(Id key) const;

  /// Routes to the root and fetches up to `max_points` of its recent
  /// history, oldest first. Usable from any node.
  using HistoryHandler =
      std::function<void(net::RpcStatus, std::vector<GlobalValue>)>;
  void query_history(Id key, std::size_t max_points, HistoryHandler handler);

  /// Routes to the root of `key`'s tree and fetches its latest global
  /// value. Usable from any node.
  using QueryHandler =
      std::function<void(net::RpcStatus, std::optional<GlobalValue>)>;
  void query_global(Id key, QueryHandler handler);

  /// On-demand aggregation (paper Sec. 4's on-demand mode): a segmented
  /// broadcast over the ring with echo aggregation on the way back. Every
  /// live node's registered local value for `key` is merged exactly once.
  /// Completes after at most `snapshot_timeout_us` per level even if nodes
  /// fail mid-collection (partial state is then returned).
  using SnapshotHandler = std::function<void(const AggState&)>;
  void snapshot(Id key, SnapshotHandler handler);

  /// On-demand collection down the DAT tree itself: the request is routed
  /// to the root, which recursively pulls fresh values from its soft-state
  /// children (the nodes whose continuous updates it has seen) — the
  /// paper's "computes its child nodes based on the information in the
  /// [aggregation] table". Coverage equals the continuous tree's coverage;
  /// unlike snapshot() it touches only tree edges, not the whole ring.
  void collect_tree(Id key, SnapshotHandler handler);

  // -- load balancing --------------------------------------------------------
  /// Hands off excess children of `key` to one of them: prunes stale child
  /// records, keeps the first `keep` children (endpoint order, so the pick
  /// is deterministic), and redirects the rest to the kept child with the
  /// lowest endpoint (the relay) via one-way dat.handoff messages carrying
  /// a parent override valid for `ttl_us`. Moved records are dropped here
  /// immediately — the relay reports the subtree from its next push, so
  /// keeping them would double-count. Returns the number of children moved.
  std::size_t shed_children(Id key, std::size_t keep, std::uint64_t ttl_us);

  /// Redirects this node's continuous push for `key` to `relay` instead of
  /// the geometric dat_parent, for `ttl_us`. Ignored when the relay is this
  /// node itself; while this node is the root the override is dormant. An
  /// update arriving FROM the relay clears the override (cycle breaker: the
  /// relay considers us its parent, so following it would orphan the
  /// subtree). Handoffs are soft state like everything else in the tree —
  /// the rebalancer re-issues them each round to sustain a shape.
  void set_parent_override(Id key, chord::NodeRef relay, std::uint64_t ttl_us);

  /// True while an unexpired parent override is installed for `key`.
  [[nodiscard]] bool has_parent_override(Id key) const;

  // -- graceful drain --------------------------------------------------------
  /// Keys currently present in the aggregation table (active and relay
  /// entries alike), sorted ascending.
  [[nodiscard]] std::vector<Id> active_keys() const;

  /// Outcome of one DatNode::drain() call.
  struct DrainReport {
    std::size_t keys = 0;            ///< aggregation-table entries drained
    std::size_t children_moved = 0;  ///< handoffs issued across all keys
    std::size_t retracts_sent = 0;   ///< parent-side records retracted
  };

  /// Hands off EVERY fresh child of `key` to this node's own upstream (the
  /// fresh parent override, else the geometric dat_parent, else — when this
  /// node is the root — its successor, which inherits the key range on
  /// leave). The subtree then bypasses this node entirely: the first step of
  /// a graceful exit. Marks the entry as draining, so stragglers that still
  /// push here are re-issued the redirect instead of being re-adopted.
  /// Returns the number of children moved.
  std::size_t drain_children(Id key, std::uint64_t ttl_us);

  /// Graceful exit of the whole DAT layer, run before a clean Chord leave:
  /// for every key, drain_children() re-parents the subtree upstream, a
  /// one-way dat.retract erases this node's soft-state record at its parent
  /// (so the handed-off children are not double-counted against the stale
  /// record until TTL expiry), and the push timer stops. The node's own
  /// local value leaves the aggregate exactly once — conservation is what
  /// the process-chaos SLO asserts. Idempotent.
  DrainReport drain(std::uint64_t ttl_us);

  /// True once drain() has run.
  [[nodiscard]] bool draining() const noexcept { return draining_; }

  // -- instrumentation -------------------------------------------------------
  /// Continuous-mode child updates received per key (the per-node
  /// "aggregation messages" metric of Fig. 8).
  [[nodiscard]] std::uint64_t updates_received(Id key) const;
  [[nodiscard]] std::uint64_t updates_sent(Id key) const;
  /// Number of distinct live children currently known for `key`.
  [[nodiscard]] std::size_t child_count(Id key) const;
  /// Effective push period of `key`: its override, or the global default.
  [[nodiscard]] std::uint64_t epoch_period(Id key) const;

  [[nodiscard]] chord::Node& chord() noexcept { return chord_; }
  [[nodiscard]] const DatOptions& options() const noexcept { return options_; }

 private:
  struct ChildRecord {
    chord::NodeRef ref;
    AggState state;
    std::uint64_t received_at_us = 0;
  };

  struct Entry {
    Id key = 0;
    AggregateKind kind = AggregateKind::kSum;
    chord::RoutingScheme scheme = chord::RoutingScheme::kBalanced;
    LocalValueFn local;       // may be null (relay-only)
    LocalStateFn local_state; // full-state leaf hook; wins over `local`
    std::map<net::Endpoint, ChildRecord> children;
    std::uint64_t epoch = 0;
    net::TimerId timer = 0;
    std::optional<GlobalValue> global;  // set while this node is the root
    std::deque<GlobalValue> history;    // root-side time series
    std::uint64_t updates_received = 0;
    std::uint64_t updates_sent = 0;
    /// Per-key push-period override; 0 means DatOptions::epoch_us.
    std::uint64_t epoch_us = 0;
    /// Load-balancing parent override (dat.handoff): while set and fresh,
    /// run_epoch pushes here instead of to the geometric dat_parent.
    chord::NodeRef parent_override{};
    std::uint64_t override_until_us = 0;
    // Causal-wave trace state: set by handle_update when a traced child
    // update arrives (the child's send span becomes our parent span),
    // consumed and cleared by the next run_epoch so the outgoing update
    // continues the child's trace — one aggregation wave is then one span
    // chain climbing the tree from a leaf to the root.
    std::uint64_t wave_trace_id = 0;
    std::uint64_t wave_parent_span = 0;
    // Last parent this entry pushed to; a change means Chord re-parented us
    // (churn or finger repair) and is counted as a tree-topology event.
    net::Endpoint last_parent = net::kNullEndpoint;
    /// Graceful-exit state: once draining, the entry stops pushing and any
    /// straggler update is answered with a redirect to `drain_relay`.
    bool draining = false;
    chord::NodeRef drain_relay{};
    std::uint64_t drain_ttl_us = 0;
  };

  struct PendingSnapshot {
    AggState acc;
    unsigned outstanding = 0;
    // Exactly one of handler / (reply_to, reply_seq) is set: the initiator
    // keeps the handler, forwarders reply upstream.
    SnapshotHandler handler;
    net::Endpoint reply_to = net::kNullEndpoint;
    std::uint64_t reply_seq = 0;
    net::TimerId timer = 0;
    bool done = false;
  };

  void register_handlers();
  void arm_epoch(Id key);
  void run_epoch(Id key);
  [[nodiscard]] AggState collect(Entry& entry);
  /// This node's own leaf contribution for the entry (identity when the
  /// entry is relay-only).
  [[nodiscard]] static AggState local_contribution(const Entry& entry) {
    if (entry.local_state) return entry.local_state();
    if (entry.local) return AggState::of(entry.local());
    return AggState::identity();
  }
  [[nodiscard]] std::uint64_t period_of(const Entry& entry) const {
    return entry.epoch_us != 0 ? entry.epoch_us : options_.epoch_us;
  }

  /// Upstream relay a draining entry points its children at.
  [[nodiscard]] chord::NodeRef drain_relay_for(const Entry& entry) const;

  void handle_update(net::Endpoint from, net::Reader& msg);
  void handle_handoff(net::Endpoint from, net::Reader& msg);
  void handle_retract(net::Endpoint from, net::Reader& msg);
  void handle_get_global(net::Endpoint from, net::Reader& req,
                         net::Writer& reply);
  void handle_get_history(net::Endpoint from, net::Reader& req,
                          net::Writer& reply);
  void handle_snap_req(net::Endpoint from, net::Reader& msg);
  void handle_snap_resp(net::Endpoint from, net::Reader& msg);
  void handle_collect_start(net::Endpoint from, net::Reader& msg);
  void handle_collect_req(net::Endpoint from, net::Reader& msg);

  /// Runs one level of tree collection: pull from fresh children, merge
  /// with the local value, reply upstream through the snapshot plumbing.
  /// `depth` bounds recursion: stale soft-state child records can form
  /// transient cycles right after re-parenting.
  void run_collect(Id key, net::Endpoint reply_to, std::uint64_t reply_seq,
                   unsigned depth, SnapshotHandler handler);

  /// Fans a snapshot out over the ring segment (self, limit); returns the
  /// number of sub-requests issued against pending sequence `seq`.
  unsigned snapshot_fan_out(Id key, Id limit, std::uint64_t seq);
  void finish_snapshot(std::uint64_t seq);

  chord::Node& chord_;
  DatOptions options_;
  std::unordered_map<Id, Entry> table_;  // the paper's aggregation table
  std::unordered_map<std::uint64_t, PendingSnapshot> snapshots_;
  std::uint64_t next_seq_ = 1;
  bool alive_ = true;
  bool draining_ = false;

  // Borrowed instrument pointers into chord_.telemetry().registry; the
  // deque-backed registry guarantees they outlive this object (the chord
  // node owns both and destroys the DAT layer first).
  obs::Counter* m_epochs_ = nullptr;
  obs::Counter* m_updates_in_ = nullptr;
  obs::Counter* m_updates_out_ = nullptr;
  obs::Counter* m_parent_switches_ = nullptr;
  obs::Counter* m_relay_entries_ = nullptr;
  obs::Counter* m_handoffs_out_ = nullptr;  ///< children shed to a relay
  obs::Counter* m_handoffs_in_ = nullptr;   ///< parent overrides accepted
  obs::Counter* m_retracts_out_ = nullptr;  ///< drain retracts sent upstream
  obs::Counter* m_retracts_in_ = nullptr;   ///< child records retracted here
  obs::Histogram* m_child_staleness_ = nullptr;
  std::uint64_t collector_id_ = 0;
};

}  // namespace dat::core
