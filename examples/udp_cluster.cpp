// Real-socket deployment: the paper ran up to 64 DAT instances per machine
// over a UDP RPC layer (Sec. 5.1). This example hosts 16 live nodes on
// loopback sockets in one process — the same Chord/DAT code as the
// simulator examples, but over the kernel's UDP stack and wall-clock
// timers — and runs both a continuous aggregate and an on-demand snapshot.
//
// Run: ./build/examples/udp_cluster   (takes ~15 s of wall time)

#include <cstdio>
#include <memory>
#include <vector>

#include "chord/node.hpp"
#include "chord/ring_view.hpp"
#include "dat/dat_node.hpp"
#include "net/udp_transport.hpp"

int main() {
  using namespace dat;
  constexpr std::size_t kNodes = 16;
  const IdSpace space(32);

  net::UdpNetwork network;
  chord::NodeOptions node_options;
  node_options.stabilize_interval_us = 50'000;
  node_options.fix_fingers_interval_us = 10'000;
  node_options.rpc.timeout_us = 200'000;

  core::DatOptions dat_options;
  dat_options.epoch_us = 300'000;

  std::printf("spawning %zu UDP nodes on loopback...\n", kNodes);
  std::vector<std::unique_ptr<chord::Node>> nodes;
  std::vector<std::unique_ptr<core::DatNode>> dats;

  auto& first = network.add_node();
  nodes.push_back(
      std::make_unique<chord::Node>(space, first, node_options, 1));
  nodes.front()->create();
  for (std::size_t i = 1; i < kNodes; ++i) {
    auto& transport = network.add_node();
    nodes.push_back(std::make_unique<chord::Node>(space, transport,
                                                  node_options, 100 + i));
    bool joined = false;
    nodes.back()->join(first.local(), [&](bool ok) { joined = ok; });
    if (!network.run_while([&] { return !joined; }, 5'000'000)) {
      std::fprintf(stderr, "node %zu failed to join\n", i);
      return 1;
    }
    std::printf("  node %2zu joined as %s (id %llu)\n", i,
                net::endpoint_to_string(nodes.back()->self().endpoint).c_str(),
                static_cast<unsigned long long>(nodes.back()->id()));
  }

  // Converge the finger tables against the ground-truth membership.
  std::vector<Id> ids;
  for (const auto& node : nodes) ids.push_back(node->id());
  const chord::RingView ring(space, ids);
  std::printf("stabilizing (gap ratio %.1f)...\n", ring.gap_ratio());
  const bool converged = network.run_while(
      [&] {
        for (const auto& node : nodes) {
          if (!node->converged_against(ring)) return true;
        }
        return false;
      },
      30'000'000);
  std::printf("converged=%s\n", converged ? "yes" : "timeout (continuing)");

  for (auto& node : nodes) node->set_d0_hint(space.size(), kNodes);
  Id key = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    dats.push_back(std::make_unique<core::DatNode>(*nodes[i], dat_options));
    const double mem_gb = 8.0 + 8.0 * static_cast<double>(i % 4);
    key = dats.back()->start_aggregate("memory-size",
                                       core::AggregateKind::kSum,
                                       chord::RoutingScheme::kBalanced,
                                       [mem_gb]() { return mem_gb; });
  }

  // Let the continuous mode run a dozen epochs of wall time.
  network.run_for(12 * dat_options.epoch_us);

  bool done = false;
  dats[5]->query_global(
      key, [&](net::RpcStatus status, std::optional<core::GlobalValue> g) {
        done = true;
        if (status != net::RpcStatus::kOk || !g) {
          std::printf("query failed: %s\n", net::to_string(status));
          return;
        }
        std::printf("continuous: total memory %.0f GB across %llu nodes "
                    "(epoch %llu)\n",
                    g->state.sum,
                    static_cast<unsigned long long>(g->state.count),
                    static_cast<unsigned long long>(g->epoch));
      });
  network.run_while([&] { return !done; }, 5'000'000);

  done = false;
  dats[11]->snapshot(key, [&](const core::AggState& state) {
    done = true;
    std::printf("snapshot:   total memory %.0f GB across %llu nodes\n",
                state.sum, static_cast<unsigned long long>(state.count));
  });
  network.run_while([&] { return !done; }, 5'000'000);

  // Graceful shutdown.
  dats.clear();
  for (auto& node : nodes) node->leave();
  network.run_for(200'000);
  std::printf("all nodes left the ring; done.\n");
  return 0;
}
