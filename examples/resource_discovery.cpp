// Multi-attribute resource discovery on MAAN (paper Sec. 2.2) — the
// indexing layer beneath the DAT aggregation trees. A 64-node overlay
// indexes 256 heterogeneous machines; we then resolve the kinds of queries
// a Grid scheduler issues, showing the hop accounting the paper analyzes
// (O(m log n) registration, O(log n + k) range resolution, and the
// single-attribute-dominated multi-attribute strategy).
//
// Run: ./build/examples/resource_discovery

#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "harness/sim_cluster.hpp"

namespace {

using namespace dat;

void run_query(harness::SimCluster& cluster, const char* label,
               const std::vector<maan::RangePredicate>& predicates) {
  bool done = false;
  maan::QueryResult result;
  cluster.maan(0).multi_query(predicates, [&](maan::QueryResult r) {
    done = true;
    result = std::move(r);
  });
  const auto deadline = cluster.engine().now() + 30'000'000;
  while (!done && cluster.engine().now() < deadline) {
    cluster.engine().run_steps(256);
  }
  if (!done) {
    std::printf("%-44s TIMED OUT\n", label);
    return;
  }
  std::printf("%-44s %5zu hits  (%2u routing + %3u sweep hops)%s\n", label,
              result.resources.size(), result.routing_hops,
              result.sweep_hops, result.complete ? "" : " [partial]");
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 64;
  constexpr std::size_t kResources = 256;

  harness::ClusterOptions options;
  options.seed = 64064;
  options.with_dat = false;
  options.with_maan = true;
  std::printf("bootstrapping %zu-node MAAN overlay...\n", kNodes);
  harness::SimCluster cluster(kNodes, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }

  // Index a heterogeneous machine park: 4 machine classes crossed with
  // varying load.
  std::printf("registering %zu resources (m=4 attributes each)...\n",
              kResources);
  Rng rng(5);
  RunningStats reg_hops;
  for (std::size_t r = 0; r < kResources; ++r) {
    maan::Resource resource;
    resource.id = "machine-" + std::to_string(r);
    const double speed_ghz = 1.5 + 0.5 * static_cast<double>(r % 4);
    resource.attributes = {
        {"cpu-usage", maan::AttrValue{rng.next_double() * 100.0}},
        {"cpu-speed", maan::AttrValue{speed_ghz * 1e9}},
        {"memory-size", maan::AttrValue{(4.0 + 4.0 * (r % 8)) * 1e9}},
        {"os", maan::AttrValue{std::string(r % 5 ? "linux" : "freebsd")}},
    };
    bool done = false;
    cluster.maan(r % kNodes).register_resource(
        resource, [&](bool ok, unsigned hops) {
          done = true;
          if (ok) reg_hops.add(static_cast<double>(hops) / 4.0);
        });
    const auto deadline = cluster.engine().now() + 30'000'000;
    while (!done && cluster.engine().now() < deadline) {
      cluster.engine().run_steps(256);
    }
  }
  std::printf("mean routing hops per attribute: %.2f (log2 n = %.1f)\n\n",
              reg_hops.mean(), 6.0);

  using P = maan::RangePredicate;
  run_query(cluster, "cpu-usage in [0, 10]", {P{.attr = "cpu-usage", .lo = 0, .hi = 10, .exact = {}}});
  run_query(cluster, "cpu-usage in [0, 50]", {P{.attr = "cpu-usage", .lo = 0, .hi = 50, .exact = {}}});
  run_query(cluster, "memory-size >= 24GB",
            {P{.attr = "memory-size", .lo = 24e9, .hi = 64e9, .exact = {}}});

  {
    P os;
    os.attr = "os";
    os.exact = "freebsd";
    run_query(cluster, "os == freebsd (exact lookup)", {os});
  }
  {
    // Scheduler query: fast, idle, big-memory linux machines. The dominated
    // axis is the most selective numeric range (cpu-speed = 25% of space).
    P os;
    os.attr = "os";
    os.exact = "linux";
    run_query(cluster,
              "cpu<=30% && speed>=3GHz && mem>=16GB && linux",
              {P{.attr = "cpu-usage", .lo = 0, .hi = 30, .exact = {}},
               P{.attr = "cpu-speed", .lo = 3e9, .hi = 10e9, .exact = {}},
               P{.attr = "memory-size", .lo = 16e9, .hi = 64e9, .exact = {}}, os});
  }
  run_query(cluster, "cpu-usage in [0, 100] (full sweep)",
            {P{.attr = "cpu-usage", .lo = 0, .hi = 100, .exact = {}}});

  std::printf(
      "\nsweep hops scale with the dominated predicate's selectivity\n"
      "(k in the paper's O(log n + k)); the full sweep visits every node.\n");
  return 0;
}
