// Alerting + fault tolerance, the "system diagnostics" consumer the paper's
// introduction motivates: a 64-node Grid aggregates its load through THREE
// replicated balanced-DAT trees; a ThresholdMonitor watches the global
// average and raises alerts when a load storm pushes it over 85 %, and the
// replicated query keeps answering through a root crash.
//
// Run: ./build/examples/alerting

#include <cstdio>
#include <memory>
#include <vector>

#include "dat/replicated.hpp"
#include "gma/threshold_monitor.hpp"
#include "harness/sim_cluster.hpp"

int main() {
  using namespace dat;
  constexpr std::size_t kNodes = 64;

  harness::ClusterOptions options;
  options.seed = 99;
  options.dat.epoch_us = 500'000;
  std::printf("bootstrapping %zu-node overlay...\n", kNodes);
  harness::SimCluster cluster(kNodes, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }

  // Shared, controllable load signal (a real deployment reads /proc).
  double base_load = 40.0;
  std::vector<std::unique_ptr<core::ReplicatedAggregate>> replicas;
  for (std::size_t i = 0; i < kNodes; ++i) {
    replicas.push_back(std::make_unique<core::ReplicatedAggregate>(
        cluster.dat(i), "cpu-usage", /*replicas=*/3,
        core::AggregateKind::kAvg, chord::RoutingScheme::kBalanced));
    const double jitter = static_cast<double>(i % 7) - 3.0;
    replicas.back()->start([&base_load, jitter]() {
      return base_load + jitter;
    });
  }
  // Plain (single-tree) aggregate for the threshold monitor.
  Id plain_key = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    plain_key = cluster.dat(i).start_aggregate(
        "cpu-usage-avg", core::AggregateKind::kAvg,
        chord::RoutingScheme::kBalanced,
        [&base_load]() { return base_load; });
  }
  (void)plain_key;
  cluster.run_for(8'000'000);

  gma::ThresholdMonitor::Options alert_options;
  alert_options.trigger = 85.0;
  alert_options.clear = 70.0;
  alert_options.poll_interval_us = 1'000'000;
  gma::ThresholdMonitor monitor(
      cluster.dat(0), "cpu-usage-avg", alert_options,
      [&](double value, const core::GlobalValue& global) {
        std::printf("[t=%6.1fs]  ALERT: grid avg load %.1f%% over %llu hosts\n",
                    cluster.engine().now() / 1e6, value,
                    static_cast<unsigned long long>(global.state.count));
      });
  monitor.start();

  std::printf("\nphase 1: normal load (%.0f%%), no alerts expected\n",
              base_load);
  cluster.run_for(10'000'000);

  std::printf("phase 2: load storm begins\n");
  base_load = 95.0;
  cluster.run_for(10'000'000);

  std::printf("phase 3: storm hovers at 80%% (inside hysteresis band)\n");
  base_load = 80.0;
  cluster.run_for(10'000'000);

  std::printf("phase 4: recovery to 50%%, monitor re-arms\n");
  base_load = 50.0;
  cluster.run_for(10'000'000);

  std::printf("phase 5: second storm\n");
  base_load = 92.0;
  cluster.run_for(10'000'000);
  std::printf("alerts fired: %llu (expected 2: one per storm)\n\n",
              static_cast<unsigned long long>(monitor.alerts_fired()));

  // Fault tolerance: crash the root of replica tree 0, query immediately.
  const Id victim_root =
      cluster.ring_view().successor(replicas[0]->keys()[0]);
  std::size_t victim_slot = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (cluster.node(i).id() == victim_root) victim_slot = i;
  }
  std::printf("crashing the root of replica tree 0 (node %llu)...\n",
              static_cast<unsigned long long>(victim_root));
  replicas[victim_slot].reset();
  cluster.remove_node(victim_slot, /*graceful=*/false);
  cluster.refresh_d0_hints();

  const std::size_t reader = victim_slot == 0 ? 1 : 0;
  bool done = false;
  replicas[reader]->query([&](core::ReplicatedAggregate::Result result) {
    done = true;
    if (!result.best) {
      std::printf("replicated query found no root!\n");
      return;
    }
    std::printf("replicated query: %u/3 roots answered; best coverage %llu "
                "hosts, avg %.1f%%\n",
                result.roots_answered,
                static_cast<unsigned long long>(result.best->state.count),
                result.best->state.result(core::AggregateKind::kAvg));
  });
  const auto deadline = cluster.engine().now() + 30'000'000;
  while (!done && cluster.engine().now() < deadline) {
    cluster.engine().run_steps(256);
  }
  replicas.clear();
  return 0;
}
