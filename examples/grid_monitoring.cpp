// Grid resource monitoring, the paper's motivating application (Secs. 1-2):
// a simulated Grid of 128 hosts runs the full P-GMA stack — trace-driven
// CPU sensors feed producers, producers feed balanced-DAT aggregates and
// register descriptors in MAAN — while an operator console periodically
// reads the global CPU statistics from the aggregation trees and runs a
// discovery query for lightly loaded Linux hosts.
//
// Run: ./build/examples/grid_monitoring

#include <cstdio>
#include <memory>
#include <vector>

#include "gma/producer.hpp"
#include "harness/sim_cluster.hpp"
#include "trace/cpu_trace.hpp"

int main() {
  using namespace dat;
  constexpr std::size_t kHosts = 128;
  constexpr std::uint64_t kEpochUs = 1'000'000;

  harness::ClusterOptions options;
  options.seed = 2026;
  options.with_maan = true;
  options.dat.epoch_us = kEpochUs;
  std::printf("bootstrapping %zu-host Grid overlay...\n", kHosts);
  harness::SimCluster cluster(kHosts, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }
  std::printf("overlay converged at t=%.1fs (virtual)\n\n",
              cluster.engine().now() / 1e6);

  // One shared synthetic trace, phase-shifted per host so that loads are
  // correlated but not identical.
  const trace::CpuTrace cpu =
      trace::CpuTrace::synthesize(trace::TraceConfig{}, 17);
  std::vector<std::unique_ptr<trace::TraceReplayer>> replayers;
  std::vector<std::unique_ptr<gma::Producer>> producers;
  sim::Engine& engine = cluster.engine();
  const std::uint64_t t0 = engine.now();

  for (std::size_t i = 0; i < kHosts; ++i) {
    replayers.push_back(std::make_unique<trace::TraceReplayer>(
        cpu, /*phase_s=*/static_cast<double>(i) * 37.0,
        /*gain=*/0.8 + 0.4 * static_cast<double>(i % 5) / 4.0));
    auto producer = std::make_unique<gma::Producer>(
        cluster.dat(i), cluster.maan(i), "host-" + std::to_string(i));
    const trace::TraceReplayer* replay = replayers.back().get();
    producer->add_sensor({.attribute = "cpu-usage",
                          .kind = core::AggregateKind::kAvg,
                          .sample = [replay, &engine, t0]() {
                            return replay->at((engine.now() - t0) / 1e6);
                          }});
    producer->add_sensor({.attribute = "memory-size",
                          .kind = core::AggregateKind::kSum,
                          .sample = [i]() {
                            return (8.0 + 8.0 * (i % 3)) * 1e9;
                          }});
    producer->add_static_attribute(
        "os", maan::AttrValue{std::string(i % 3 ? "linux" : "freebsd")});
    producer->add_static_attribute(
        "cpu-speed", maan::AttrValue{2.0e9 + 0.5e9 * (i % 4)});
    producer->start(chord::RoutingScheme::kBalanced,
                    /*refresh_us=*/30'000'000);
    producers.push_back(std::move(producer));
  }
  cluster.run_for(15 * kEpochUs);  // fill the aggregation pipeline

  gma::Consumer console(cluster.dat(0), cluster.maan(0));

  std::printf("%8s %14s %14s %14s %12s\n", "t(min)", "avg-cpu(%)",
              "min-cpu(%)", "max-cpu(%)", "hosts");
  for (int minute = 0; minute < 10; ++minute) {
    cluster.run_for(60'000'000);
    bool done = false;
    console.monitor_global(
        "cpu-usage",
        [&](net::RpcStatus status, std::optional<core::GlobalValue> g) {
          done = true;
          if (status != net::RpcStatus::kOk || !g) {
            std::printf("%8d  (query failed: %s)\n", minute,
                        net::to_string(status));
            return;
          }
          std::printf("%8d %14.1f %14.1f %14.1f %9llu\n", minute + 1,
                      g->state.result(core::AggregateKind::kAvg),
                      g->state.min, g->state.max,
                      static_cast<unsigned long long>(g->state.count));
        });
    cluster.run_for(3'000'000);
    if (!done) std::printf("%8d  (query still pending)\n", minute + 1);
  }

  // Capacity planning: total memory across the Grid via on-demand snapshot.
  bool snap_done = false;
  console.snapshot_global("memory-size", [&](const core::AggState& state) {
    snap_done = true;
    std::printf("\ntotal memory across %llu hosts: %.0f GB\n",
                static_cast<unsigned long long>(state.count),
                state.sum / 1e9);
  });
  cluster.run_for(5'000'000);
  if (!snap_done) std::printf("\n(memory snapshot timed out)\n");

  // Scheduler-style discovery: idle Linux boxes with >= 2.5 GHz CPUs.
  std::vector<maan::RangePredicate> predicates;
  predicates.push_back({.attr = "cpu-usage", .lo = 0.0, .hi = 40.0, .exact = {}});
  predicates.push_back({.attr = "cpu-speed", .lo = 2.5e9, .hi = 10e9, .exact = {}});
  maan::RangePredicate os;
  os.attr = "os";
  os.exact = "linux";
  predicates.push_back(os);

  bool disc_done = false;
  console.discover(predicates, [&](maan::QueryResult result) {
    disc_done = true;
    std::printf(
        "\ndiscovery: %zu idle linux hosts (>=2.5GHz, cpu<=40%%), "
        "%u routing + %u sweep hops%s\n",
        result.resources.size(), result.routing_hops, result.sweep_hops,
        result.complete ? "" : " [partial]");
    for (std::size_t i = 0; i < result.resources.size() && i < 5; ++i) {
      const auto& r = result.resources[i];
      std::printf("  %-10s cpu=%.0f%%  speed=%.1fGHz\n", r.id.c_str(),
                  std::get<double>(*r.attribute("cpu-usage")),
                  std::get<double>(*r.attribute("cpu-speed")) / 1e9);
    }
    if (result.resources.size() > 5) {
      std::printf("  ... and %zu more\n", result.resources.size() - 5);
    }
  });
  cluster.run_for(10'000'000);
  if (!disc_done) std::printf("\n(discovery timed out)\n");

  producers.clear();
  return 0;
}
