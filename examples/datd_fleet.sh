#!/usr/bin/env bash
# datd_fleet.sh — a minimal real-process deployment of the monitoring ring.
#
# Boots a small fleet of datd daemons on loopback (one --create bootstrap
# seed, the rest joining through it with retry+backoff), inspects it with
# datctl remote, drains one daemon with SIGTERM and checks it exits 0, then
# tears the fleet down. This is the by-hand version of what dat_supervisor
# automates at 64 nodes with a seeded kill plan.
#
#   ./examples/datd_fleet.sh [build-dir] [nodes] [base-port]
#
# Exits non-zero if the fleet fails to answer status or the drained daemon
# does not exit cleanly.

set -euo pipefail

BUILD_DIR="${1:-build}"
NODES="${2:-5}"
BASE_PORT="${3:-9600}"
DATD="$BUILD_DIR/tools/datd"
DATCTL="$BUILD_DIR/tools/datctl"

[ -x "$DATD" ] || { echo "missing $DATD (build the datd target first)"; exit 2; }
[ -x "$DATCTL" ] || { echo "missing $DATCTL"; exit 2; }

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== boot: 1 seed + $((NODES - 1)) joiners on 127.0.0.1:$BASE_PORT.."
"$DATD" --create=true --port="$BASE_PORT" --value=1 --replicas=2 \
  --epoch-ms=150 2>/dev/null &
PIDS+=($!)
for i in $(seq 1 $((NODES - 1))); do
  "$DATD" --port=$((BASE_PORT + i)) --seeds="127.0.0.1:$BASE_PORT" \
    --value=$((i + 1)) --replicas=2 --epoch-ms=150 --seed="$i" 2>/dev/null &
  PIDS+=($!)
done

echo "== wait: every daemon answering datctl remote status"
for i in $(seq 0 $((NODES - 1))); do
  port=$((BASE_PORT + i))
  for attempt in $(seq 1 60); do
    if "$DATCTL" remote status --target="127.0.0.1:$port" 2>/dev/null; then
      break
    fi
    [ "$attempt" -eq 60 ] && { echo "daemon on :$port never came up"; exit 1; }
    sleep 0.5
  done
done

echo "== settle: a few push epochs, then scrape the seed's telemetry"
sleep 2
"$DATCTL" remote metrics --target="127.0.0.1:$BASE_PORT" --format=prom \
  | grep -E '^dat_daemon_(uptime_us|incarnation)' || {
  echo "telemetry scrape missing daemon series"; exit 1; }

echo "== drain: SIGTERM the last joiner; it must hand off and exit 0"
victim_pid="${PIDS[$((NODES - 1))]}"
kill -TERM "$victim_pid"
if ! timeout 15 bash -c "wait $victim_pid" 2>/dev/null; then
  # wait only works for children of the same shell; poll instead.
  for attempt in $(seq 1 60); do
    kill -0 "$victim_pid" 2>/dev/null || break
    sleep 0.25
  done
fi
if kill -0 "$victim_pid" 2>/dev/null; then
  echo "drained daemon still running after deadline"; exit 1
fi

echo "== survivors still serving"
"$DATCTL" remote status --target="127.0.0.1:$BASE_PORT" --json
echo "== done (cleanup will SIGKILL the survivors)"
