// Node dynamics, the property the DAT design optimizes for (paper Secs. 1,
// 2.3): because aggregation trees are implicit in Chord routing state,
// arrivals and departures require no tree repair protocol at all. This
// example subjects a 96-node overlay to continuous churn — graceful leaves,
// crashes, and joins — while a COUNT aggregate keeps running, and prints
// how the live tree and the global count track the membership.
//
// Run: ./build/examples/churn_dynamics

#include <cstdio>

#include "harness/live_tree.hpp"
#include "harness/sim_cluster.hpp"

int main() {
  using namespace dat;
  constexpr std::size_t kInitial = 96;

  harness::ClusterOptions options;
  options.seed = 31415;
  options.dat.epoch_us = 500'000;
  std::printf("bootstrapping %zu-node overlay...\n", kInitial);
  harness::SimCluster cluster(kInitial, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }

  Id key = 0;
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    if (!cluster.is_live(i)) continue;
    key = cluster.dat(i).start_aggregate("population",
                                         core::AggregateKind::kCount,
                                         chord::RoutingScheme::kBalanced,
                                         []() { return 1.0; });
  }
  cluster.run_for(10'000'000);

  const std::uint64_t maintenance_start = cluster.total_maintenance_rpcs();
  std::printf("\n%6s %8s %8s %10s %12s %10s %12s\n", "round", "event",
              "live", "agg-count", "tree-reach", "max-br", "chord-rpcs");

  std::size_t victim = 1;
  Rng rng(7);
  for (int round = 1; round <= 16; ++round) {
    const char* event = "";
    switch (round % 4) {
      case 1: {  // crash
        while (victim < cluster.slot_count() && !cluster.is_live(victim)) {
          ++victim;
        }
        cluster.remove_node(victim++, false);
        event = "crash";
        break;
      }
      case 2: {  // graceful leave
        while (victim < cluster.slot_count() && !cluster.is_live(victim)) {
          ++victim;
        }
        cluster.remove_node(victim++, true);
        event = "leave";
        break;
      }
      default: {  // join
        const auto slot = cluster.add_node();
        if (slot) {
          cluster.dat(*slot).start_aggregate(
              key, core::AggregateKind::kCount,
              chord::RoutingScheme::kBalanced, []() { return 1.0; });
          event = "join";
        } else {
          event = "join-fail";
        }
        break;
      }
    }
    cluster.refresh_d0_hints();
    cluster.run_for(8'000'000);  // let stabilization + soft state settle

    std::uint64_t agg_count = 0;
    const Id root_id = cluster.ring_view().successor(key);
    for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
      if (!cluster.is_live(i) || cluster.node(i).id() != root_id) continue;
      if (const auto g = cluster.dat(i).latest(key)) {
        agg_count = g->state.count;
      }
    }
    const auto stats = harness::live_tree_stats(
        cluster, key, chord::RoutingScheme::kBalanced);
    std::printf("%6d %8s %8zu %10llu %9zu/%zu %10zu %12llu\n", round, event,
                cluster.live_count(),
                static_cast<unsigned long long>(agg_count),
                stats.reaching_root, stats.nodes, stats.max_branching,
                static_cast<unsigned long long>(
                    cluster.total_maintenance_rpcs() - maintenance_start));
  }

  std::printf(
      "\nNote: the chord-rpcs column is ordinary Chord stabilization — the\n"
      "DAT layer itself sent zero membership messages during this run; its\n"
      "trees are recomputed from finger tables, never repaired.\n");
  return 0;
}
