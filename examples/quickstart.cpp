// Quickstart: bring up a simulated 64-node Chord overlay, run a continuous
// balanced-DAT aggregation of a synthetic "cpu-usage" attribute, and read
// the global average from the tree root.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <vector>

#include "chord/node.hpp"
#include "dat/dat_node.hpp"
#include "net/sim_transport.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace dat;
  constexpr std::size_t kNodes = 64;
  const IdSpace space(32);

  sim::Engine engine(/*seed=*/42);
  net::SimNetwork network(engine);

  // Bring up the overlay: one node creates the ring, the rest join through
  // it (identifier probing keeps the ring evenly spaced).
  chord::NodeOptions options;
  std::vector<std::unique_ptr<chord::Node>> nodes;
  nodes.reserve(kNodes);

  auto& first_transport = network.add_node();
  nodes.push_back(std::make_unique<chord::Node>(space, first_transport,
                                                options, /*seed=*/1));
  nodes.front()->create();

  for (std::size_t i = 1; i < kNodes; ++i) {
    auto& transport = network.add_node();
    nodes.push_back(std::make_unique<chord::Node>(space, transport, options,
                                                  /*seed=*/1000 + i));
    bool joined = false;
    nodes.back()->join(first_transport.local(),
                       [&joined](bool ok) { joined = ok; });
    engine.run_until(engine.now() + 2'000'000);  // let the join settle
    if (!joined) {
      std::fprintf(stderr, "node %zu failed to join\n", i);
      return 1;
    }
  }
  // Let stabilization converge the finger tables.
  engine.run_until(engine.now() + 20'000'000);

  // Start the DAT layer everywhere: each node contributes a local value.
  std::vector<std::unique_ptr<core::DatNode>> dats;
  dats.reserve(kNodes);
  Id key = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    dats.push_back(std::make_unique<core::DatNode>(*nodes[i], core::DatOptions{}));
    const double load = 20.0 + static_cast<double>(i % 60);  // fake CPU %
    key = dats.back()->start_aggregate("cpu-usage", core::AggregateKind::kAvg,
                                       chord::RoutingScheme::kBalanced,
                                       [load]() { return load; });
  }

  // Run a few aggregation epochs, then ask any node for the global value.
  engine.run_until(engine.now() + 10'000'000);

  bool printed = false;
  dats[7]->query_global(key, [&](net::RpcStatus status,
                                 std::optional<core::GlobalValue> global) {
    printed = true;
    if (status != net::RpcStatus::kOk || !global) {
      std::printf("query failed: %s\n", net::to_string(status));
      return;
    }
    std::printf("global cpu-usage: avg=%.2f%%  over %llu nodes (epoch %llu)\n",
                global->state.result(core::AggregateKind::kAvg),
                static_cast<unsigned long long>(global->state.count),
                static_cast<unsigned long long>(global->epoch));
  });
  engine.run_until(engine.now() + 5'000'000);

  if (!printed) {
    std::fprintf(stderr, "query never completed\n");
    return 1;
  }

  // On-demand snapshot from a different node for comparison.
  dats[23]->snapshot(key, [&](const core::AggState& state) {
    std::printf("snapshot  cpu-usage: avg=%.2f%%  over %llu nodes\n",
                state.result(core::AggregateKind::kAvg),
                static_cast<unsigned long long>(state.count));
  });
  engine.run_until(engine.now() + 5'000'000);
  return 0;
}
