// Self-monitoring fleet: the monitoring system watches ITSELF through the
// same DAT machinery it offers its tenants. Every node feeds its own
// telemetry (message counters, RPC latency histogram, liveness) into
// dedicated "selfmon:*" meta-aggregation trees, so ONE admin query to ANY
// node answers "how is the whole fleet?" — no scrape-everyone collector.
// An SLO ruleset evaluated at the meta-tree roots turns the coverage
// series into a firing/clearing alert when part of the fleet dies.
//
// Run: ./build/examples/fleet_selfmon

#include <cstdio>
#include <cstdlib>

#include "harness/sim_cluster.hpp"
#include "obs/selfmon.hpp"

namespace {

void print_view(const dat::obs::SelfMonitor::FleetView& view) {
  using dat::core::AggregateKind;
  const auto* nodes = view.find("nodes");
  std::printf("fleet view (one RPC to one node):\n");
  std::printf("  nodes up: %llu of %llu\n",
              static_cast<unsigned long long>(
                  nodes != nullptr ? nodes->state.count : 0),
              static_cast<unsigned long long>(view.fleet_size));
  for (const auto& s : view.series) {
    if (s.state.count == 0) continue;
    if (s.kind == AggregateKind::kHistogram) {
      std::printf("  %-12s p50=%.0fus p99=%.0fus over %llu samples\n",
                  s.name.c_str(), s.state.quantile(0.5),
                  s.state.quantile(0.99),
                  static_cast<unsigned long long>(s.state.count));
    } else {
      std::printf("  %-12s %s=%.1f\n", s.name.c_str(),
                  dat::core::to_string(s.kind), s.state.result(s.kind));
    }
  }
  for (const auto& a : view.alerts) {
    std::printf("  alert %-10s %s (value %.1f vs threshold %.1f)\n",
                a.rule.c_str(), a.firing ? "FIRING" : "clear", a.value,
                a.threshold);
  }
}

}  // namespace

int main() {
  using namespace dat;
  constexpr std::size_t kNodes = 16;

  harness::ClusterOptions options;
  options.seed = 7;
  options.dat.epoch_us = 200'000;
  options.with_selfmon = true;            // every node runs an obs::SelfMonitor
  options.selfmon.epoch_us = 400'000;     // meta-trees aggregate at 2.5 Hz
  std::printf("bootstrapping a %zu-node self-monitoring fleet...\n", kNodes);
  harness::SimCluster cluster(kNodes, std::move(options));
  if (!cluster.wait_converged(600'000'000)) {
    std::fprintf(stderr, "overlay failed to converge\n");
    return 1;
  }

  // Let the meta-trees converge, then ask a single node about everyone.
  cluster.run_for(5'000'000);
  obs::SelfMonitor* monitor = cluster.selfmon(0);
  if (monitor == nullptr) return 1;
  print_view(monitor->view());

  // Kill a quarter of the fleet abruptly. The dead nodes' leaves age out
  // of the meta-trees, the fleet-wide node count drops below the
  // configured fleet size, and the coverage SLO rule starts firing.
  std::printf("\ncrashing 4 nodes...\n");
  for (const std::size_t victim : {3u, 6u, 9u, 12u}) {
    cluster.remove_node(victim, /*graceful=*/false);
  }
  cluster.refresh_d0_hints();

  bool fired = false;
  for (int epoch = 0; epoch < 60 && !fired; ++epoch) {
    cluster.run_for(400'000);
    fired = monitor->alert_firing("coverage");
  }
  if (!fired) {
    std::fprintf(stderr, "coverage alert never fired\n");
    return 1;
  }
  // The meta-trees heal around the dead nodes: after a few more epochs the
  // view converges on the 12 survivors, with the coverage alert still
  // firing because 12 < the configured fleet size of 16.
  cluster.run_for(10'000'000);
  print_view(monitor->view());
  std::printf("\ncoverage alert fired: the fleet noticed its own outage.\n");
  return 0;
}
