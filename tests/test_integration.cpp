// Full-stack integration: the whole P-GMA deployment (Chord + DAT + MAAN +
// producers) under trace-driven load and churn, on the simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/stats.hpp"
#include "gma/producer.hpp"
#include "harness/live_tree.hpp"
#include "harness/sim_cluster.hpp"
#include "trace/cpu_trace.hpp"

namespace {

using namespace dat;

TEST(Integration, TraceDrivenMonitoringTracksGroundTruth) {
  constexpr std::size_t kNodes = 32;
  constexpr std::uint64_t kEpochUs = 500'000;

  harness::ClusterOptions options;
  options.seed = 909;
  options.dat.epoch_us = kEpochUs;
  harness::SimCluster cluster(kNodes, std::move(options));
  ASSERT_TRUE(cluster.wait_converged(300'000'000));

  const trace::CpuTrace cpu =
      trace::CpuTrace::synthesize(trace::TraceConfig{}, 11);
  const std::uint64_t t0 = cluster.engine().now();
  sim::Engine& engine = cluster.engine();

  Id key = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    key = cluster.dat(i).start_aggregate(
        "cpu-usage", core::AggregateKind::kSum,
        chord::RoutingScheme::kBalanced,
        [&engine, &cpu, t0]() { return cpu.at((engine.now() - t0) / 1e6); });
  }
  cluster.run_for(12 * kEpochUs);  // fill the pipeline

  std::vector<double> actual;
  std::vector<double> aggregated;
  for (int step = 0; step < 60; ++step) {
    cluster.run_for(kEpochUs);
    std::optional<core::GlobalValue> g;
    for (std::size_t i = 0; i < kNodes && !g; ++i) {
      g = cluster.dat(i).latest(key);
    }
    ASSERT_TRUE(g.has_value());
    ASSERT_EQ(g->state.count, kNodes);
    actual.push_back(cpu.at((engine.now() - t0) / 1e6) * kNodes);
    aggregated.push_back(g->state.sum);
  }
  // The aggregate lags the signal by roughly the tree height in epochs:
  // raw correlation is decent, lag-compensated correlation is excellent.
  EXPECT_GT(pearson(actual, aggregated), 0.6);
  double best = -1.0;
  for (std::size_t lag = 0; lag <= 12; ++lag) {
    std::vector<double> a(actual.begin(), actual.end() - lag);
    std::vector<double> g(aggregated.begin() + lag, aggregated.end());
    best = std::max(best, pearson(a, g));
  }
  EXPECT_GT(best, 0.95);
  EXPECT_LT(mean_relative_error(aggregated, actual), 0.1);
}

TEST(Integration, AggregationSurvivesChurn) {
  constexpr std::size_t kNodes = 24;
  harness::ClusterOptions options;
  options.seed = 910;
  options.dat.epoch_us = 300'000;
  harness::SimCluster cluster(kNodes, std::move(options));
  ASSERT_TRUE(cluster.wait_converged(300'000'000));

  Id key = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    key = cluster.dat(i).start_aggregate("live", core::AggregateKind::kCount,
                                         chord::RoutingScheme::kBalanced,
                                         []() { return 1.0; });
  }
  cluster.run_for(6'000'000);

  // Churn: 4 crashes, 2 graceful leaves, 3 joins.
  for (const std::size_t victim : {3ul, 8ul, 15ul, 21ul}) {
    cluster.remove_node(victim, false);
    cluster.run_for(1'000'000);
  }
  for (const std::size_t victim : {5ul, 11ul}) {
    cluster.remove_node(victim, true);
    cluster.run_for(1'000'000);
  }
  for (int j = 0; j < 3; ++j) {
    const auto slot = cluster.add_node();
    ASSERT_TRUE(slot.has_value());
    cluster.dat(*slot).start_aggregate(key, core::AggregateKind::kCount,
                                       chord::RoutingScheme::kBalanced,
                                       []() { return 1.0; });
  }
  cluster.refresh_d0_hints();
  ASSERT_TRUE(cluster.wait_converged(300'000'000));
  cluster.run_for(30'000'000);

  const std::size_t live = cluster.live_count();
  EXPECT_EQ(live, kNodes - 6 + 3);
  std::optional<core::GlobalValue> g;
  for (std::size_t i = 0; i < cluster.slot_count() && !g; ++i) {
    if (cluster.is_live(i)) g = cluster.dat(i).latest(key);
  }
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->state.count, live);
}

TEST(Integration, BalancedTreeStaysBalancedAfterChurn) {
  constexpr std::size_t kNodes = 32;
  harness::ClusterOptions options;
  options.seed = 911;
  harness::SimCluster cluster(kNodes, std::move(options));
  ASSERT_TRUE(cluster.wait_converged(300'000'000));

  const Id key = core::rendezvous_key("cpu-usage", cluster.space());
  const auto before =
      harness::live_tree_stats(cluster, key, chord::RoutingScheme::kBalanced);
  EXPECT_EQ(before.roots, 1u);
  EXPECT_EQ(before.reaching_root, kNodes);

  for (const std::size_t victim : {2ul, 12ul, 22ul, 30ul}) {
    cluster.remove_node(victim, victim % 2 == 0);
  }
  cluster.refresh_d0_hints();
  ASSERT_TRUE(cluster.wait_converged(300'000'000));

  const auto after =
      harness::live_tree_stats(cluster, key, chord::RoutingScheme::kBalanced);
  EXPECT_EQ(after.nodes, kNodes - 4);
  EXPECT_EQ(after.roots, 1u);
  EXPECT_EQ(after.reaching_root, kNodes - 4);
  EXPECT_LE(after.max_branching, before.max_branching + 2);
}

TEST(Integration, SnapshotAndContinuousAgree) {
  constexpr std::size_t kNodes = 16;
  harness::ClusterOptions options;
  options.seed = 912;
  options.dat.epoch_us = 250'000;
  harness::SimCluster cluster(kNodes, std::move(options));
  ASSERT_TRUE(cluster.wait_converged(300'000'000));

  Id key = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const double v = 3.0 * (i + 1);
    key = cluster.dat(i).start_aggregate("v", core::AggregateKind::kSum,
                                         chord::RoutingScheme::kBalanced,
                                         [v]() { return v; });
  }
  cluster.run_for(8'000'000);

  std::optional<core::GlobalValue> continuous;
  for (std::size_t i = 0; i < kNodes && !continuous; ++i) {
    continuous = cluster.dat(i).latest(key);
  }
  ASSERT_TRUE(continuous.has_value());

  core::AggState snap;
  bool done = false;
  cluster.dat(5).snapshot(key, [&](const core::AggState& s) {
    snap = s;
    done = true;
  });
  cluster.run_for(5'000'000);
  ASSERT_TRUE(done);

  // Static values: both modes must see the identical aggregate.
  EXPECT_EQ(snap, continuous->state);
  EXPECT_DOUBLE_EQ(snap.sum, 3.0 * kNodes * (kNodes + 1) / 2);
}

}  // namespace
