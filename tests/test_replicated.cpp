// Replicated (multi-tree) aggregates: k rendezvous keys, k independent DAT
// trees, crash-masking reads.

#include "dat/replicated.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "harness/sim_cluster.hpp"

namespace {

using namespace dat;
using namespace dat::core;

TEST(ReplicatedAggregateCtor, Validation) {
  harness::ClusterOptions options;
  options.seed = 11;
  harness::SimCluster cluster(2, std::move(options));
  EXPECT_THROW(ReplicatedAggregate(cluster.dat(0), "x", 0,
                                   AggregateKind::kSum,
                                   chord::RoutingScheme::kBalanced),
               std::invalid_argument);
  EXPECT_THROW(ReplicatedAggregate(cluster.dat(0), "", 3,
                                   AggregateKind::kSum,
                                   chord::RoutingScheme::kBalanced),
               std::invalid_argument);
  ReplicatedAggregate agg(cluster.dat(0), "x", 3, AggregateKind::kSum,
                          chord::RoutingScheme::kBalanced);
  EXPECT_EQ(agg.replicas(), 3u);
  const std::set<Id> unique(agg.keys().begin(), agg.keys().end());
  EXPECT_EQ(unique.size(), 3u);  // distinct rendezvous keys
}

class ReplicatedClusterTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 20;
  static constexpr unsigned kReplicas = 3;

  ReplicatedClusterTest() {
    harness::ClusterOptions options;
    options.seed = 321;
    options.dat.epoch_us = 200'000;
    cluster_ = std::make_unique<harness::SimCluster>(kNodes, std::move(options));
    converged_ = cluster_->wait_converged(300'000'000);
    if (!converged_) return;
    for (std::size_t i = 0; i < kNodes; ++i) {
      aggs_.push_back(std::make_unique<ReplicatedAggregate>(
          cluster_->dat(i), "replicated-load", kReplicas,
          AggregateKind::kSum, chord::RoutingScheme::kBalanced));
      aggs_.back()->start([]() { return 2.5; });
    }
    cluster_->run_for(8'000'000);
  }

  ~ReplicatedClusterTest() override { aggs_.clear(); }

  std::unique_ptr<harness::SimCluster> cluster_;
  std::vector<std::unique_ptr<ReplicatedAggregate>> aggs_;
  bool converged_ = false;
};

TEST_F(ReplicatedClusterTest, AllReplicasConvergeToTheSameValue) {
  ASSERT_TRUE(converged_);
  const chord::RingView ring = cluster_->ring_view();
  // Each replica tree has its own root holding the same global.
  std::set<Id> roots;
  for (const Id key : aggs_[0]->keys()) {
    roots.insert(ring.successor(key));
    bool done = false;
    cluster_->dat(3).query_global(
        key, [&](net::RpcStatus st, std::optional<GlobalValue> g) {
          done = true;
          ASSERT_EQ(st, net::RpcStatus::kOk);
          ASSERT_TRUE(g.has_value());
          EXPECT_EQ(g->state.count, kNodes);
          EXPECT_DOUBLE_EQ(g->state.sum, 2.5 * kNodes);
        });
    cluster_->run_for(3'000'000);
    EXPECT_TRUE(done);
  }
  // With 3 keys over 20 nodes the roots are almost surely distinct.
  EXPECT_GE(roots.size(), 2u);
}

TEST_F(ReplicatedClusterTest, QueryReturnsBestAnswer) {
  ASSERT_TRUE(converged_);
  bool done = false;
  aggs_[5]->query([&](ReplicatedAggregate::Result result) {
    done = true;
    EXPECT_EQ(result.roots_answered, kReplicas);
    ASSERT_TRUE(result.best.has_value());
    EXPECT_EQ(result.best->state.count, kNodes);
    EXPECT_DOUBLE_EQ(result.best->state.sum, 2.5 * kNodes);
  });
  cluster_->run_for(5'000'000);
  EXPECT_TRUE(done);
}

TEST_F(ReplicatedClusterTest, MasksARootCrash) {
  ASSERT_TRUE(converged_);
  // Crash the root of replica tree 0.
  const chord::RingView ring = cluster_->ring_view();
  const Id victim_root = ring.successor(aggs_[0]->keys()[0]);
  std::size_t victim_slot = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (cluster_->node(i).id() == victim_root) victim_slot = i;
  }
  const std::size_t reader = victim_slot == 2 ? 3 : 2;
  aggs_[victim_slot].reset();  // drop its aggregates with the node
  cluster_->remove_node(victim_slot, /*graceful=*/false);
  cluster_->refresh_d0_hints();

  // Query IMMEDIATELY: tree 0's root is gone (its query may fail or return
  // a stale/empty answer), but the other replicas answer with the previous
  // full coverage.
  bool done = false;
  aggs_[reader]->query([&](ReplicatedAggregate::Result result) {
    done = true;
    EXPECT_GE(result.roots_answered, 1u);
    ASSERT_TRUE(result.best.has_value());
    EXPECT_GE(result.best->state.count, kNodes - 1);
  });
  const auto deadline = cluster_->engine().now() + 30'000'000;
  while (!done && cluster_->engine().now() < deadline) {
    cluster_->engine().run_steps(256);
  }
  EXPECT_TRUE(done);

  // And after healing, every replica re-covers the survivors.
  cluster_->run_for(30'000'000);
  bool done2 = false;
  aggs_[reader]->query([&](ReplicatedAggregate::Result result) {
    done2 = true;
    ASSERT_TRUE(result.best.has_value());
    EXPECT_EQ(result.best->state.count, kNodes - 1);
  });
  cluster_->run_for(5'000'000);
  EXPECT_TRUE(done2);
}

TEST_F(ReplicatedClusterTest, StopRemovesAllReplicaEntries) {
  ASSERT_TRUE(converged_);
  for (const Id key : aggs_[7]->keys()) {
    EXPECT_TRUE(cluster_->dat(7).has_aggregate(key));
  }
  aggs_[7]->stop();
  for (const Id key : aggs_[7]->keys()) {
    EXPECT_FALSE(cluster_->dat(7).has_aggregate(key));
  }
  aggs_[7]->stop();  // idempotent
}

}  // namespace
