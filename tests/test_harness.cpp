#include "harness/sim_cluster.hpp"

#include <gtest/gtest.h>

#include "harness/live_tree.hpp"

namespace {

using namespace dat;
using namespace dat::harness;

TEST(SimClusterTest, BootstrapsAndConverges) {
  ClusterOptions options;
  options.seed = 1;
  SimCluster cluster(8, std::move(options));
  EXPECT_EQ(cluster.live_count(), 8u);
  EXPECT_EQ(cluster.slot_count(), 8u);
  EXPECT_TRUE(cluster.wait_converged(300'000'000));
  EXPECT_EQ(cluster.ring_view().size(), 8u);
}

TEST(SimClusterTest, RejectsZeroNodes) {
  EXPECT_THROW(SimCluster(0, ClusterOptions{}), std::invalid_argument);
}

TEST(SimClusterTest, DeadSlotAccessThrows) {
  ClusterOptions options;
  options.seed = 2;
  SimCluster cluster(4, std::move(options));
  cluster.remove_node(2, true);
  EXPECT_FALSE(cluster.is_live(2));
  EXPECT_EQ(cluster.live_count(), 3u);
  EXPECT_THROW((void)(cluster.node(2)), std::out_of_range);
  EXPECT_THROW((void)(cluster.dat(2)), std::out_of_range);
  EXPECT_THROW((void)(cluster.node(99)), std::out_of_range);
}

TEST(SimClusterTest, MaanDisabledByDefault) {
  ClusterOptions options;
  options.seed = 3;
  SimCluster cluster(2, std::move(options));
  EXPECT_THROW((void)(cluster.maan(0)), std::out_of_range);
  EXPECT_NO_THROW((void)(cluster.dat(0)));
}

TEST(SimClusterTest, ChurnOperationsMaintainCounts) {
  ClusterOptions options;
  options.seed = 4;
  SimCluster cluster(6, std::move(options));
  ASSERT_TRUE(cluster.wait_converged(300'000'000));
  const auto slot = cluster.add_node();
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, 6u);
  EXPECT_EQ(cluster.live_count(), 7u);
  cluster.remove_node(1, false);
  EXPECT_EQ(cluster.live_count(), 6u);
  cluster.refresh_d0_hints();
  EXPECT_TRUE(cluster.wait_converged(300'000'000));
}

TEST(SimClusterTest, MaintenanceCounterIncreases) {
  ClusterOptions options;
  options.seed = 5;
  SimCluster cluster(4, std::move(options));
  const auto before = cluster.total_maintenance_rpcs();
  cluster.run_for(5'000'000);
  EXPECT_GT(cluster.total_maintenance_rpcs(), before);
}

TEST(LiveTreeStatsTest, ExplicitEdges) {
  // A tiny explicit tree: 1 <- {2, 3}, 3 <- {4}.
  std::vector<std::pair<Id, std::optional<Id>>> edges{
      {1, std::nullopt},
      {2, Id{1}},
      {3, Id{1}},
      {4, Id{3}},
  };
  const LiveTreeStats stats = live_tree_stats(edges);
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.roots, 1u);
  EXPECT_EQ(stats.reaching_root, 4u);
  EXPECT_EQ(stats.max_branching, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_branching_internal, 1.5);
  EXPECT_EQ(stats.height, 2u);
}

TEST(LiveTreeStatsTest, DetectsOrphanCycles) {
  // 2 and 3 point at each other: they never terminate.
  std::vector<std::pair<Id, std::optional<Id>>> edges{
      {1, std::nullopt},
      {2, Id{3}},
      {3, Id{2}},
  };
  const LiveTreeStats stats = live_tree_stats(edges);
  EXPECT_EQ(stats.roots, 1u);
  EXPECT_EQ(stats.reaching_root, 1u);  // only the root itself
}

TEST(LiveTreeStatsTest, FromCluster) {
  ClusterOptions options;
  options.seed = 6;
  SimCluster cluster(12, std::move(options));
  ASSERT_TRUE(cluster.wait_converged(300'000'000));
  const LiveTreeStats stats = live_tree_stats(
      cluster, 0xBEEF, chord::RoutingScheme::kBalanced);
  EXPECT_EQ(stats.nodes, 12u);
  EXPECT_EQ(stats.roots, 1u);
  EXPECT_EQ(stats.reaching_root, 12u);
  EXPECT_LE(stats.max_branching, 5u);
}

TEST(DefaultSchemaTest, InstallsGridAttributes) {
  maan::Schema schema;
  install_default_schema(schema);
  EXPECT_TRUE(schema.contains("cpu-usage"));
  EXPECT_TRUE(schema.contains("cpu-speed"));
  EXPECT_TRUE(schema.contains("memory-size"));
  EXPECT_TRUE(schema.contains("os"));
  EXPECT_FALSE(schema.get("os").numeric);
  EXPECT_TRUE(schema.get("cpu-usage").numeric);
}

}  // namespace
