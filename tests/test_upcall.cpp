// The Chord application surface of paper Fig. 6 — route, broadcast, upcall —
// plus the DAT root-history API built on it.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "harness/sim_cluster.hpp"

namespace {

using namespace dat;

class UpcallClusterTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 16;

  UpcallClusterTest() {
    harness::ClusterOptions options;
    options.seed = 606;
    options.dat.epoch_us = 200'000;
    cluster_ = std::make_unique<harness::SimCluster>(kNodes, std::move(options));
    converged_ = cluster_->wait_converged(300'000'000);
  }

  std::unique_ptr<harness::SimCluster> cluster_;
  bool converged_ = false;
};

TEST_F(UpcallClusterTest, RouteDeliversAtTheKeyOwner) {
  ASSERT_TRUE(converged_);
  const chord::RingView ring = cluster_->ring_view();
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Id key = rng.next_id(cluster_->space());
    const Id owner = ring.successor(key);

    std::map<Id, int> delivered;  // receiving node id -> count
    std::map<Id, std::uint64_t> payloads;
    for (std::size_t i = 0; i < kNodes; ++i) {
      chord::Node& node = cluster_->node(i);
      node.set_upcall("test.route", [&delivered, &payloads, id = node.id()](
                                        Id k, net::Reader& r) {
        ++delivered[id];
        payloads[id] = r.u64();
        (void)k;
      });
    }
    net::Writer payload;
    payload.u64(0xABCD0000 + static_cast<std::uint64_t>(trial));
    cluster_->node(trial % kNodes).route(key, "test.route", payload);
    cluster_->run_for(3'000'000);

    ASSERT_EQ(delivered.size(), 1u) << "key " << key;
    EXPECT_EQ(delivered.begin()->first, owner);
    EXPECT_EQ(delivered.begin()->second, 1);
    EXPECT_EQ(payloads[owner], 0xABCD0000 + static_cast<std::uint64_t>(trial));
  }
}

TEST_F(UpcallClusterTest, RouteToOwnKeyDeliversLocallyAndSynchronously) {
  ASSERT_TRUE(converged_);
  chord::Node& node = cluster_->node(4);
  bool delivered = false;
  node.set_upcall("test.self", [&](Id, net::Reader& r) {
    delivered = true;
    EXPECT_EQ(r.str(), "hello-self");
  });
  net::Writer payload;
  payload.str("hello-self");
  node.route(node.id(), "test.self", payload);  // node owns its own id
  EXPECT_TRUE(delivered);
}

TEST_F(UpcallClusterTest, BroadcastReachesEveryNodeExactlyOnce) {
  ASSERT_TRUE(converged_);
  std::map<Id, int> deliveries;
  for (std::size_t i = 0; i < kNodes; ++i) {
    chord::Node& node = cluster_->node(i);
    node.set_upcall("test.bcast", [&deliveries, id = node.id()](
                                      Id, net::Reader& r) {
      ++deliveries[id];
      EXPECT_EQ(r.u64(), 42u);
    });
  }
  net::Writer payload;
  payload.u64(42);
  cluster_->node(9).broadcast("test.bcast", payload);
  cluster_->run_for(5'000'000);

  EXPECT_EQ(deliveries.size(), kNodes);
  for (const auto& [id, count] : deliveries) {
    EXPECT_EQ(count, 1) << "node " << id;
  }
}

TEST_F(UpcallClusterTest, BroadcastFromEveryOrigin) {
  ASSERT_TRUE(converged_);
  for (std::size_t origin = 0; origin < kNodes; origin += 5) {
    std::set<Id> reached;
    for (std::size_t i = 0; i < kNodes; ++i) {
      chord::Node& node = cluster_->node(i);
      node.set_upcall("test.origin", [&reached, id = node.id()](
                                         Id, net::Reader&) {
        reached.insert(id);
      });
    }
    cluster_->node(origin).broadcast("test.origin", net::Writer{});
    cluster_->run_for(5'000'000);
    EXPECT_EQ(reached.size(), kNodes) << "origin " << origin;
  }
}

TEST_F(UpcallClusterTest, UnregisteredTopicIsDroppedQuietly) {
  ASSERT_TRUE(converged_);
  net::Writer payload;
  payload.u64(1);
  EXPECT_NO_THROW(cluster_->node(0).broadcast("test.ghost", payload));
  EXPECT_NO_THROW(cluster_->run_for(2'000'000));
}

TEST_F(UpcallClusterTest, ThrowingUpcallIsContained) {
  ASSERT_TRUE(converged_);
  cluster_->node(3).set_upcall("test.throw", [](Id, net::Reader&) {
    throw std::runtime_error("upcall boom");
  });
  net::Writer payload;
  cluster_->node(3).route(cluster_->node(3).id(), "test.throw", payload);
  EXPECT_NO_THROW(cluster_->run_for(1'000'000));
}

TEST_F(UpcallClusterTest, UpcallCanBeUnregistered) {
  ASSERT_TRUE(converged_);
  int count = 0;
  chord::Node& node = cluster_->node(7);
  node.set_upcall("test.once", [&](Id, net::Reader&) { ++count; });
  node.route(node.id(), "test.once", net::Writer{});
  node.set_upcall("test.once", nullptr);
  node.route(node.id(), "test.once", net::Writer{});
  EXPECT_EQ(count, 1);
}

TEST_F(UpcallClusterTest, RootHistoryAccumulates) {
  ASSERT_TRUE(converged_);
  Id key = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    key = cluster_->dat(i).start_aggregate(
        "hist-attr", core::AggregateKind::kSum,
        chord::RoutingScheme::kBalanced, []() { return 1.0; });
  }
  cluster_->run_for(10 * 200'000);

  const Id root_id = cluster_->ring_view().successor(key);
  std::vector<core::GlobalValue> history;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (cluster_->node(i).id() == root_id) {
      history = cluster_->dat(i).history(key);
    } else {
      EXPECT_TRUE(cluster_->dat(i).history(key).empty()) << "slot " << i;
    }
  }
  ASSERT_GE(history.size(), 5u);
  // Epochs strictly increase; timestamps are monotone.
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GT(history[i].epoch, history[i - 1].epoch);
    EXPECT_GE(history[i].updated_at_us, history[i - 1].updated_at_us);
  }
  // The tail of the series sees the full population.
  EXPECT_EQ(history.back().state.count, kNodes);
}

TEST_F(UpcallClusterTest, QueryHistoryFromAnyNode) {
  ASSERT_TRUE(converged_);
  Id key = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    key = cluster_->dat(i).start_aggregate(
        "hist-q", core::AggregateKind::kCount,
        chord::RoutingScheme::kBalanced, []() { return 1.0; });
  }
  cluster_->run_for(12 * 200'000);

  bool done = false;
  cluster_->dat(5).query_history(
      key, 4, [&](net::RpcStatus st, std::vector<core::GlobalValue> points) {
        done = true;
        ASSERT_EQ(st, net::RpcStatus::kOk);
        ASSERT_EQ(points.size(), 4u);  // capped at max_points
        for (std::size_t i = 1; i < points.size(); ++i) {
          EXPECT_EQ(points[i].epoch, points[i - 1].epoch + 1);
        }
      });
  cluster_->run_for(3'000'000);
  EXPECT_TRUE(done);
}

TEST_F(UpcallClusterTest, HistoryBoundedByConfiguredSize) {
  ASSERT_TRUE(converged_);
  // The fixture's DatOptions keeps defaults (256); run enough epochs on a
  // dedicated small-history node-set is expensive — instead check the cap
  // logic via a dedicated small cluster.
  harness::ClusterOptions options;
  options.seed = 607;
  options.dat.epoch_us = 50'000;
  options.dat.history_size = 8;
  harness::SimCluster small(4, std::move(options));
  ASSERT_TRUE(small.wait_converged(300'000'000));
  Id key = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    key = small.dat(i).start_aggregate("h", core::AggregateKind::kSum,
                                       chord::RoutingScheme::kBalanced,
                                       []() { return 1.0; });
  }
  small.run_for(40 * 50'000);
  const Id root_id = small.ring_view().successor(key);
  for (std::size_t i = 0; i < 4; ++i) {
    if (small.node(i).id() != root_id) continue;
    const auto history = small.dat(i).history(key);
    EXPECT_EQ(history.size(), 8u);  // capped
    EXPECT_GT(history.front().epoch, 1u);  // old entries evicted
  }
}

}  // namespace
