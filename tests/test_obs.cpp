// Tests of the obs telemetry layer: registry semantics and thread safety,
// log2 histogram bucket boundaries, snapshot roll-up algebra, the
// flight-recorder span ring, trace propagation through the RPC wire
// extension (including old<->new frame compatibility), the exporters, and
// an end-to-end acceptance test that exports one aggregation wave climbing
// the sim-cluster DAT tree as Chrome trace-event JSON and validates the
// span chain against the tree's ground-truth edges.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "harness/sim_cluster.hpp"
#include "net/rpc.hpp"
#include "net/sim_transport.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dat;

// -- metrics registry --------------------------------------------------------

TEST(MetricsRegistryTest, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("events_total");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  obs::Gauge& g = reg.gauge("depth");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);

  obs::Histogram& h = reg.histogram("latency_us");
  h.observe(100);
  h.observe(200);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 300u);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsSameInstrument) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x_total", {{"node", "1"}});
  obs::Counter& b = reg.counter("x_total", {{"node", "1"}});
  obs::Counter& other = reg.counter("x_total", {{"node", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  // Label order must not matter.
  obs::Counter& ab = reg.counter("y_total", {{"a", "1"}, {"b", "2"}});
  obs::Counter& ba = reg.counter("y_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
}

TEST(MetricsRegistryTest, TypeMismatchThrows) {
  obs::MetricsRegistry reg;
  reg.counter("thing");
  EXPECT_THROW(reg.gauge("thing"), std::logic_error);
  EXPECT_THROW(reg.histogram("thing"), std::logic_error);
}

TEST(MetricsRegistryTest, CollectorsContributeAtSnapshotTime) {
  obs::MetricsRegistry reg;
  std::uint64_t external = 5;
  const std::uint64_t id = reg.add_collector([&](obs::MetricsSnapshot& out) {
    obs::Sample s;
    s.name = "external_total";
    s.value = static_cast<double>(external);
    out.samples.push_back(std::move(s));
  });
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or_zero("external_total"), 5.0);
  external = 9;
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or_zero("external_total"), 9.0);
  reg.remove_collector(id);
  EXPECT_EQ(reg.snapshot().find("external_total"), nullptr);
}

// TSan-targeted: concurrent increments on shared instruments, racing
// instrument creation and snapshots. Totals must come out exact.
TEST(MetricsRegistryTest, ConcurrentIncrementsAndSnapshots) {
  obs::MetricsRegistry reg;
  obs::Counter& shared = reg.counter("shared_total");
  obs::Histogram& hist = reg.histogram("shared_hist");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      obs::Counter& own =
          reg.counter("per_thread_total", {{"t", std::to_string(t)}});
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        shared.inc();
        own.inc();
        hist.observe(i & 0xfff);
        if ((i & 0x3fff) == 0) {
          (void)reg.snapshot();  // racing reads must be clean
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared.value(), kThreads * kPerThread);
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  const obs::MetricsSnapshot snap = reg.snapshot();
  double per_thread_sum = 0;
  for (const obs::Sample& s : snap.samples) {
    if (s.name == "per_thread_total") per_thread_sum += s.value;
  }
  EXPECT_DOUBLE_EQ(per_thread_sum, kThreads * kPerThread);
}

// -- histogram bucket boundaries ---------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_index(0), 0u);
  EXPECT_EQ(H::bucket_index(1), 0u);
  EXPECT_EQ(H::bucket_index(2), 1u);
  EXPECT_EQ(H::bucket_index(3), 2u);
  for (std::size_t k = 2; k < 63; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    EXPECT_EQ(H::bucket_index(p), k) << "2^" << k;
    EXPECT_EQ(H::bucket_index(p - 1), k) << "2^" << k << " - 1";
    EXPECT_EQ(H::bucket_index(p + 1), k + 1) << "2^" << k << " + 1";
  }
  // Values above 2^63 land in the +Inf bucket (index 64).
  EXPECT_EQ(H::bucket_index(std::uint64_t{1} << 63), 63u);
  EXPECT_EQ(H::bucket_index((std::uint64_t{1} << 63) + 1), 64u);
  EXPECT_EQ(H::bucket_index(~std::uint64_t{0}), 64u);
  static_assert(H::kBuckets == 65);
  EXPECT_EQ(H::bucket_upper(0), 1u);
  EXPECT_EQ(H::bucket_upper(10), 1024u);
}

TEST(HistogramTest, ObserveCountsIntoTheRightBucket) {
  obs::Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(1024);
  h.observe(1025);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.bucket_count(11), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 2052u);
}

// -- snapshot roll-up algebra ------------------------------------------------

TEST(MetricsSnapshotTest, MergeWithLabelAndRollup) {
  obs::MetricsRegistry node0;
  obs::MetricsRegistry node1;
  node0.counter("updates_total").inc(3);
  node1.counter("updates_total").inc(4);
  node0.histogram("hops").observe(2);
  node1.histogram("hops").observe(5);

  obs::MetricsSnapshot cluster;
  cluster.merge(node0.snapshot().with_label("node", "0"));
  cluster.merge(node1.snapshot().with_label("node", "1"));

  const obs::Sample* s0 = cluster.find("updates_total", {{"node", "0"}});
  ASSERT_NE(s0, nullptr);
  EXPECT_DOUBLE_EQ(s0->value, 3.0);

  const obs::MetricsSnapshot total = cluster.rollup("node");
  const obs::Sample* all = total.find("updates_total");
  ASSERT_NE(all, nullptr);
  EXPECT_TRUE(all->labels.empty());
  EXPECT_DOUBLE_EQ(all->value, 7.0);
  const obs::Sample* hops = total.find("hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_EQ(hops->count, 2u);
  EXPECT_EQ(hops->sum, 7u);
}

TEST(MetricsSnapshotTest, KindMismatchKeepsSeriesSeparate) {
  // The same name as a counter in one registry and a gauge in another must
  // NOT sum together: merge keys on (name, type, labels).
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("depth").inc(3);
  b.gauge("depth").set(10);

  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  std::size_t depth_series = 0;
  for (const obs::Sample& s : merged.samples) {
    if (s.name == "depth") {
      ++depth_series;
      EXPECT_DOUBLE_EQ(s.value,
                       s.type == obs::MetricType::kCounter ? 3.0 : 10.0);
    }
  }
  EXPECT_EQ(depth_series, 2u);
}

TEST(MetricsSnapshotTest, WithLabelOverwritesACollidingKey) {
  obs::MetricsRegistry reg;
  reg.counter("x_total", {{"node", "999"}, {"shard", "2"}}).inc(1);
  const obs::MetricsSnapshot stamped =
      reg.snapshot().with_label("node", "3");
  const obs::Sample* s =
      stamped.find("x_total", {{"node", "3"}, {"shard", "2"}});
  ASSERT_NE(s, nullptr);
  // The stale node label is gone, not duplicated.
  EXPECT_EQ(s->labels.size(), 2u);
  EXPECT_EQ(stamped.find("x_total", {{"node", "999"}, {"shard", "2"}}),
            nullptr);
}

TEST(MetricsSnapshotTest, MergeResizesDifferingHistogramBuckets) {
  // Hand-built samples with unequal bucket vectors (the shape a mixed-epoch
  // fleet produces): merge must resize and add bucket-wise, in both orders.
  obs::Sample small;
  small.name = "lat";
  small.type = obs::MetricType::kHistogram;
  small.buckets = {1, 2};
  small.count = 3;
  small.sum = 5;
  obs::Sample big = small;
  big.buckets = {0, 1, 0, 7};
  big.count = 8;
  big.sum = 100;

  obs::MetricsSnapshot left;
  left.samples = {small};
  obs::MetricsSnapshot right;
  right.samples = {big};
  left.merge(right);
  ASSERT_EQ(left.samples.size(), 1u);
  EXPECT_EQ(left.samples[0].buckets,
            (std::vector<std::uint64_t>{1, 3, 0, 7}));
  EXPECT_EQ(left.samples[0].count, 11u);

  obs::MetricsSnapshot reversed;
  reversed.samples = {big};
  obs::MetricsSnapshot addend;
  addend.samples = {small};
  reversed.merge(addend);
  EXPECT_EQ(reversed.samples[0].buckets, left.samples[0].buckets);
}

TEST(MetricsSnapshotTest, RollupSumsDuplicateLabelValues) {
  // Two samples that become identical once the dropped key is gone, plus
  // one that never had it — all three must land in one coherent snapshot.
  obs::MetricsRegistry n0;
  obs::MetricsRegistry n1;
  obs::MetricsRegistry shared;
  n0.counter("msgs_total").inc(1);
  n1.counter("msgs_total").inc(2);
  shared.counter("msgs_total").inc(10);  // no node label at all

  obs::MetricsSnapshot cluster;
  cluster.merge(n0.snapshot().with_label("node", "0"));
  cluster.merge(n1.snapshot().with_label("node", "1"));
  cluster.merge(shared.snapshot());
  const obs::MetricsSnapshot total = cluster.rollup("node");
  const obs::Sample* all = total.find("msgs_total");
  ASSERT_NE(all, nullptr);
  EXPECT_DOUBLE_EQ(all->value, 13.0);
  EXPECT_EQ(total.samples.size(), 1u);
}

// -- flight recorder ---------------------------------------------------------

TEST(FlightRecorderTest, RingOverwritesOldestAndKeepsOrder) {
  obs::FlightRecorder rec(1, /*capacity=*/4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    obs::Span s;
    s.trace_id = 9;
    s.span_id = i;
    s.name = "s";
    rec.record(s);
  }
  EXPECT_EQ(rec.recorded(), 6u);
  const std::vector<obs::Span> spans = rec.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().span_id, 3u);  // oldest surviving
  EXPECT_EQ(spans.back().span_id, 6u);
  EXPECT_EQ(rec.spans_for(9).size(), 4u);
  EXPECT_TRUE(rec.spans_for(8).empty());
}

TEST(FlightRecorderTest, IdsAreDeterministicPerSeedAndNeverZero) {
  obs::FlightRecorder a(42);
  obs::FlightRecorder b(42);
  obs::FlightRecorder c(43);
  std::vector<std::uint64_t> ids_a;
  std::vector<std::uint64_t> ids_b;
  bool any_differs_from_c = false;
  for (int i = 0; i < 64; ++i) {
    ids_a.push_back(a.new_span_id());
    ids_b.push_back(b.new_span_id());
    if (ids_a.back() != c.new_span_id()) any_differs_from_c = true;
    EXPECT_NE(ids_a.back(), 0u);
  }
  EXPECT_EQ(ids_a, ids_b);
  EXPECT_TRUE(any_differs_from_c);
}

TEST(TraceContextTest, ScopeNestsAndRestores) {
  obs::TraceContext ctx;
  EXPECT_FALSE(ctx.active());
  {
    obs::TraceContext::Scope outer(ctx, 1, 10);
    EXPECT_TRUE(ctx.active());
    EXPECT_EQ(ctx.trace_id(), 1u);
    {
      obs::TraceContext::Scope inner(ctx, 2, 20);
      EXPECT_EQ(ctx.trace_id(), 2u);
      EXPECT_EQ(ctx.span_id(), 20u);
    }
    EXPECT_EQ(ctx.trace_id(), 1u);
    EXPECT_EQ(ctx.span_id(), 10u);
  }
  EXPECT_FALSE(ctx.active());
}

// -- wire extension: trace round-trip and frame compatibility ----------------

net::Message sample_message() {
  net::Message msg;
  msg.kind = net::MessageKind::kOneWay;
  msg.request_id = 7;
  msg.method = "dat.update";
  net::Writer w;
  w.u64(0xdeadbeef);
  msg.body = w.take();
  return msg;
}

TEST(WireTraceTest, TraceRoundTripsThroughTheWire) {
  net::Message msg = sample_message();
  msg.trace = net::WireTrace{0x1111222233334444ULL, 0x5555666677778888ULL};
  const auto wire = msg.encode();
  const net::Message decoded = net::Message::decode(wire);
  ASSERT_TRUE(decoded.trace.has_value());
  EXPECT_EQ(*decoded.trace, *msg.trace);
  EXPECT_EQ(decoded.method, msg.method);
  EXPECT_EQ(decoded.body, msg.body);
}

TEST(WireTraceTest, UntracedEncodingIsByteIdenticalToTheOldFormat) {
  const net::Message msg = sample_message();
  // The pre-extension format, built by hand.
  net::Writer w;
  w.u8(static_cast<std::uint8_t>(msg.kind));
  w.u64(msg.request_id);
  w.str(msg.method);
  w.bytes(msg.body);
  EXPECT_EQ(msg.encode(), w.take());
}

TEST(WireTraceTest, OldDecoderViewStillRejectsTrailingGarbage) {
  auto wire = sample_message().encode();
  const std::size_t frame_end = wire.size();
  wire.push_back(0xaa);
  try {
    (void)net::Message::decode(wire);
    FAIL() << "trailing garbage must be rejected";
  } catch (const net::CodecError& e) {
    EXPECT_EQ(e.error().code, net::DecodeErrorCode::kTrailingBytes);
    EXPECT_EQ(e.error().offset, frame_end);
  }
  // 0x00 is not the extension marker either.
  wire.back() = 0x00;
  EXPECT_THROW((void)net::Message::decode(wire), net::CodecError);
}

TEST(WireTraceTest, UnknownExtensionTagsAreSkipped) {
  auto wire = sample_message().encode();
  wire.push_back(net::kFrameExtMagic);
  wire.push_back(0x7f);  // unknown tag
  wire.push_back(2);
  wire.push_back(0xab);
  wire.push_back(0xcd);
  const net::Message decoded = net::Message::decode(wire);
  EXPECT_FALSE(decoded.trace.has_value());
  EXPECT_EQ(decoded.method, "dat.update");

  // A trace record after an unknown one is still found.
  net::Message traced = sample_message();
  traced.trace = net::WireTrace{1, 2};
  auto traced_wire = sample_message().encode();
  traced_wire.push_back(net::kFrameExtMagic);
  traced_wire.push_back(0x7f);
  traced_wire.push_back(1);
  traced_wire.push_back(0xee);
  traced_wire.push_back(net::kFrameExtTraceTag);
  traced_wire.push_back(16);
  for (int i = 0; i < 8; ++i) traced_wire.push_back(i == 0 ? 1 : 0);  // LE 1
  for (int i = 0; i < 8; ++i) traced_wire.push_back(i == 0 ? 2 : 0);  // LE 2
  const net::Message d2 = net::Message::decode(traced_wire);
  ASSERT_TRUE(d2.trace.has_value());
  EXPECT_EQ(d2.trace->trace_id, 1u);
  EXPECT_EQ(d2.trace->span_id, 2u);
}

TEST(WireTraceTest, TruncatedExtensionIsRejectedAsTruncated) {
  auto wire = sample_message().encode();
  wire.push_back(net::kFrameExtMagic);
  wire.push_back(net::kFrameExtTraceTag);
  wire.push_back(16);
  wire.push_back(0x01);  // only 1 of 16 payload bytes
  try {
    (void)net::Message::decode(wire);
    FAIL() << "truncated extension must be rejected";
  } catch (const net::CodecError& e) {
    EXPECT_EQ(e.error().code, net::DecodeErrorCode::kTruncated);
  }
}

// -- rpc propagation ---------------------------------------------------------

TEST(RpcTraceTest, AmbientTraceCrossesTheWireAndScopesTheHandler) {
  sim::Engine engine(7);
  net::SimNetwork network(engine);
  net::SimTransport& client_t = network.add_node();
  net::SimTransport& server_t = network.add_node();
  // Telemetry outlives the managers: ~RpcManager unregisters its collector,
  // so the registries must still be alive at that point.
  obs::NodeTelemetry client_tel(1);
  obs::NodeTelemetry server_tel(2);
  net::RpcManager client(client_t);
  net::RpcManager server(server_t);
  client.set_telemetry(&client_tel);
  server.set_telemetry(&server_tel);

  std::uint64_t seen_trace = 0;
  std::uint64_t seen_span = 0;
  server.register_method("probe", [&](net::Endpoint, net::Reader&,
                                      net::Writer& reply) {
    seen_trace = server_tel.trace.trace_id();
    seen_span = server_tel.trace.span_id();
    reply.u64(1);
  });

  std::uint64_t response_trace = 0;
  {
    const obs::TraceContext::Scope scope(client_tel.trace, 0xabc, 0xdef);
    client.call(server_t.local(), "probe", net::Writer{},
                [&](net::RpcStatus st, net::Reader&) {
                  ASSERT_EQ(st, net::RpcStatus::kOk);
                  // The reply echoes the request's trace, so the response
                  // callback runs under the originating trace too.
                  response_trace = client_tel.trace.trace_id();
                });
  }
  engine.run();
  EXPECT_EQ(seen_trace, 0xabcu);
  EXPECT_EQ(seen_span, 0xdefu);
  EXPECT_EQ(response_trace, 0xabcu);
  // Contexts unwound after dispatch on both sides.
  EXPECT_FALSE(client_tel.trace.active());
  EXPECT_FALSE(server_tel.trace.active());
}

// -- exporters ----------------------------------------------------------------

TEST(ExportTest, PrometheusTextFormat) {
  obs::MetricsRegistry reg;
  reg.counter("dat_events_total", {{"node", "3"}}).inc(12);
  reg.histogram("dat_hops").observe(3);
  const std::string text = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE dat_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("dat_events_total{node=\"3\"} 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dat_hops histogram"), std::string::npos);
  EXPECT_NE(text.find("dat_hops_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("dat_hops_sum 3"), std::string::npos);
  EXPECT_NE(text.find("dat_hops_count 1"), std::string::npos);
}

TEST(ExportTest, JsonDocumentCarriesSchemaAndSamples) {
  obs::MetricsRegistry reg;
  reg.counter("dat_events_total").inc(2);
  const std::string json = obs::to_json(reg.snapshot());
  EXPECT_NE(json.find("\"schema\":\"dat.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"dat_events_total\""), std::string::npos);
  EXPECT_EQ(obs::render(reg.snapshot(), obs::ExportFormat::kJson), json);
}

// -- acceptance: one aggregation wave as a Chrome trace ----------------------

TEST(AggregationWaveTest, WaveChainMatchesTreeEdgesAndExportsChromeTrace) {
  harness::ClusterOptions options;
  options.seed = 11;
  harness::SimCluster cluster(24, std::move(options));
  ASSERT_TRUE(cluster.wait_converged(600'000'000));

  const Id key = cluster.start_aggregate_everywhere(
      "cpu-usage", core::AggregateKind::kAvg, chord::RoutingScheme::kBalanced,
      [](std::size_t slot) -> core::DatNode::LocalValueFn {
        return [slot] { return static_cast<double>(slot); };
      });
  const std::uint64_t epoch_us = cluster.dat(0).options().epoch_us;
  cluster.run_for(10 * epoch_us);

  // Index every span of every node, and find the root slot.
  struct Located {
    std::size_t slot = 0;
    obs::Span span;
  };
  std::map<std::uint64_t, Located> by_span_id;
  const Id root_id = cluster.ring_view().successor(key);
  std::size_t root_slot = cluster.slot_count();
  std::uint64_t trace_id = 0;
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    if (!cluster.is_live(i)) continue;
    for (const obs::Span& span :
         cluster.node(i).telemetry().recorder.spans()) {
      by_span_id[span.span_id] = {i, span};
    }
    if (cluster.node(i).id() == root_id) root_slot = i;
  }
  ASSERT_LT(root_slot, cluster.slot_count());
  for (const obs::Span& span :
       cluster.node(root_slot).telemetry().recorder.spans()) {
    if (span.key == key && std::strcmp(span.name, "dat.aggregate") == 0) {
      trace_id = span.trace_id;  // most recent completed wave
    }
  }
  ASSERT_NE(trace_id, 0u) << "root recorded no completed aggregation wave";

  // Walk the wave chain from the root's aggregate span down to the leaf's
  // first send. Every recv->send hop must be a ground-truth DAT tree edge:
  // the sender's dat_parent is the node that recorded the receive.
  const obs::Span* cursor = nullptr;
  for (const obs::Span& span :
       cluster.node(root_slot).telemetry().recorder.spans_for(trace_id)) {
    if (std::strcmp(span.name, "dat.aggregate") == 0) cursor = &by_span_id.at(span.span_id).span;
  }
  ASSERT_NE(cursor, nullptr);
  std::size_t cursor_slot = root_slot;
  unsigned chain_len = 1;
  unsigned tree_hops = 0;
  while (cursor->parent_span_id != 0) {
    const auto it = by_span_id.find(cursor->parent_span_id);
    ASSERT_NE(it, by_span_id.end())
        << "dangling parent span 0x" << std::hex << cursor->parent_span_id;
    const Located& parent = it->second;
    EXPECT_EQ(parent.span.trace_id, trace_id);
    if (std::strcmp(cursor->name, "dat.update.recv") == 0) {
      // Cross-node link: the parent is the child's send span, and the DAT
      // tree must agree that we are that child's parent.
      EXPECT_STREQ(parent.span.name, "dat.update.send");
      EXPECT_NE(parent.slot, cursor_slot);
      const auto tree_parent =
          cluster.node(parent.slot).dat_parent(key, chord::RoutingScheme::kBalanced);
      ASSERT_TRUE(tree_parent.has_value());
      EXPECT_EQ(tree_parent->id, cluster.node(cursor_slot).id())
          << "span chain hop disagrees with the DAT tree edge";
      ++tree_hops;
    } else {
      // Same-node link (aggregate->recv or send->recv).
      EXPECT_EQ(parent.slot, cursor_slot);
    }
    cursor_slot = parent.slot;
    cursor = &it->second.span;
    ++chain_len;
  }
  // The chain bottom is a leaf's send: fresh trace, no parent.
  EXPECT_STREQ(cursor->name, "dat.update.send");
  const auto leaf_children = cluster.dat(cursor_slot).child_count(key);
  EXPECT_EQ(leaf_children, 0u) << "wave origin should be a tree leaf";
  EXPECT_GE(tree_hops, 1u);
  EXPECT_GE(chain_len, 3u);  // leaf send -> root recv -> root aggregate

  // Export the wave as Chrome trace-event JSON and spot-check structure.
  std::vector<obs::NodeSpans> nodes;
  for (std::size_t i = 0; i < cluster.slot_count(); ++i) {
    if (!cluster.is_live(i)) continue;
    nodes.push_back(obs::NodeSpans{"node-" + std::to_string(i), i,
                                   cluster.node(i).telemetry().recorder.spans()});
  }
  const std::string doc = obs::to_chrome_trace(nodes, trace_id);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"dat.aggregate\""), std::string::npos);
  EXPECT_NE(doc.find("\"dat.update.send\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"s\""), std::string::npos);  // flow arrows
  EXPECT_NE(doc.find("\"ph\":\"f\""), std::string::npos);

  // And the metrics layer saw the wave too, up through the cluster roll-up.
  const obs::MetricsSnapshot rolled =
      cluster.telemetry_snapshot().rollup("node");
  EXPECT_GT(rolled.value_or_zero("dat_tree_updates_sent_total"), 0.0);
  EXPECT_GT(rolled.value_or_zero("dat_tree_updates_received_total"), 0.0);
  EXPECT_GT(rolled.value_or_zero("dat_tree_epochs_total"), 0.0);
  EXPECT_GT(rolled.value_or_zero("dat_chord_lookups_total"), 0.0);
  const obs::Sample* staleness = rolled.find("dat_tree_child_staleness_us");
  ASSERT_NE(staleness, nullptr);
  EXPECT_GT(staleness->count, 0u);
}

}  // namespace
