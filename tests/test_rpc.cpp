#include "net/rpc.hpp"

#include <gtest/gtest.h>

#include "net/sim_transport.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dat;
using namespace dat::net;

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : engine_(7),
        network_(engine_),
        client_transport_(network_.add_node()),
        server_transport_(network_.add_node()),
        client_(client_transport_),
        server_(server_transport_) {}

  sim::Engine engine_;
  SimNetwork network_;
  SimTransport& client_transport_;
  SimTransport& server_transport_;
  RpcManager client_;
  RpcManager server_;
};

TEST_F(RpcTest, RequestResponseRoundTrip) {
  server_.register_method("echo", [](Endpoint, Reader& req, Writer& reply) {
    reply.u64(req.u64() * 2);
  });
  std::uint64_t result = 0;
  Writer body;
  body.u64(21);
  client_.call(server_transport_.local(), "echo", body,
               [&](RpcStatus status, Reader& r) {
                 ASSERT_EQ(status, RpcStatus::kOk);
                 result = r.u64();
               });
  engine_.run();
  EXPECT_EQ(result, 42u);
  EXPECT_EQ(client_.pending(), 0u);
  EXPECT_EQ(server_.served_counts().at("echo"), 1u);
}

TEST_F(RpcTest, UnknownMethodYieldsRemoteError) {
  RpcStatus status = RpcStatus::kOk;
  std::string error;
  client_.call(server_transport_.local(), "nope", Writer{},
               [&](RpcStatus s, Reader& r) {
                 status = s;
                 if (s == RpcStatus::kRemoteError) error = r.str();
               });
  engine_.run();
  EXPECT_EQ(status, RpcStatus::kRemoteError);
  EXPECT_NE(error.find("unknown method"), std::string::npos);
}

TEST_F(RpcTest, ThrowingHandlerYieldsRemoteError) {
  server_.register_method("boom", [](Endpoint, Reader&, Writer&) {
    throw std::runtime_error("kaput");
  });
  RpcStatus status = RpcStatus::kOk;
  std::string error;
  client_.call(server_transport_.local(), "boom", Writer{},
               [&](RpcStatus s, Reader& r) {
                 status = s;
                 if (s == RpcStatus::kRemoteError) error = r.str();
               });
  engine_.run();
  EXPECT_EQ(status, RpcStatus::kRemoteError);
  EXPECT_EQ(error, "kaput");
}

TEST_F(RpcTest, TimeoutAfterAllAttempts) {
  RpcStatus status = RpcStatus::kOk;
  RpcOptions options;
  options.timeout_us = 1000;
  options.attempts = 3;
  // Nothing is listening on a fresh (handler-less) endpoint beyond decode —
  // use a partitioned destination to guarantee silence.
  network_.set_partitioned(server_transport_.local(), true);
  client_.call(server_transport_.local(), "echo", Writer{},
               [&](RpcStatus s, Reader&) { status = s; }, options);
  engine_.run();
  EXPECT_EQ(status, RpcStatus::kTimeout);
  // 3 attempts were sent.
  EXPECT_EQ(client_transport_.counters().messages_sent, 3u);
  EXPECT_EQ(client_.pending(), 0u);
}

TEST_F(RpcTest, RetrySucceedsAfterLoss) {
  server_.register_method("ping", [](Endpoint, Reader&, Writer& reply) {
    reply.u8(1);
  });
  // 60% loss: with 8 attempts the call almost surely lands.
  network_.set_loss_rate(0.6);
  RpcOptions options;
  options.timeout_us = 2000;
  options.attempts = 8;
  int ok = 0;
  int calls = 20;
  for (int i = 0; i < calls; ++i) {
    client_.call(server_transport_.local(), "ping", Writer{},
                 [&](RpcStatus s, Reader&) {
                   if (s == RpcStatus::kOk) ++ok;
                 },
                 options);
  }
  engine_.run();
  EXPECT_GT(ok, calls / 2);
}

TEST_F(RpcTest, ResponsesMatchTheirRequests) {
  server_.register_method("id", [](Endpoint, Reader& req, Writer& reply) {
    reply.u64(req.u64());
  });
  std::vector<std::uint64_t> results(10, 0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Writer body;
    body.u64(i + 100);
    client_.call(server_transport_.local(), "id", body,
                 [&results, i](RpcStatus s, Reader& r) {
                   ASSERT_EQ(s, RpcStatus::kOk);
                   results[i] = r.u64();
                 });
  }
  engine_.run();
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(results[i], i + 100);
}

TEST_F(RpcTest, OneWayDelivery) {
  std::uint64_t got = 0;
  server_.register_one_way("notify", [&](Endpoint from, Reader& msg) {
    EXPECT_EQ(from, client_transport_.local());
    got = msg.u64();
  });
  Writer body;
  body.u64(7);
  client_.send_one_way(server_transport_.local(), "notify", body);
  engine_.run();
  EXPECT_EQ(got, 7u);
}

TEST_F(RpcTest, UnknownOneWayIsIgnored) {
  Writer body;
  client_.send_one_way(server_transport_.local(), "ghost", body);
  EXPECT_NO_THROW(engine_.run());
}

TEST_F(RpcTest, ThrowingOneWayHandlerIsContained) {
  server_.register_one_way("bad", [](Endpoint, Reader&) {
    throw std::runtime_error("one-way boom");
  });
  client_.send_one_way(server_transport_.local(), "bad", Writer{});
  EXPECT_NO_THROW(engine_.run());
}

TEST_F(RpcTest, ReentrantCallFromHandler) {
  server_.register_method("first", [](Endpoint, Reader&, Writer& reply) {
    reply.u8(1);
  });
  server_.register_method("second", [](Endpoint, Reader&, Writer& reply) {
    reply.u8(2);
  });
  int phase = 0;
  client_.call(server_transport_.local(), "first", Writer{},
               [&](RpcStatus s, Reader&) {
                 ASSERT_EQ(s, RpcStatus::kOk);
                 phase = 1;
                 client_.call(server_transport_.local(), "second", Writer{},
                              [&](RpcStatus s2, Reader&) {
                                ASSERT_EQ(s2, RpcStatus::kOk);
                                phase = 2;
                              });
               });
  engine_.run();
  EXPECT_EQ(phase, 2);
}

TEST_F(RpcTest, MalformedResponseBodySurfacesAsCodecError) {
  server_.register_method("short", [](Endpoint, Reader&, Writer& reply) {
    reply.u8(1);  // client will try to read u64
  });
  bool threw = false;
  client_.call(server_transport_.local(), "short", Writer{},
               [&](RpcStatus s, Reader& r) {
                 ASSERT_EQ(s, RpcStatus::kOk);
                 try {
                   (void)r.u64();
                 } catch (const CodecError&) {
                   threw = true;
                 }
               });
  engine_.run();
  EXPECT_TRUE(threw);
}

TEST_F(RpcTest, AttemptTimeoutGrowsWithMultiplier) {
  RpcOptions options;
  options.timeout_us = 1000;
  options.attempts = 3;
  options.timeout_multiplier = 2.0;
  EXPECT_EQ(options.attempt_timeout_us(0), 1000u);
  EXPECT_EQ(options.attempt_timeout_us(1), 2000u);
  EXPECT_EQ(options.attempt_timeout_us(2), 4000u);
  // Fixed policy keeps every attempt at the base timeout.
  const RpcOptions fixed = options.fixed(3);
  EXPECT_EQ(fixed.attempt_timeout_us(2), 1000u);
  EXPECT_EQ(fixed.backoff_base_us, 0u);
}

TEST_F(RpcTest, StatsCountOutcomes) {
  server_.register_method("ping", [](Endpoint, Reader&, Writer& reply) {
    reply.u8(1);
  });
  client_.call(server_transport_.local(), "ping", Writer{},
               [](RpcStatus, Reader&) {});
  engine_.run();
  EXPECT_EQ(client_.stats().calls, 1u);
  EXPECT_EQ(client_.stats().attempts, 1u);
  EXPECT_EQ(client_.stats().ok, 1u);
  EXPECT_EQ(client_.stats().timeouts, 0u);

  client_.reset_stats();
  network_.set_partitioned(server_transport_.local(), true);
  RpcOptions options;
  options.timeout_us = 1000;
  options.attempts = 3;
  client_.call(server_transport_.local(), "ping", Writer{},
               [](RpcStatus, Reader&) {}, options);
  engine_.run();
  EXPECT_EQ(client_.stats().calls, 1u);
  EXPECT_EQ(client_.stats().attempts, 3u);
  EXPECT_EQ(client_.stats().retransmits, 2u);
  EXPECT_EQ(client_.stats().timeouts, 1u);
  EXPECT_EQ(client_.stats().ok, 0u);
}

TEST_F(RpcTest, AdaptiveBackoffDelaysRetries) {
  // With nobody answering, the adaptive policy still sends every attempt
  // but spaces them out: total elapsed time exceeds the sum of the
  // (growing) per-attempt timeouts by the waited backoff.
  network_.set_partitioned(server_transport_.local(), true);
  const RpcOptions options = RpcOptions::adaptive(1000, 4);
  RpcStatus status = RpcStatus::kOk;
  client_.call(server_transport_.local(), "ping", Writer{},
               [&](RpcStatus s, Reader&) { status = s; }, options);
  engine_.run();
  EXPECT_EQ(status, RpcStatus::kTimeout);
  EXPECT_EQ(client_transport_.counters().messages_sent, 4u);
  EXPECT_GT(client_.stats().backoff_wait_us, 0u);
  std::uint64_t timeout_sum = 0;
  for (unsigned a = 0; a < 4; ++a) timeout_sum += options.attempt_timeout_us(a);
  EXPECT_GE(engine_.now(), timeout_sum + client_.stats().backoff_wait_us);
  EXPECT_LE(engine_.now(), options.max_total_us());
}

TEST_F(RpcTest, AdaptiveRetryVolumeBoundedUnderLoss) {
  // 20% loss: the adaptive policy must not retransmit more than the fixed
  // baseline for the same budget (its growing timeouts absorb slow replies
  // that fixed timers would spuriously re-send). Deterministic: one seed.
  server_.register_method("ping", [](Endpoint, Reader&, Writer& reply) {
    reply.u8(1);
  });
  network_.set_loss_rate(0.20);
  const auto run_batch = [&](const RpcOptions& options) {
    client_.reset_stats();
    int done = 0;
    for (int i = 0; i < 50; ++i) {
      client_.call(server_transport_.local(), "ping", Writer{},
                   [&](RpcStatus, Reader&) { ++done; }, options);
    }
    engine_.run();
    EXPECT_EQ(done, 50);
    return client_.stats();
  };
  RpcOptions fixed;
  fixed.timeout_us = 2000;
  fixed.attempts = 6;
  const RpcStats fixed_stats = run_batch(fixed);
  const RpcStats adaptive_stats = run_batch(RpcOptions::adaptive(2000, 6));
  EXPECT_EQ(adaptive_stats.calls, 50u);
  EXPECT_LE(adaptive_stats.retransmits, fixed_stats.retransmits);
  EXPECT_GT(adaptive_stats.ok, 45u);
  EXPECT_EQ(fixed_stats.backoff_wait_us, 0u);
}

TEST_F(RpcTest, StatusToString) {
  EXPECT_STREQ(to_string(RpcStatus::kOk), "ok");
  EXPECT_STREQ(to_string(RpcStatus::kTimeout), "timeout");
  EXPECT_STREQ(to_string(RpcStatus::kRemoteError), "remote-error");
}

TEST_F(RpcTest, LateResponseAfterTimeoutIsIgnored) {
  // The server answers after the client has already given up; the stale
  // response must not crash or fire the handler twice.
  server_.register_method("slow", [](Endpoint, Reader&, Writer& reply) {
    reply.u8(1);
  });
  // Use a latency larger than the full retry budget by partitioning until
  // the deadline passes, then healing.
  network_.set_partitioned(server_transport_.local(), true);
  int fired = 0;
  RpcOptions options;
  options.timeout_us = 500;
  options.attempts = 1;
  client_.call(server_transport_.local(), "slow", Writer{},
               [&](RpcStatus s, Reader&) {
                 ++fired;
                 EXPECT_EQ(s, RpcStatus::kTimeout);
               },
               options);
  engine_.run();
  network_.set_partitioned(server_transport_.local(), false);
  engine_.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
